// Component micro-benchmarks (google-benchmark): the building blocks
// whose costs explain the end-to-end runtime differences of Fig. 4 —
// parsing/normalization, what-if optimizer calls (cold and memoized),
// partial-order merging, structural candidate generation, parallel
// ranking, and executor primitives. The custom main additionally records
// the what-if/cache/ranking numbers into BENCH_results.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <thread>

#include "bench/bench_json.h"
#include "common/thread_pool.h"
#include "core/candidate_generation.h"
#include "core/merge.h"
#include "core/ranking.h"
#include "executor/executor.h"
#include "optimizer/what_if.h"
#include "optimizer/what_if_cache.h"
#include "sql/normalizer.h"
#include "sql/parser.h"
#include "workload/demo.h"
#include "workload/tpch.h"

namespace {

using namespace aim;

const char* kJoinSql =
    "SELECT users.id FROM users, orders WHERE users.id = orders.user_id "
    "AND users.org_id = 5 AND orders.day > 100 ORDER BY orders.day "
    "LIMIT 10";

void BM_ParseStatement(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sql::Parse(kJoinSql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseStatement);

void BM_NormalizeFingerprint(benchmark::State& state) {
  auto stmt = sql::Parse(kJoinSql).MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::NormalizedFingerprint(stmt));
  }
}
BENCHMARK(BM_NormalizeFingerprint);

void BM_WhatIfSingleTable(benchmark::State& state) {
  storage::Database db = workload::MakeUsersDemoDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  auto stmt =
      sql::Parse("SELECT id FROM users WHERE org_id = 5 AND status = 2")
          .MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(what_if.QueryCost(stmt));
  }
}
BENCHMARK(BM_WhatIfSingleTable);

void BM_WhatIfJoinQuery(benchmark::State& state) {
  storage::Database db = workload::MakeOrdersDemoDb(1000, 5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  auto stmt = sql::Parse(kJoinSql).MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(what_if.QueryCost(stmt));
  }
}
BENCHMARK(BM_WhatIfJoinQuery);

void BM_WhatIfTpchQ5(benchmark::State& state) {
  storage::Database db;
  workload::TpchOptions options;
  options.materialized_sf = 0.001;
  (void)workload::BuildTpch(&db, options);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  auto q = workload::TpchQuery(5).MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(what_if.QueryCost(q.stmt));
  }
}
BENCHMARK(BM_WhatIfTpchQ5);

void BM_WhatIfTpchQ5Cached(benchmark::State& state) {
  storage::Database db;
  workload::TpchOptions options;
  options.materialized_sf = 0.001;
  (void)workload::BuildTpch(&db, options);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  optimizer::WhatIfCache cache(4096);
  what_if.set_cache(&cache);
  auto q = workload::TpchQuery(5).MoveValue();
  (void)what_if.QueryCost(q.stmt);  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(what_if.QueryCost(q.stmt));
  }
}
BENCHMARK(BM_WhatIfTpchQ5Cached);

void BM_WhatIfCacheHit(benchmark::State& state) {
  optimizer::WhatIfCache cache(4096);
  auto compute = [] { return Result<double>(1.0); };
  (void)cache.GetOrCompute({1, 1}, compute);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetOrCompute({1, 1}, compute));
  }
}
BENCHMARK(BM_WhatIfCacheHit);

/// Ranking fan-out: RankAndSelect over the TPC-H query set at 1/2/4/8
/// pool threads (thread count is the benchmark argument; results are
/// bit-identical across all of them). The cache is off, so this measures
/// pure parallel planning — each what-if call is ~0.5 ms of real work,
/// the scale where the pool pays off.
void BM_RankAndSelectThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  static const storage::Database* db = [] {
    auto* built = new storage::Database();
    workload::TpchOptions options;
    options.materialized_sf = 0.001;
    (void)workload::BuildTpch(built, options);
    return built;
  }();
  static const workload::Workload* w =
      new workload::Workload(workload::TpchQueries().MoveValue());
  std::vector<core::SelectedQuery> queries;
  for (int stream = 0; stream < 3; ++stream) {
    for (const workload::Query& q : w->queries) {
      core::SelectedQuery sq;
      sq.query = &q;
      queries.push_back(sq);
    }
  }
  const catalog::TableId lineitem =
      db->catalog().FindTable("lineitem").ValueOrDie();
  const catalog::TableId orders =
      db->catalog().FindTable("orders").ValueOrDie();
  auto col = [&](catalog::TableId t, const char* name) {
    return *db->catalog().table(t).FindColumn(name);
  };
  std::vector<catalog::IndexDef> candidates;
  for (const char* name : {"l_shipdate", "l_partkey", "l_suppkey"}) {
    catalog::IndexDef def;
    def.table = lineitem;
    def.columns = {col(lineitem, name)};
    candidates.push_back(def);
  }
  {
    catalog::IndexDef def;
    def.table = orders;
    def.columns = {col(orders, "o_orderdate")};
    candidates.push_back(def);
  }
  common::ThreadPool pool(threads);
  for (auto _ : state) {
    optimizer::WhatIfOptimizer what_if(db->catalog(),
                                       optimizer::CostModel());
    core::RankingResult r =
        core::RankAndSelect(candidates, queries, &what_if, {},
                            threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RankAndSelectThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MergePartialOrders(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<core::PartialOrder> orders;
  // Chains of subset-related orders that actually merge.
  for (int i = 0; i < n; ++i) {
    std::vector<core::PartialOrder::Partition> parts;
    core::PartialOrder::Partition p;
    for (catalog::ColumnId c = 0; c <= static_cast<catalog::ColumnId>(i % 5);
         ++c) {
      p.push_back(c);
    }
    parts.push_back(p);
    orders.push_back(core::PartialOrder::FromPartitions(0, parts));
  }
  for (auto _ : state) {
    auto merged = core::MergePartialOrders(orders);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_MergePartialOrders)->Arg(8)->Arg(32)->Arg(128);

void BM_CandidateGeneration(benchmark::State& state) {
  storage::Database db = workload::MakeOrdersDemoDb(1000, 5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  core::CandidateGenerator gen(db.catalog(), &what_if,
                               core::CandidateGenOptions{});
  auto q = workload::MakeQuery(kJoinSql).MoveValue();
  auto aq = optimizer::Analyze(q.stmt, db.catalog()).MoveValue();
  for (auto _ : state) {
    auto orders = gen.GenerateForQuery(q, aq, nullptr);
    benchmark::DoNotOptimize(orders);
  }
}
BENCHMARK(BM_CandidateGeneration);

void BM_ExecutorPointLookup(benchmark::State& state) {
  storage::Database db = workload::MakeUsersDemoDb(20000);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  (void)db.CreateIndex(def);
  executor::Executor exec(&db, optimizer::CostModel());
  auto stmt =
      sql::Parse("SELECT id FROM users WHERE org_id = 7").MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(stmt));
  }
}
BENCHMARK(BM_ExecutorPointLookup);

void BM_ExecutorFullScan(benchmark::State& state) {
  storage::Database db = workload::MakeUsersDemoDb(20000);
  executor::Executor exec(&db, optimizer::CostModel());
  auto stmt =
      sql::Parse("SELECT id FROM users WHERE org_id = 7").MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(stmt));
  }
}
BENCHMARK(BM_ExecutorFullScan);

void BM_BTreeInsertErase(benchmark::State& state) {
  storage::BTreeIndex index;
  int64_t i = 0;
  for (auto _ : state) {
    index.Insert({sql::Value::Int(i % 1000), sql::Value::Int(i)}, i);
    if (i % 2 == 1) {
      index.Erase({sql::Value::Int((i - 1) % 1000), sql::Value::Int(i - 1)},
                  i - 1);
    }
    ++i;
  }
}
BENCHMARK(BM_BTreeInsertErase);

/// Deterministic cache/parallelism numbers for BENCH_results.json: cold
/// vs memoized TPC-H Q5 costing, and serial vs pooled ranking wall time
/// over a duplicated workload.
void WriteMicroResults() {
  storage::Database db;
  workload::TpchOptions options;
  options.materialized_sf = 0.001;
  (void)workload::BuildTpch(&db, options);
  auto q = workload::TpchQuery(5).MoveValue();
  constexpr int kReps = 200;

  auto time_seconds = [](const std::function<void()>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  optimizer::WhatIfOptimizer cold(db.catalog(), optimizer::CostModel());
  const double cold_seconds = time_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      benchmark::DoNotOptimize(cold.QueryCost(q.stmt));
    }
  });

  optimizer::WhatIfOptimizer warm(db.catalog(), optimizer::CostModel());
  optimizer::WhatIfCache cache(4096);
  warm.set_cache(&cache);
  const double warm_seconds = time_seconds([&] {
    for (int i = 0; i < kReps; ++i) {
      benchmark::DoNotOptimize(warm.QueryCost(q.stmt));
    }
  });

  bench::JsonObject section;
  section.Add("hardware_concurrency",
              static_cast<int>(std::thread::hardware_concurrency()))
      .Add("whatif_reps", kReps)
      .Add("whatif_cold_seconds", cold_seconds)
      .Add("whatif_cached_seconds", warm_seconds)
      .Add("whatif_cold_calls", cold.call_count())
      .Add("whatif_cached_calls", warm.call_count())
      .Add("cache_hits", cache.stats().hits)
      .Add("cache_misses", cache.stats().misses)
      .Add("cache_hit_rate", cache.stats().hit_rate())
      .Add("cache_speedup",
           warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0)
      .AddRaw("obs_metrics", bench::MetricsJson())
      .AddRaw("run_meta", bench::RunMetadataJson());
  if (bench::WriteJsonSection("BENCH_results.json", "micro_components",
                              section)) {
    std::printf("wrote BENCH_results.json [micro_components]\n");
  } else {
    std::fprintf(stderr, "failed to write BENCH_results.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteMicroResults();
  return 0;
}
