// Component micro-benchmarks (google-benchmark): the building blocks
// whose costs explain the end-to-end runtime differences of Fig. 4 —
// parsing/normalization, what-if optimizer calls, partial-order merging,
// structural candidate generation, and executor primitives.
#include <benchmark/benchmark.h>

#include "core/candidate_generation.h"
#include "core/merge.h"
#include "executor/executor.h"
#include "optimizer/what_if.h"
#include "sql/normalizer.h"
#include "sql/parser.h"
#include "workload/demo.h"
#include "workload/tpch.h"

namespace {

using namespace aim;

const char* kJoinSql =
    "SELECT users.id FROM users, orders WHERE users.id = orders.user_id "
    "AND users.org_id = 5 AND orders.day > 100 ORDER BY orders.day "
    "LIMIT 10";

void BM_ParseStatement(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sql::Parse(kJoinSql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseStatement);

void BM_NormalizeFingerprint(benchmark::State& state) {
  auto stmt = sql::Parse(kJoinSql).MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::NormalizedFingerprint(stmt));
  }
}
BENCHMARK(BM_NormalizeFingerprint);

void BM_WhatIfSingleTable(benchmark::State& state) {
  storage::Database db = workload::MakeUsersDemoDb(5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  auto stmt =
      sql::Parse("SELECT id FROM users WHERE org_id = 5 AND status = 2")
          .MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(what_if.QueryCost(stmt));
  }
}
BENCHMARK(BM_WhatIfSingleTable);

void BM_WhatIfJoinQuery(benchmark::State& state) {
  storage::Database db = workload::MakeOrdersDemoDb(1000, 5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  auto stmt = sql::Parse(kJoinSql).MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(what_if.QueryCost(stmt));
  }
}
BENCHMARK(BM_WhatIfJoinQuery);

void BM_WhatIfTpchQ5(benchmark::State& state) {
  storage::Database db;
  workload::TpchOptions options;
  options.materialized_sf = 0.001;
  (void)workload::BuildTpch(&db, options);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  auto q = workload::TpchQuery(5).MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(what_if.QueryCost(q.stmt));
  }
}
BENCHMARK(BM_WhatIfTpchQ5);

void BM_MergePartialOrders(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<core::PartialOrder> orders;
  // Chains of subset-related orders that actually merge.
  for (int i = 0; i < n; ++i) {
    std::vector<core::PartialOrder::Partition> parts;
    core::PartialOrder::Partition p;
    for (catalog::ColumnId c = 0; c <= static_cast<catalog::ColumnId>(i % 5);
         ++c) {
      p.push_back(c);
    }
    parts.push_back(p);
    orders.push_back(core::PartialOrder::FromPartitions(0, parts));
  }
  for (auto _ : state) {
    auto merged = core::MergePartialOrders(orders);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_MergePartialOrders)->Arg(8)->Arg(32)->Arg(128);

void BM_CandidateGeneration(benchmark::State& state) {
  storage::Database db = workload::MakeOrdersDemoDb(1000, 5000);
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  core::CandidateGenerator gen(db.catalog(), &what_if,
                               core::CandidateGenOptions{});
  auto q = workload::MakeQuery(kJoinSql).MoveValue();
  auto aq = optimizer::Analyze(q.stmt, db.catalog()).MoveValue();
  for (auto _ : state) {
    auto orders = gen.GenerateForQuery(q, aq, nullptr);
    benchmark::DoNotOptimize(orders);
  }
}
BENCHMARK(BM_CandidateGeneration);

void BM_ExecutorPointLookup(benchmark::State& state) {
  storage::Database db = workload::MakeUsersDemoDb(20000);
  catalog::IndexDef def;
  def.table = 0;
  def.columns = {1};
  (void)db.CreateIndex(def);
  executor::Executor exec(&db, optimizer::CostModel());
  auto stmt =
      sql::Parse("SELECT id FROM users WHERE org_id = 7").MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(stmt));
  }
}
BENCHMARK(BM_ExecutorPointLookup);

void BM_ExecutorFullScan(benchmark::State& state) {
  storage::Database db = workload::MakeUsersDemoDb(20000);
  executor::Executor exec(&db, optimizer::CostModel());
  auto stmt =
      sql::Parse("SELECT id FROM users WHERE org_id = 7").MoveValue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(stmt));
  }
}
BENCHMARK(BM_ExecutorFullScan);

void BM_BTreeInsertErase(benchmark::State& state) {
  storage::BTreeIndex index;
  int64_t i = 0;
  for (auto _ : state) {
    index.Insert({sql::Value::Int(i % 1000), sql::Value::Int(i)}, i);
    if (i % 2 == 1) {
      index.Erase({sql::Value::Int((i - 1) % 1000), sql::Value::Int(i - 1)},
                  i - 1);
    }
    ++i;
  }
}
BENCHMARK(BM_BTreeInsertErase);

}  // namespace

BENCHMARK_MAIN();
