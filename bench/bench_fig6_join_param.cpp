// Figure 6: effect of the join parameter j. Two identical machines start
// without secondary indexes under a constant join-heavy workload. One
// gets AIM's configurations with j = 1, 2, 3 in successive phases; the
// other gets the greedy incremental algorithm's (GIA = Extend)
// configuration. The workload is built so that tables joining multiple
// partners need multi-column join-support indexes — the configurations a
// one-column-at-a-time greedy cannot justify incrementally.
#include <algorithm>

#include "advisors/extend.h"
#include "bench/bench_util.h"
#include "core/aim.h"
#include "storage/data_generator.h"
#include "workload/replay.h"

using namespace aim;

namespace {

constexpr int kPhaseLen = 8;
// Phases: [0] unindexed, [1] j=1 / GIA, [2] j=2, [3] j=3.
constexpr int kTicks = 4 * kPhaseLen;

storage::Database BuildStarDb() {
  storage::Database db;
  auto col = [](const char* name, catalog::ColumnType type, uint32_t w) {
    catalog::ColumnDef c;
    c.name = name;
    c.type = type;
    c.avg_width = w;
    return c;
  };
  Rng rng(11);

  // Three small dimensions d1..d3(id PK, a, b), 50 rows each: a has 5
  // distinct values, so an equality filter keeps ~10 rows.
  for (int d = 1; d <= 3; ++d) {
    catalog::TableDef def;
    def.name = "d" + std::to_string(d);
    def.columns = {col("id", catalog::ColumnType::kInt64, 8),
                   col("a", catalog::ColumnType::kInt64, 4),
                   col("b", catalog::ColumnType::kInt64, 4)};
    def.primary_key = {0};
    const catalog::TableId id = db.CreateTable(std::move(def));
    std::vector<storage::ColumnSpec> specs(3);
    specs[1].ndv = 5;
    specs[2].ndv = 10;
    (void)storage::GenerateRows(&db, id, 50, specs, &rng);
  }
  // Fact table f(id PK, d1_id, d2_id, d3_id, metric), 12k rows. Each
  // dimension key has ndv 50: a single-key index fetches ~240 rows per
  // probe (worse than a scan), but the two-key prefix fetches ~5 — the
  // "no single column is selective enough" trap of Sec. VI-C.
  catalog::TableDef def;
  def.name = "f";
  def.columns = {col("id", catalog::ColumnType::kInt64, 8),
                 col("d1_id", catalog::ColumnType::kInt64, 8),
                 col("d2_id", catalog::ColumnType::kInt64, 8),
                 col("d3_id", catalog::ColumnType::kInt64, 8),
                 col("metric", catalog::ColumnType::kInt64, 8)};
  def.primary_key = {0};
  const catalog::TableId f = db.CreateTable(std::move(def));
  std::vector<storage::ColumnSpec> specs(5);
  specs[1].ndv = 50;
  specs[2].ndv = 50;
  specs[3].ndv = 50;
  specs[4].ndv = 100000;
  (void)storage::GenerateRows(&db, f, 12000, specs, &rng);
  db.AnalyzeAll();
  return db;
}

workload::Workload StarWorkload() {
  workload::Workload w;
  // Two-dimension star joins (the j=2 sweet spot), several variants.
  (void)w.Add(
      "SELECT f.id FROM d1, f, d2 WHERE d1.id = f.d1_id AND "
      "d2.id = f.d2_id AND d1.a = 2 AND d2.a = 3",
      60.0);
  (void)w.Add(
      "SELECT f.metric FROM d2, f, d3 WHERE d2.id = f.d2_id AND "
      "d3.id = f.d3_id AND d2.a = 1 AND d3.a = 4",
      40.0);
  (void)w.Add(
      "SELECT f.id FROM d1, f, d3 WHERE d1.id = f.d1_id AND "
      "d3.id = f.d3_id AND d1.a = 0 AND d3.b = 7",
      30.0);
  // Three-dimension join: only j=3 explores f's full partner powerset.
  (void)w.Add(
      "SELECT f.id FROM d1, f, d2, d3 WHERE d1.id = f.d1_id AND "
      "d2.id = f.d2_id AND d3.id = f.d3_id AND d1.a = 1 AND d2.a = 2 "
      "AND d3.a = 3",
      8.0);
  // Light single-table traffic + writes.
  (void)w.Add("SELECT id FROM d1 WHERE a = 2", 20.0);
  (void)w.Add("UPDATE f SET metric = 1 WHERE id = 77", 10.0);
  return w;
}

void DropAutomationIndexes(storage::Database* db) {
  for (const catalog::IndexDef* idx : db->catalog().AllIndexes(false, false)) {
    if (idx->created_by_automation) (void)db->DropIndex(idx->id);
  }
}

void ApplyConfig(storage::Database* db,
                 const std::vector<catalog::IndexDef>& config) {
  for (catalog::IndexDef def : config) {
    def.id = catalog::kInvalidIndex;
    def.hypothetical = false;
    def.created_by_automation = true;
    (void)db->CreateIndex(std::move(def));
  }
}

double PhaseAvg(const std::vector<workload::ReplayTick>& series,
                int phase, bool cpu) {
  double total = 0;
  int n = 0;
  // Skip the first two ticks of each phase (index build transient).
  for (int t = phase * kPhaseLen + 2; t < (phase + 1) * kPhaseLen; ++t) {
    if (t >= static_cast<int>(series.size())) break;
    total += cpu ? series[t].cpu_utilization_pct
                 : series[t].throughput_qps;
    ++n;
  }
  return n > 0 ? total / n : 0.0;
}

}  // namespace

int main() {
  bench::Header(
      "Fig 6 — effect of the join parameter j: AIM (j=1,2,3 phases) vs "
      "greedy incremental algorithm (GIA/Extend)");

  workload::Workload w = StarWorkload();

  // Machine 1: AIM with growing j. Machine 2: GIA.
  storage::Database aim_db = BuildStarDb();
  storage::Database gia_db = aim_db;

  // Precompute AIM configs for j = 1, 2, 3 (estimate-only, bootstrap).
  std::vector<std::vector<catalog::IndexDef>> aim_configs;
  std::vector<double> aim_runtimes;
  for (int j = 1; j <= 3; ++j) {
    core::AimOptions options;
    options.validate_on_clone = false;
    options.candidates.join_parameter = j;
    core::AutomaticIndexManager aim(&aim_db, optimizer::CostModel(),
                                    options);
    Result<core::AimReport> r = aim.Recommend(w, nullptr);
    std::vector<catalog::IndexDef> config;
    if (r.ok()) {
      for (const auto& c : r.ValueOrDie().recommended) {
        config.push_back(c.def);
      }
      aim_runtimes.push_back(r.ValueOrDie().stats.runtime_seconds);
    }
    aim_configs.push_back(std::move(config));
  }

  // GIA config via Extend.
  optimizer::WhatIfOptimizer what_if(gia_db.catalog(),
                                     optimizer::CostModel());
  advisors::ExtendAdvisor extend;
  advisors::AdvisorOptions ext_options;
  ext_options.max_index_width = 3;
  ext_options.time_limit_seconds = 30.0;
  Result<advisors::AdvisorResult> gia =
      extend.Recommend(w, &what_if, ext_options);
  std::vector<catalog::IndexDef> gia_config =
      gia.ok() ? gia.ValueOrDie().indexes
               : std::vector<catalog::IndexDef>{};

  std::printf("\nconfigurations:\n");
  for (int j = 1; j <= 3; ++j) {
    std::printf("  AIM j=%d (%zu indexes, runtime %.3fs):\n", j,
                aim_configs[j - 1].size(),
                j <= static_cast<int>(aim_runtimes.size())
                    ? aim_runtimes[j - 1]
                    : 0.0);
    for (const auto& def : aim_configs[j - 1]) {
      std::printf("    %s\n",
                  aim_db.catalog().DescribeIndex(def).c_str());
    }
  }
  std::printf("  GIA/Extend (%zu indexes, runtime %.3fs):\n",
              gia_config.size(),
              gia.ok() ? gia.ValueOrDie().runtime_seconds : 0.0);
  for (const auto& def : gia_config) {
    std::printf("    %s\n", gia_db.catalog().DescribeIndex(def).c_str());
  }

  // Replay: phases 0 (unindexed), 1 (j=1 / GIA), 2 (j=2), 3 (j=3).
  workload::ReplayDriver::Options replay;
  replay.offered_qps = 150;
  replay.cpu_capacity_seconds_per_tick = 15.0;

  workload::ReplayDriver aim_driver(&aim_db, optimizer::CostModel(),
                                    replay);
  std::vector<workload::ReplayTick> aim_series = aim_driver.Run(
      w, kTicks, [&](int tick) {
        if (tick % kPhaseLen != 0 || tick == 0) return;
        const int j = tick / kPhaseLen;  // 1, 2, 3
        if (j >= 1 && j <= 3) {
          DropAutomationIndexes(&aim_db);
          ApplyConfig(&aim_db, aim_configs[j - 1]);
        }
      });

  workload::ReplayDriver gia_driver(&gia_db, optimizer::CostModel(),
                                    replay);
  std::vector<workload::ReplayTick> gia_series = gia_driver.Run(
      w, kTicks, [&](int tick) {
        if (tick == kPhaseLen) ApplyConfig(&gia_db, gia_config);
      });

  std::printf("\n%5s %14s %14s %14s %14s\n", "tick", "AIM_qps",
              "GIA_qps", "AIM_cpu%", "GIA_cpu%");
  for (int t = 0; t < kTicks; ++t) {
    const char* marker = "";
    if (t == kPhaseLen) marker = "  <- j=1 / GIA indexes";
    if (t == 2 * kPhaseLen) marker = "  <- j=2";
    if (t == 3 * kPhaseLen) marker = "  <- j=3";
    std::printf("%5d %14.0f %14.0f %14.1f %14.1f%s\n", t,
                aim_series[t].throughput_qps,
                gia_series[t].throughput_qps,
                aim_series[t].cpu_utilization_pct,
                gia_series[t].cpu_utilization_pct, marker);
  }

  const double j1_qps = PhaseAvg(aim_series, 1, false);
  const double j2_qps = PhaseAvg(aim_series, 2, false);
  const double j3_qps = PhaseAvg(aim_series, 3, false);
  const double gia_qps = (PhaseAvg(gia_series, 1, false) +
                          PhaseAvg(gia_series, 2, false) +
                          PhaseAvg(gia_series, 3, false)) /
                         3.0;
  const double j2_cpu = PhaseAvg(aim_series, 2, true);
  const double gia_cpu = PhaseAvg(gia_series, 2, true);
  std::printf("\nsummary:\n");
  std::printf("  AIM j=1 avg qps: %.0f\n", j1_qps);
  std::printf("  AIM j=2 avg qps: %.0f (%+.0f%% vs j=1)\n", j2_qps,
              j1_qps > 0 ? 100.0 * (j2_qps - j1_qps) / j1_qps : 0.0);
  std::printf("  AIM j=3 avg qps: %.0f (%+.0f%% vs j=2)\n", j3_qps,
              j2_qps > 0 ? 100.0 * (j3_qps - j2_qps) / j2_qps : 0.0);
  std::printf("  GIA     avg qps: %.0f (AIM j>=2 is %+.0f%%)\n", gia_qps,
              gia_qps > 0 ? 100.0 * (j2_qps - gia_qps) / gia_qps : 0.0);
  std::printf("  CPU at j=2: AIM %.1f%% vs GIA %.1f%%\n", j2_cpu,
              gia_cpu);
  std::printf(
      "\nPaper shape: j=2 clearly beats j=1 (the paper saw +16%%), the\n"
      "j=2 -> j=3 gain is marginal, and AIM's join-order-aware composite\n"
      "indexes beat the greedy algorithm (paper: +27%% throughput,\n"
      "-4.8%% CPU).\n");
  return 0;
}
