// Fleet tuning at scale: 120 tenant databases across 6 schema families,
// one FleetTuner interval tuning every tenant (budget unconstrained) —
// the serial fleet loop vs the shared-pool fan-out at 2/4/8 threads,
// with the schema-keyed what-if cache store warm-starting same-family
// tenants off each other. Also verifies (and reports) that per-tenant
// decisions are bit-identical across every thread count. Emits the
// "fleet_tuning" section of BENCH_results.json.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/fleet.h"
#include "workload/tenants.h"

using namespace aim;

namespace {

constexpr int kTenants = 120;
constexpr int kFamilies = 6;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

void AppendIndexDef(std::ostringstream* out, const catalog::IndexDef& def) {
  *out << "t" << def.table;
  for (catalog::ColumnId col : def.columns) *out << "," << col;
}

/// Decision signature of one tenant: the interval's recommended defs and
/// the final physical design (costs in hexfloat — identical or not).
std::string TenantSignature(const core::TenantOutcome& outcome,
                            const storage::Database& db) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const core::CandidateIndex& c : outcome.report.aim.recommended) {
    out << "idx ";
    AppendIndexDef(&out, c.def);
    out << " benefit=" << c.benefit << "\n";
  }
  for (const catalog::IndexDef* idx : db.catalog().AllIndexes(false, true)) {
    out << "final ";
    AppendIndexDef(&out, *idx);
    out << "\n";
  }
  return out.str();
}

struct FleetRun {
  double wall_seconds = 0.0;
  size_t tenants_tuned = 0;
  size_t degraded = 0;
  size_t cache_stores = 0;
  size_t warm_started = 0;  // tenants whose cache store already existed
  std::vector<std::string> signatures;
};

Result<FleetRun> RunFleet(int threads) {
  workload::TenantFleetOptions gen;
  gen.tenants = kTenants;
  gen.families = kFamilies;
  gen.scale = 0.3;
  gen.queries_per_tenant = 6;
  Result<std::vector<workload::GeneratedTenant>> fleet =
      workload::GenerateTenantFleet(gen);
  if (!fleet.ok()) return fleet.status();

  core::FleetTunerOptions options;
  options.num_threads = threads;  // budget unconstrained: tune everyone
  core::FleetTuner tuner(options);
  for (workload::GeneratedTenant& t : fleet.ValueOrDie()) {
    tuner.AddTenant(t.name, &t.db, &t.workload);
  }
  const auto t0 = std::chrono::steady_clock::now();
  Result<core::FleetIntervalReport> r = tuner.RunInterval();
  if (!r.ok()) return r.status();
  FleetRun run;
  run.wall_seconds = SecondsSince(t0);
  const core::FleetIntervalReport& report = r.ValueOrDie();
  run.tenants_tuned = report.tenants_tuned;
  run.degraded = report.degraded_ticks;
  run.cache_stores = report.cache_stores;
  for (size_t i = 0; i < report.outcomes.size(); ++i) {
    if (report.outcomes[i].cache_shared) ++run.warm_started;
    run.signatures.push_back(TenantSignature(
        report.outcomes[i], fleet.ValueOrDie()[i].db));
  }
  return run;
}

}  // namespace

int main() {
  bench::Header(
      "Fleet tuning — 120 tenants / 6 schema families, one interval: "
      "serial fleet loop vs shared-pool fan-out");

  Result<FleetRun> serial = RunFleet(/*threads=*/1);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial fleet run failed: %s\n",
                 serial.status().ToString().c_str());
    return 1;
  }
  const FleetRun& s = serial.ValueOrDie();
  std::printf(
      "serial fleet loop     wall=%7.3fs tuned=%zu degraded=%zu "
      "stores=%zu warm-started=%zu/%d\n",
      s.wall_seconds, s.tenants_tuned, s.degraded, s.cache_stores,
      s.warm_started, kTenants);

  std::string threaded_json = "[";
  bool all_identical = true;
  double speedup_at_8 = 0.0;
  for (int threads : {2, 4, 8}) {
    Result<FleetRun> r = RunFleet(threads);
    if (!r.ok()) {
      std::fprintf(stderr, "fleet run at %d threads failed: %s\n",
                   threads, r.status().ToString().c_str());
      return 1;
    }
    const FleetRun& p = r.ValueOrDie();
    const bool identical = p.signatures == s.signatures;
    all_identical = all_identical && identical;
    const double speedup =
        p.wall_seconds > 0 ? s.wall_seconds / p.wall_seconds : 0.0;
    if (threads == 8) speedup_at_8 = speedup;
    std::printf(
        "%d-thread fan-out      wall=%7.3fs speedup=%5.2fx tuned=%zu "
        "degraded=%zu bit-identical=%s\n",
        threads, p.wall_seconds, speedup, p.tenants_tuned, p.degraded,
        identical ? "yes" : "NO");
    bench::JsonObject o;
    o.Add("threads", threads)
        .Add("wall_seconds", p.wall_seconds)
        .Add("speedup", speedup)
        .Add("tenants_tuned", static_cast<uint64_t>(p.tenants_tuned))
        .Add("degraded", static_cast<uint64_t>(p.degraded))
        .Add("bit_identical_to_serial", identical);
    if (threaded_json.size() > 1) threaded_json += ", ";
    threaded_json += o.ToString();
  }
  threaded_json += "]";
  std::printf(
      "\n%d tenants per interval, %zu cache stores, %zu tenants "
      "warm-started off a same-schema sibling  (%u hardware threads)\n",
      kTenants, s.cache_stores, s.warm_started,
      std::thread::hardware_concurrency());
  if (!all_identical) {
    std::fprintf(stderr,
                 "ERROR: threaded fleet decisions diverged from serial\n");
    return 1;
  }

  bench::JsonObject section;
  section.Add("tenants", kTenants)
      .Add("families", kFamilies)
      .Add("tenants_per_interval", static_cast<uint64_t>(s.tenants_tuned))
      .Add("serial_wall_seconds", s.wall_seconds)
      .AddRaw("threaded", threaded_json)
      .Add("speedup_at_8_threads", speedup_at_8)
      .Add("cache_stores", static_cast<uint64_t>(s.cache_stores))
      .Add("warm_started_tenants", static_cast<uint64_t>(s.warm_started))
      .Add("bit_identical_across_threads", all_identical)
      .AddRaw("run_meta", bench::RunMetadataJson(/*threads_used=*/8));
  if (!bench::WriteJsonSection("BENCH_results.json", "fleet_tuning",
                               section)) {
    std::fprintf(stderr, "failed to write BENCH_results.json\n");
    return 1;
  }
  std::printf("wrote BENCH_results.json [fleet_tuning]\n");
  return 0;
}
