// Sharded tuning at fleet scale: (1) per-shard clone validation fanned
// out over the worker pool vs the serial shard loop, on a 4-shard TPC-H
// fleet with comprehensive validation; (2) the continuous tuner's
// cross-interval what-if cache carry — interval-2 hit rate and runtime,
// warm vs cold. Emits the "sharded_tuning" section of BENCH_results.json.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/continuous.h"
#include "core/sharding.h"
#include "workload/tpch.h"

using namespace aim;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

struct ShardedRun {
  double wall_seconds = 0.0;
  core::AimRunStats stats;
  size_t applied = 0;
  size_t rejected = 0;
};

/// One sharded RunOnce on fresh copies of `base` (every shard starts
/// from the identical physical design, as a fleet would).
Result<ShardedRun> RunShardedOnce(const storage::Database& base,
                                  const workload::Workload& w,
                                  int shard_count, int threads,
                                  size_t cache_entries) {
  std::vector<storage::Database> dbs(shard_count, base);
  std::vector<core::Shard> shards;
  shards.reserve(dbs.size());
  for (storage::Database& db : dbs) {
    shards.push_back(core::Shard{&db, nullptr});
  }
  core::ShardedOptions options;
  options.comprehensive_validation = true;  // validate on every shard
  options.aim.num_threads = threads;
  options.aim.what_if_cache_entries = cache_entries;
  core::ShardedIndexManager manager(options);

  const auto t0 = std::chrono::steady_clock::now();
  Result<core::ShardedReport> r =
      manager.RunOnce(w, shards, optimizer::CostModel());
  if (!r.ok()) return r.status();
  ShardedRun run;
  run.wall_seconds = SecondsSince(t0);
  run.stats = r.ValueOrDie().aim.stats;
  run.applied = r.ValueOrDie().aim.recommended.size();
  run.rejected = r.ValueOrDie().rejected_by_shards.size();
  return run;
}

/// Best-of-N by wall clock. The first run of a config in a fresh process
/// pays one-time costs (peak-RSS page faults from holding every shard and
/// its clone concurrently); the minimum over repeats is the standard
/// least-noise estimator for the steady-state cost.
Result<ShardedRun> RunSharded(const storage::Database& base,
                              const workload::Workload& w, int shard_count,
                              int threads, size_t cache_entries,
                              int runs) {
  Result<ShardedRun> best = Status::Internal("no runs");
  for (int i = 0; i < runs; ++i) {
    Result<ShardedRun> r =
        RunShardedOnce(base, w, shard_count, threads, cache_entries);
    if (!r.ok()) return r;
    if (!best.ok() ||
        r.ValueOrDie().wall_seconds < best.ValueOrDie().wall_seconds) {
      best = std::move(r);
    }
  }
  return best;
}

std::string RunJson(const ShardedRun& run) {
  bench::JsonObject o;
  o.Add("wall_seconds", run.wall_seconds)
      .Add("shard_validation_seconds", run.stats.shard_validation_seconds)
      .Add("shard_apply_seconds", run.stats.shard_apply_seconds)
      .Add("what_if_calls", run.stats.what_if_calls)
      .Add("cache_hit_rate", run.stats.cache_hit_rate())
      .Add("applied", static_cast<uint64_t>(run.applied))
      .Add("rejected_by_shards", static_cast<uint64_t>(run.rejected));
  return o.ToString();
}

struct TunerInterval {
  double wall_seconds = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t entries_carried = 0;
};

/// Three tuning intervals over the same workload, with or without the
/// cross-interval cache carry. Interval 2 is the telling one: it re-costs
/// interval 1's statements under the configuration interval 1 installed.
Result<std::vector<TunerInterval>> RunTuner(const storage::Database& base,
                                            const workload::Workload& w,
                                            bool carry, int threads) {
  storage::Database db = base;
  core::ContinuousTunerOptions options;
  options.carry_what_if_cache = carry;
  options.aim.num_threads = threads;
  core::ContinuousTuner tuner(&db, optimizer::CostModel(), options);

  std::vector<TunerInterval> intervals;
  for (int tick = 0; tick < 3; ++tick) {
    const auto t0 = std::chrono::steady_clock::now();
    Result<core::IntervalReport> r = tuner.Tick(w, nullptr);
    if (!r.ok()) return r.status();
    const core::IntervalReport& report = r.ValueOrDie();
    TunerInterval iv;
    iv.wall_seconds = SecondsSince(t0);
    iv.cache_hit_rate = report.aim.stats.cache_hit_rate();
    iv.cache_hits = report.aim.stats.cache_hits;
    iv.cache_misses = report.aim.stats.cache_misses;
    iv.entries_carried = report.cache_entries_carried;
    intervals.push_back(iv);
  }
  return intervals;
}

std::string IntervalsJson(const std::vector<TunerInterval>& intervals) {
  std::string out = "[";
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (i > 0) out += ", ";
    bench::JsonObject o;
    o.Add("wall_seconds", intervals[i].wall_seconds)
        .Add("cache_hit_rate", intervals[i].cache_hit_rate)
        .Add("cache_hits", intervals[i].cache_hits)
        .Add("cache_misses", intervals[i].cache_misses)
        .Add("entries_carried",
             static_cast<uint64_t>(intervals[i].entries_carried));
    out += o.ToString();
  }
  return out + "]";
}

}  // namespace

int main() {
  bench::Header(
      "Sharded tuning — parallel shard fan-out and cross-interval "
      "what-if cache (TPC-H SF10 stats, 4 shards)");

  storage::Database db;
  workload::TpchOptions tpch;
  tpch.materialized_sf = 0.002;
  tpch.stats_sf = 10.0;
  if (Status s = workload::BuildTpch(&db, tpch); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<workload::Workload> queries = workload::TpchQueries();
  if (!queries.ok()) return 1;
  // Concurrent TPC-H streams repeat every statement; the repeats are
  // what replay dedup and the plan-cost cache exist for.
  constexpr int kStreams = 4;
  workload::Workload w;
  for (int s = 0; s < kStreams; ++s) {
    for (const workload::Query& q : queries.ValueOrDie().queries) {
      w.queries.push_back(q);
    }
  }

  constexpr int kShards = 4;
  constexpr int kRuns = 2;
  // Untimed warm-up at the peak-memory config: the first fan-out in a
  // fresh process page-faults every shard + clone into residence, which
  // would otherwise be billed to whichever config runs first.
  (void)RunShardedOnce(db, w, kShards, /*threads=*/4,
                       /*cache_entries=*/4096);
  Result<ShardedRun> serial = RunSharded(db, w, kShards, /*threads=*/1,
                                         /*cache_entries=*/0, kRuns);
  Result<ShardedRun> parallel = RunSharded(db, w, kShards, /*threads=*/4,
                                           /*cache_entries=*/4096, kRuns);
  if (!serial.ok() || !parallel.ok()) {
    std::fprintf(
        stderr, "sharded benchmark failed: %s\n",
        (serial.ok() ? parallel : serial).status().ToString().c_str());
    return 1;
  }
  const ShardedRun& s = serial.ValueOrDie();
  const ShardedRun& p = parallel.ValueOrDie();
  auto row = [](const char* name, const ShardedRun& r) {
    std::printf(
        "%-24s wall=%7.3fs validation=%7.3fs apply=%7.3fs "
        "whatif=%6llu cache_hit=%5.1f%% applied=%zu rejected=%zu\n",
        name, r.wall_seconds, r.stats.shard_validation_seconds,
        r.stats.shard_apply_seconds,
        (unsigned long long)r.stats.what_if_calls,
        100.0 * r.stats.cache_hit_rate(), r.applied, r.rejected);
  };
  row("serial shard loop", s);
  row("4-way shard fan-out", p);
  const double validation_speedup =
      p.stats.shard_validation_seconds > 0
          ? s.stats.shard_validation_seconds /
                p.stats.shard_validation_seconds
          : 0;
  const double total_speedup =
      p.wall_seconds > 0 ? s.wall_seconds / p.wall_seconds : 0;
  std::printf(
      "\nvalidation speedup: %.2fx   end-to-end: %.2fx   "
      "(%u hardware threads)\n",
      validation_speedup, total_speedup,
      std::thread::hardware_concurrency());

  Result<std::vector<TunerInterval>> cold =
      RunTuner(db, w, /*carry=*/false, /*threads=*/4);
  Result<std::vector<TunerInterval>> warm =
      RunTuner(db, w, /*carry=*/true, /*threads=*/4);
  if (!cold.ok() || !warm.ok()) {
    std::fprintf(stderr, "tuner benchmark failed: %s\n",
                 (cold.ok() ? warm : cold).status().ToString().c_str());
    return 1;
  }
  std::printf("\ncontinuous tuner, 3 intervals (same workload):\n");
  for (size_t i = 0; i < warm.ValueOrDie().size(); ++i) {
    const TunerInterval& c = cold.ValueOrDie()[i];
    const TunerInterval& h = warm.ValueOrDie()[i];
    std::printf(
        "interval %zu  cold: %6.3fs hit=%5.1f%%   warm: %6.3fs "
        "hit=%5.1f%% carried=%zu\n",
        i + 1, c.wall_seconds, 100.0 * c.cache_hit_rate, h.wall_seconds,
        100.0 * h.cache_hit_rate, h.entries_carried);
  }
  const double warm_interval2_hit_rate =
      warm.ValueOrDie()[1].cache_hit_rate;
  std::printf("warm-start interval-2 cache hit rate: %.1f%%\n",
              100.0 * warm_interval2_hit_rate);

  bench::JsonObject section;
  section.Add("workload", "tpch")
      .Add("streams", kStreams)
      .Add("shards", kShards)
      .Add("hardware_concurrency",
           static_cast<int>(std::thread::hardware_concurrency()))
      .Add("measured_runs", kRuns)
      .AddRaw("serial", RunJson(s))
      .AddRaw("parallel", RunJson(p))
      .Add("validation_speedup", validation_speedup)
      .Add("total_speedup", total_speedup)
      .AddRaw("tuner_cold", IntervalsJson(cold.ValueOrDie()))
      .AddRaw("tuner_warm", IntervalsJson(warm.ValueOrDie()))
      .Add("warm_interval2_hit_rate", warm_interval2_hit_rate)
      .AddRaw("run_meta", bench::RunMetadataJson(/*threads_used=*/4));
  if (!bench::WriteJsonSection("BENCH_results.json", "sharded_tuning",
                               section)) {
    std::fprintf(stderr, "failed to write BENCH_results.json\n");
    return 1;
  }
  std::printf("wrote BENCH_results.json [sharded_tuning]\n");
  return 0;
}
