// Row-at-a-time interpreter vs vectorized batch engine on the
// clone-validation replay workload: the 22 TPC-H templates executed
// against an AIM-tuned configuration, exactly what ValidateOnClone
// replays on its control/test clones. Reports wall seconds, replay
// throughput (statements/s and produced rows/s), the speedup, and the
// batch engine's per-operator traffic. Emits BENCH_results.json
// [executor_batch].
#include <chrono>
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/aim.h"
#include "executor/executor.h"
#include "workload/tpch.h"

using namespace aim;

namespace {

struct ReplayStats {
  double seconds = 0.0;
  uint64_t statements = 0;
  uint64_t rows = 0;
  executor::ExecutionMetrics metrics;  // summed over every execution
};

/// Replays the workload `repeats` times under one engine, accumulating
/// metrics. The queries are read-only, so repeated replay on the same
/// database is exactly the clone-validation access pattern.
ReplayStats Replay(storage::Database* db, const workload::Workload& w,
                   executor::EngineKind engine, int repeats) {
  executor::ExecutorOptions options;
  options.engine = engine;
  executor::Executor exec(db, optimizer::CostModel(), options);
  ReplayStats out;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const workload::Query& q : w.queries) {
      Result<executor::ExecuteResult> res = exec.Execute(q.stmt);
      if (!res.ok()) {
        std::fprintf(stderr, "replay failed: %s\n",
                     res.status().ToString().c_str());
        continue;
      }
      ++out.statements;
      out.rows += res.ValueOrDie().rows.size();
      out.metrics.MergeFrom(res.ValueOrDie().metrics);
    }
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

std::string OpJson(const executor::OperatorStats& op) {
  bench::JsonObject o;
  o.Add("batches", op.batches)
      .Add("rows_in", op.rows_in)
      .Add("rows_out", op.rows_out);
  return o.ToString();
}

std::string EngineJson(const ReplayStats& s) {
  bench::JsonObject o;
  o.Add("seconds", s.seconds)
      .Add("statements", s.statements)
      .Add("statements_per_sec",
           s.seconds > 0 ? s.statements / s.seconds : 0.0)
      .Add("rows_returned", s.rows)
      .Add("rows_per_sec", s.seconds > 0 ? s.rows / s.seconds : 0.0)
      .Add("rows_examined", s.metrics.rows_examined)
      .Add("index_entries_read", s.metrics.index_entries_read);
  return o.ToString();
}

}  // namespace

int main() {
  bench::Header(
      "Executor — row-at-a-time vs vectorized batch on the TPC-H "
      "validation replay (AIM-tuned configuration)");

  storage::Database db;
  workload::TpchOptions tpch;
  tpch.materialized_sf = 0.02;
  if (Status s = workload::BuildTpch(&db, tpch); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<workload::Workload> w = workload::TpchQueries();
  if (!w.ok()) return 1;

  // Tune first so the replay exercises index probes (the batched-descent
  // path), not just heap scans — same physical design the clone sees.
  {
    core::AimOptions options;
    options.num_threads = 8;
    core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
    if (!aim.RunOnce(w.ValueOrDie(), nullptr).ok()) {
      std::fprintf(stderr, "tuning failed\n");
      return 1;
    }
  }

  constexpr int kRepeats = 6;
  // Warm both paths once (page in heaps/indexes) before timing.
  Replay(&db, w.ValueOrDie(), executor::EngineKind::kBatch, 1);
  const ReplayStats row =
      Replay(&db, w.ValueOrDie(), executor::EngineKind::kRowAtATime,
             kRepeats);
  const ReplayStats batch =
      Replay(&db, w.ValueOrDie(), executor::EngineKind::kBatch, kRepeats);

  const double speedup = batch.seconds > 0 ? row.seconds / batch.seconds : 0;
  std::printf("%-14s %8.3fs  %9.0f stmts/s  %12.0f rows/s\n", "row engine",
              row.seconds, row.statements / row.seconds,
              row.rows / row.seconds);
  std::printf("%-14s %8.3fs  %9.0f stmts/s  %12.0f rows/s\n", "batch engine",
              batch.seconds, batch.statements / batch.seconds,
              batch.rows / batch.seconds);
  std::printf("\nbatch speedup: %.2fx over %llu statements/engine\n", speedup,
              (unsigned long long)batch.statements);

  const executor::ExecutionMetrics& m = batch.metrics;
  std::printf("\nbatch operator traffic:\n");
  std::printf("  %-10s batches=%8llu in=%10llu out=%10llu\n", "scan",
              (unsigned long long)m.op_scan.batches,
              (unsigned long long)m.op_scan.rows_in,
              (unsigned long long)m.op_scan.rows_out);
  std::printf("  %-10s batches=%8llu in=%10llu out=%10llu\n", "filter",
              (unsigned long long)m.op_filter.batches,
              (unsigned long long)m.op_filter.rows_in,
              (unsigned long long)m.op_filter.rows_out);
  std::printf("  %-10s batches=%8llu in=%10llu out=%10llu\n", "join",
              (unsigned long long)m.op_join.batches,
              (unsigned long long)m.op_join.rows_in,
              (unsigned long long)m.op_join.rows_out);
  std::printf("  %-10s batches=%8llu in=%10llu out=%10llu\n", "aggregate",
              (unsigned long long)m.op_aggregate.batches,
              (unsigned long long)m.op_aggregate.rows_in,
              (unsigned long long)m.op_aggregate.rows_out);

  bench::JsonObject section;
  section.Add("workload", "tpch")
      .Add("materialized_sf", tpch.materialized_sf)
      .Add("repeats", kRepeats)
      .Add("statements_per_engine", batch.statements)
      .AddRaw("row", EngineJson(row))
      .AddRaw("batch", EngineJson(batch))
      .Add("batch_speedup", speedup)
      .AddRaw("batch_op_scan", OpJson(m.op_scan))
      .AddRaw("batch_op_filter", OpJson(m.op_filter))
      .AddRaw("batch_op_join", OpJson(m.op_join))
      .AddRaw("batch_op_aggregate", OpJson(m.op_aggregate))
      .AddRaw("run_meta", bench::RunMetadataJson(/*threads_used=*/8));
  if (!bench::WriteJsonSection("BENCH_results.json", "executor_batch",
                               section)) {
    std::fprintf(stderr, "failed to write BENCH_results.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_results.json [executor_batch]\n");
  return 0;
}
