// Online index build vs blocking CreateIndex under live TPC-C traffic.
// Measures what the robustness work actually buys: the write stall a
// DDL imposes on concurrent OLTP clients. The blocking path holds the
// exclusive latch for the whole heap scan; the online path's only
// exclusive window is the bounded-tail swap. Emits the "online_build"
// section of BENCH_results.json (write-stall seconds both ways, worst
// client txn latency both ways, build throughput).
#include <chrono>
#include <cstdio>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "storage/online_index_builder.h"
#include "workload/tpcc_oltp.h"

using namespace aim;

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

workload::TpccConfig BenchScale() {
  workload::TpccConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 8;
  config.customers_per_district = 50;
  config.items = 200;
  // ~2k pre-loaded orders -> ~20k order_line rows: enough heap that the
  // blocking scan's stall is visibly worse than the online swap's.
  config.initial_orders_per_district = 120;
  config.seed = 7;
  return config;
}

catalog::IndexDef OrderLineByItem(const workload::TpccDatabase& tpcc) {
  catalog::IndexDef def;
  def.table = tpcc.order_line_table();
  def.columns = {4};  // ol_i_id — none of the clustered PKs cover it
  return def;
}

struct RunResult {
  double stall_seconds = 0.0;      // exclusive-latch time the DDL held
  double build_seconds = 0.0;      // DDL wall time end to end
  double max_txn_seconds = 0.0;    // worst client transaction latency
  uint64_t commits = 0;
  uint64_t errors = 0;
  uint64_t rows = 0;               // entries in the finished index
  uint64_t delta_applied = 0;      // online only
};

/// Runs `clients` OLTP loops, performs one DDL mid-traffic via `ddl`,
/// lets traffic run a beat longer, then stops and merges the numbers.
template <typename Ddl>
Result<RunResult> RunUnderTraffic(int clients, Ddl&& ddl) {
  workload::TpccDatabase tpcc(BenchScale());
  Status loaded = tpcc.Load();
  if (!loaded.ok()) return loaded;
  common::ThreadPool pool(clients + 1);
  workload::OltpDriver driver(&tpcc, &pool, clients);
  Status started = driver.Start();
  if (!started.ok()) return started;
  // Let the clients reach steady state before the DDL lands.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  RunResult out;
  const auto build_begin = Clock::now();
  Result<uint64_t> rows = ddl(&tpcc, &out);
  out.build_seconds = Seconds(build_begin, Clock::now());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  workload::OltpStats stats = driver.Stop();
  if (!rows.ok()) return rows.status();
  out.rows = rows.ValueOrDie();
  out.max_txn_seconds = stats.max_txn_seconds;
  out.commits = stats.total_commits();
  out.errors = stats.errors;
  return out;
}

Result<uint64_t> IndexRows(storage::Database* db, catalog::IndexId id) {
  const storage::BTreeIndex* tree = db->btree(id);
  if (tree == nullptr) return Status::Internal("index has no tree");
  return tree->entry_count();
}

}  // namespace

int main() {
  bench::Header(
      "Online index build — write stall vs blocking CreateIndex under "
      "live TPC-C traffic");
  constexpr int kClients = 4;

  // Blocking: CreateIndex scans the whole heap under one exclusive
  // latch acquisition; every client stalls for the duration.
  Result<RunResult> blocking =
      RunUnderTraffic(kClients, [](workload::TpccDatabase* tpcc,
                                   RunResult* out) -> Result<uint64_t> {
        std::unique_lock<std::shared_mutex> lock(tpcc->db().latch());
        const auto stall_begin = Clock::now();
        Result<catalog::IndexId> id =
            tpcc->db().CreateIndex(OrderLineByItem(*tpcc));
        out->stall_seconds = Seconds(stall_begin, Clock::now());
        if (!id.ok()) return id.status();
        return IndexRows(&tpcc->db(), id.ValueOrDie());
      });
  if (!blocking.ok()) {
    std::fprintf(stderr, "blocking run failed: %s\n",
                 blocking.status().ToString().c_str());
    return 1;
  }

  // Online: chunked shared-latch scan + delta catch-up; the swap is the
  // only exclusive window and applies at most max_swap_tail entries.
  Result<RunResult> online =
      RunUnderTraffic(kClients, [](workload::TpccDatabase* tpcc,
                                   RunResult* out) -> Result<uint64_t> {
        storage::OnlineIndexBuilder builder(&tpcc->db());
        Result<storage::OnlineBuildReport> r =
            builder.Build(OrderLineByItem(*tpcc));
        if (!r.ok()) return r.status();
        out->stall_seconds = r.ValueOrDie().stall_seconds;
        out->delta_applied = r.ValueOrDie().delta_applied +
                             r.ValueOrDie().swap_tail_applied;
        return IndexRows(&tpcc->db(), r.ValueOrDie().id);
      });
  if (!online.ok()) {
    std::fprintf(stderr, "online run failed: %s\n",
                 online.status().ToString().c_str());
    return 1;
  }

  const RunResult& b = blocking.ValueOrDie();
  const RunResult& o = online.ValueOrDie();
  const double online_throughput =
      o.build_seconds > 0 ? static_cast<double>(o.rows) / o.build_seconds
                          : 0.0;

  std::printf("%-10s %14s %14s %14s %10s %8s\n", "path", "stall_ms",
              "max_txn_ms", "build_ms", "commits", "rows");
  std::printf("%-10s %14.3f %14.3f %14.3f %10llu %8llu\n", "blocking",
              b.stall_seconds * 1e3, b.max_txn_seconds * 1e3,
              b.build_seconds * 1e3,
              static_cast<unsigned long long>(b.commits),
              static_cast<unsigned long long>(b.rows));
  std::printf("%-10s %14.3f %14.3f %14.3f %10llu %8llu\n", "online",
              o.stall_seconds * 1e3, o.max_txn_seconds * 1e3,
              o.build_seconds * 1e3,
              static_cast<unsigned long long>(o.commits),
              static_cast<unsigned long long>(o.rows));
  std::printf(
      "online: %llu delta entries caught up, %.0f rows/s build "
      "throughput, stall %.2fx smaller than blocking\n",
      static_cast<unsigned long long>(o.delta_applied), online_throughput,
      o.stall_seconds > 0 ? b.stall_seconds / o.stall_seconds : 0.0);

  bench::JsonObject result;
  result.Add("clients", kClients)
      .Add("blocking_stall_seconds", b.stall_seconds)
      .Add("blocking_max_txn_seconds", b.max_txn_seconds)
      .Add("blocking_build_seconds", b.build_seconds)
      .Add("blocking_commits", b.commits)
      .Add("blocking_errors", b.errors)
      .Add("online_swap_stall_seconds", o.stall_seconds)
      .Add("online_max_txn_seconds", o.max_txn_seconds)
      .Add("online_build_seconds", o.build_seconds)
      .Add("online_commits", o.commits)
      .Add("online_errors", o.errors)
      .Add("online_delta_applied", o.delta_applied)
      .Add("online_rows_per_second", online_throughput)
      .Add("index_rows", o.rows)
      .AddRaw("run_meta", bench::RunMetadataJson(kClients));
  if (bench::WriteJsonSection("BENCH_results.json", "online_build",
                              result)) {
    std::printf("wrote BENCH_results.json [online_build]\n");
  } else {
    std::fprintf(stderr, "failed to write BENCH_results.json\n");
    return 1;
  }
  return 0;
}
