#ifndef AIM_BENCH_BENCH_JSON_H_
#define AIM_BENCH_BENCH_JSON_H_

// Minimal machine-readable results output for the benchmark drivers.
// Each benchmark records its numbers under one top-level key of
// BENCH_results.json; WriteJsonSection merges sections so the benches can
// run in any order (and re-runs replace only their own section).

#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace aim::bench {

/// Raw JSON dump of the global metrics registry, for embedding as a
/// nested section: `.AddRaw("obs_metrics", MetricsJson())`. This is the
/// same registry the pipeline's PhaseTimers and counters feed, so bench
/// output and runtime observability report from one system.
inline std::string MetricsJson() {
  std::ostringstream out;
  obs::MetricsRegistry::Global()->WriteJson(out);
  return out.str();
}

/// Streams one JSON object with insertion-ordered keys. Values are
/// numbers, booleans, strings, or raw nested JSON.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return AddRaw(key, buf);
  }
  JsonObject& Add(const std::string& key, uint64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonObject& Add(const std::string& key, int value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonObject& Add(const std::string& key, bool value) {
    return AddRaw(key, value ? "true" : "false");
  }
  JsonObject& Add(const std::string& key, const std::string& value) {
    return AddRaw(key, "\"" + Escaped(value) + "\"");
  }
  JsonObject& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  /// Nested object / array: `raw` must itself be valid JSON.
  JsonObject& AddRaw(const std::string& key, const std::string& raw) {
    fields_.emplace_back(key, raw);
    return *this;
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + Escaped(fields_[i].first) + "\": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Uniform run metadata every bench embeds in its section as `run_meta`
/// (`.AddRaw("run_meta", RunMetadataJson(threads))`): the machine's
/// hardware concurrency, the worker-thread count the bench actually ran
/// with (0 = serial / not thread-parameterized), and the UTC run
/// timestamp. Threshold gates (tools/bench_check.py) condition speedup
/// expectations on `hardware_concurrency`, so results from single-core
/// CI boxes and many-core dev machines are interpreted correctly.
inline std::string RunMetadataJson(int threads_used = 0) {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  JsonObject o;
  o.Add("hardware_concurrency",
        static_cast<int>(std::thread::hardware_concurrency()))
      .Add("threads", threads_used)
      .Add("timestamp_utc", std::string(stamp));
  return o.ToString();
}

namespace internal {

/// Splits the top level of a JSON object produced by this header into
/// (key, raw value) pairs. Good enough for files we wrote ourselves;
/// anything unparsable yields an empty list (the file is rewritten).
inline std::vector<std::pair<std::string, std::string>> TopLevelFields(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> fields;
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  auto read_string = [&](std::string* out) {
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      out->push_back(text[i]);
      ++i;
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return fields;
  ++i;
  while (true) {
    skip_ws();
    if (i < text.size() && text[i] == '}') break;
    std::string key;
    if (!read_string(&key)) return {};
    skip_ws();
    if (i >= text.size() || text[i] != ':') return {};
    ++i;
    skip_ws();
    // Raw value: scan to the next top-level ',' or '}' tracking nesting
    // depth and strings.
    const size_t value_begin = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    if (i > text.size()) return {};
    std::string value = text.substr(value_begin, i - value_begin);
    while (!value.empty() &&
           std::isspace(static_cast<unsigned char>(value.back()))) {
      value.pop_back();
    }
    fields.emplace_back(std::move(key), std::move(value));
    if (i < text.size() && text[i] == ',') ++i;
  }
  return fields;
}

}  // namespace internal

/// Writes (or replaces) the `section` key of the JSON object in `path`,
/// preserving every other benchmark's section. Returns false on I/O
/// failure.
inline bool WriteJsonSection(const std::string& path,
                             const std::string& section,
                             const JsonObject& value) {
  std::vector<std::pair<std::string, std::string>> fields;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      fields = internal::TopLevelFields(buf.str());
    }
  }
  bool replaced = false;
  for (auto& [key, raw] : fields) {
    if (key == section) {
      raw = value.ToString();
      replaced = true;
    }
  }
  if (!replaced) fields.emplace_back(section, value.ToString());

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n";
  for (size_t i = 0; i < fields.size(); ++i) {
    out << "  \"" << fields[i].first << "\": " << fields[i].second;
    out << (i + 1 < fields.size() ? ",\n" : "\n");
  }
  out << "}\n";
  return out.good();
}

}  // namespace aim::bench

#endif  // AIM_BENCH_BENCH_JSON_H_
