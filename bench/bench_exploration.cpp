// Safe online exploration: (1) ordered deployment vs the single-
// transaction apply — wall-clock time until 50% of the modeled benefit
// is live (the deployment-order scheduler front-loads high-rate builds;
// the single transaction delivers nothing until its one commit); and
// (2) a drifting regression storm through the ContinuousTuner with the
// bandit gate on — per-interval projected regret against the budget,
// rollback/quarantine counts, and the invariant that a quarantined index
// is never applied. Emits the "exploration" section of
// BENCH_results.json (gated by tools/bench_check.py).
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/continuous.h"
#include "executor/executor.h"
#include "sql/normalizer.h"
#include "sql/parser.h"
#include "storage/index_transaction.h"
#include "workload/demo.h"
#include "workload/monitor.h"

using namespace aim;

namespace {

constexpr uint64_t kRows = 40000;
constexpr int kStormTicks = 12;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

/// High-weight narrow predicates plus a low-weight wide-key query: the
/// scheduler should front-load the small high-benefit builds and push
/// the big low-rate index last.
workload::Workload DeployWorkload() {
  workload::Workload w;
  (void)w.Add("SELECT id FROM users WHERE org_id = 3", 60.0);
  (void)w.Add("SELECT id FROM users WHERE status = 2 AND score > 500",
              25.0);
  (void)w.Add("SELECT id FROM users WHERE created_at BETWEEN 10 AND 40",
              12.0);
  (void)w.Add("SELECT id FROM users WHERE email LIKE 'user1%'", 2.0);
  return w;
}

struct DeployRun {
  size_t installed = 0;
  double total_benefit = 0.0;
  double wall_total_seconds = 0.0;
  /// Wall seconds until >= 50% of the modeled benefit was live.
  double wall_to_half_seconds = 0.0;
  double modeled_to_half_seconds = 0.0;
  double modeled_makespan_seconds = 0.0;
};

Result<DeployRun> RunOrdered(const storage::Database& base,
                             const workload::Workload& w) {
  storage::Database db = base;
  core::AimOptions options;
  options.deployment.ordered = true;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  const auto t0 = std::chrono::steady_clock::now();
  Result<core::AimReport> r = aim.RunOnce(w, nullptr);
  if (!r.ok()) return r.status();
  DeployRun run;
  run.wall_total_seconds = SecondsSince(t0);
  const core::DeploymentReport& d = r.ValueOrDie().deployment;
  run.installed = d.installed;
  run.total_benefit = d.total_benefit_seconds;
  run.modeled_to_half_seconds = d.modeled_time_to_half_benefit_seconds;
  run.modeled_makespan_seconds = d.modeled_makespan_seconds;
  // Benefit goes live per step commit: accumulate measured build times
  // (serial slots) until half the total modeled benefit is installed.
  double wall = 0.0;
  run.wall_to_half_seconds = run.wall_total_seconds;
  for (const core::DeploymentStepResult& s : d.steps) {
    if (!s.installed) continue;
    wall += s.measured_build_seconds;
    if (s.cumulative_benefit_seconds >= 0.5 * run.total_benefit) {
      run.wall_to_half_seconds = wall;
      break;
    }
  }
  return run;
}

/// The pre-PR apply path: one IndexSetTransaction creating every index,
/// benefit live only at the single commit.
Result<DeployRun> RunSingleTransaction(const storage::Database& base,
                                       const workload::Workload& w) {
  storage::Database db = base;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), {});
  const auto t0 = std::chrono::steady_clock::now();
  Result<core::AimReport> r = aim.RunOnce(w, nullptr);
  if (!r.ok()) return r.status();
  DeployRun run;
  run.wall_total_seconds = SecondsSince(t0);
  run.installed = r.ValueOrDie().recommended.size();
  // All-or-nothing: the first byte of benefit arrives with the last.
  // Measure just the apply portion by re-applying the recommended set
  // through a fresh single transaction on another copy.
  storage::Database redo = base;
  const auto apply0 = std::chrono::steady_clock::now();
  storage::IndexSetTransaction txn(&redo);
  for (const core::CandidateIndex& c : r.ValueOrDie().recommended) {
    catalog::IndexDef def = c.def;
    def.id = catalog::kInvalidIndex;
    def.hypothetical = false;
    def.created_by_automation = true;
    Result<catalog::IndexId> id = txn.CreateIndex(def);
    if (!id.ok()) return id.status();
  }
  txn.Commit();
  run.wall_to_half_seconds = SecondsSince(apply0);
  return run;
}

struct StormResult {
  int ticks = 0;
  int rollbacks = 0;
  int quarantined = 0;
  int released = 0;
  int quarantined_applies = 0;  // MUST stay 0
  double max_projected_regret = 0.0;
  double cumulative_projected_regret = 0.0;
  bool regret_bounded = true;
  double wall_seconds = 0.0;
};

/// Drifting regression storm: spikes hit in waves, the table is
/// repopulated (statistics drift) midway. The gate must keep projected
/// per-interval regret within budget (except for the guaranteed top-1
/// admission) and never apply a quarantined index.
Result<StormResult> RunStorm() {
  storage::Database db = workload::MakeUsersDemoDb(2000, /*seed=*/17);
  workload::Workload w = DeployWorkload();
  workload::WorkloadMonitor monitor;
  core::ContinuousTunerOptions options;
  options.exploration.enabled = true;
  options.exploration.quarantine_after_offenses = 2;
  options.aim.deployment.ordered = true;
  options.drop_after_idle_intervals = 100;
  options.shrink_after_idle_intervals = 100;
  const double budget = options.exploration.regret_budget_seconds;
  core::ContinuousTuner tuner(&db, optimizer::CostModel(), options);

  const uint64_t spike_fp = sql::NormalizedFingerprint(w.queries[0].stmt);
  StormResult storm;
  const auto t0 = std::chrono::steady_clock::now();
  for (int tick = 0; tick < kStormTicks; ++tick) {
    if (tick == 7 || tick == 11) {
      // Real statistics drift mid-storm (and once more after the second
      // spike wave, so a quarantine release is exercised too): the table
      // grows, ANALYZE runs.
      executor::Executor exec(&db, optimizer::CostModel());
      for (int i = 0; i < 200; ++i) {
        Result<sql::Statement> ins = sql::Parse(
            "INSERT INTO users (id, org_id, status, score, created_at, "
            "email, payload) VALUES (" +
            std::to_string(5000000 + tick * 1000 + i) +
            ", 1, 2, 3, 4, 'x', 'y')");
        if (!ins.ok()) return ins.status();
        Result<executor::ExecuteResult> r =
            exec.Execute(ins.ValueOrDie());
        if (!r.ok()) return r.status();
      }
      db.AnalyzeAll();
    }
    const bool spike = tick == 2 || tick == 3 || tick == 9 || tick == 10;
    monitor.Reset();
    for (const workload::Query& q : w.queries) {
      const uint64_t fp = sql::NormalizedFingerprint(q.stmt);
      executor::ExecutionMetrics m;
      m.rows_examined = 400;
      m.rows_sent = 4;
      m.cpu_seconds = (spike && fp == spike_fp) ? 5.0 : 0.5;
      for (int i = 0; i < 8; ++i) {
        monitor.RecordKeyed(fp, sql::NormalizedSql(q.stmt), m);
      }
    }
    std::set<uint64_t> quarantined_before;
    if (const core::ExplorationGate* gate = tuner.exploration_gate()) {
      quarantined_before = gate->quarantined_keys();
    }
    Result<core::IntervalReport> r = tuner.Tick(w, &monitor);
    if (!r.ok()) return r.status();
    const core::IntervalReport& report = r.ValueOrDie();
    ++storm.ticks;
    storm.rollbacks += static_cast<int>(report.rolled_back.size());
    storm.quarantined += static_cast<int>(report.quarantined_now.size());
    storm.released += static_cast<int>(report.quarantine_released);
    const core::ExplorationSummary& e = report.aim.exploration;
    storm.max_projected_regret =
        std::max(storm.max_projected_regret, e.projected_regret_seconds);
    storm.cumulative_projected_regret += e.projected_regret_seconds;
    // Soft budget: over-budget is legal only for the guaranteed top-1.
    if (e.projected_regret_seconds > budget + 1e-12 && e.admitted > 1) {
      storm.regret_bounded = false;
    }
    if (report.quarantine_released == 0) {
      for (const core::CandidateIndex& c : report.aim.recommended) {
        if (quarantined_before.count(core::IndexArmKey(c.def)) > 0) {
          ++storm.quarantined_applies;
        }
      }
    }
  }
  storm.wall_seconds = SecondsSince(t0);
  return storm;
}

}  // namespace

int main() {
  bench::Header(
      "Safe online exploration — ordered deployment time-to-benefit vs "
      "single-transaction apply, and regret under a drifting storm");

  const storage::Database base =
      workload::MakeUsersDemoDb(kRows, /*seed=*/23);
  const workload::Workload w = DeployWorkload();

  Result<DeployRun> ordered = RunOrdered(base, w);
  if (!ordered.ok()) {
    std::fprintf(stderr, "ordered run failed: %s\n",
                 ordered.status().ToString().c_str());
    return 1;
  }
  Result<DeployRun> naive = RunSingleTransaction(base, w);
  if (!naive.ok()) {
    std::fprintf(stderr, "single-transaction run failed: %s\n",
                 naive.status().ToString().c_str());
    return 1;
  }
  const DeployRun& o = ordered.ValueOrDie();
  const DeployRun& n = naive.ValueOrDie();
  const double speedup = o.wall_to_half_seconds > 0
                             ? n.wall_to_half_seconds /
                                   o.wall_to_half_seconds
                             : 0.0;
  std::printf(
      "ordered deployment     installs=%zu t50=%8.4fs (modeled %0.3fs / "
      "makespan %0.3fs)\n",
      o.installed, o.wall_to_half_seconds, o.modeled_to_half_seconds,
      o.modeled_makespan_seconds);
  std::printf(
      "single transaction     installs=%zu t50=%8.4fs (benefit arrives "
      "only at commit)\n",
      n.installed, n.wall_to_half_seconds);
  std::printf("time-to-50%%-benefit    %5.2fx earlier under ordered "
              "deployment\n\n",
              speedup);

  Result<StormResult> storm = RunStorm();
  if (!storm.ok()) {
    std::fprintf(stderr, "storm run failed: %s\n",
                 storm.status().ToString().c_str());
    return 1;
  }
  const StormResult& s = storm.ValueOrDie();
  std::printf(
      "drifting storm         ticks=%d rollbacks=%d quarantined=%d "
      "released=%d\n",
      s.ticks, s.rollbacks, s.quarantined, s.released);
  std::printf(
      "regret                 max=%0.4fs cumulative=%0.4fs bounded=%s "
      "quarantined-applies=%d (wall %0.2fs)\n",
      s.max_projected_regret, s.cumulative_projected_regret,
      s.regret_bounded ? "yes" : "NO", s.quarantined_applies,
      s.wall_seconds);

  bench::JsonObject section;
  section.Add("rows", kRows)
      .Add("installs", static_cast<uint64_t>(o.installed))
      .Add("time_to_half_benefit_ordered_seconds", o.wall_to_half_seconds)
      .Add("time_to_half_benefit_single_txn_seconds",
           n.wall_to_half_seconds)
      .Add("time_to_half_benefit_speedup", speedup)
      .Add("modeled_time_to_half_benefit_seconds",
           o.modeled_to_half_seconds)
      .Add("modeled_makespan_seconds", o.modeled_makespan_seconds)
      .Add("storm_ticks", s.ticks)
      .Add("storm_rollbacks", s.rollbacks)
      .Add("storm_quarantined", s.quarantined)
      .Add("storm_released", s.released)
      .Add("max_projected_regret_seconds", s.max_projected_regret)
      .Add("cumulative_projected_regret_seconds",
           s.cumulative_projected_regret)
      .Add("regret_bounded", s.regret_bounded)
      .Add("quarantined_applies", s.quarantined_applies)
      .AddRaw("run_meta", bench::RunMetadataJson(/*threads_used=*/1));
  if (!bench::WriteJsonSection("BENCH_results.json", "exploration",
                               section)) {
    std::fprintf(stderr, "failed to write BENCH_results.json\n");
    return 1;
  }
  std::printf("wrote BENCH_results.json [exploration]\n");
  return 0;
}
