#ifndef AIM_BENCH_BENCH_UTIL_H_
#define AIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "advisors/advisor.h"
#include "common/strings.h"
#include "storage/database.h"

namespace aim::bench {

/// Prints a section header for one experiment.
inline void Header(const std::string& title) {
  std::printf("\n===========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("===========================================================\n");
}

/// One advisor's numbers at one budget point (a point on Fig. 4's lines).
struct SweepPoint {
  double budget_mb = 0.0;
  std::string advisor;
  double relative_cost_pct = 0.0;  // estimated workload cost vs unindexed
  double runtime_seconds = 0.0;
  uint64_t what_if_calls = 0;
  size_t index_count = 0;
  double size_mb = 0.0;
};

/// Runs `advisors` over the budget sweep against a fixed catalog +
/// workload, reporting estimated costs relative to the unindexed
/// configuration — the protocol of Fig. 4.
inline std::vector<SweepPoint> RunBudgetSweep(
    const storage::Database& db, const workload::Workload& w,
    const std::vector<double>& budgets_mb,
    std::vector<std::unique_ptr<advisors::Advisor>>* algos,
    advisors::AdvisorOptions base_options) {
  std::vector<SweepPoint> points;
  optimizer::WhatIfOptimizer baseline(db.catalog(), optimizer::CostModel());
  Result<double> unindexed = advisors::WorkloadCost(w, &baseline);
  if (!unindexed.ok()) {
    std::fprintf(stderr, "baseline cost failed: %s\n",
                 unindexed.status().ToString().c_str());
    return points;
  }
  for (double budget_mb : budgets_mb) {
    for (auto& algo : *algos) {
      optimizer::WhatIfOptimizer what_if(db.catalog(),
                                         optimizer::CostModel());
      advisors::AdvisorOptions options = base_options;
      options.storage_budget_bytes = budget_mb * 1024.0 * 1024.0;
      Result<advisors::AdvisorResult> r =
          algo->Recommend(w, &what_if, options);
      if (!r.ok()) {
        std::fprintf(stderr, "%s failed at %.0f MB: %s\n",
                     algo->name().c_str(), budget_mb,
                     r.status().ToString().c_str());
        continue;
      }
      SweepPoint p;
      p.budget_mb = budget_mb;
      p.advisor = algo->name();
      p.relative_cost_pct = 100.0 * r.ValueOrDie().final_workload_cost /
                            unindexed.ValueOrDie();
      p.runtime_seconds = r.ValueOrDie().runtime_seconds;
      p.what_if_calls = r.ValueOrDie().what_if_calls;
      p.index_count = r.ValueOrDie().indexes.size();
      p.size_mb = r.ValueOrDie().total_size_bytes / 1024.0 / 1024.0;
      points.push_back(p);
    }
  }
  return points;
}

inline void PrintSweep(const std::vector<SweepPoint>& points) {
  std::printf("%-10s %-10s %10s %10s %12s %8s %10s\n", "budget_MB",
              "advisor", "rel_cost%", "runtime_s", "whatif_calls",
              "indexes", "size_MB");
  for (const SweepPoint& p : points) {
    std::printf("%-10.0f %-10s %10.2f %10.3f %12llu %8zu %10.1f\n",
                p.budget_mb, p.advisor.c_str(), p.relative_cost_pct,
                p.runtime_seconds, (unsigned long long)p.what_if_calls,
                p.index_count, p.size_mb);
  }
}

}  // namespace aim::bench

#endif  // AIM_BENCH_BENCH_UTIL_H_
