// Section VI-D: continuous index tuning. A mostly well-indexed database
// receives periodic "code pushes" introducing queries without supporting
// indexes. AIM runs at the end of every statistics interval. We compare
// total CPU against an identical untuned machine and report the CPU
// saving plus the distribution of per-query improvements (the paper:
// ~2% CPU capacity saved, ~31% of improved queries >= 10x better).
#include <map>

#include "bench/bench_util.h"
#include "core/continuous.h"
#include "workload/demo.h"
#include "workload/replay.h"

using namespace aim;

namespace {

constexpr int kIntervals = 12;

/// The interval's workload: a well-served base load plus the queries
/// introduced by code pushes so far.
workload::Workload IntervalWorkload(int interval) {
  workload::Workload w;
  // Base load (indexes exist from the start): the bulk of the traffic.
  (void)w.Add("SELECT id FROM users WHERE org_id = 5", 2500.0);
  (void)w.Add("SELECT id FROM users WHERE org_id = 9 AND status = 1",
              1500.0);
  (void)w.Add("SELECT email FROM users WHERE created_at = 1234", 900.0);
  (void)w.Add("UPDATE users SET score = 2 WHERE id = 42", 600.0);
  if (interval >= 3) {
    // Push 1: a point lookup by score lands without an index (an
    // order-of-magnitude improvement once indexed) and a wide range
    // report (only a moderate win: most of the table qualifies).
    (void)w.Add("SELECT id FROM users WHERE score = 77", 40.0);
    (void)w.Add("SELECT id FROM users WHERE score > 50", 30.0);
  }
  if (interval >= 7) {
    // Push 2: a sort-and-limit feature query plus an email lookup
    // (10x+), and a broad scan with a weak filter (moderate).
    (void)w.Add(
        "SELECT id FROM users WHERE status = 3 ORDER BY created_at DESC "
        "LIMIT 20",
        30.0);
    (void)w.Add("SELECT payload FROM users WHERE email = 'user500'",
                25.0);
    (void)w.Add("SELECT id FROM users WHERE created_at > 3000", 25.0);
  }
  return w;
}

void ApplyBaseIndexes(storage::Database* db) {
  auto add = [&](std::vector<catalog::ColumnId> cols) {
    catalog::IndexDef def;
    def.table = 0;
    def.columns = std::move(cols);
    (void)db->CreateIndex(std::move(def));
  };
  add({1});     // org_id
  add({1, 2});  // org_id, status
  add({4});     // created_at
}

}  // namespace

int main() {
  bench::Header(
      "Sec VI-D — continuous tuning: CPU savings and per-query "
      "improvement distribution");

  storage::Database tuned = workload::MakeUsersDemoDb(15000);
  ApplyBaseIndexes(&tuned);
  storage::Database untuned = tuned;

  core::ContinuousTunerOptions tuner_options;
  tuner_options.aim.validate_on_clone = false;
  tuner_options.aim.selection.min_benefit_cores = 1e-9;
  tuner_options.aim.selection.min_executions = 1;
  tuner_options.drop_after_idle_intervals = 4;
  core::ContinuousTuner tuner(&tuned, optimizer::CostModel(),
                              tuner_options);

  workload::ReplayDriver::Options replay;
  replay.offered_qps = 600;
  replay.cpu_capacity_seconds_per_tick = 10.0;  // unsaturated: fixed load

  double tuned_cpu_total = 0.0;
  double untuned_cpu_total = 0.0;
  // Per-query cpu_avg when first seen (untuned path) and last seen
  // (tuned path), for the improvement distribution.
  std::map<uint64_t, double> first_cpu;
  std::map<uint64_t, double> last_cpu;
  std::map<uint64_t, std::string> names;

  std::printf("%9s %12s %12s %9s %s\n", "interval", "tuned_cpu",
              "untuned_cpu", "saved%", "actions");
  for (int interval = 0; interval < kIntervals; ++interval) {
    workload::Workload w = IntervalWorkload(interval);

    workload::ReplayDriver tuned_driver(&tuned, optimizer::CostModel(),
                                        replay);
    std::vector<workload::ReplayTick> tuned_ticks =
        tuned_driver.Run(w, 1);
    workload::ReplayDriver untuned_driver(&untuned,
                                          optimizer::CostModel(), replay);
    std::vector<workload::ReplayTick> untuned_ticks =
        untuned_driver.Run(w, 1);

    double tuned_cpu = 0.0;
    double untuned_cpu = 0.0;
    for (const auto& s : tuned_driver.monitor().Snapshot()) {
      tuned_cpu += s.total_cpu_seconds;
      if (first_cpu.count(s.fingerprint) > 0) {
        last_cpu[s.fingerprint] = s.cpu_avg();
      }
      names[s.fingerprint] = s.normalized_sql;
    }
    for (const auto& s : untuned_driver.monitor().Snapshot()) {
      untuned_cpu += s.total_cpu_seconds;
      if (first_cpu.count(s.fingerprint) == 0) {
        first_cpu[s.fingerprint] = s.cpu_avg();
        names[s.fingerprint] = s.normalized_sql;
      }
    }
    tuned_cpu_total += tuned_cpu;
    untuned_cpu_total += untuned_cpu;

    // End-of-interval tuning pass on the observed statistics.
    Result<core::IntervalReport> report =
        tuner.Tick(w, &tuned_driver.monitor());
    std::string actions;
    if (report.ok()) {
      for (const auto& c : report.ValueOrDie().aim.recommended) {
        actions += "+" + tuned.catalog().DescribeIndex(c.def) + " ";
      }
      for (const auto& d : report.ValueOrDie().dropped) {
        actions += "-" + tuned.catalog().DescribeIndex(d) + " ";
      }
    }
    std::printf("%9d %12.4f %12.4f %8.1f%% %s\n", interval, tuned_cpu,
                untuned_cpu,
                untuned_cpu > 0
                    ? 100.0 * (untuned_cpu - tuned_cpu) / untuned_cpu
                    : 0.0,
                actions.c_str());
  }

  std::printf("\noverall CPU saved by continuous tuning: %.1f%%\n",
              untuned_cpu_total > 0
                  ? 100.0 * (untuned_cpu_total - tuned_cpu_total) /
                        untuned_cpu_total
                  : 0.0);

  // Improvement distribution over queries that got better.
  int improved = 0;
  int order_of_magnitude = 0;
  std::printf("\nper-query improvements (tuned steady-state vs "
              "first-seen cost):\n");
  for (const auto& [fp, before] : first_cpu) {
    auto it = last_cpu.find(fp);
    if (it == last_cpu.end() || it->second <= 0 || before <= 0) continue;
    const double factor = before / it->second;
    if (factor > 1.05) {
      ++improved;
      if (factor >= 10.0) ++order_of_magnitude;
      std::printf("  %5.1fx  %.60s\n", factor, names[fp].c_str());
    }
  }
  if (improved > 0) {
    std::printf(
        "\n%d queries improved; %d (%.0f%%) by an order of magnitude or "
        "more (paper: ~31%% of improved queries >= 10x)\n",
        improved, order_of_magnitude,
        100.0 * order_of_magnitude / improved);
  }
  return 0;
}
