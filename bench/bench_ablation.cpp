// Ablation study of AIM's design choices (not a paper figure; DESIGN.md
// calls these out). Each variant disables one mechanism and reruns the
// TPC-H bootstrap at a fixed budget:
//
//   merge-off      no partial-order merging (Sec. III-E)
//   dataless-off   residual range column picked by raw NDV instead of
//                  dataless_index_cost (Algorithm 5 line 6)
//   covering-off   single-phase, no covering candidates (Sec. III-B/D)
//   j=0/1/2/3      join-parameter sweep, estimate-only (Sec. IV-C)
//   ipp-relax      IPP relaxation with a selectivity floor (Sec. V-A)
//
// Plus the storage-engine comparison: B+Tree vs LSM maintenance pricing
// on a write-heavy product changes how many indexes survive ranking.
#include "bench/bench_util.h"
#include "core/aim.h"
#include "workload/demo.h"
#include "workload/products.h"
#include "workload/tpch.h"

using namespace aim;

namespace {

struct Variant {
  const char* name;
  core::AimOptions options;
};

void RunTpchAblation() {
  storage::Database db;
  workload::TpchOptions tpch;
  tpch.materialized_sf = 0.002;
  tpch.stats_sf = 10.0;
  if (Status s = workload::BuildTpch(&db, tpch); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return;
  }
  Result<workload::Workload> w = workload::TpchQueries();
  if (!w.ok()) return;

  const double budget = 8.0 * 1024 * 1024 * 1024;
  optimizer::WhatIfOptimizer baseline(db.catalog(), optimizer::CostModel());
  const double unindexed =
      advisors::WorkloadCost(w.ValueOrDie(), &baseline).ValueOrDie();

  core::AimOptions base;
  base.validate_on_clone = false;
  base.candidates.max_index_width = 4;
  base.ranking.storage_budget_bytes = budget;

  std::vector<Variant> variants;
  variants.push_back({"full AIM", base});
  {
    core::AimOptions v = base;
    v.merge.max_iterations = 0;  // dedup only, no pairwise merging
    variants.push_back({"merge-off", v});
  }
  {
    core::AimOptions v = base;
    v.candidates.use_dataless_cost = false;
    variants.push_back({"dataless-off", v});
  }
  {
    core::AimOptions v = base;
    v.two_phase = false;
    v.candidates.enable_covering = false;
    variants.push_back({"covering-off", v});
  }
  for (int j = 0; j <= 3; ++j) {
    core::AimOptions v = base;
    v.candidates.join_parameter = j;
    static char names[4][8];
    snprintf(names[j], sizeof(names[j]), "j=%d", j);
    variants.push_back({names[j], v});
  }
  {
    core::AimOptions v = base;
    v.candidates.ipp_selectivity_floor = 1e-4;
    variants.push_back({"ipp-relax", v});
  }

  std::printf("\nTPC-H SF10, budget 8 GB, width <= 4 "
              "(unindexed cost %.0f)\n",
              unindexed);
  std::printf("%-14s %10s %10s %12s %8s %10s\n", "variant", "rel_cost%",
              "runtime_s", "whatif_calls", "indexes", "size_GB");
  for (const Variant& variant : variants) {
    core::AutomaticIndexManager aim(&db, optimizer::CostModel(),
                                    variant.options);
    Result<core::AimReport> r = aim.Recommend(w.ValueOrDie(), nullptr);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", variant.name,
                   r.status().ToString().c_str());
      continue;
    }
    std::vector<catalog::IndexDef> config;
    double size = 0;
    for (const auto& c : r.ValueOrDie().recommended) {
      config.push_back(c.def);
      size += c.size_bytes;
    }
    optimizer::WhatIfOptimizer what_if(db.catalog(),
                                       optimizer::CostModel());
    (void)what_if.SetConfiguration(config);
    const double cost =
        advisors::WorkloadCost(w.ValueOrDie(), &what_if).ValueOrDie();
    std::printf("%-14s %10.2f %10.3f %12llu %8zu %10.2f\n", variant.name,
                100.0 * cost / unindexed,
                r.ValueOrDie().stats.runtime_seconds,
                (unsigned long long)r.ValueOrDie().stats.what_if_calls,
                config.size(), size / 1e9);
  }
}

void RunEngineAblation() {
  // A read that wants an index on `score` against updates that churn
  // `score`: the index's utility is benefit - maintenance (Eq. 7/8), and
  // the maintenance price differs ~3x between engines. Sweeping the
  // write rate exposes the decision crossover.
  std::printf(
      "\nStorage-engine pricing (AIM supports both, Sec. VI-A): does an\n"
      "index on a write-churned column survive ranking?\n");
  std::printf("%-12s %10s %10s\n", "write:read", "B+Tree", "LSM");
  for (double write_ratio : {1.0, 5.0, 20.0, 80.0, 320.0}) {
    std::string row =
        StringPrintf("%-12.0f", write_ratio);
    for (auto engine : {catalog::EngineKind::kBTree,
                        catalog::EngineKind::kLsm}) {
      storage::Database db = workload::MakeUsersDemoDb(8000, 31);
      workload::Workload w;
      (void)w.Add("SELECT id FROM users WHERE score = 77", 100.0);
      (void)w.Add(
          StringPrintf("UPDATE users SET score = 1 WHERE id = %d", 5),
          100.0 * write_ratio);
      const optimizer::CostModel cm(engine == catalog::EngineKind::kLsm
                                        ? optimizer::CostParams::Lsm()
                                        : optimizer::CostParams::BTree());
      core::AimOptions options;
      options.validate_on_clone = false;
      core::AutomaticIndexManager aim(&db, cm, options);
      Result<core::AimReport> r = aim.Recommend(w, nullptr);
      bool has_score_index = false;
      if (r.ok()) {
        for (const auto& c : r.ValueOrDie().recommended) {
          if (!c.def.columns.empty() && c.def.columns[0] == 3) {
            has_score_index = true;
          }
        }
      }
      row += StringPrintf(" %10s", has_score_index ? "index" : "skip");
    }
    std::printf("%s\n", row.c_str());
  }
  std::printf(
      "(LSM's cheaper index maintenance keeps the index worthwhile at\n"
      "write rates where the B+Tree engine already drops it — Eq. 8's\n"
      "write-amplification discount is engine-specific.)\n");
}

}  // namespace

int main() {
  bench::Header("Ablations — AIM design choices (DESIGN.md)");
  RunTpchAblation();
  RunEngineAblation();
  return 0;
}
