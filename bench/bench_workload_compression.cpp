// Workload compression + incremental candidate generation: a 10k-template
// synthetic interval (each template standing for ~10 raw statements, the
// shape of an hour of production traffic after the monitor's folding)
// tuned twice. Interval 1 is cold; interval 2 re-runs after a 20% template
// drift with the candidate cache carried, so candidate generation only
// pays for the drifted clusters. Reported: compression ratio (raw
// statements per cluster), per-interval wall/candgen time, and the
// interval-2 cluster reuse rate — the sublinearity evidence.
//
// Writes the `workload_compression` section of BENCH_results.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/aim.h"
#include "core/candidate_cache.h"
#include "workload/compression.h"
#include "workload/demo.h"

using namespace aim;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kTemplates = 10000;
constexpr uint64_t kMultiplicity = 10;  // raw statements per template
constexpr double kDrift = 0.2;          // templates replaced in interval 2

/// Enumerates structurally distinct SELECT templates over the users
/// table: select-list × first predicate (column, op) × optional second
/// predicate × ORDER BY × LIMIT variants. `salt` appends an extra
/// BETWEEN conjunct, minting shapes outside the base enumeration (the
/// drifted replacements of interval 2).
std::vector<std::string> MakeTemplates(int n, bool salt) {
  static constexpr const char* kCols[] = {"id", "org_id", "status", "score",
                                          "created_at"};
  static constexpr const char* kSelects[] = {
      "id",          "email",           "id, email",
      "org_id, score", "id, status, score", "created_at"};
  static constexpr const char* kOps[] = {" = 1", " < 7", " > 3"};
  std::vector<std::string> out;
  out.reserve(n);
  for (int limit = 0; limit < 2 && static_cast<int>(out.size()) < n;
       ++limit) {
    for (const char* sel : kSelects) {
      for (size_t a = 0; a < 5; ++a) {
        for (const char* opa : kOps) {
          for (int b = -1; b < 5 * 3; ++b) {
            if (b >= 0 && static_cast<size_t>(b) / 3 == a) continue;
            for (int order = -1; order < 5; ++order) {
              if (static_cast<int>(out.size()) >= n) return out;
              std::string sql = std::string("SELECT ") + sel +
                                " FROM users WHERE " + kCols[a] + opa;
              if (b >= 0) {
                sql += std::string(" AND ") + kCols[b / 3] + kOps[b % 3];
              }
              if (salt) sql += " AND score BETWEEN 10 AND 90";
              if (order >= 0) {
                sql += std::string(" ORDER BY ") + kCols[order];
              }
              if (limit == 1) sql += " LIMIT 10";
              out.push_back(std::move(sql));
            }
          }
        }
      }
    }
  }
  return out;
}

/// One interval's raw workload: every template carried with the
/// multiplicity the monitor's statement folding would report.
workload::Workload MakeInterval(const std::vector<std::string>& templates) {
  workload::Workload w;
  for (const std::string& sql : templates) {
    if (!w.Add(sql, 1.0).ok()) {
      std::fprintf(stderr, "bad template: %s\n", sql.c_str());
      continue;
    }
    w.queries.back().multiplicity = kMultiplicity;
    w.queries.back().weight = static_cast<double>(kMultiplicity);
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const int templates = argc > 1 ? std::atoi(argv[1]) : kTemplates;
  bench::Header(
      "Workload compression + incremental candidate generation — " +
      std::to_string(templates) + "-template interval, " +
      std::to_string(static_cast<int>(kDrift * 100)) +
      "% drift on interval 2");

  storage::Database db = workload::MakeUsersDemoDb(2000, /*seed=*/7);

  std::vector<std::string> base = MakeTemplates(templates, /*salt=*/false);
  std::vector<std::string> drifted = base;
  const size_t replaced = static_cast<size_t>(kDrift * base.size());
  const std::vector<std::string> fresh =
      MakeTemplates(static_cast<int>(replaced), /*salt=*/true);
  for (size_t i = 0; i < replaced && i < fresh.size(); ++i) {
    drifted[i] = fresh[i];
  }

  core::CandidateCache cache(4 * static_cast<size_t>(templates));
  core::AimOptions options;
  options.num_threads = 4;
  options.compression.enabled = true;
  options.candidate_cache = &cache;
  // Single-pass generation: the carried-cluster arithmetic is the point
  // here, and a drifted phase-1 candidate set would legitimately change
  // phase 2's whole staged-configuration context.
  options.two_phase = false;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);

  const auto run = [&](const workload::Workload& w, const char* what)
      -> core::AimRunStats {
    const auto t0 = Clock::now();
    Result<core::AimReport> r = aim.Recommend(w, nullptr);
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what,
                   r.status().ToString().c_str());
      return {};
    }
    core::AimRunStats stats = r.ValueOrDie().stats;
    stats.runtime_seconds = wall;
    std::printf(
        "%s: %.2fs wall (compress %.3fs, candgen %.3fs) — %llu stmts -> "
        "%zu clusters (%.1fx), clusters reused %zu / %zu, "
        "%zu indexes recommended\n",
        what, wall, stats.compression_seconds, stats.candgen_seconds,
        static_cast<unsigned long long>(stats.compression_statements_in),
        stats.compression_clusters, stats.compression_ratio,
        stats.candgen_clusters_reused, stats.candgen_clusters_total,
        r.ValueOrDie().recommended.size());
    return stats;
  };

  const workload::Workload w1 = MakeInterval(base);
  const workload::Workload w2 = MakeInterval(drifted);
  const core::AimRunStats first = run(w1, "interval 1 (cold)");
  const core::AimRunStats second = run(w2, "interval 2 (20% drift)");

  const bool ratio_ok = first.compression_ratio >= 10.0;
  const bool reuse_ok = second.candgen_reuse_rate() >= 0.6;
  std::printf(
      "compression ratio %.1fx (target >= 10x): %s\n"
      "interval-2 cluster reuse %.1f%% (target >= 60%%): %s\n",
      first.compression_ratio, ratio_ok ? "PASS" : "FAIL",
      100.0 * second.candgen_reuse_rate(), reuse_ok ? "PASS" : "FAIL");

  bench::JsonObject out;
  out.Add("templates", templates)
      .Add("multiplicity", kMultiplicity)
      .Add("statements_in", first.compression_statements_in)
      .Add("clusters", static_cast<uint64_t>(first.compression_clusters))
      .Add("compression_ratio", first.compression_ratio)
      .Add("compression_ratio_target_met", ratio_ok)
      .Add("interval1_wall_seconds", first.runtime_seconds)
      .Add("interval1_compress_seconds", first.compression_seconds)
      .Add("interval1_candgen_seconds", first.candgen_seconds)
      .Add("interval2_wall_seconds", second.runtime_seconds)
      .Add("interval2_candgen_seconds", second.candgen_seconds)
      .Add("interval2_clusters_total",
           static_cast<uint64_t>(second.candgen_clusters_total))
      .Add("interval2_clusters_reused",
           static_cast<uint64_t>(second.candgen_clusters_reused))
      .Add("interval2_clusters_recomputed",
           static_cast<uint64_t>(second.candgen_clusters_recomputed))
      .Add("interval2_reuse_rate", second.candgen_reuse_rate())
      .Add("interval2_reuse_target_met", reuse_ok)
      .AddRaw("run_meta", bench::RunMetadataJson(/*threads_used=*/4));
  if (!bench::WriteJsonSection("BENCH_results.json", "workload_compression",
                               out)) {
    std::fprintf(stderr, "failed to write BENCH_results.json\n");
    return 1;
  }
  return ratio_ok && reuse_ok ? 0 : 2;
}
