// All-advisors comparison at a single budget, in the spirit of the
// Kossmann et al. "magic mirror" framework the paper used (it supports
// eight algorithms; the paper plotted the best two for clarity — Fig. 4).
// Here every implemented baseline runs side by side with AIM on TPC-H.
#include "advisors/aim_adapter.h"
#include "advisors/autoadmin.h"
#include "advisors/db2advis.h"
#include "advisors/drop.h"
#include "advisors/dta.h"
#include "advisors/extend.h"
#include "advisors/relaxation.h"
#include "bench/bench_util.h"
#include "workload/tpch.h"

using namespace aim;

int main() {
  bench::Header(
      "All advisors — TPC-H SF10 at an 8 GB budget (Kossmann-framework "
      "style side-by-side)");

  storage::Database db;
  workload::TpchOptions tpch;
  tpch.materialized_sf = 0.002;
  tpch.stats_sf = 10.0;
  if (Status s = workload::BuildTpch(&db, tpch); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<workload::Workload> w = workload::TpchQueries();
  if (!w.ok()) return 1;

  std::vector<std::unique_ptr<advisors::Advisor>> algos;
  algos.push_back(std::make_unique<advisors::AimAdvisor>(&db));
  algos.push_back(std::make_unique<advisors::DtaAdvisor>());
  algos.push_back(std::make_unique<advisors::ExtendAdvisor>());
  algos.push_back(std::make_unique<advisors::RelaxationAdvisor>());
  algos.push_back(std::make_unique<advisors::Db2AdvisAdvisor>());
  algos.push_back(std::make_unique<advisors::AutoAdminAdvisor>());
  algos.push_back(std::make_unique<advisors::DropAdvisor>());

  advisors::AdvisorOptions options;
  options.max_index_width = 4;
  options.time_limit_seconds = 20.0;

  std::vector<bench::SweepPoint> points = bench::RunBudgetSweep(
      db, w.ValueOrDie(), {8000}, &algos, options);
  bench::PrintSweep(points);

  std::printf(
      "\nPaper shape: the what-if enumerators (DTA, Relaxation, Drop)\n"
      "burn orders of magnitude more optimizer calls and wall-clock time\n"
      "than AIM for solutions of comparable quality; Relaxation is the\n"
      "only other structure-aware algorithm and pays for its top-down\n"
      "pruning exactly as Sec. IX describes.\n");
  return 0;
}
