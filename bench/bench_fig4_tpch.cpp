// Figure 4a/4b: TPC-H (statistics at SF 10) — estimated workload cost
// relative to the unindexed configuration, and advisor runtime, as a
// function of the storage budget. AIM vs DTA vs Extend, max width 4
// (the width the paper had to cap DTA at).
#include <thread>

#include "advisors/aim_adapter.h"
#include "advisors/dta.h"
#include "advisors/extend.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/aim.h"
#include "workload/tpch.h"

using namespace aim;

namespace {

/// One full AIM pass (recommend + clone-validate + apply) on a fresh copy
/// of `base`, at the given engine configuration.
Result<core::AimRunStats> RunEngine(const storage::Database& base,
                                    const workload::Workload& w,
                                    int threads, size_t cache_entries) {
  storage::Database db = base;
  core::AimOptions options;
  options.num_threads = threads;
  options.what_if_cache_entries = cache_entries;
  core::AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
  Result<core::AimReport> r = aim.RunOnce(w, nullptr);
  if (!r.ok()) return r.status();
  return r.ValueOrDie().stats;
}

/// Parallel what-if engine A/B: the pre-PR serial engine (1 thread, no
/// plan-cost cache) against the parallel+memoizing engine, on a
/// multi-stream TPC-H workload (each statement repeated per stream, as
/// concurrent TPC-H streams repeat them). Emits BENCH_results.json.
void BenchParallelEngine(const storage::Database& db,
                         const workload::Workload& single_stream) {
  constexpr int kStreams = 6;
  bench::Header(
      "Parallel what-if engine — serial/no-cache vs 8 threads + "
      "plan-cost cache (TPC-H, " +
      std::to_string(kStreams) + " streams)");

  workload::Workload streams;
  for (int s = 0; s < kStreams; ++s) {
    for (const workload::Query& q : single_stream.queries) {
      streams.queries.push_back(q);
    }
  }

  Result<core::AimRunStats> serial =
      RunEngine(db, streams, /*threads=*/1, /*cache_entries=*/0);
  Result<core::AimRunStats> parallel =
      RunEngine(db, streams, /*threads=*/8, /*cache_entries=*/4096);
  if (!serial.ok() || !parallel.ok()) {
    std::fprintf(stderr, "engine benchmark failed: %s\n",
                 (serial.ok() ? parallel : serial).status().ToString().c_str());
    return;
  }
  const core::AimRunStats& s = serial.ValueOrDie();
  const core::AimRunStats& p = parallel.ValueOrDie();

  auto row = [](const char* name, const core::AimRunStats& st) {
    std::printf(
        "%-22s total=%7.3fs candgen=%7.3fs ranking=%7.3fs "
        "validation=%7.3fs whatif=%6llu cache_hit=%5.1f%%\n",
        name, st.runtime_seconds, st.candgen_seconds, st.ranking_seconds,
        st.validation_seconds, (unsigned long long)st.what_if_calls,
        100.0 * st.cache_hit_rate());
  };
  row("serial, cache off", s);
  row("8 threads + cache", p);

  const double serial_rv = s.ranking_seconds + s.validation_seconds;
  const double parallel_rv = p.ranking_seconds + p.validation_seconds;
  const double rv_speedup = parallel_rv > 0 ? serial_rv / parallel_rv : 0;
  const double total_speedup =
      p.runtime_seconds > 0 ? s.runtime_seconds / p.runtime_seconds : 0;
  std::printf(
      "\nranking+validation speedup: %.2fx   end-to-end: %.2fx   "
      "whatif calls %llu -> %llu   (%u hardware threads)\n",
      rv_speedup, total_speedup, (unsigned long long)s.what_if_calls,
      (unsigned long long)p.what_if_calls,
      std::thread::hardware_concurrency());

  auto phases = [](const core::AimRunStats& st) {
    bench::JsonObject o;
    o.Add("selection_seconds", st.selection_seconds)
        .Add("candgen_seconds", st.candgen_seconds)
        .Add("ranking_seconds", st.ranking_seconds)
        .Add("validation_seconds", st.validation_seconds)
        .Add("apply_seconds", st.apply_seconds)
        .Add("runtime_seconds", st.runtime_seconds)
        .Add("what_if_calls", st.what_if_calls)
        .Add("cache_hits", st.cache_hits)
        .Add("cache_misses", st.cache_misses)
        .Add("cache_hit_rate", st.cache_hit_rate());
    return o.ToString();
  };
  bench::JsonObject section;
  section.Add("workload", "tpch")
      .Add("streams", kStreams)
      .Add("queries", streams.queries.size())
      .Add("hardware_concurrency",
           static_cast<int>(std::thread::hardware_concurrency()))
      .Add("serial_threads", 1)
      .Add("parallel_threads", 8)
      .AddRaw("serial_no_cache", phases(s))
      .AddRaw("parallel_cached", phases(p))
      .Add("ranking_validation_speedup", rv_speedup)
      .Add("total_speedup", total_speedup)
      .Add("parallel_cache_hit_rate", p.cache_hit_rate())
      .AddRaw("run_meta", bench::RunMetadataJson(/*threads_used=*/8));
  if (!bench::WriteJsonSection("BENCH_results.json", "fig4_tpch_parallel",
                               section)) {
    std::fprintf(stderr, "failed to write BENCH_results.json\n");
  } else {
    std::printf("wrote BENCH_results.json [fig4_tpch_parallel]\n");
  }
}

}  // namespace

int main() {
  bench::Header(
      "Fig 4a/4b — TPC-H SF10: estimated cost & advisor runtime vs "
      "storage budget (AIM / DTA / Extend, width <= 4)");

  storage::Database db;
  workload::TpchOptions tpch;
  tpch.materialized_sf = 0.002;
  tpch.stats_sf = 10.0;
  if (Status s = workload::BuildTpch(&db, tpch); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<workload::Workload> w = workload::TpchQueries();
  if (!w.ok()) return 1;

  std::vector<std::unique_ptr<advisors::Advisor>> algos;
  algos.push_back(std::make_unique<advisors::AimAdvisor>(&db));
  algos.push_back(std::make_unique<advisors::DtaAdvisor>());
  algos.push_back(std::make_unique<advisors::ExtendAdvisor>());

  advisors::AdvisorOptions options;
  options.max_index_width = 4;
  options.time_limit_seconds = 20.0;  // the "really high timeout" cap

  const std::vector<double> budgets_mb = {500,  1000, 2000, 4000,
                                          8000, 12000, 15000};
  std::vector<bench::SweepPoint> points =
      bench::RunBudgetSweep(db, w.ValueOrDie(), budgets_mb, &algos,
                            options);
  bench::PrintSweep(points);

  std::printf(
      "\nPaper shape: AIM's cost is at or below DTA/Extend once the\n"
      "budget is reasonably relaxed (>= ~4 GB), may trail at tight\n"
      "budgets (coarser solution granularity), and its runtime stays\n"
      "flat and orders of magnitude below the enumeration-based\n"
      "algorithms.\n");

  BenchParallelEngine(db, w.ValueOrDie());
  return 0;
}
