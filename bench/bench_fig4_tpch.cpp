// Figure 4a/4b: TPC-H (statistics at SF 10) — estimated workload cost
// relative to the unindexed configuration, and advisor runtime, as a
// function of the storage budget. AIM vs DTA vs Extend, max width 4
// (the width the paper had to cap DTA at).
#include "advisors/aim_adapter.h"
#include "advisors/dta.h"
#include "advisors/extend.h"
#include "bench/bench_util.h"
#include "workload/tpch.h"

using namespace aim;

int main() {
  bench::Header(
      "Fig 4a/4b — TPC-H SF10: estimated cost & advisor runtime vs "
      "storage budget (AIM / DTA / Extend, width <= 4)");

  storage::Database db;
  workload::TpchOptions tpch;
  tpch.materialized_sf = 0.002;
  tpch.stats_sf = 10.0;
  if (Status s = workload::BuildTpch(&db, tpch); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<workload::Workload> w = workload::TpchQueries();
  if (!w.ok()) return 1;

  std::vector<std::unique_ptr<advisors::Advisor>> algos;
  algos.push_back(std::make_unique<advisors::AimAdvisor>(&db));
  algos.push_back(std::make_unique<advisors::DtaAdvisor>());
  algos.push_back(std::make_unique<advisors::ExtendAdvisor>());

  advisors::AdvisorOptions options;
  options.max_index_width = 4;
  options.time_limit_seconds = 20.0;  // the "really high timeout" cap

  const std::vector<double> budgets_mb = {500,  1000, 2000, 4000,
                                          8000, 12000, 15000};
  std::vector<bench::SweepPoint> points =
      bench::RunBudgetSweep(db, w.ValueOrDie(), budgets_mb, &algos,
                            options);
  bench::PrintSweep(points);

  std::printf(
      "\nPaper shape: AIM's cost is at or below DTA/Extend once the\n"
      "budget is reasonably relaxed (>= ~4 GB), may trail at tight\n"
      "budgets (coarser solution granularity), and its runtime stays\n"
      "flat and orders of magnitude below the enumeration-based\n"
      "algorithms.\n");
  return 0;
}
