// Figure 4c/4d: JOB (join order benchmark flavour) — estimated workload
// cost relative to unindexed, and advisor runtime, vs storage budget.
// AIM vs DTA vs Extend, max width 3 (the paper's JOB cap for DTA).
#include "advisors/aim_adapter.h"
#include "advisors/dta.h"
#include "advisors/extend.h"
#include "bench/bench_util.h"
#include "workload/job.h"

using namespace aim;

int main() {
  bench::Header(
      "Fig 4c/4d — JOB: estimated cost & advisor runtime vs storage "
      "budget (AIM / DTA / Extend, width <= 3)");

  storage::Database db;
  workload::JobOptions job;
  job.scale = 0.05;
  job.stats_scale = 50.0;
  if (Status s = workload::BuildJob(&db, job); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<workload::Workload> w = workload::JobQueries();
  if (!w.ok()) return 1;

  std::vector<std::unique_ptr<advisors::Advisor>> algos;
  algos.push_back(std::make_unique<advisors::AimAdvisor>(&db));
  algos.push_back(std::make_unique<advisors::DtaAdvisor>());
  algos.push_back(std::make_unique<advisors::ExtendAdvisor>());

  advisors::AdvisorOptions options;
  options.max_index_width = 3;
  options.time_limit_seconds = 20.0;

  const std::vector<double> budgets_mb = {100, 250, 500, 1000, 2000,
                                          4000};
  std::vector<bench::SweepPoint> points =
      bench::RunBudgetSweep(db, w.ValueOrDie(), budgets_mb, &algos,
                            options);
  bench::PrintSweep(points);

  std::printf(
      "\nPaper shape: same as TPC-H — AIM matches the quality of the\n"
      "what-if enumerators at relaxed budgets with a flat, far smaller\n"
      "runtime; join-heavy queries make DTA's enumeration especially\n"
      "expensive.\n");
  return 0;
}
