// Figure 5a/5b: per-query processing costs for TPC-H (stats at SF 10)
// with a 15 GB budget, across AIM / DTA / Extend configurations.
// Costs are optimizer-estimated, relative to the unindexed plan of each
// query (100 = no improvement), exactly as the paper reports.
#include <map>

#include "advisors/aim_adapter.h"
#include "advisors/dta.h"
#include "advisors/extend.h"
#include "bench/bench_util.h"
#include "workload/tpch.h"

using namespace aim;

int main() {
  bench::Header(
      "Fig 5a/5b — TPC-H per-query estimated costs at 15 GB budget "
      "(relative to unindexed, lower is better)");

  storage::Database db;
  workload::TpchOptions tpch;
  tpch.materialized_sf = 0.002;
  tpch.stats_sf = 10.0;
  if (Status s = workload::BuildTpch(&db, tpch); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<workload::Workload> w = workload::TpchQueries();
  if (!w.ok()) return 1;

  advisors::AdvisorOptions options;
  options.storage_budget_bytes = 15.0 * 1024 * 1024 * 1024;
  options.max_index_width = 4;
  options.time_limit_seconds = 20.0;

  std::vector<std::unique_ptr<advisors::Advisor>> algos;
  algos.push_back(std::make_unique<advisors::AimAdvisor>(&db));
  algos.push_back(std::make_unique<advisors::DtaAdvisor>());
  algos.push_back(std::make_unique<advisors::ExtendAdvisor>());

  // Per-algorithm configuration.
  std::map<std::string, std::vector<catalog::IndexDef>> configs;
  for (auto& algo : algos) {
    optimizer::WhatIfOptimizer what_if(db.catalog(),
                                       optimizer::CostModel());
    Result<advisors::AdvisorResult> r =
        algo->Recommend(w.ValueOrDie(), &what_if, options);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algo->name().c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    configs[algo->name()] = r.ValueOrDie().indexes;
  }

  // Per-query costs under each configuration.
  optimizer::WhatIfOptimizer what_if(db.catalog(), optimizer::CostModel());
  std::printf("%-5s %14s %10s %10s %10s\n", "query", "unindexed",
              "AIM", "DTA", "Extend");
  double sums[3] = {0, 0, 0};
  for (int qn = 1; qn <= 22; ++qn) {
    const workload::Query& q = w.ValueOrDie().queries[qn - 1];
    what_if.ClearConfiguration();
    const double base = what_if.QueryCost(q.stmt).ValueOrDie();
    double rel[3];
    const char* names[3] = {"AIM", "DTA", "Extend"};
    for (int a = 0; a < 3; ++a) {
      (void)what_if.SetConfiguration(configs[names[a]]);
      const double c = what_if.QueryCost(q.stmt).ValueOrDie();
      rel[a] = base > 0 ? 100.0 * c / base : 100.0;
      sums[a] += rel[a];
    }
    std::printf("Q%-4d %14.0f %9.1f%% %9.1f%% %9.1f%%%s\n", qn, base,
                rel[0], rel[1], rel[2],
                (rel[0] > 1.5 * std::min(rel[1], rel[2]) ||
                 rel[1] > 1.5 * std::min(rel[0], rel[2]) ||
                 rel[2] > 1.5 * std::min(rel[0], rel[1]))
                    ? "   <- divergence"
                    : "");
  }
  std::printf("%-5s %14s %9.1f%% %9.1f%% %9.1f%%\n", "avg", "",
              sums[0] / 22, sums[1] / 22, sums[2] / 22);
  std::printf(
      "\nPaper shape: per-query costs are similar across algorithms for\n"
      "almost every query; occasional divergences (the paper's Q21 case)\n"
      "come from covering-index choices the optimizer prices\n"
      "differently.\n");
  return 0;
}
