// Figure 3: CPU-utilization and throughput time series while AIM
// rebuilds all secondary indexes from scratch (Products A, B, C).
//
// Control machine: DBA indexes, untouched. Test machine: identical until
// the drop tick, when every secondary index is removed; AIM then analyzes
// the degraded workload's statistics and recreates indexes incrementally
// (one per tick, as the paper did with sleeps in between).
#include <algorithm>

#include "bench/bench_util.h"
#include "core/aim.h"
#include "workload/products.h"
#include "workload/replay.h"

using namespace aim;

namespace {

constexpr int kTicks = 34;
constexpr int kDropTick = 8;
constexpr int kAimTick = 16;

struct Series {
  std::vector<workload::ReplayTick> control;
  std::vector<workload::ReplayTick> test;
};

Series RunProduct(const workload::ProductSpec& spec) {
  Series out;
  Result<workload::ProductInstance> built = workload::BuildProduct(spec);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return out;
  }
  workload::ProductInstance& product = built.ValueOrDie();

  storage::Database control = product.db;
  storage::Database test = product.db;
  (void)workload::ApplyIndexes(&control, product.dba_indexes);
  (void)workload::ApplyIndexes(&test, product.dba_indexes);

  workload::ReplayDriver::Options replay;
  replay.offered_qps = 120;
  replay.cpu_capacity_seconds_per_tick = 0.35;
  replay.seed = 5;

  workload::ReplayDriver control_driver(&control, optimizer::CostModel(),
                                        replay);
  out.control = control_driver.Run(product.workload, kTicks);

  workload::ReplayDriver test_driver(&test, optimizer::CostModel(),
                                     replay);
  std::vector<core::CandidateIndex> pending;
  size_t next_to_create = 0;
  out.test = test_driver.Run(
      product.workload, kTicks, [&](int tick) {
        if (tick == kDropTick) {
          // Drop every secondary index on the test machine.
          for (const catalog::IndexDef* idx :
               test.catalog().AllIndexes(false, false)) {
            (void)test.DropIndex(idx->id);
          }
          // Statistics from the healthy period would mask the damage.
          test_driver.monitor().Reset();
        }
        if (tick == kAimTick) {
          // AIM analyzes the degraded interval's statistics.
          core::AimOptions options;
          options.validate_on_clone = false;
          options.selection.min_benefit_cores = 1e-9;
          options.selection.min_executions = 1;
          options.selection.max_queries = 128;
          core::AutomaticIndexManager aim(&test, optimizer::CostModel(),
                                          options);
          Result<core::AimReport> r =
              aim.Recommend(product.workload, &test_driver.monitor());
          if (r.ok()) {
            pending = r.ValueOrDie().recommended;
            std::sort(pending.begin(), pending.end(),
                      [](const core::CandidateIndex& a,
                         const core::CandidateIndex& b) {
                        return a.utility() > b.utility();
                      });
          }
        }
        // Incremental creation: a few indexes per tick from the AIM tick
        // on (the paper created them with sleeps in between).
        if (tick >= kAimTick) {
          const size_t per_tick = std::max<size_t>(
              1, pending.size() / 10);
          for (size_t k = 0;
               k < per_tick && next_to_create < pending.size(); ++k) {
            catalog::IndexDef def = pending[next_to_create++].def;
            def.id = catalog::kInvalidIndex;
            def.created_by_automation = true;
            (void)test.CreateIndex(std::move(def));
          }
        }
      });
  return out;
}

void PrintSeries(const std::string& name, const Series& s) {
  std::printf("\n--- %s ---\n", name.c_str());
  std::printf("%5s %12s %12s %12s %12s\n", "tick", "ctrl_cpu%",
              "test_cpu%", "ctrl_qps", "test_qps");
  for (size_t i = 0; i < s.control.size() && i < s.test.size(); ++i) {
    const char* marker = "";
    if (static_cast<int>(i) == kDropTick) marker = "  <- drop indexes";
    if (static_cast<int>(i) == kAimTick) marker = "  <- AIM begins";
    std::printf("%5zu %12.1f %12.1f %12.0f %12.0f%s\n", i,
                s.control[i].cpu_utilization_pct,
                s.test[i].cpu_utilization_pct,
                s.control[i].throughput_qps, s.test[i].throughput_qps,
                marker);
  }
  // Recovery summary: last 6 ticks vs healthy first ticks.
  auto avg = [](const std::vector<workload::ReplayTick>& v, size_t from,
                size_t to, bool cpu) {
    double total = 0;
    size_t n = 0;
    for (size_t i = from; i < to && i < v.size(); ++i, ++n) {
      total += cpu ? v[i].cpu_utilization_pct : v[i].throughput_qps;
    }
    return n > 0 ? total / n : 0.0;
  };
  std::printf(
      "summary: healthy qps=%.0f, degraded qps=%.0f, recovered qps=%.0f "
      "(control steady at %.0f)\n",
      avg(s.test, 0, kDropTick, false),
      avg(s.test, kDropTick + 1, kAimTick, false),
      avg(s.test, s.test.size() - 6, s.test.size(), false),
      avg(s.control, s.control.size() - 6, s.control.size(), false));
}

}  // namespace

int main() {
  bench::Header(
      "Fig 3 — CPU utilization & throughput before/after dropping all "
      "secondary indexes and letting AIM rebuild them");

  // Simulator-scale variants of Products A, B, C (Table II metadata,
  // smaller row counts so the replay executes quickly).
  std::vector<workload::ProductSpec> specs = workload::TableIIProducts();
  for (int i = 0; i < 3; ++i) {
    workload::ProductSpec spec = specs[i];
    spec.rows_per_table = 600;
    // Keep replay-sized workloads: cap the very large query counts.
    spec.join_queries = std::min(spec.join_queries, 60);
    spec.single_table_queries = std::min(2 * spec.join_queries, 120);
    spec.tables = std::min(spec.tables, 40);
    Series s = RunProduct(spec);
    if (!s.control.empty()) PrintSeries(spec.name, s);
  }
  std::printf(
      "\nPaper shape: dropping the indexes saturates CPU and collapses\n"
      "throughput; once AIM starts adding indexes the test machine\n"
      "converges back to the control machine's profile.\n");
  return 0;
}
