// Table II: DBA vs AIM on the seven production-like products (A–G).
// For each product we report index counts, total index sizes, and the
// Jaccard similarity between the DBA's index set and AIM's — the paper's
// manual-vs-automatic comparison.
#include "bench/bench_util.h"
#include "core/aim.h"
#include "workload/products.h"

using namespace aim;

namespace {
const char* MixName(workload::WorkloadMix mix) {
  switch (mix) {
    case workload::WorkloadMix::kWriteHeavy:
      return "Write Heavy";
    case workload::WorkloadMix::kReadHeavy:
      return "Read Heavy";
    case workload::WorkloadMix::kBalanced:
      return "Balanced";
  }
  return "?";
}
}  // namespace

int main() {
  bench::Header(
      "Table II — DBA vs AIM on production-like products "
      "(index count / total size / Jaccard similarity)");
  std::printf("%-10s %7s %6s %-12s %8s %8s %12s %12s %8s\n", "product",
              "tables", "joinQ", "type", "DBA#", "AIM#", "DBA_size",
              "AIM_size", "Jaccard");

  for (const workload::ProductSpec& spec : workload::TableIIProducts()) {
    Result<workload::ProductInstance> built = workload::BuildProduct(spec);
    if (!built.ok()) {
      std::fprintf(stderr, "%s build failed: %s\n", spec.name.c_str(),
                   built.status().ToString().c_str());
      continue;
    }
    workload::ProductInstance& product = built.ValueOrDie();

    // DBA sizing on a catalog copy.
    double dba_bytes = 0.0;
    for (const auto& def : product.dba_indexes) {
      dba_bytes += product.db.catalog().IndexSizeBytes(def);
    }

    // AIM bootstraps from scratch on the same database + workload.
    core::AimOptions options;
    options.validate_on_clone = false;  // estimate-mode; Fig 3 replays
    options.candidates.join_parameter = 2;
    // OLTP fleet posture: narrow composites, covering reserved for very
    // hot queries (the paper's high SSD seek threshold).
    options.candidates.max_index_width = 4;
    options.candidates.covering_seek_threshold = 1e9;
    core::AutomaticIndexManager aim(&product.db, optimizer::CostModel(),
                                    options);
    Result<core::AimReport> report = aim.Recommend(product.workload,
                                                   nullptr);
    if (!report.ok()) {
      std::fprintf(stderr, "%s AIM failed: %s\n", spec.name.c_str(),
                   report.status().ToString().c_str());
      continue;
    }
    std::vector<catalog::IndexDef> aim_indexes;
    double aim_bytes = 0.0;
    for (const auto& c : report.ValueOrDie().recommended) {
      aim_indexes.push_back(c.def);
      aim_bytes += c.size_bytes;
    }
    const double jaccard =
        workload::IndexSetJaccard(product.dba_indexes, aim_indexes);

    std::printf("%-10s %7d %6d %-12s %8zu %8zu %12s %12s %8.2f\n",
                spec.name.c_str(), spec.tables, spec.join_queries,
                MixName(spec.mix), product.dba_indexes.size(),
                aim_indexes.size(), HumanBytes(dba_bytes).c_str(),
                HumanBytes(aim_bytes).c_str(), jaccard);
  }
  std::printf(
      "\nPaper shape: AIM reaches DBA-comparable designs with similar or\n"
      "fewer indexes and similar or smaller total size; Jaccard overlap\n"
      "is high but below 1.0 (different-but-equivalent choices plus DBA\n"
      "legacy indexes).\n");
  return 0;
}
