#ifndef AIM_ADVISORS_DROP_H_
#define AIM_ADVISORS_DROP_H_

#include "advisors/advisor.h"

namespace aim::advisors {

/// \brief Drop heuristic (Whang 1987): start from a large candidate
/// configuration and repeatedly drop the index whose removal hurts the
/// workload least, until the configuration fits the budget and no drop
/// improves net utility.
class DropAdvisor : public Advisor {
 public:
  std::string name() const override { return "Drop"; }

  Result<AdvisorResult> Recommend(const workload::Workload& workload,
                                  optimizer::WhatIfOptimizer* what_if,
                                  const AdvisorOptions& options) override;
};

}  // namespace aim::advisors

#endif  // AIM_ADVISORS_DROP_H_
