#include "advisors/relaxation.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "advisors/dta.h"

namespace aim::advisors {

catalog::IndexDef RelaxationAdvisor::MergeIndexes(
    const catalog::IndexDef& a, const catalog::IndexDef& b,
    size_t max_width) {
  catalog::IndexDef merged;
  merged.table = a.table;
  merged.columns = a.columns;
  for (catalog::ColumnId c : b.columns) {
    if (std::find(merged.columns.begin(), merged.columns.end(), c) ==
        merged.columns.end()) {
      merged.columns.push_back(c);
    }
  }
  if (merged.columns.size() > max_width) {
    merged.columns.resize(max_width);
  }
  return merged;
}

Result<AdvisorResult> RelaxationAdvisor::Recommend(
    const workload::Workload& workload, optimizer::WhatIfOptimizer* what_if,
    const AdvisorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(options.time_limit_seconds));
  AdvisorResult result;
  what_if->reset_call_count();

  // The "ideal" starting configuration: the union of every query's
  // optimizer-picked candidates (ask the optimizer which of the
  // enumerated candidates each query would actually use).
  std::vector<catalog::IndexDef> config;
  for (const workload::Query& q : workload.queries) {
    workload::Workload single;
    single.queries.push_back(q);
    AIM_ASSIGN_OR_RETURN(
        std::vector<catalog::IndexDef> candidates,
        DtaAdvisor::EnumerateCandidates(single, what_if->catalog(),
                                        options.max_index_width));
    AIM_RETURN_NOT_OK(what_if->SetConfiguration(candidates));
    AIM_ASSIGN_OR_RETURN(optimizer::Plan plan,
                         what_if->PlanQuery(q.stmt));
    for (const optimizer::JoinStep& step : plan.steps) {
      if (step.path.index == nullptr || !step.path.index->hypothetical) {
        continue;
      }
      catalog::IndexDef def;
      def.table = step.path.index->table;
      def.columns = step.path.index->columns;
      if (!ConfigContains(config, def)) config.push_back(std::move(def));
    }
  }
  what_if->ClearConfiguration();

  AIM_RETURN_NOT_OK(what_if->SetConfiguration(config));
  AIM_ASSIGN_OR_RETURN(double current_cost,
                       WorkloadCost(workload, what_if));

  // Relax until the configuration fits and no transformation is free.
  while (!config.empty()) {
    const double size = ConfigSizeBytes(config, what_if->catalog());
    const bool over_budget = size > options.storage_budget_bytes;
    const bool timed_out = std::chrono::steady_clock::now() >= deadline;
    if (!over_budget && timed_out) break;
    if (over_budget && timed_out) {
      // Deadline passed while still over budget: degrade to cheap forced
      // relaxation — drop the largest index without re-costing (the
      // anytime behaviour a production deployment needs).
      size_t victim = 0;
      double victim_size = -1.0;
      for (size_t i = 0; i < config.size(); ++i) {
        const double s = what_if->catalog().IndexSizeBytes(config[i]);
        if (s > victim_size) {
          victim_size = s;
          victim = i;
        }
      }
      config.erase(config.begin() + victim);
      continue;
    }

    struct Transformation {
      std::vector<catalog::IndexDef> config;
      double cost = 0.0;
      double bytes_freed = 0.0;
    };
    std::optional<Transformation> best;
    // Penalty per byte freed: lower is better; negative penalty (cost
    // actually improves) is always taken.
    double best_score = std::numeric_limits<double>::infinity();

    auto consider = [&](std::vector<catalog::IndexDef> trial) -> Status {
      const double trial_size =
          ConfigSizeBytes(trial, what_if->catalog());
      const double freed = size - trial_size;
      if (freed <= 0) return Status::OK();
      AIM_RETURN_NOT_OK(what_if->SetConfiguration(trial));
      AIM_ASSIGN_OR_RETURN(double cost, WorkloadCost(workload, what_if));
      const double penalty = (cost - current_cost) / freed;
      if (penalty < best_score) {
        best_score = penalty;
        best = Transformation{std::move(trial), cost, freed};
      }
      return Status::OK();
    };

    // Removals. The deadline bounds the *enumeration*: whatever best
    // transformation was found so far still gets applied.
    for (size_t i = 0; i < config.size(); ++i) {
      std::vector<catalog::IndexDef> trial = config;
      trial.erase(trial.begin() + i);
      AIM_RETURN_NOT_OK(consider(std::move(trial)));
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
    // Pairwise same-table merges (skipped for very large configurations:
    // the O(n^2) sweep would dwarf the removals).
    if (config.size() <= 48) {
      for (size_t i = 0; i < config.size(); ++i) {
        for (size_t j = i + 1; j < config.size(); ++j) {
          if (config[i].table != config[j].table) continue;
          catalog::IndexDef merged = MergeIndexes(
              config[i], config[j], options.max_index_width);
          if (merged.columns == config[i].columns ||
              merged.columns == config[j].columns) {
            continue;  // the merge degenerates into one of the inputs
          }
          std::vector<catalog::IndexDef> trial;
          for (size_t k = 0; k < config.size(); ++k) {
            if (k != i && k != j) trial.push_back(config[k]);
          }
          if (!ConfigContains(trial, merged)) {
            trial.push_back(merged);
          }
          AIM_RETURN_NOT_OK(consider(std::move(trial)));
        }
        if (std::chrono::steady_clock::now() >= deadline) break;
      }
    }
    if (!best.has_value()) break;
    // Inside budget, only accept transformations that do not hurt.
    if (!over_budget && best_score > 1e-12) break;
    config = std::move(best->config);
    current_cost = best->cost;
  }

  AIM_RETURN_NOT_OK(what_if->SetConfiguration(config));
  AIM_ASSIGN_OR_RETURN(result.final_workload_cost,
                       WorkloadCost(workload, what_if));
  what_if->ClearConfiguration();
  result.indexes = std::move(config);
  result.total_size_bytes =
      ConfigSizeBytes(result.indexes, what_if->catalog());
  result.what_if_calls = what_if->call_count();
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace aim::advisors
