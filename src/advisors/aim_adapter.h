#ifndef AIM_ADVISORS_AIM_ADAPTER_H_
#define AIM_ADVISORS_AIM_ADAPTER_H_

#include "advisors/advisor.h"
#include "core/aim.h"

namespace aim::advisors {

/// \brief Exposes AIM through the common Advisor interface so the Fig. 4–6
/// benchmarks compare it head-to-head with the baselines.
///
/// Runs estimate-only (no clone validation), as the Kossmann-framework
/// comparison does; the monitorless bootstrap path is used, with query
/// weights as frequencies.
class AimAdvisor : public Advisor {
 public:
  explicit AimAdvisor(storage::Database* db, core::AimOptions base = {},
                      optimizer::CostModel cm = optimizer::CostModel())
      : db_(db), base_(base), cm_(cm) {}

  std::string name() const override { return "AIM"; }

  Result<AdvisorResult> Recommend(const workload::Workload& workload,
                                  optimizer::WhatIfOptimizer* what_if,
                                  const AdvisorOptions& options) override;

 private:
  storage::Database* db_;
  core::AimOptions base_;
  optimizer::CostModel cm_;
};

}  // namespace aim::advisors

#endif  // AIM_ADVISORS_AIM_ADAPTER_H_
