#ifndef AIM_ADVISORS_DTA_H_
#define AIM_ADVISORS_DTA_H_

#include "advisors/advisor.h"

namespace aim::advisors {

/// \brief DTA-style anytime advisor (Chaudhuri & Narasayya — the
/// Microsoft Database Tuning Advisor's anytime algorithm).
///
/// Per-query candidate enumeration: all column subsets of each table's
/// indexable columns up to `max_index_width`, ordered equality-columns
/// first (a bounded number of permutations per subset). The union is then
/// greedily enumerated with what-if costing until the budget or deadline
/// is hit. The enumeration count is exponential in the width cap — this
/// is precisely why the paper had to restrict DTA to width ≤ 3–4 and set
/// "a really high timeout" (Sec. VIII-a).
class DtaAdvisor : public Advisor {
 public:
  std::string name() const override { return "DTA"; }

  Result<AdvisorResult> Recommend(const workload::Workload& workload,
                                  optimizer::WhatIfOptimizer* what_if,
                                  const AdvisorOptions& options) override;

  /// Exposed for tests: the per-query candidate enumeration.
  static Result<std::vector<catalog::IndexDef>> EnumerateCandidates(
      const workload::Workload& workload, const catalog::Catalog& catalog,
      size_t max_width);
};

}  // namespace aim::advisors

#endif  // AIM_ADVISORS_DTA_H_
