#include "advisors/advisor.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "optimizer/predicate.h"

namespace aim::advisors {

namespace {
void InsertUnique(std::vector<catalog::ColumnId>* v, catalog::ColumnId c) {
  if (std::find(v->begin(), v->end(), c) == v->end()) v->push_back(c);
}
}  // namespace

Result<std::vector<IndexableColumns>> ExtractIndexableColumns(
    const sql::Statement& stmt, const catalog::Catalog& catalog) {
  AIM_ASSIGN_OR_RETURN(optimizer::AnalyzedQuery aq,
                       optimizer::Analyze(stmt, catalog));
  // Collapse per-instance data to per-table (baselines ignore instances).
  std::map<catalog::TableId, IndexableColumns> by_table;
  for (int t = 0; t < static_cast<int>(aq.instances.size()); ++t) {
    IndexableColumns& ic = by_table[aq.instances[t].table];
    ic.table = aq.instances[t].table;
    for (const auto& p : aq.ConjunctsForInstance(t)) {
      if (!p.is_sargable()) continue;
      if (p.is_index_prefix()) {
        InsertUnique(&ic.equality, p.column.column);
      } else {
        InsertUnique(&ic.range, p.column.column);
      }
      InsertUnique(&ic.all, p.column.column);
    }
    for (const optimizer::Factor& f : aq.dnf) {
      for (const auto& p : f.predicates) {
        if (p.column.instance != t || !p.is_sargable()) continue;
        if (p.is_index_prefix()) {
          InsertUnique(&ic.equality, p.column.column);
        } else {
          InsertUnique(&ic.range, p.column.column);
        }
        InsertUnique(&ic.all, p.column.column);
      }
    }
    for (const auto& [col, other] : aq.JoinColumnsOf(t)) {
      (void)other;
      InsertUnique(&ic.join, col);
      InsertUnique(&ic.all, col);
    }
    for (catalog::ColumnId c : aq.instances[t].group_by_columns) {
      InsertUnique(&ic.grouping, c);
      InsertUnique(&ic.all, c);
    }
    for (const auto& o : aq.instances[t].order_by_columns) {
      InsertUnique(&ic.ordering, o.column.column);
      InsertUnique(&ic.all, o.column.column);
    }
  }
  std::vector<IndexableColumns> out;
  for (auto& [tid, ic] : by_table) {
    (void)tid;
    if (!ic.all.empty()) out.push_back(std::move(ic));
  }
  return out;
}

Result<double> WorkloadCost(const workload::Workload& workload,
                            optimizer::WhatIfOptimizer* what_if) {
  return what_if->WorkloadCost(workload.statements(), workload.weights());
}

double ConfigSizeBytes(const std::vector<catalog::IndexDef>& config,
                       const catalog::Catalog& catalog) {
  double total = 0.0;
  for (const auto& def : config) total += catalog.IndexSizeBytes(def);
  return total;
}

bool ConfigContains(const std::vector<catalog::IndexDef>& config,
                    const catalog::IndexDef& def) {
  for (const auto& c : config) {
    if (c.table == def.table && c.columns == def.columns) return true;
  }
  return false;
}

Result<std::vector<catalog::IndexDef>> GreedyForwardSelect(
    std::vector<catalog::IndexDef> candidates,
    const workload::Workload& workload, optimizer::WhatIfOptimizer* what_if,
    const AdvisorOptions& options) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.time_limit_seconds));

  std::vector<catalog::IndexDef> config;
  double config_size = 0.0;
  AIM_RETURN_NOT_OK(what_if->SetConfiguration(config));
  AIM_ASSIGN_OR_RETURN(double current_cost,
                       WorkloadCost(workload, what_if));

  std::vector<bool> taken(candidates.size(), false);
  while (true) {
    if (std::chrono::steady_clock::now() >= deadline) break;
    int best = -1;
    double best_ratio = 0.0;
    double best_cost = current_cost;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      const double size =
          what_if->catalog().IndexSizeBytes(candidates[i]);
      if (config_size + size > options.storage_budget_bytes) continue;
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::vector<catalog::IndexDef> trial = config;
      trial.push_back(candidates[i]);
      AIM_RETURN_NOT_OK(what_if->SetConfiguration(trial));
      AIM_ASSIGN_OR_RETURN(double cost, WorkloadCost(workload, what_if));
      const double benefit = current_cost - cost;
      const double ratio = benefit / std::max(size, 1.0);
      if (benefit > 1e-9 && ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(i);
        best_cost = cost;
      }
    }
    if (best < 0) break;
    taken[best] = true;
    config.push_back(candidates[best]);
    config_size += what_if->catalog().IndexSizeBytes(candidates[best]);
    current_cost = best_cost;
  }
  what_if->ClearConfiguration();
  return config;
}

}  // namespace aim::advisors
