#include "advisors/extend.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

namespace aim::advisors {

Result<AdvisorResult> ExtendAdvisor::Recommend(
    const workload::Workload& workload, optimizer::WhatIfOptimizer* what_if,
    const AdvisorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(options.time_limit_seconds));
  AdvisorResult result;
  what_if->reset_call_count();

  // Attribute universe per table.
  std::map<catalog::TableId, std::vector<catalog::ColumnId>> attrs;
  for (const workload::Query& q : workload.queries) {
    AIM_ASSIGN_OR_RETURN(
        std::vector<IndexableColumns> per_table,
        ExtractIndexableColumns(q.stmt, what_if->catalog()));
    for (const IndexableColumns& ic : per_table) {
      auto& v = attrs[ic.table];
      for (catalog::ColumnId c : ic.all) {
        if (std::find(v.begin(), v.end(), c) == v.end()) v.push_back(c);
      }
    }
  }

  std::vector<catalog::IndexDef> config;
  double config_size = 0.0;
  AIM_RETURN_NOT_OK(what_if->SetConfiguration(config));
  AIM_ASSIGN_OR_RETURN(double current_cost,
                       WorkloadCost(workload, what_if));

  while (std::chrono::steady_clock::now() < deadline) {
    // Move set: new single-attribute indexes + one-attribute extensions
    // of selected indexes.
    struct Move {
      catalog::IndexDef def;
      int replaces = -1;  // index into config that this move widens
    };
    std::vector<Move> moves;
    for (const auto& [table, cols] : attrs) {
      for (catalog::ColumnId c : cols) {
        catalog::IndexDef def;
        def.table = table;
        def.columns = {c};
        if (ConfigContains(config, def)) continue;
        moves.push_back(Move{std::move(def), -1});
      }
    }
    for (int i = 0; i < static_cast<int>(config.size()); ++i) {
      if (config[i].columns.size() >= options.max_index_width) continue;
      for (catalog::ColumnId c : attrs[config[i].table]) {
        if (std::find(config[i].columns.begin(), config[i].columns.end(),
                      c) != config[i].columns.end()) {
          continue;
        }
        catalog::IndexDef def = config[i];
        def.columns.push_back(c);
        if (ConfigContains(config, def)) continue;
        moves.push_back(Move{std::move(def), i});
      }
    }

    int best = -1;
    double best_ratio = 0.0;
    double best_cost = current_cost;
    for (size_t m = 0; m < moves.size(); ++m) {
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::vector<catalog::IndexDef> trial = config;
      double trial_size = config_size;
      if (moves[m].replaces >= 0) {
        trial_size -=
            what_if->catalog().IndexSizeBytes(trial[moves[m].replaces]);
        trial[moves[m].replaces] = moves[m].def;
      } else {
        trial.push_back(moves[m].def);
      }
      const double move_size =
          what_if->catalog().IndexSizeBytes(moves[m].def);
      trial_size += move_size;
      if (trial_size > options.storage_budget_bytes) continue;
      AIM_RETURN_NOT_OK(what_if->SetConfiguration(trial));
      AIM_ASSIGN_OR_RETURN(double cost, WorkloadCost(workload, what_if));
      const double benefit = current_cost - cost;
      // Extend's ratio: benefit per *added* byte.
      const double added =
          moves[m].replaces >= 0
              ? std::max(move_size - what_if->catalog().IndexSizeBytes(
                                         config[moves[m].replaces]),
                         1.0)
              : std::max(move_size, 1.0);
      const double ratio = benefit / added;
      if (benefit > 1e-9 && ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(m);
        best_cost = cost;
      }
    }
    if (best < 0) break;
    const Move& mv = moves[best];
    if (mv.replaces >= 0) {
      config_size -=
          what_if->catalog().IndexSizeBytes(config[mv.replaces]);
      config[mv.replaces] = mv.def;
    } else {
      config.push_back(mv.def);
    }
    config_size += what_if->catalog().IndexSizeBytes(mv.def);
    current_cost = best_cost;
  }

  AIM_RETURN_NOT_OK(what_if->SetConfiguration(config));
  AIM_ASSIGN_OR_RETURN(result.final_workload_cost,
                       WorkloadCost(workload, what_if));
  what_if->ClearConfiguration();
  result.indexes = std::move(config);
  result.total_size_bytes =
      ConfigSizeBytes(result.indexes, what_if->catalog());
  result.what_if_calls = what_if->call_count();
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace aim::advisors
