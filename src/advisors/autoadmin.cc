#include "advisors/autoadmin.h"

#include <algorithm>
#include <chrono>

#include "advisors/dta.h"

namespace aim::advisors {

Result<AdvisorResult> AutoAdminAdvisor::Recommend(
    const workload::Workload& workload, optimizer::WhatIfOptimizer* what_if,
    const AdvisorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  AdvisorResult result;
  what_if->reset_call_count();

  // Candidate selection: per-query winners only (the AutoAdmin trick to
  // shrink the enumeration input).
  std::vector<catalog::IndexDef> union_candidates;
  for (const workload::Query& q : workload.queries) {
    workload::Workload single;
    single.queries.push_back(q);
    AIM_ASSIGN_OR_RETURN(
        std::vector<catalog::IndexDef> candidates,
        DtaAdvisor::EnumerateCandidates(single, what_if->catalog(),
                                        options.max_index_width));
    AIM_RETURN_NOT_OK(what_if->SetConfiguration(candidates));
    AIM_ASSIGN_OR_RETURN(optimizer::Plan plan, what_if->PlanQuery(q.stmt));
    for (const optimizer::JoinStep& step : plan.steps) {
      if (step.path.index == nullptr || !step.path.index->hypothetical) {
        continue;
      }
      catalog::IndexDef def;
      def.table = step.path.index->table;
      def.columns = step.path.index->columns;
      if (!ConfigContains(union_candidates, def)) {
        union_candidates.push_back(std::move(def));
      }
    }
  }
  what_if->ClearConfiguration();

  AIM_ASSIGN_OR_RETURN(
      result.indexes,
      GreedyForwardSelect(std::move(union_candidates), workload, what_if,
                          options));

  AIM_RETURN_NOT_OK(what_if->SetConfiguration(result.indexes));
  AIM_ASSIGN_OR_RETURN(result.final_workload_cost,
                       WorkloadCost(workload, what_if));
  what_if->ClearConfiguration();
  result.total_size_bytes =
      ConfigSizeBytes(result.indexes, what_if->catalog());
  result.what_if_calls = what_if->call_count();
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace aim::advisors
