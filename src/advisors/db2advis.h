#ifndef AIM_ADVISORS_DB2ADVIS_H_
#define AIM_ADVISORS_DB2ADVIS_H_

#include "advisors/advisor.h"

namespace aim::advisors {

/// \brief DB2Advis (Valentin et al. — ICDE 2000): for each query, ask the
/// optimizer which of its candidate indexes it would use, credit those
/// indexes with the query's cost reduction, then fill the budget by
/// benefit/size order.
class Db2AdvisAdvisor : public Advisor {
 public:
  std::string name() const override { return "DB2Advis"; }

  Result<AdvisorResult> Recommend(const workload::Workload& workload,
                                  optimizer::WhatIfOptimizer* what_if,
                                  const AdvisorOptions& options) override;
};

}  // namespace aim::advisors

#endif  // AIM_ADVISORS_DB2ADVIS_H_
