#ifndef AIM_ADVISORS_AUTOADMIN_H_
#define AIM_ADVISORS_AUTOADMIN_H_

#include "advisors/advisor.h"

namespace aim::advisors {

/// \brief AutoAdmin (Chaudhuri & Narasayya — VLDB 1997): per-query best
/// configurations via what-if, unioned into a workload-level candidate
/// set, then greedy enumeration under the budget.
class AutoAdminAdvisor : public Advisor {
 public:
  std::string name() const override { return "AutoAdmin"; }

  Result<AdvisorResult> Recommend(const workload::Workload& workload,
                                  optimizer::WhatIfOptimizer* what_if,
                                  const AdvisorOptions& options) override;
};

}  // namespace aim::advisors

#endif  // AIM_ADVISORS_AUTOADMIN_H_
