#include "advisors/aim_adapter.h"

#include <chrono>

namespace aim::advisors {

Result<AdvisorResult> AimAdvisor::Recommend(
    const workload::Workload& workload, optimizer::WhatIfOptimizer* what_if,
    const AdvisorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  core::AimOptions aim_options = base_;
  aim_options.ranking.storage_budget_bytes = options.storage_budget_bytes;
  aim_options.candidates.max_index_width = options.max_index_width;
  aim_options.validate_on_clone = false;

  core::AutomaticIndexManager aim(db_, cm_, aim_options);
  AIM_ASSIGN_OR_RETURN(core::AimReport report,
                       aim.Recommend(workload, /*monitor=*/nullptr));

  AdvisorResult result;
  for (const core::CandidateIndex& c : report.recommended) {
    result.indexes.push_back(c.def);
  }
  AIM_RETURN_NOT_OK(what_if->SetConfiguration(result.indexes));
  AIM_ASSIGN_OR_RETURN(result.final_workload_cost,
                       WorkloadCost(workload, what_if));
  what_if->ClearConfiguration();
  result.total_size_bytes =
      ConfigSizeBytes(result.indexes, what_if->catalog());
  result.what_if_calls = report.stats.what_if_calls;
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace aim::advisors
