#ifndef AIM_ADVISORS_EXTEND_H_
#define AIM_ADVISORS_EXTEND_H_

#include "advisors/advisor.h"

namespace aim::advisors {

/// \brief Extend (Schlosser, Kossmann, Boissier — ICDE 2019): greedy
/// incremental selection that grows the configuration one *attribute* at
/// a time.
///
/// Each round considers (a) adding a new single-attribute index on any
/// syntactically relevant column and (b) appending one attribute to an
/// already-selected index, and takes the move with the best cost
/// reduction per storage byte. This is the academic state of the art the
/// paper benchmarks against (and the "greedy incremental algorithm" of
/// Fig. 6) — and exactly the algorithm class whose one-column-at-a-time
/// exploration misses multi-column join-supporting indexes (Sec. VI-C).
class ExtendAdvisor : public Advisor {
 public:
  std::string name() const override { return "Extend"; }

  Result<AdvisorResult> Recommend(const workload::Workload& workload,
                                  optimizer::WhatIfOptimizer* what_if,
                                  const AdvisorOptions& options) override;
};

}  // namespace aim::advisors

#endif  // AIM_ADVISORS_EXTEND_H_
