#include "advisors/db2advis.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "advisors/dta.h"

namespace aim::advisors {

Result<AdvisorResult> Db2AdvisAdvisor::Recommend(
    const workload::Workload& workload, optimizer::WhatIfOptimizer* what_if,
    const AdvisorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  AdvisorResult result;
  what_if->reset_call_count();

  struct Scored {
    catalog::IndexDef def;
    double benefit = 0.0;
    double size = 0.0;
  };
  std::map<std::pair<catalog::TableId, std::vector<catalog::ColumnId>>,
           Scored>
      scored;

  // Per query: evaluate with that query's own candidates installed and
  // credit the ones its plan uses.
  for (const workload::Query& q : workload.queries) {
    workload::Workload single;
    single.queries.push_back(q);
    AIM_ASSIGN_OR_RETURN(
        std::vector<catalog::IndexDef> candidates,
        DtaAdvisor::EnumerateCandidates(single, what_if->catalog(),
                                        options.max_index_width));
    what_if->ClearConfiguration();
    AIM_ASSIGN_OR_RETURN(double base_cost, what_if->QueryCost(q.stmt));
    AIM_RETURN_NOT_OK(what_if->SetConfiguration(candidates));
    AIM_ASSIGN_OR_RETURN(optimizer::Plan plan, what_if->PlanQuery(q.stmt));
    const double gain =
        std::max(0.0, base_cost - plan.total_cost()) * q.weight;
    if (gain <= 0.0) continue;
    std::vector<const catalog::IndexDef*> used;
    for (const optimizer::JoinStep& step : plan.steps) {
      if (step.path.index != nullptr && step.path.index->hypothetical) {
        used.push_back(step.path.index);
      }
    }
    if (used.empty()) continue;
    for (const catalog::IndexDef* idx : used) {
      auto key = std::make_pair(idx->table, idx->columns);
      Scored& s = scored[key];
      if (s.size == 0.0) {
        s.def.table = idx->table;
        s.def.columns = idx->columns;
        s.size = what_if->catalog().IndexSizeBytes(*idx);
      }
      s.benefit += gain / static_cast<double>(used.size());
    }
  }
  what_if->ClearConfiguration();

  // Budget fill by benefit density.
  std::vector<Scored> ranked;
  for (auto& [key, s] : scored) {
    (void)key;
    ranked.push_back(std::move(s));
  }
  std::sort(ranked.begin(), ranked.end(), [](const Scored& a,
                                             const Scored& b) {
    return a.benefit / std::max(a.size, 1.0) >
           b.benefit / std::max(b.size, 1.0);
  });
  double used_bytes = 0.0;
  for (Scored& s : ranked) {
    if (used_bytes + s.size > options.storage_budget_bytes) continue;
    used_bytes += s.size;
    result.indexes.push_back(std::move(s.def));
  }

  AIM_RETURN_NOT_OK(what_if->SetConfiguration(result.indexes));
  AIM_ASSIGN_OR_RETURN(result.final_workload_cost,
                       WorkloadCost(workload, what_if));
  what_if->ClearConfiguration();
  result.total_size_bytes = used_bytes;
  result.what_if_calls = what_if->call_count();
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace aim::advisors
