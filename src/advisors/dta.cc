#include "advisors/dta.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace aim::advisors {

namespace {

/// Emits up to `max_width`-sized subsets of `cols`, each as a key order
/// with equality columns first then the rest (DTA's "seed" orders).
void EnumerateSubsets(const IndexableColumns& ic, size_t max_width,
                      std::set<std::pair<catalog::TableId,
                                         std::vector<catalog::ColumnId>>>*
                          seen,
                      std::vector<catalog::IndexDef>* out) {
  const std::vector<catalog::ColumnId>& cols = ic.all;
  const size_t n = cols.size();
  const size_t limit = std::min<size_t>(n, 16);  // defensive cap
  for (size_t mask = 1; mask < (size_t{1} << limit); ++mask) {
    if (static_cast<size_t>(__builtin_popcountll(mask)) > max_width) {
      continue;
    }
    std::vector<catalog::ColumnId> subset;
    for (size_t b = 0; b < limit; ++b) {
      if ((mask >> b) & 1) subset.push_back(cols[b]);
    }
    // Key order: equality/join columns first, then grouping/ordering,
    // then ranges (the classic heuristic seed).
    auto rank = [&](catalog::ColumnId c) {
      if (std::find(ic.equality.begin(), ic.equality.end(), c) !=
          ic.equality.end()) {
        return 0;
      }
      if (std::find(ic.join.begin(), ic.join.end(), c) != ic.join.end()) {
        return 1;
      }
      if (std::find(ic.grouping.begin(), ic.grouping.end(), c) !=
          ic.grouping.end()) {
        return 2;
      }
      if (std::find(ic.ordering.begin(), ic.ordering.end(), c) !=
          ic.ordering.end()) {
        return 3;
      }
      return 4;
    };
    std::stable_sort(subset.begin(), subset.end(),
                     [&](catalog::ColumnId a, catalog::ColumnId b) {
                       return rank(a) < rank(b);
                     });
    if (seen->emplace(ic.table, subset).second) {
      catalog::IndexDef def;
      def.table = ic.table;
      def.columns = std::move(subset);
      out->push_back(std::move(def));
    }
  }
}

}  // namespace

Result<std::vector<catalog::IndexDef>> DtaAdvisor::EnumerateCandidates(
    const workload::Workload& workload, const catalog::Catalog& catalog,
    size_t max_width) {
  std::vector<catalog::IndexDef> candidates;
  std::set<std::pair<catalog::TableId, std::vector<catalog::ColumnId>>> seen;
  for (const workload::Query& q : workload.queries) {
    AIM_ASSIGN_OR_RETURN(std::vector<IndexableColumns> per_table,
                         ExtractIndexableColumns(q.stmt, catalog));
    for (const IndexableColumns& ic : per_table) {
      EnumerateSubsets(ic, max_width, &seen, &candidates);
    }
  }
  return candidates;
}

Result<AdvisorResult> DtaAdvisor::Recommend(
    const workload::Workload& workload, optimizer::WhatIfOptimizer* what_if,
    const AdvisorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  AdvisorResult result;
  what_if->reset_call_count();

  AIM_ASSIGN_OR_RETURN(
      std::vector<catalog::IndexDef> candidates,
      EnumerateCandidates(workload, what_if->catalog(),
                          options.max_index_width));
  AIM_ASSIGN_OR_RETURN(
      result.indexes,
      GreedyForwardSelect(std::move(candidates), workload, what_if,
                          options));

  AIM_RETURN_NOT_OK(what_if->SetConfiguration(result.indexes));
  AIM_ASSIGN_OR_RETURN(result.final_workload_cost,
                       WorkloadCost(workload, what_if));
  what_if->ClearConfiguration();
  result.total_size_bytes =
      ConfigSizeBytes(result.indexes, what_if->catalog());
  result.what_if_calls = what_if->call_count();
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace aim::advisors
