#include "advisors/drop.h"

#include <algorithm>
#include <chrono>

#include "advisors/dta.h"

namespace aim::advisors {

Result<AdvisorResult> DropAdvisor::Recommend(
    const workload::Workload& workload, optimizer::WhatIfOptimizer* what_if,
    const AdvisorOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(options.time_limit_seconds));
  AdvisorResult result;
  what_if->reset_call_count();

  // Start big: the two-widest enumeration is too large for Drop; use
  // width-capped per-query candidates like the original (which started
  // from all single- and two-column indexes).
  const size_t start_width = std::min<size_t>(options.max_index_width, 2);
  AIM_ASSIGN_OR_RETURN(
      std::vector<catalog::IndexDef> config,
      DtaAdvisor::EnumerateCandidates(workload, what_if->catalog(),
                                      start_width));

  auto config_size = [&]() {
    return ConfigSizeBytes(config, what_if->catalog());
  };

  AIM_RETURN_NOT_OK(what_if->SetConfiguration(config));
  AIM_ASSIGN_OR_RETURN(double current_cost,
                       WorkloadCost(workload, what_if));

  while (!config.empty()) {
    const bool over_budget = config_size() > options.storage_budget_bytes;
    const bool timed_out = std::chrono::steady_clock::now() >= deadline;
    if (timed_out && !over_budget) break;
    if (timed_out && over_budget) {
      // Anytime degradation: past the deadline, shed the largest index
      // without re-costing until the configuration fits.
      size_t victim = 0;
      double victim_size = -1.0;
      for (size_t i = 0; i < config.size(); ++i) {
        const double s = what_if->catalog().IndexSizeBytes(config[i]);
        if (s > victim_size) {
          victim_size = s;
          victim = i;
        }
      }
      config.erase(config.begin() + victim);
      continue;
    }
    // Find the cheapest drop (enumeration bounded by the deadline; the
    // best candidate found so far is still applied).
    int best = -1;
    double best_cost = 0.0;
    for (size_t i = 0; i < config.size(); ++i) {
      std::vector<catalog::IndexDef> trial = config;
      trial.erase(trial.begin() + i);
      AIM_RETURN_NOT_OK(what_if->SetConfiguration(trial));
      AIM_ASSIGN_OR_RETURN(double cost, WorkloadCost(workload, what_if));
      if (best < 0 || cost < best_cost) {
        best = static_cast<int>(i);
        best_cost = cost;
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
    if (best < 0) break;
    const double regression = best_cost - current_cost;
    // Keep dropping while over budget; once within budget, drop only
    // indexes whose removal does not hurt (cost-neutral dead weight).
    if (!over_budget && regression > 1e-9) break;
    config.erase(config.begin() + best);
    current_cost = best_cost;
  }

  AIM_RETURN_NOT_OK(what_if->SetConfiguration(config));
  AIM_ASSIGN_OR_RETURN(result.final_workload_cost,
                       WorkloadCost(workload, what_if));
  what_if->ClearConfiguration();
  result.indexes = std::move(config);
  result.total_size_bytes =
      ConfigSizeBytes(result.indexes, what_if->catalog());
  result.what_if_calls = what_if->call_count();
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace aim::advisors
