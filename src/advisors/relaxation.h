#ifndef AIM_ADVISORS_RELAXATION_H_
#define AIM_ADVISORS_RELAXATION_H_

#include "advisors/advisor.h"

namespace aim::advisors {

/// \brief Relaxation (Bruno & Chaudhuri — SIGMOD 2005): start from an
/// "ideal" per-query configuration (every query's best candidates,
/// unconstrained) and repeatedly *relax* it — remove an index or merge
/// two indexes on the same table into one that serves both — choosing the
/// transformation with the least cost penalty per byte freed, until the
/// configuration fits the budget.
///
/// The paper calls this the only other modern algorithm that exploits
/// query structure significantly, while noting its top-down pruning makes
/// it expensive: every relaxation step re-costs the workload for every
/// possible transformation.
class RelaxationAdvisor : public Advisor {
 public:
  std::string name() const override { return "Relaxation"; }

  Result<AdvisorResult> Recommend(const workload::Workload& workload,
                                  optimizer::WhatIfOptimizer* what_if,
                                  const AdvisorOptions& options) override;

  /// Exposed for tests: merges two same-table index definitions into one
  /// that serves both key orders as well as possible (b's columns
  /// appended to a's, duplicates dropped, truncated to max_width).
  static catalog::IndexDef MergeIndexes(const catalog::IndexDef& a,
                                        const catalog::IndexDef& b,
                                        size_t max_width);
};

}  // namespace aim::advisors

#endif  // AIM_ADVISORS_RELAXATION_H_
