#ifndef AIM_ADVISORS_ADVISOR_H_
#define AIM_ADVISORS_ADVISOR_H_

#include <memory>
#include <string>
#include <vector>

#include "optimizer/what_if.h"
#include "workload/workload.h"

namespace aim::advisors {

/// Common knobs across advisors (mirrors the Kossmann et al. framework
/// setup used by the paper's Sec. VI-B comparison).
struct AdvisorOptions {
  /// Storage budget for recommended indexes, bytes.
  double storage_budget_bytes = 1e18;
  /// Maximum index width to enumerate (the paper caps DTA at 4 for TPC-H
  /// and 3 for JOB to keep it tractable).
  size_t max_index_width = 3;
  /// Wall-clock limit for anytime algorithms (DTA).
  double time_limit_seconds = 120.0;
};

/// What an advisor produced, and what it cost to produce it.
struct AdvisorResult {
  std::vector<catalog::IndexDef> indexes;
  double runtime_seconds = 0.0;
  uint64_t what_if_calls = 0;
  /// Estimated workload cost under the final configuration.
  double final_workload_cost = 0.0;
  double total_size_bytes = 0.0;
};

/// \brief Abstract index advisor: the interface shared by AIM's wrapper
/// and the baselines of Fig. 4–6 (Extend, DTA, Drop, DB2Advis,
/// AutoAdmin).
class Advisor {
 public:
  virtual ~Advisor() = default;
  virtual std::string name() const = 0;

  /// Recommends a configuration for `workload` within `options`'s budget,
  /// costing candidates through `what_if` (whose call counter measures
  /// optimizer reliance).
  virtual Result<AdvisorResult> Recommend(
      const workload::Workload& workload,
      optimizer::WhatIfOptimizer* what_if,
      const AdvisorOptions& options) = 0;
};

// ---- shared helpers ---------------------------------------------------------

/// Columns of one table that are *syntactically relevant* for indexing a
/// query: sargable predicate columns, join columns, grouping and ordering
/// columns (the classic candidate universe of imperative advisors).
struct IndexableColumns {
  catalog::TableId table = catalog::kInvalidTable;
  std::vector<catalog::ColumnId> equality;   // eq/IN/IS NULL predicate cols
  std::vector<catalog::ColumnId> range;      // range/LIKE-prefix cols
  std::vector<catalog::ColumnId> join;       // join-edge cols
  std::vector<catalog::ColumnId> grouping;   // GROUP BY cols
  std::vector<catalog::ColumnId> ordering;   // ORDER BY cols (in order)
  std::vector<catalog::ColumnId> all;        // union, stable order
};

/// Extracts indexable columns per (query, table).
Result<std::vector<IndexableColumns>> ExtractIndexableColumns(
    const sql::Statement& stmt, const catalog::Catalog& catalog);

/// Weighted workload cost under the what-if optimizer's current
/// configuration.
Result<double> WorkloadCost(const workload::Workload& workload,
                            optimizer::WhatIfOptimizer* what_if);

/// Sum of estimated sizes of `config` in `catalog`.
double ConfigSizeBytes(const std::vector<catalog::IndexDef>& config,
                       const catalog::Catalog& catalog);

/// True if `config` already contains an index with the same table +
/// columns.
bool ConfigContains(const std::vector<catalog::IndexDef>& config,
                    const catalog::IndexDef& def);

/// \brief Greedy forward selection shared by DTA-style and AutoAdmin-style
/// enumeration: repeatedly add the candidate with the best
/// cost-reduction-per-byte until no candidate helps, the budget is
/// exhausted, or the deadline passes.
Result<std::vector<catalog::IndexDef>> GreedyForwardSelect(
    std::vector<catalog::IndexDef> candidates,
    const workload::Workload& workload, optimizer::WhatIfOptimizer* what_if,
    const AdvisorOptions& options);

}  // namespace aim::advisors

#endif  // AIM_ADVISORS_ADVISOR_H_
