#include "core/aim.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/retry.h"
#include "obs/trace.h"
#include "optimizer/predicate.h"
#include "storage/index_transaction.h"

namespace aim::core {

namespace {

/// Appends `extra` partial orders, deduplicating by canonical key.
void AppendUnique(std::vector<PartialOrder>* all,
                  std::unordered_set<std::string>* seen,
                  std::vector<PartialOrder> extra) {
  for (PartialOrder& po : extra) {
    if (seen->insert(po.CanonicalKey()).second) {
      all->push_back(std::move(po));
    }
  }
}

}  // namespace

std::vector<SelectedQuery> AutomaticIndexManager::SelectQueries(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor) const {
  if (monitor != nullptr) {
    return SelectRepresentativeWorkload(workload, *monitor,
                                        options_.selection);
  }
  // Bootstrap mode: no execution statistics yet; take every query with
  // its static weight.
  std::vector<SelectedQuery> selected;
  selected.reserve(workload.size());
  for (const workload::Query& q : workload.queries) {
    SelectedQuery sq;
    sq.query = &q;
    selected.push_back(std::move(sq));
  }
  return selected;
}

common::ThreadPool* AutomaticIndexManager::EnsurePool() {
  if (options_.shared_pool != nullptr) {
    pool_.reset();
    return options_.shared_pool;
  }
  if (options_.num_threads <= 1) {
    pool_.reset();
    return nullptr;
  }
  if (pool_ == nullptr ||
      pool_->worker_count() != options_.num_threads) {
    pool_ = std::make_unique<common::ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

Result<AimReport> AutomaticIndexManager::Recommend(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor) {
  obs::Span run_span(obs::Tracer::Get(), "aim.recommend");
  const auto t0 = std::chrono::steady_clock::now();
  AimReport report;
  common::ThreadPool* pool = EnsurePool();

  // Line 0 (extension): workload compression — fold the interval's raw
  // statements into weighted cluster representatives, so every later
  // phase scales with clusters, not statements.
  const workload::Workload* effective = &workload;
  if (options_.compression.enabled && !workload.empty()) {
    obs::PhaseTimer timer("workload.compress",
                          &report.stats.compression_seconds);
    report.compressed = std::make_shared<const workload::CompressedWorkload>(
        workload::WorkloadCompressor(options_.compression)
            .Compress(workload, monitor, &db_->catalog()));
    effective = &report.compressed->workload;
    report.stats.compression_statements_in =
        report.compressed->stats.statements_in;
    report.stats.compression_clusters = report.compressed->stats.clusters;
    report.stats.compression_ratio = report.compressed->stats.ratio();
    timer.span()->SetAttr("statements_in",
                          report.stats.compression_statements_in);
    timer.span()->SetAttr("clusters", report.stats.compression_clusters);
    timer.span()->SetAttr("ratio", report.stats.compression_ratio);
  }

  // Line 1: representative workload selection.
  {
    obs::PhaseTimer timer("aim.selection", &report.stats.selection_seconds);
    if (report.compressed != nullptr && monitor != nullptr) {
      report.selected_workload = SelectCompressedWorkload(
          *report.compressed, *monitor, options_.selection);
    } else {
      report.selected_workload = SelectQueries(*effective, monitor);
    }
    report.stats.queries_selected = report.selected_workload.size();
    timer.span()->SetAttr("queries_selected", report.stats.queries_selected);
  }
  if (report.selected_workload.empty()) return report;

  optimizer::WhatIfOptimizer what_if(db_->catalog(), cm_);
  optimizer::WhatIfCache local_cache(options_.what_if_cache_entries);
  optimizer::WhatIfCache* cache = options_.shared_cache != nullptr
                                      ? options_.shared_cache
                                      : &local_cache;
  const bool cache_enabled =
      options_.shared_cache != nullptr || options_.what_if_cache_entries > 0;
  if (cache_enabled) what_if.set_cache(cache);
  // Shared caches arrive with history: report this run's activity as
  // deltas, and record how warm the cache was when the run began.
  const optimizer::WhatIfCacheStats cache_before = cache->stats();
  report.stats.cache_entries_at_start = cache_enabled ? cache->size() : 0;
  report.stats.cache_warm_start = report.stats.cache_entries_at_start > 0;
  CandidateGenerator generator(what_if.catalog(), &what_if,
                               options_.candidates);

  // Line 2: candidate generation (two-phase, Sec. III-B). Each query's
  // generation is independent (DatalessIndexCost restores the ambient
  // configuration), so the per-query loop fans out over the pool with
  // per-worker what-if clones; the dedup merge stays serial in query
  // order, making the result bit-identical to the serial fallback.
  std::vector<PartialOrder> orders;
  std::unordered_set<std::string> seen;
  CandidateCache* const ccache = options_.candidate_cache;
  auto generate_pass = [&](bool covering_enabled) -> Status {
    CandidateGenOptions pass_opts = options_.candidates;
    pass_opts.enable_covering = covering_enabled;
    const size_t n = report.selected_workload.size();
    std::vector<std::vector<PartialOrder>> per_query(n);
    // Incremental candidate generation: per-cluster results are served
    // from the carried cache when this pass's full input fingerprint
    // (statement × configuration × schema/stats × options) matches a
    // previous interval's. The context must be fingerprinted on the
    // master optimizer before the fan-out (phase 2 runs under the staged
    // phase-1 configuration).
    std::vector<uint8_t> cache_hit(n, 0);
    const uint64_t context =
        ccache != nullptr
            ? CandidateCache::ContextFingerprint(
                  db_->catalog().SchemaStatsFingerprint(),
                  what_if.config_fingerprint(), pass_opts)
            : 0;
    optimizer::ParallelWhatIf(
        pool, n, &what_if,
        [&](optimizer::WhatIfOptimizer* w, size_t qi) {
          const SelectedQuery& sq = report.selected_workload[qi];
          if (sq.query->stmt.kind == sql::Statement::Kind::kInsert) {
            return;
          }
          const workload::QueryStats* stats =
              sq.stats.executions > 0 ? &sq.stats : nullptr;
          uint64_t cluster_key = 0;
          if (ccache != nullptr) {
            // Only the covering pass reads stats (TryCoveringIndex's
            // seek-volume check), so only it keys on the execution count.
            const uint64_t covering_execs =
                covering_enabled && stats != nullptr ? stats->executions : 0;
            cluster_key =
                CandidateCache::ClusterKey(sq.query->stmt, covering_execs);
            if (ccache->Lookup(cluster_key, context, &per_query[qi])) {
              cache_hit[qi] = 1;
              return;
            }
          }
          Result<optimizer::AnalyzedQuery> aq =
              optimizer::Analyze(sq.query->stmt, w->catalog());
          if (!aq.ok()) {
            AIM_LOG(Warn) << "skipping query: " << aq.status().ToString();
            return;
          }
          CandidateGenerator pass_gen(w->catalog(), w, pass_opts);
          per_query[qi] =
              pass_gen.GenerateForQuery(*sq.query, aq.ValueOrDie(), stats);
          if (ccache != nullptr) {
            ccache->Insert(cluster_key, context, per_query[qi]);
          }
        });
    if (ccache != nullptr) {
      for (size_t qi = 0; qi < n; ++qi) {
        const SelectedQuery& sq = report.selected_workload[qi];
        if (sq.query->stmt.kind == sql::Statement::Kind::kInsert) continue;
        ++report.stats.candgen_clusters_total;
        if (cache_hit[qi]) {
          ++report.stats.candgen_clusters_reused;
        } else {
          ++report.stats.candgen_clusters_recomputed;
        }
      }
    }
    for (std::vector<PartialOrder>& pos : per_query) {
      AppendUnique(&orders, &seen, std::move(pos));
    }
    return Status::OK();
  };

  // Phase 1: narrow (non-covering) candidates for every selected query.
  {
    obs::PhaseTimer timer("aim.candgen", &report.stats.candgen_seconds);
    // Spans both generate passes; attrs carry the reuse counters.
    std::optional<obs::Span> incremental_span;
    if (ccache != nullptr) {
      incremental_span.emplace(obs::Tracer::Get(), "candgen.incremental");
    }
    AIM_RETURN_NOT_OK(generate_pass(/*covering_enabled=*/false));

    if (options_.two_phase && options_.candidates.enable_covering) {
      // Stage all phase-1 candidates as hypothetical indexes so the
      // covering check (Sec. III-D) can ask "given the best selectivity
      // an index could already provide, is the PK seek volume still
      // high?".
      std::vector<PartialOrder> merged1 =
          MergePartialOrders(orders, options_.merge);
      CandidateGenerator tmp_gen(what_if.catalog(), &what_if,
                                 options_.candidates);
      std::vector<catalog::IndexDef> phase1 =
          tmp_gen.GenerateCandidateIndexPerPO(merged1);
      AIM_RETURN_NOT_OK(what_if.SetConfiguration(phase1));
      AIM_RETURN_NOT_OK(generate_pass(/*covering_enabled=*/true));
      what_if.ClearConfiguration();
    }
    if (incremental_span.has_value()) {
      static obs::Counter* const clusters_total =
          obs::MetricsRegistry::Global()->counter(
              "candgen.clusters_total");
      static obs::Counter* const clusters_reused =
          obs::MetricsRegistry::Global()->counter(
              "candgen.clusters_reused");
      static obs::Counter* const clusters_recomputed =
          obs::MetricsRegistry::Global()->counter(
              "candgen.clusters_recomputed");
      clusters_total->Add(report.stats.candgen_clusters_total);
      clusters_reused->Add(report.stats.candgen_clusters_reused);
      clusters_recomputed->Add(report.stats.candgen_clusters_recomputed);
      incremental_span->SetAttr("clusters_total",
                                report.stats.candgen_clusters_total);
      incremental_span->SetAttr("clusters_reused",
                                report.stats.candgen_clusters_reused);
      incremental_span->SetAttr("clusters_recomputed",
                                report.stats.candgen_clusters_recomputed);
      incremental_span->End();
    }
    report.stats.partial_orders_generated = orders.size();
    timer.span()->SetAttr("partial_orders",
                          report.stats.partial_orders_generated);
  }

  {
    obs::PhaseTimer timer("aim.ranking", &report.stats.ranking_seconds);

    // Merge partial orders to a fixpoint (line 6 of Algorithm 2).
    std::vector<PartialOrder> merged;
    {
      obs::Span merge_span(obs::Tracer::Get(), "aim.merge");
      merged = MergePartialOrders(std::move(orders), options_.merge);
      report.stats.partial_orders_after_merge = merged.size();
      merge_span.SetAttr("partial_orders_after_merge", merged.size());
    }

    // One concrete index per final partial order (line 7), minus indexes
    // that already exist for real.
    std::vector<catalog::IndexDef> candidates =
        generator.GenerateCandidateIndexPerPO(merged);
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&](const catalog::IndexDef& def) {
                         return db_->catalog().FindIndex(def.table,
                                                         def.columns) !=
                                nullptr;
                       }),
        candidates.end());
    // Quarantined arms never re-enter the pipeline: filtering the serial
    // concrete-candidate list (not the parallel generation) keeps the
    // exclusion bit-identical at any worker count.
    if (options_.exploration_gate != nullptr) {
      const size_t before = candidates.size();
      candidates.erase(
          std::remove_if(candidates.begin(), candidates.end(),
                         [&](const catalog::IndexDef& def) {
                           return options_.exploration_gate->IsQuarantined(
                               def);
                         }),
          candidates.end());
      report.exploration.candidates_quarantined =
          before - candidates.size();
      if (report.exploration.candidates_quarantined > 0) {
        static obs::Counter* const quarantined_candidates =
            obs::MetricsRegistry::Global()->counter(
                "aim.exploration.candidates_quarantined");
        quarantined_candidates->Add(
            report.exploration.candidates_quarantined);
      }
    }
    report.stats.candidates_evaluated = candidates.size();

    // Line 4: rank by utility and select under the storage budget
    // (greedy knapsack).
    {
      obs::Span knapsack_span(obs::Tracer::Get(), "aim.knapsack");
      RankingResult ranking =
          RankAndSelect(candidates, report.selected_workload, &what_if,
                        options_.ranking, pool);
      report.recommended = std::move(ranking.selected);
      knapsack_span.SetAttr("candidates",
                            report.stats.candidates_evaluated);
      knapsack_span.SetAttr("selected", report.recommended.size());
    }
    report.stats.indexes_recommended = report.recommended.size();
    report.explanations = ExplainAll(report.recommended,
                                     report.selected_workload,
                                     db_->catalog());
  }

  report.stats.what_if_calls = what_if.call_count();
  const optimizer::WhatIfCacheStats cache_stats = cache->stats();
  report.stats.cache_hits = cache_stats.hits - cache_before.hits;
  report.stats.cache_misses = cache_stats.misses - cache_before.misses;
  report.stats.cache_evictions =
      cache_stats.evictions - cache_before.evictions;
  report.stats.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  run_span.SetAttr("what_if_calls", report.stats.what_if_calls);
  run_span.SetAttr("cache_hits", report.stats.cache_hits);
  run_span.SetAttr("cache_misses", report.stats.cache_misses);
  run_span.SetAttr("recommended", report.recommended.size());
  return report;
}

Result<AimReport> AutomaticIndexManager::RunOnce(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor) {
  obs::Span run_span(obs::Tracer::Get(), "aim.run_once");
  AIM_ASSIGN_OR_RETURN(AimReport report, Recommend(workload, monitor));
  const auto t0 = std::chrono::steady_clock::now();

  {
    obs::PhaseTimer timer("aim.validation",
                          &report.stats.validation_seconds);
    if (options_.validate_on_clone && !report.recommended.empty()) {
      // Line 3: materialize on a clone and keep only validated indexes.
      // Replay dedup rides the same switch as the plan-cost cache: with
      // memoization off the engine behaves exactly like the pre-cache
      // one.
      CloneValidationOptions validation_opts = options_.validation;
      validation_opts.dedup_replay =
          validation_opts.dedup_replay ||
          options_.what_if_cache_entries > 0;
      AIM_ASSIGN_OR_RETURN(
          report.validation,
          ValidateOnClone(*db_, report.recommended,
                          report.selected_workload, cm_,
                          validation_opts, EnsurePool()));
      report.stats.indexes_rejected_by_validation =
          report.recommended.size() - report.validation.accepted.size();
      report.recommended = report.validation.accepted;
      report.explanations = ExplainAll(report.recommended,
                                       report.selected_workload,
                                       db_->catalog());
      timer.span()->SetAttr("executed", report.validation.executed);
      timer.span()->SetAttr(
          "rejected", report.stats.indexes_rejected_by_validation);
    }
  }

  if (options_.exploration_gate != nullptr) {
    // Bandit admission: rank the validated set by UCB score and admit
    // under the interval's regret budget; the rest defer to the next
    // interval (by which time admitted arms have become real indexes and
    // left the candidate pool, freeing the budget).
    obs::Span gate_span(obs::Tracer::Get(), "exploration.gate");
    ExplorationGate* gate = options_.exploration_gate;
    AdmissionDecision decision = gate->Admit(report.recommended);
    report.exploration.gated = true;
    report.exploration.admitted = decision.admitted.size();
    report.exploration.deferred = decision.deferred.size();
    report.exploration.projected_regret_seconds =
        decision.projected_regret_seconds;
    report.exploration.regret_budget_seconds =
        gate->options().regret_budget_seconds;
    if (!decision.deferred.empty()) {
      report.recommended = decision.admitted;
      report.explanations = ExplainAll(report.recommended,
                                       report.selected_workload,
                                       db_->catalog());
    }
    static obs::Counter* const admitted = obs::MetricsRegistry::Global()
        ->counter("aim.exploration.admitted");
    static obs::Counter* const deferred = obs::MetricsRegistry::Global()
        ->counter("aim.exploration.deferred");
    admitted->Add(report.exploration.admitted);
    deferred->Add(report.exploration.deferred);
    gate_span.SetAttr("admitted", report.exploration.admitted);
    gate_span.SetAttr("deferred", report.exploration.deferred);
    gate_span.SetAttr("projected_regret_seconds",
                      report.exploration.projected_regret_seconds);
  }

  if (options_.deployment.ordered) {
    obs::PhaseTimer timer("aim.apply", &report.stats.apply_seconds);
    AIM_FAULT_POINT("core.apply");
    AIM_RETURN_NOT_OK(ApplyOrdered(&report));
  } else {
    obs::PhaseTimer timer("aim.apply", &report.stats.apply_seconds);
    // Materialize the production indexes atomically: a failure on the
    // k-th build rolls back the k-1 already-installed indexes, so
    // production is only ever the original configuration or the
    // fully-validated new one. With an online-apply target, the target
    // (not the tuning database) receives the indexes via side-build +
    // delta catch-up + bounded-stall swap, and the rollback is
    // latch-aware so it is safe under live traffic.
    AIM_FAULT_POINT("core.apply");
    const bool online = options_.online_apply_db != nullptr;
    storage::Database* target = online ? options_.online_apply_db : db_;
    storage::IndexSetTransaction txn(target,
                                     online ? &target->latch() : nullptr);
    RetryPolicy retry(options_.validation.retry);
    storage::OnlineIndexBuilder builder(target, options_.online);
    for (const CandidateIndex& c : report.recommended) {
      catalog::IndexDef def = c.def;
      def.hypothetical = false;
      def.id = catalog::kInvalidIndex;
      def.created_by_automation = true;
      if (online) {
        Result<storage::OnlineBuildReport> built =
            builder.Build(std::move(def), &txn);
        if (built.ok()) {
          const storage::OnlineBuildReport& r = built.ValueOrDie();
          ++report.stats.online_builds;
          report.stats.online_delta_applied +=
              r.delta_applied + r.swap_tail_applied;
          report.stats.online_max_stall_seconds = std::max(
              report.stats.online_max_stall_seconds, r.stall_seconds);
        } else if (built.status().code() != Status::Code::kAlreadyExists) {
          return built.status();  // txn dtor rolls back prior installs
        }
        continue;
      }
      Result<catalog::IndexId> id =
          retry.Run([&] { return txn.CreateIndex(def); });
      if (!id.ok() &&
          id.status().code() != Status::Code::kAlreadyExists) {
        return id.status();  // txn destructor rolls back prior creates
      }
    }
    txn.Commit();
    report.stats.indexes_recommended = report.recommended.size();
    timer.span()->SetAttr("indexes_applied", report.recommended.size());
  }
  report.stats.runtime_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

Status AutomaticIndexManager::ApplyOrdered(AimReport* report) {
  static obs::Counter* const steps_counter =
      obs::MetricsRegistry::Global()->counter("aim.deploy.steps");
  static obs::Counter* const failures_counter =
      obs::MetricsRegistry::Global()->counter("aim.deploy.step_failures");
  DeploymentPlanner planner(options_.deployment);
  const DeploymentPlan plan = planner.Plan(report->recommended);
  report->deployment.ordered = true;
  report->deployment.deferred_for_storage =
      plan.deferred_for_storage.size();
  report->deployment.total_benefit_seconds = plan.total_benefit_seconds;
  report->deployment.modeled_makespan_seconds = plan.makespan_seconds;
  report->deployment.modeled_time_to_half_benefit_seconds =
      plan.TimeToBenefitFraction(0.5);

  const bool online = options_.online_apply_db != nullptr;
  storage::Database* target = online ? options_.online_apply_db : db_;
  RetryPolicy retry(options_.validation.retry);
  storage::OnlineIndexBuilder builder(target, options_.online);
  std::vector<CandidateIndex> installed;
  for (const DeploymentStep& s : plan.steps) {
    DeploymentStepResult result;
    result.def = s.index.def;
    result.def.hypothetical = false;
    result.def.id = catalog::kInvalidIndex;
    result.def.created_by_automation = true;
    result.slot = s.slot;
    result.modeled_start_seconds = s.start_seconds;
    result.modeled_finish_seconds = s.finish_seconds;
    result.benefit_seconds = s.index.benefit;
    result.cumulative_benefit_seconds = s.cumulative_benefit_seconds;
    obs::Span step_span(obs::Tracer::Get(), "deploy.step");
    step_span.SetAttr("slot", static_cast<uint64_t>(s.slot));
    step_span.SetAttr("benefit_seconds", s.index.benefit);
    step_span.SetAttr("cumulative_benefit_seconds",
                      s.cumulative_benefit_seconds);
    const auto step_t0 = std::chrono::steady_clock::now();
    Status st = AIM_FAULT_POINT_STATUS("deploy.step");
    {
      // One transaction per step: its destructor rolls back only this
      // step's build on failure. Earlier commits stand — per-step
      // rollback is the point of ordered deployment.
      storage::IndexSetTransaction step_txn(
          target, online ? &target->latch() : nullptr);
      if (st.ok()) {
        if (online) {
          Result<storage::OnlineBuildReport> built =
              builder.Build(result.def, &step_txn);
          if (built.ok()) {
            const storage::OnlineBuildReport& r = built.ValueOrDie();
            ++report->stats.online_builds;
            report->stats.online_delta_applied +=
                r.delta_applied + r.swap_tail_applied;
            report->stats.online_max_stall_seconds = std::max(
                report->stats.online_max_stall_seconds, r.stall_seconds);
          } else if (built.status().code() !=
                     Status::Code::kAlreadyExists) {
            st = built.status();
          }
        } else {
          Result<catalog::IndexId> id =
              retry.Run([&] { return step_txn.CreateIndex(result.def); });
          if (!id.ok() &&
              id.status().code() != Status::Code::kAlreadyExists) {
            st = id.status();
          }
        }
      }
      if (st.ok()) step_txn.Commit();
    }
    result.measured_build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      step_t0)
            .count();
    result.installed = st.ok();
    if (st.ok()) {
      installed.push_back(s.index);
      ++report->deployment.installed;
      steps_counter->Add();
    } else {
      result.error = st.ToString();
      ++report->deployment.failed_steps;
      failures_counter->Add();
      AIM_LOG(Warn) << "deployment step failed (rolled back, continuing): "
                    << st.ToString();
    }
    step_span.SetAttr("installed", result.installed);
    if (!st.ok()) step_span.SetAttr("error", result.error);
    report->deployment.steps.push_back(std::move(result));
  }
  report->recommended = std::move(installed);
  report->stats.indexes_recommended = report->recommended.size();
  return Status::OK();
}

}  // namespace aim::core
