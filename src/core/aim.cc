#include "core/aim.h"

#include <chrono>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/retry.h"
#include "optimizer/predicate.h"
#include "storage/index_transaction.h"

namespace aim::core {

namespace {

/// Appends `extra` partial orders, deduplicating by canonical key.
void AppendUnique(std::vector<PartialOrder>* all,
                  std::unordered_set<std::string>* seen,
                  std::vector<PartialOrder> extra) {
  for (PartialOrder& po : extra) {
    if (seen->insert(po.CanonicalKey()).second) {
      all->push_back(std::move(po));
    }
  }
}

}  // namespace

std::vector<SelectedQuery> AutomaticIndexManager::SelectQueries(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor) const {
  if (monitor != nullptr) {
    return SelectRepresentativeWorkload(workload, *monitor,
                                        options_.selection);
  }
  // Bootstrap mode: no execution statistics yet; take every query with
  // its static weight.
  std::vector<SelectedQuery> selected;
  selected.reserve(workload.size());
  for (const workload::Query& q : workload.queries) {
    SelectedQuery sq;
    sq.query = &q;
    selected.push_back(std::move(sq));
  }
  return selected;
}

Result<AimReport> AutomaticIndexManager::Recommend(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor) {
  const auto t0 = std::chrono::steady_clock::now();
  AimReport report;

  // Line 1: representative workload selection.
  report.selected_workload = SelectQueries(workload, monitor);
  report.stats.queries_selected = report.selected_workload.size();
  if (report.selected_workload.empty()) return report;

  optimizer::WhatIfOptimizer what_if(db_->catalog(), cm_);
  CandidateGenerator generator(what_if.catalog(), &what_if,
                               options_.candidates);

  // Line 2: candidate generation (two-phase, Sec. III-B).
  std::vector<PartialOrder> orders;
  std::unordered_set<std::string> seen;
  auto generate_pass = [&](bool covering_enabled) -> Status {
    CandidateGenOptions pass_opts = options_.candidates;
    pass_opts.enable_covering = covering_enabled;
    CandidateGenerator pass_gen(what_if.catalog(), &what_if, pass_opts);
    for (const SelectedQuery& sq : report.selected_workload) {
      if (sq.query->stmt.kind == sql::Statement::Kind::kInsert) continue;
      Result<optimizer::AnalyzedQuery> aq =
          optimizer::Analyze(sq.query->stmt, what_if.catalog());
      if (!aq.ok()) {
        AIM_LOG(Warn) << "skipping query: " << aq.status().ToString();
        continue;
      }
      const workload::QueryStats* stats =
          sq.stats.executions > 0 ? &sq.stats : nullptr;
      AppendUnique(&orders, &seen,
                   pass_gen.GenerateForQuery(*sq.query, aq.ValueOrDie(),
                                             stats));
    }
    return Status::OK();
  };

  // Phase 1: narrow (non-covering) candidates for every selected query.
  AIM_RETURN_NOT_OK(generate_pass(/*covering_enabled=*/false));

  if (options_.two_phase && options_.candidates.enable_covering) {
    // Stage all phase-1 candidates as hypothetical indexes so the
    // covering check (Sec. III-D) can ask "given the best selectivity an
    // index could already provide, is the PK seek volume still high?".
    std::vector<PartialOrder> merged1 =
        MergePartialOrders(orders, options_.merge);
    CandidateGenerator tmp_gen(what_if.catalog(), &what_if,
                               options_.candidates);
    std::vector<catalog::IndexDef> phase1 =
        tmp_gen.GenerateCandidateIndexPerPO(merged1);
    AIM_RETURN_NOT_OK(what_if.SetConfiguration(phase1));
    AIM_RETURN_NOT_OK(generate_pass(/*covering_enabled=*/true));
    what_if.ClearConfiguration();
  }
  report.stats.partial_orders_generated = orders.size();

  // Merge partial orders to a fixpoint (line 6 of Algorithm 2).
  std::vector<PartialOrder> merged =
      MergePartialOrders(std::move(orders), options_.merge);
  report.stats.partial_orders_after_merge = merged.size();

  // One concrete index per final partial order (line 7), minus indexes
  // that already exist for real.
  std::vector<catalog::IndexDef> candidates =
      generator.GenerateCandidateIndexPerPO(merged);
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [&](const catalog::IndexDef& def) {
                       return db_->catalog().FindIndex(def.table,
                                                       def.columns) !=
                              nullptr;
                     }),
      candidates.end());
  report.stats.candidates_evaluated = candidates.size();

  // Line 4: rank by utility and select under the storage budget.
  RankingResult ranking = RankAndSelect(candidates,
                                        report.selected_workload, &what_if,
                                        options_.ranking);
  report.recommended = std::move(ranking.selected);
  report.stats.indexes_recommended = report.recommended.size();
  report.explanations = ExplainAll(report.recommended,
                                   report.selected_workload,
                                   db_->catalog());

  report.stats.what_if_calls = what_if.call_count();
  report.stats.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

Result<AimReport> AutomaticIndexManager::RunOnce(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor) {
  AIM_ASSIGN_OR_RETURN(AimReport report, Recommend(workload, monitor));
  const auto t0 = std::chrono::steady_clock::now();

  if (options_.validate_on_clone && !report.recommended.empty()) {
    // Line 3: materialize on a clone and keep only validated indexes.
    AIM_ASSIGN_OR_RETURN(
        report.validation,
        ValidateOnClone(*db_, report.recommended,
                        report.selected_workload, cm_,
                        options_.validation));
    report.stats.indexes_rejected_by_validation =
        report.recommended.size() - report.validation.accepted.size();
    report.recommended = report.validation.accepted;
    report.explanations = ExplainAll(report.recommended,
                                     report.selected_workload,
                                     db_->catalog());
  }

  // Materialize the production indexes atomically: a failure on the k-th
  // build rolls back the k-1 already-installed indexes, so production is
  // only ever the original configuration or the fully-validated new one.
  AIM_FAULT_POINT("core.apply");
  storage::IndexSetTransaction txn(db_);
  RetryPolicy retry(options_.validation.retry);
  for (const CandidateIndex& c : report.recommended) {
    catalog::IndexDef def = c.def;
    def.hypothetical = false;
    def.id = catalog::kInvalidIndex;
    def.created_by_automation = true;
    Result<catalog::IndexId> id =
        retry.Run([&] { return txn.CreateIndex(def); });
    if (!id.ok() &&
        id.status().code() != Status::Code::kAlreadyExists) {
      return id.status();  // txn destructor rolls back prior creates
    }
  }
  txn.Commit();
  report.stats.indexes_recommended = report.recommended.size();
  report.stats.runtime_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace aim::core
