#include "core/explain.h"

#include <algorithm>

#include "common/strings.h"

namespace aim::core {

std::string ExplainRecommendation(const CandidateIndex& candidate,
                                  const std::vector<SelectedQuery>& queries,
                                  const catalog::Catalog& catalog) {
  std::string out = "CREATE INDEX ON " +
                    catalog.DescribeIndex(candidate.def) + "\n";
  out += StringPrintf(
      "  expected benefit: %.4f CPU-s/interval, maintenance: %.4f "
      "CPU-s/interval, storage: %s\n",
      candidate.benefit, candidate.maintenance,
      HumanBytes(candidate.size_bytes).c_str());
  out += StringPrintf("  utility density: %.3g CPU-s per MiB\n",
                      candidate.density() * 1024.0 * 1024.0);
  // List benefiting queries with their observed statistics.
  size_t listed = 0;
  for (uint64_t fp : candidate.benefiting_queries) {
    for (const SelectedQuery& sq : queries) {
      if (sq.query->fingerprint != fp) continue;
      if (sq.stats.executions > 0) {
        out += StringPrintf(
            "  serves: %s\n    (execs=%llu, cpu_avg=%.5fs, ddr=%.3f, "
            "expected benefit=%.5fs/exec)\n",
            sq.query->normalized_sql.c_str(),
            static_cast<unsigned long long>(sq.stats.executions),
            sq.stats.cpu_avg(), sq.stats.ddr_avg(), sq.expected_benefit);
      } else {
        // Bootstrap mode: no observed statistics yet, weights stand in
        // for frequencies.
        out += StringPrintf("  serves: %s\n    (bootstrap, weight=%.1f)\n",
                            sq.query->normalized_sql.c_str(),
                            sq.query->weight);
      }
      ++listed;
      break;
    }
    if (listed >= 5) {
      out += StringPrintf("  ... and %zu more queries\n",
                          candidate.benefiting_queries.size() - listed);
      break;
    }
  }
  return out;
}

std::vector<std::string> ExplainAll(
    const std::vector<CandidateIndex>& selection,
    const std::vector<SelectedQuery>& queries,
    const catalog::Catalog& catalog) {
  std::vector<std::string> out;
  out.reserve(selection.size());
  for (const CandidateIndex& c : selection) {
    out.push_back(ExplainRecommendation(c, queries, catalog));
  }
  return out;
}

}  // namespace aim::core
