#ifndef AIM_CORE_RANKING_H_
#define AIM_CORE_RANKING_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/workload_selection.h"
#include "optimizer/what_if.h"

namespace aim::core {

/// \brief A concrete candidate index with its utility accounting
/// (Sec. III-F).
struct CandidateIndex {
  catalog::IndexDef def;
  /// Σ_q s_{i,q} · U₊(q, I) · freq — CPU seconds per interval gained.
  double benefit = 0.0;
  /// u₋(i) of Eq. 8 — CPU seconds per interval spent on maintenance.
  double maintenance = 0.0;
  double size_bytes = 0.0;
  /// Fingerprints of queries whose plans use this index.
  std::vector<uint64_t> benefiting_queries;

  /// Overall utility u(i) = benefit − maintenance.
  double utility() const { return benefit - maintenance; }
  /// Knapsack ordering criterion: utility per byte of storage.
  double density() const {
    return utility() / (size_bytes > 1.0 ? size_bytes : 1.0);
  }
};

struct RankingOptions {
  /// Storage budget for new indexes, bytes (B of the problem statement).
  double storage_budget_bytes = 1e18;
  /// Δt used to convert per-execution stats into rates.
  double interval_seconds = 60.0;
  /// Sharded-deployment economics (Sec. VIII-b): every shard stores every
  /// index, so the effective storage cost of a candidate is its size
  /// times this factor (the shard count). Benefits come from aggregated
  /// cross-shard statistics and are not multiplied.
  double storage_replication_factor = 1.0;
};

struct RankingResult {
  std::vector<CandidateIndex> selected;
  std::vector<CandidateIndex> rejected;
  double selected_bytes = 0.0;
  /// What-if optimizer calls spent by this ranking pass, aggregated over
  /// every per-worker optimizer clone (each worker counts locally; the
  /// totals are folded together after the parallel phases join).
  uint64_t what_if_calls = 0;
};

/// \brief Ranks candidates by utility (Eqs. 7–8) and selects a subset
/// under the storage budget, knapsack-style by utility density
/// (Sec. III-F).
///
/// The gain U₊ of each query is computed from two what-if plans (current
/// configuration vs. all candidates installed) and distributed across the
/// candidate indexes its new plan uses, proportional to each index's
/// estimated I/O reduction versus a table scan. Maintenance u₋ is read
/// off the DML plans' per-index maintenance costs.
///
/// Both per-query planning loops fan out over `pool` (per-worker what-if
/// clones, results slotted by query index, benefit accumulation kept
/// serial in query order) and are bit-identical to the serial fallback
/// (`pool == nullptr` or a single-worker pool). When `what_if` carries a
/// WhatIfCache, duplicate statements are planned once and shared.
RankingResult RankAndSelect(const std::vector<catalog::IndexDef>& candidates,
                            const std::vector<SelectedQuery>& queries,
                            optimizer::WhatIfOptimizer* what_if,
                            const RankingOptions& options = {},
                            common::ThreadPool* pool = nullptr);

}  // namespace aim::core

#endif  // AIM_CORE_RANKING_H_
