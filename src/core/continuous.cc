#include "core/continuous.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/retry.h"

namespace aim::core {

void ContinuousTuner::ObserveUsage(const workload::Workload& workload) {
  // Fresh usage snapshot for this interval.
  std::map<catalog::IndexId, size_t> used_prefix;
  optimizer::Optimizer opt(db_->catalog(), cm_);
  optimizer::OptimizeOptions options;
  options.include_hypothetical = false;
  for (const workload::Query& q : workload.queries) {
    Result<optimizer::AnalyzedQuery> aq =
        optimizer::Analyze(q.stmt, db_->catalog());
    if (!aq.ok()) continue;
    optimizer::Plan plan = opt.OptimizeAnalyzed(aq.ValueOrDie(), options);
    for (const optimizer::JoinStep& step : plan.steps) {
      if (step.path.index == nullptr) continue;
      size_t& p = used_prefix[step.path.index->id];
      size_t used = step.path.eq_prefix_len +
                    (step.path.range_on_next ? 1 : 0);
      if (step.path.covering || step.path.delivers_group ||
          step.path.delivers_order) {
        // Key parts beyond the matching prefix still earn their keep when
        // the query reads them from the index (covering / ordered reads):
        // count up to the deepest referenced key part.
        const auto& refs =
            aq.ValueOrDie().instances[step.instance].referenced_columns;
        const auto& key = step.path.index->columns;
        for (size_t pos = 0; pos < key.size(); ++pos) {
          if (std::find(refs.begin(), refs.end(), key[pos]) != refs.end()) {
            used = std::max(used, pos + 1);
          }
        }
      }
      p = std::max(p, used);
    }
  }

  for (const catalog::IndexDef* idx :
       db_->catalog().AllIndexes(false, false)) {
    if (!idx->created_by_automation) continue;
    UsageState& state = usage_[idx->id];
    auto it = used_prefix.find(idx->id);
    if (it == used_prefix.end()) {
      ++state.idle_intervals;
      ++state.prefix_idle_intervals;
    } else {
      state.idle_intervals = 0;
      state.max_used_prefix = std::max(state.max_used_prefix, it->second);
      if (it->second >= idx->columns.size()) {
        state.prefix_idle_intervals = 0;
      } else {
        ++state.prefix_idle_intervals;
      }
    }
  }
}

Result<IntervalReport> ContinuousTuner::Tick(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor) {
  IntervalReport report;
  storage::IndexSetTransaction txn(db_);
  Status st = TickInternal(workload, monitor, &txn, &report);
  if (st.ok()) {
    txn.Commit();
  } else {
    // Graceful degradation: skip the interval, roll the GC changes back
    // (AIM's apply step is itself transactional and has already undone
    // its own creates), and report the failure structurally. Production
    // keeps its pre-Tick configuration; the next interval retries.
    (void)txn.Rollback();
    report = IntervalReport{};
    report.degraded = true;
    report.error = st;
    AIM_LOG(Warn) << "tuning interval degraded: " << st.ToString();
  }
  PruneUsage();
  return report;
}

Status ContinuousTuner::TickInternal(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor,
    storage::IndexSetTransaction* txn, IntervalReport* report) {
  AIM_FAULT_POINT("core.tick");
  ObserveUsage(workload);
  RetryPolicy retry(options_.aim.validation.retry);

  // Garbage-collect automation indexes the workload stopped using.
  // Snapshot definitions by value: CreateIndex below can reallocate the
  // catalog's index storage and invalidate pointers.
  std::vector<catalog::IndexDef> automation;
  for (const catalog::IndexDef* p : db_->catalog().AllIndexes(false, false)) {
    automation.push_back(*p);
  }
  for (const catalog::IndexDef& def : automation) {
    const catalog::IndexDef* idx = &def;
    if (!idx->created_by_automation) continue;
    auto it = usage_.find(idx->id);
    if (it == usage_.end()) continue;
    const UsageState& state = it->second;
    if (options_.enable_drop &&
        state.idle_intervals >= options_.drop_after_idle_intervals) {
      AIM_RETURN_NOT_OK(txn->DropIndex(idx->id));
      report->dropped.push_back(*idx);
      usage_.erase(it);
      continue;
    }
    if (options_.enable_shrink && state.max_used_prefix > 0 &&
        state.max_used_prefix < idx->columns.size() &&
        state.prefix_idle_intervals >=
            options_.shrink_after_idle_intervals) {
      catalog::IndexDef narrower = *idx;
      narrower.columns.resize(state.max_used_prefix);
      narrower.id = catalog::kInvalidIndex;
      narrower.name.clear();
      if (db_->catalog().FindIndex(narrower.table, narrower.columns) !=
          nullptr) {
        continue;  // the prefix already exists as its own index
      }
      catalog::IndexDef old = *idx;
      // Build the narrower index before dropping the wide one: if the
      // build fails, the old index is still standing (and the transaction
      // guarantees the same even for the drop).
      Result<catalog::IndexId> nid =
          retry.Run([&] { return txn->CreateIndex(narrower); });
      if (!nid.ok()) {
        if (nid.status().code() == Status::Code::kAlreadyExists) continue;
        return nid.status();
      }
      AIM_RETURN_NOT_OK(txn->DropIndex(idx->id));
      usage_.erase(it);
      report->shrunk.emplace_back(old, narrower);
    }
  }

  // Run AIM on this interval's statistics.
  AutomaticIndexManager aim(db_, cm_, options_.aim);
  AIM_ASSIGN_OR_RETURN(report->aim, aim.RunOnce(workload, monitor));
  return Status::OK();
}

void ContinuousTuner::PruneUsage() {
  for (auto it = usage_.begin(); it != usage_.end();) {
    if (db_->catalog().index(it->first) == nullptr) {
      it = usage_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace aim::core
