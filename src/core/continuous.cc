#include "core/continuous.h"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <set>
#include <shared_mutex>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aim::core {

void ContinuousTuner::ObserveUsage(const workload::Workload& workload,
                                   const storage::Database& db) {
  // Fresh usage snapshot for this interval.
  std::map<catalog::IndexId, size_t> used_prefix;
  optimizer::Optimizer opt(db.catalog(), cm_);
  optimizer::OptimizeOptions options;
  options.include_hypothetical = false;
  for (const workload::Query& q : workload.queries) {
    Result<optimizer::AnalyzedQuery> aq =
        optimizer::Analyze(q.stmt, db.catalog());
    if (!aq.ok()) continue;
    optimizer::Plan plan = opt.OptimizeAnalyzed(aq.ValueOrDie(), options);
    for (const optimizer::JoinStep& step : plan.steps) {
      if (step.path.index == nullptr) continue;
      size_t& p = used_prefix[step.path.index->id];
      size_t used = step.path.eq_prefix_len +
                    (step.path.range_on_next ? 1 : 0);
      if (step.path.covering || step.path.delivers_group ||
          step.path.delivers_order) {
        // Key parts beyond the matching prefix still earn their keep when
        // the query reads them from the index (covering / ordered reads):
        // count up to the deepest referenced key part.
        const auto& refs =
            aq.ValueOrDie().instances[step.instance].referenced_columns;
        const auto& key = step.path.index->columns;
        for (size_t pos = 0; pos < key.size(); ++pos) {
          if (std::find(refs.begin(), refs.end(), key[pos]) != refs.end()) {
            used = std::max(used, pos + 1);
          }
        }
      }
      p = std::max(p, used);
    }
  }

  for (const catalog::IndexDef* idx : db.catalog().AllIndexes(false, false)) {
    if (!idx->created_by_automation) continue;
    UsageState& state = usage_[idx->id];
    auto it = used_prefix.find(idx->id);
    if (it == used_prefix.end()) {
      ++state.idle_intervals;
      ++state.prefix_idle_intervals;
    } else {
      state.idle_intervals = 0;
      state.max_used_prefix = std::max(state.max_used_prefix, it->second);
      if (it->second >= idx->columns.size()) {
        state.prefix_idle_intervals = 0;
      } else {
        ++state.prefix_idle_intervals;
      }
    }
  }
}

void ContinuousTuner::PrepareCache(IntervalReport* report) {
  const bool carry = options_.carry_what_if_cache &&
                     options_.aim.what_if_cache_entries > 0 &&
                     options_.aim.shared_cache == nullptr;
  if (!carry) {
    cache_.reset();
    return;
  }
  if (cache_ == nullptr) {
    cache_ = std::make_unique<optimizer::WhatIfCache>(
        options_.aim.what_if_cache_entries);
  }
  const uint64_t fp = [&] {
    if (options_.online_apply) {
      // Live writers mutate row counts (part of the fingerprint); read it
      // under the shared latch they respect.
      std::shared_lock<std::shared_mutex> lock(db_->latch());
      return db_->catalog().SchemaStatsFingerprint();
    }
    return db_->catalog().SchemaStatsFingerprint();
  }();
  if (!snapshot_load_attempted_ && !options_.cache_snapshot_path.empty()) {
    // One load per tuner lifetime: after the first Tick the in-memory
    // cache is always at least as fresh as the snapshot. Snapshots are
    // namespaced by the schema/statistics fingerprint so fleets of tuners
    // can share one configured path without clobbering each other.
    snapshot_load_attempted_ = true;
    std::ifstream in(
        optimizer::SnapshotPathForFingerprint(options_.cache_snapshot_path,
                                              fp),
        std::ios::binary);
    if (in) {
      Result<bool> adopted = cache_->LoadFrom(in, fp);
      if (adopted.ok() && adopted.ValueOrDie()) {
        report->cache_loaded_from_snapshot = true;
        cache_schema_fingerprint_ = fp;
      } else if (!adopted.ok()) {
        AIM_LOG(Warn) << "what-if cache snapshot load failed (starting "
                      << "cold): " << adopted.status().ToString();
      }
      // Rejected snapshots (stale fingerprint, old version, corruption)
      // are the designed cold-start path: nothing to do.
    }
  }
  if (cache_->size() > 0 && fp != cache_schema_fingerprint_) {
    // Schema or statistics drifted since the carried costs were computed:
    // every entry may now be wrong, so the whole cache goes.
    cache_->Clear();
    report->cache_invalidated = true;
  }
  cache_schema_fingerprint_ = fp;
  report->cache_entries_carried = cache_->size();
}

void ContinuousTuner::PrepareGate(IntervalReport* report) {
  if (!options_.exploration.enabled) {
    gate_.reset();
    detector_.reset();
    return;
  }
  if (gate_ == nullptr) {
    gate_ = std::make_unique<ExplorationGate>(options_.exploration);
    detector_ =
        std::make_unique<support::RegressionDetector>(options_.regression);
  }
  if (!gate_load_attempted_) {
    // One load per tuner lifetime, like the what-if cache snapshot: after
    // the first Tick the in-memory gate is the freshest state there is.
    gate_load_attempted_ = true;
    Status st = gate_->LoadSnapshot();
    if (!st.ok()) {
      AIM_LOG(Warn) << "exploration gate snapshot load failed (starting "
                    << "cold): " << st.ToString();
    }
  }
  const uint64_t fp = [&] {
    if (options_.online_apply) {
      std::shared_lock<std::shared_mutex> lock(db_->latch());
      return db_->catalog().SchemaStatsFingerprint();
    }
    return db_->catalog().SchemaStatsFingerprint();
  }();
  // Drift voids the evidence behind every quarantine entry: release them
  // so the (possibly now-beneficial) indexes can compete again.
  report->quarantine_released = gate_->SyncFingerprint(fp);
  if (report->quarantine_released > 0) {
    static obs::Counter* const released =
        obs::MetricsRegistry::Global()->counter(
            "aim.exploration.quarantine_released");
    released->Add(report->quarantine_released);
  }
}

void ContinuousTuner::SaveGateSnapshot() {
  if (gate_ == nullptr) return;
  Status st = gate_->SaveSnapshot();
  if (!st.ok()) {
    AIM_LOG(Warn) << "exploration gate snapshot save failed: "
                  << st.ToString();
  }
}

Status ContinuousTuner::ObserveRegressions(
    const workload::WorkloadMonitor* monitor,
    std::vector<catalog::IndexDef>* automation,
    storage::IndexSetTransaction* txn, IntervalReport* report) {
  if (gate_ == nullptr || detector_ == nullptr || monitor == nullptr) {
    return Status::OK();
  }
  // Monitor snapshots iterate a hash map: sort by fingerprint so the
  // detector sees (and reports) regressions in one deterministic order
  // at any thread count.
  std::vector<workload::QueryStats> stats = monitor->Snapshot();
  std::sort(stats.begin(), stats.end(),
            [](const workload::QueryStats& a,
               const workload::QueryStats& b) {
              return a.fingerprint < b.fingerprint;
            });
  std::vector<std::pair<catalog::IndexId, catalog::TableId>> suspects_in;
  for (const catalog::IndexDef& def : *automation) {
    if (def.created_by_automation) {
      suspects_in.emplace_back(def.id, def.table);
    }
  }
  const std::vector<support::Regression> regressions =
      detector_->Observe(stats, suspects_in);
  if (regressions.empty()) return Status::OK();

  // One offense per index per interval, however many queries regressed:
  // quarantine counts repeat-offender *intervals*, not queries.
  std::set<catalog::IndexId> suspect_ids;
  for (const support::Regression& r : regressions) {
    for (catalog::IndexId id : r.suspect_indexes) suspect_ids.insert(id);
  }
  obs::Span span(obs::Tracer::Get(), "exploration.regression");
  span.SetAttr("regressions", regressions.size());
  for (catalog::IndexId id : suspect_ids) {
    auto it = std::find_if(automation->begin(), automation->end(),
                           [&](const catalog::IndexDef& def) {
                             return def.id == id;
                           });
    if (it == automation->end() || !it->created_by_automation) continue;
    const catalog::IndexDef def = *it;
    if (gate_->ObserveRegression(def)) {
      report->quarantined_now.push_back(IndexArmKey(def));
    }
    // Rollback: the implicated index leaves production this interval. A
    // degraded tick restores it with everything else via txn rollback.
    AIM_RETURN_NOT_OK(txn->DropIndex(id));
    usage_.erase(id);
    automation->erase(it);
    report->rolled_back.push_back(def);
  }
  static obs::Counter* const rollbacks =
      obs::MetricsRegistry::Global()->counter("aim.exploration.rollbacks");
  rollbacks->Add(report->rolled_back.size());
  span.SetAttr("rolled_back", report->rolled_back.size());
  span.SetAttr("quarantined_now", report->quarantined_now.size());
  return Status::OK();
}

void ContinuousTuner::SaveCacheSnapshot() {
  if (cache_ == nullptr || options_.cache_snapshot_path.empty()) return;
  // Temp-file + rename: concurrent tuners sharing one configured path
  // (fleet tenants, parallel test shards) can never interleave bytes or
  // expose a torn snapshot; the fingerprint suffix keeps distinct schemas
  // in distinct files outright.
  Status st = optimizer::SaveSnapshotAtomic(
      *cache_,
      optimizer::SnapshotPathForFingerprint(options_.cache_snapshot_path,
                                            cache_schema_fingerprint_),
      cache_schema_fingerprint_);
  if (!st.ok()) {
    AIM_LOG(Warn) << "what-if cache snapshot save failed: "
                  << st.ToString();
  }
}

Result<IntervalReport> ContinuousTuner::Tick(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor) {
  static obs::Counter* const ticks =
      obs::MetricsRegistry::Global()->counter("tuner.ticks");
  static obs::Counter* const degraded_ticks =
      obs::MetricsRegistry::Global()->counter("tuner.degraded_ticks");
  ticks->Add();
  obs::Span tick_span(obs::Tracer::Get(), "tuner.tick");
  IntervalReport report;
  PrepareCache(&report);
  PrepareGate(&report);
  // The cache/gate bookkeeping must survive a degraded-interval report
  // reset.
  const size_t cache_entries_carried = report.cache_entries_carried;
  const bool cache_loaded = report.cache_loaded_from_snapshot;
  const bool cache_invalidated = report.cache_invalidated;
  const size_t quarantine_released = report.quarantine_released;
  tick_span.SetAttr("cache_entries_carried", cache_entries_carried);
  storage::IndexSetTransaction txn(
      db_, options_.online_apply ? &db_->latch() : nullptr);
  Status st = TickInternal(workload, monitor, &txn, &report);
  if (st.ok()) {
    txn.Commit();
    SaveCacheSnapshot();
    SaveGateSnapshot();
  } else {
    // Graceful degradation: skip the interval, roll the GC changes back
    // (AIM's apply step is itself transactional and has already undone
    // its own creates), and report the failure structurally. Production
    // keeps its pre-Tick configuration; the next interval retries. The
    // carried cache keeps any entries the failed run added — their costs
    // are pure functions of (catalog, configuration), which the rollback
    // restored.
    (void)txn.Rollback();
    report = IntervalReport{};
    report.degraded = true;
    report.error = st;
    report.cache_entries_carried = cache_entries_carried;
    report.cache_loaded_from_snapshot = cache_loaded;
    report.cache_invalidated = cache_invalidated;
    report.quarantine_released = quarantine_released;
    degraded_ticks->Add();
    AIM_LOG(Warn) << "tuning interval degraded: " << st.ToString();
  }
  PruneUsage();
  tick_span.SetAttr("degraded", report.degraded);
  tick_span.SetAttr("dropped", report.dropped.size());
  tick_span.SetAttr("shrunk", report.shrunk.size());
  if (!st.ok()) tick_span.SetAttr("error", st.ToString());
  return report;
}

Status ContinuousTuner::TickInternal(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor,
    storage::IndexSetTransaction* txn, IntervalReport* report) {
  AIM_FAULT_POINT("core.tick");
  // Online mode plans against a point-in-time copy taken under a brief
  // exclusive latch: Recommend stages hypothetical indexes in the catalog
  // and validation replays on clones, none of which may touch the live,
  // traffic-bearing database. Index ids are shared between the snapshot
  // and the live catalog (only the tuner performs DDL), so GC decisions
  // made on the snapshot apply to the live database by id.
  storage::Database snapshot;
  if (options_.online_apply) {
    std::unique_lock<std::shared_mutex> lock(db_->latch());
    snapshot = *db_;
  }
  storage::Database* tuning_db = options_.online_apply ? &snapshot : db_;
  // With compression on, usage observation plans one representative per
  // cluster instead of every raw statement (Recommend re-compresses for
  // its own phases; compression is idempotent, so the clusters match).
  workload::CompressedWorkload usage_compressed;
  const workload::Workload* observe_workload = &workload;
  if (options_.aim.compression.enabled && !workload.empty()) {
    obs::Span span(obs::Tracer::Get(), "workload.compress");
    usage_compressed =
        workload::WorkloadCompressor(options_.aim.compression)
            .Compress(workload, monitor, &tuning_db->catalog());
    observe_workload = &usage_compressed.workload;
    span.SetAttr("statements_in", usage_compressed.stats.statements_in);
    span.SetAttr("clusters", usage_compressed.stats.clusters);
  }
  ObserveUsage(*observe_workload, *tuning_db);
  RetryPolicy retry(options_.aim.validation.retry);

  // Garbage-collect automation indexes the workload stopped using.
  // Snapshot definitions by value: CreateIndex below can reallocate the
  // catalog's index storage and invalidate pointers.
  std::vector<catalog::IndexDef> automation;
  for (const catalog::IndexDef* p :
       tuning_db->catalog().AllIndexes(false, false)) {
    automation.push_back(*p);
  }

  // Regression → rollback/quarantine feedback (exploration mode): every
  // automation index RegressionDetector implicates this interval is
  // dropped, and repeat offenders are quarantined out of candidate
  // generation until the schema/stats fingerprint drifts.
  AIM_RETURN_NOT_OK(ObserveRegressions(monitor, &automation, txn, report));

  for (const catalog::IndexDef& def : automation) {
    const catalog::IndexDef* idx = &def;
    if (!idx->created_by_automation) continue;
    auto it = usage_.find(idx->id);
    if (it == usage_.end()) continue;
    const UsageState& state = it->second;
    if (options_.enable_drop &&
        state.idle_intervals >= options_.drop_after_idle_intervals) {
      AIM_RETURN_NOT_OK(txn->DropIndex(idx->id));
      report->dropped.push_back(*idx);
      usage_.erase(it);
      continue;
    }
    if (options_.enable_shrink && state.max_used_prefix > 0 &&
        state.max_used_prefix < idx->columns.size() &&
        state.prefix_idle_intervals >=
            options_.shrink_after_idle_intervals) {
      catalog::IndexDef narrower = *idx;
      narrower.columns.resize(state.max_used_prefix);
      narrower.id = catalog::kInvalidIndex;
      narrower.name.clear();
      if (tuning_db->catalog().FindIndex(narrower.table, narrower.columns) !=
          nullptr) {
        continue;  // the prefix already exists as its own index
      }
      catalog::IndexDef old = *idx;
      // Build the narrower index before dropping the wide one: if the
      // build fails, the old index is still standing (and the transaction
      // guarantees the same even for the drop).
      Result<catalog::IndexId> nid =
          retry.Run([&] { return txn->CreateIndex(narrower); });
      if (!nid.ok()) {
        if (nid.status().code() == Status::Code::kAlreadyExists) continue;
        return nid.status();
      }
      AIM_RETURN_NOT_OK(txn->DropIndex(idx->id));
      usage_.erase(it);
      report->shrunk.emplace_back(old, narrower);
    }
  }

  // Run AIM on this interval's statistics, against the carried plan-cost
  // cache when one exists (PrepareCache already invalidated it if the
  // schema or statistics drifted since the cached costs were computed).
  AimOptions aim_options = options_.aim;
  if (cache_ != nullptr) aim_options.shared_cache = cache_.get();
  // Carried candidate cache: candidate generation reuses unchanged
  // clusters across intervals and recomputes only drifted/new ones.
  if (options_.carry_candidate_cache &&
      options_.aim.candidate_cache == nullptr) {
    if (candidate_cache_ == nullptr) {
      candidate_cache_ =
          std::make_unique<CandidateCache>(options_.candidate_cache_entries);
    }
    aim_options.candidate_cache = candidate_cache_.get();
  }
  if (options_.online_apply) {
    // Plan on the snapshot; install on the live database online.
    aim_options.online_apply_db = db_;
    aim_options.online = options_.online;
  }
  if (gate_ != nullptr) aim_options.exploration_gate = gate_.get();
  AutomaticIndexManager aim(tuning_db, cm_, aim_options);
  AIM_ASSIGN_OR_RETURN(report->aim, aim.RunOnce(workload, monitor));
  if (gate_ != nullptr) {
    // Fold the interval's validated replay evidence into the admitted
    // arms' measured benefit (the bandit's reward samples).
    gate_->ObserveValidation(report->aim.recommended,
                             report->aim.validation);
  }
  return Status::OK();
}

void ContinuousTuner::PruneUsage() {
  for (auto it = usage_.begin(); it != usage_.end();) {
    if (db_->catalog().index(it->first) == nullptr) {
      it = usage_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace aim::core
