#ifndef AIM_CORE_CANDIDATE_CACHE_H_
#define AIM_CORE_CANDIDATE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/candidate_generation.h"
#include "core/partial_order.h"
#include "sql/ast.h"

namespace aim::core {

/// \brief Per-cluster candidate-generation cache: the partial orders one
/// statement produced, keyed by everything `GenerateForQuery` consumes.
///
/// The key covers the cluster fingerprint (canonical statement text plus
/// the covering-pass execution count) and the generation context (the
/// schema/statistics fingerprint, the what-if configuration fingerprint,
/// and a digest of the generation options). Because candidate generation
/// is a pure function of exactly those inputs, a hit returns bit-identical
/// partial orders to a recomputation — reuse can never change a selection.
/// Drift invalidation is therefore free: a drifted cluster or a changed
/// schema/configuration produces a different key and simply misses, while
/// the bounded LRU ages the stale entries out.
///
/// This is how the continuous tuner makes candidate generation incremental
/// across intervals, mirroring how `WhatIfCache` carries plan costs.
/// Thread-safe; lookups fan out from the parallel what-if workers.
class CandidateCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit CandidateCache(size_t capacity = 8192)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The cluster half of the key: canonical (literal-inclusive) statement
  /// fingerprint mixed with the execution count the covering pass feeds
  /// into `TryCoveringIndex` (pass 0 for the stats-independent
  /// non-covering pass).
  static uint64_t ClusterKey(const sql::Statement& stmt,
                             uint64_t covering_executions);

  /// The context half: schema/stats fingerprint × what-if configuration
  /// fingerprint × generation-option digest.
  static uint64_t ContextFingerprint(uint64_t schema_stats_fingerprint,
                                     uint64_t config_fingerprint,
                                     const CandidateGenOptions& options);

  /// Copies the cached orders into `*out` and returns true on a hit.
  bool Lookup(uint64_t cluster, uint64_t context,
              std::vector<PartialOrder>* out);

  /// Caches `orders` (an empty vector is a valid, cacheable result).
  void Insert(uint64_t cluster, uint64_t context,
              std::vector<PartialOrder> orders);

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  struct Key {
    uint64_t cluster = 0;
    uint64_t context = 0;
    bool operator==(const Key& o) const {
      return cluster == o.cluster && context == o.context;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.cluster;
      h ^= k.context + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  using Entry = std::pair<Key, std::vector<PartialOrder>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  Stats stats_;
};

}  // namespace aim::core

#endif  // AIM_CORE_CANDIDATE_CACHE_H_
