#ifndef AIM_CORE_DEPLOYMENT_PLAN_H_
#define AIM_CORE_DEPLOYMENT_PLAN_H_

#include <string>
#include <vector>

#include "core/ranking.h"

namespace aim::core {

/// Knobs of the deployment-order scheduler (Kimura et al., PAPERS.md:
/// when K indexes are approved, build order determines how early
/// cumulative benefit arrives).
struct DeploymentOptions {
  /// Master switch: plan + per-step apply instead of the classic single
  /// IndexSetTransaction. Off by default — the all-or-nothing path stays
  /// the baseline.
  bool ordered = false;
  /// Modeled concurrent build slots. Steps execute in plan order; the
  /// slot model shapes the modeled benefit curve (start/finish times).
  int max_concurrent_builds = 1;
  /// Storage headroom for this deployment, bytes; candidates that do not
  /// fit (in plan order) are deferred, not failed. Non-positive =
  /// unconstrained.
  double storage_headroom_bytes = 0.0;
  /// Build-throughput model for converting index size to build seconds.
  double build_bytes_per_second = 64.0 * 1024 * 1024;
};

/// One scheduled build.
struct DeploymentStep {
  CandidateIndex index;
  /// Modeled slot (0-based) and timeline, seconds from deployment start.
  int slot = 0;
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  /// Σ benefit of every step finishing at or before this one.
  double cumulative_benefit_seconds = 0.0;
};

/// A full deployment schedule with its modeled benefit curve.
struct DeploymentPlan {
  /// Execution order (priority order; modeled times honor the slots).
  std::vector<DeploymentStep> steps;
  /// Candidates that exceeded the storage headroom, in priority order.
  std::vector<CandidateIndex> deferred_for_storage;
  double total_benefit_seconds = 0.0;
  double makespan_seconds = 0.0;

  /// Earliest modeled time by which Σ benefit of finished builds reaches
  /// `fraction` of the plan's total (0 when the plan is empty).
  double TimeToBenefitFraction(double fraction) const;
};

/// What the ordered apply path actually did for one step.
struct DeploymentStepResult {
  catalog::IndexDef def;
  int slot = 0;
  double modeled_start_seconds = 0.0;
  double modeled_finish_seconds = 0.0;
  double benefit_seconds = 0.0;
  double cumulative_benefit_seconds = 0.0;
  /// Wall seconds the install actually took.
  double measured_build_seconds = 0.0;
  bool installed = false;
  /// Failure of this step only; earlier installs stay (each index was
  /// individually validated).
  std::string error;
};

/// Ordered-deployment summary embedded in AimReport.
struct DeploymentReport {
  bool ordered = false;
  std::vector<DeploymentStepResult> steps;
  size_t installed = 0;
  size_t failed_steps = 0;
  size_t deferred_for_storage = 0;
  double total_benefit_seconds = 0.0;
  double modeled_time_to_half_benefit_seconds = 0.0;
  double modeled_makespan_seconds = 0.0;
};

/// \brief Orders K approved index builds to maximize early cumulative
/// benefit.
///
/// Serial builds earning benefit bᵢ after a build of duration tᵢ are a
/// 1-machine scheduling problem: Smith's rule (descending bᵢ/tᵢ)
/// minimizes Σ bᵢ·Cᵢ, i.e. maximizes the area under the cumulative
/// benefit curve — no order reaches any benefit fraction earlier in
/// aggregate. With multiple modeled slots the same priority order feeds
/// an earliest-available-slot assignment. Ties break on the canonical
/// index signature, so the plan is a pure function of its inputs.
class DeploymentPlanner {
 public:
  explicit DeploymentPlanner(DeploymentOptions options = {})
      : options_(options) {}

  DeploymentPlan Plan(const std::vector<CandidateIndex>& approved) const;

  /// Modeled build duration of one candidate, seconds (size over modeled
  /// throughput, floored so zero-size candidates still take time).
  double ModeledBuildSeconds(const CandidateIndex& c) const;

  const DeploymentOptions& options() const { return options_; }

 private:
  DeploymentOptions options_;
};

}  // namespace aim::core

#endif  // AIM_CORE_DEPLOYMENT_PLAN_H_
