#include "core/workload_selection.h"

#include <algorithm>

namespace aim::core {

std::vector<SelectedQuery> SelectRepresentativeWorkload(
    const workload::Workload& workload,
    const workload::WorkloadMonitor& monitor,
    const WorkloadSelectionOptions& options) {
  std::vector<SelectedQuery> selected;
  std::vector<SelectedQuery> dml;
  for (const workload::Query& q : workload.queries) {
    const workload::QueryStats* stats = monitor.Find(q.fingerprint);
    if (stats == nullptr) continue;
    SelectedQuery sq;
    sq.query = &q;
    sq.stats = *stats;
    if (q.stmt.is_dml()) {
      // DML never earns read benefit; keep for maintenance pricing.
      dml.push_back(std::move(sq));
      continue;
    }
    if (stats->executions < options.min_executions) continue;
    sq.expected_benefit = stats->expected_benefit();
    sq.benefit_cores = sq.expected_benefit *
                       static_cast<double>(stats->executions) /
                       std::max(options.interval_seconds, 1e-9);
    if (sq.benefit_cores < options.min_benefit_cores) continue;
    selected.push_back(std::move(sq));
  }
  std::sort(selected.begin(), selected.end(),
            [](const SelectedQuery& a, const SelectedQuery& b) {
              return a.benefit_cores > b.benefit_cores;
            });
  if (selected.size() > options.max_queries) {
    selected.resize(options.max_queries);
  }
  // DML statements ride along after the ranked reads.
  for (auto& sq : dml) selected.push_back(std::move(sq));
  return selected;
}

}  // namespace aim::core
