#include "core/workload_selection.h"

#include <algorithm>

namespace aim::core {

std::vector<SelectedQuery> SelectRepresentativeWorkload(
    const workload::Workload& workload,
    const workload::WorkloadMonitor& monitor,
    const WorkloadSelectionOptions& options) {
  std::vector<SelectedQuery> selected;
  std::vector<SelectedQuery> dml;
  for (const workload::Query& q : workload.queries) {
    const workload::QueryStats* stats = monitor.Find(q.fingerprint);
    if (stats == nullptr) continue;
    SelectedQuery sq;
    sq.query = &q;
    sq.stats = *stats;
    if (q.stmt.is_dml()) {
      // DML never earns read benefit; keep for maintenance pricing.
      dml.push_back(std::move(sq));
      continue;
    }
    if (stats->executions < options.min_executions) continue;
    sq.expected_benefit = stats->expected_benefit();
    sq.benefit_cores = sq.expected_benefit *
                       static_cast<double>(stats->executions) /
                       std::max(options.interval_seconds, 1e-9);
    if (sq.benefit_cores < options.min_benefit_cores) continue;
    selected.push_back(std::move(sq));
  }
  // stable_sort: ties keep workload order, mirroring the compressed path
  // (whose clusters are emitted in first-occurrence order).
  std::stable_sort(selected.begin(), selected.end(),
                   [](const SelectedQuery& a, const SelectedQuery& b) {
                     return a.benefit_cores > b.benefit_cores;
                   });
  if (selected.size() > options.max_queries) {
    selected.resize(options.max_queries);
  }
  // DML statements ride along after the ranked reads.
  for (auto& sq : dml) selected.push_back(std::move(sq));
  return selected;
}

std::vector<SelectedQuery> SelectCompressedWorkload(
    const workload::CompressedWorkload& compressed,
    const workload::WorkloadMonitor& monitor,
    const WorkloadSelectionOptions& options) {
  std::vector<SelectedQuery> selected;
  std::vector<SelectedQuery> dml;
  for (size_t i = 0; i < compressed.workload.queries.size(); ++i) {
    const workload::Query& q = compressed.workload.queries[i];
    const workload::WorkloadCluster& c = compressed.clusters[i];
    const workload::QueryStats* stats = monitor.Find(q.fingerprint);
    if (stats == nullptr) continue;
    SelectedQuery sq;
    sq.query = &q;
    sq.stats = *stats;
    sq.cluster_members = c.members;
    sq.cluster_executions = c.executions;
    if (q.stmt.is_dml()) {
      dml.push_back(std::move(sq));
      continue;
    }
    // Thresholds mirror one uncompressed entry of the representative's
    // template (per-template executions and benefit rate, not the cluster
    // roll-up): a cluster is admitted iff its members would have been.
    if (stats->executions < options.min_executions) continue;
    sq.expected_benefit = stats->expected_benefit();
    sq.benefit_cores = sq.expected_benefit *
                       static_cast<double>(stats->executions) /
                       std::max(options.interval_seconds, 1e-9);
    if (sq.benefit_cores < options.min_benefit_cores) continue;
    selected.push_back(std::move(sq));
  }
  std::stable_sort(selected.begin(), selected.end(),
                   [](const SelectedQuery& a, const SelectedQuery& b) {
                     return a.benefit_cores > b.benefit_cores;
                   });
  // The cap counts raw statements, so a compressed run admits the same
  // workload volume as an uncompressed one; whole clusters only.
  size_t kept = 0;
  uint64_t budget = options.max_queries;
  for (const SelectedQuery& sq : selected) {
    if (budget == 0) break;
    const uint64_t members = std::max<uint64_t>(sq.cluster_members, 1);
    budget -= std::min(budget, members);
    ++kept;
  }
  selected.resize(kept);
  for (auto& sq : dml) selected.push_back(std::move(sq));
  return selected;
}

}  // namespace aim::core
