#ifndef AIM_CORE_CLONE_VALIDATION_H_
#define AIM_CORE_CLONE_VALIDATION_H_

#include <vector>

#include "common/retry.h"
#include "common/thread_pool.h"
#include "core/ranking.h"
#include "executor/metrics.h"
#include "storage/database.h"

namespace aim::core {

/// Validation knobs (λ₂ / λ₃ of the continuous tuning problem, Sec. II-B).
struct CloneValidationOptions {
  /// Required relative improvement for "at least one query improved"
  /// (Eq. 3).
  double lambda2 = 0.05;
  /// Maximum tolerated per-query regression (Eq. 4).
  double lambda3 = 0.20;
  /// Drop candidates no query plan actually uses on the clone.
  bool drop_unused = true;
  /// Maximum tolerated fraction of replayed executions that fail. Above
  /// this the clone's evidence is considered unreliable: the whole
  /// candidate set is rejected and production stays unchanged (the
  /// conservative reading of the no-regression guarantee).
  double max_replay_failure_rate = 0.1;
  /// Retry knobs for transient failures while materializing candidates on
  /// the test clone.
  RetryOptions retry;
  /// Execute each distinct statement once per DML-free replay segment and
  /// share the outcome among its duplicates (multi-stream workloads repeat
  /// statements verbatim). Sound because the executor is deterministic and
  /// the clone state only changes at DML barriers; every duplicate still
  /// contributes its own per-query validation record. Enabled by the
  /// advisor alongside the what-if plan-cost cache.
  bool dedup_replay = false;
  /// SELECT engine used for the before/after replay. The vectorized batch
  /// engine (default) and the row interpreter produce bit-identical rows
  /// and metrics; the knob exists so the equivalence suite can pin whole
  /// validation pipelines against each other.
  executor::EngineKind replay_engine = executor::EngineKind::kBatch;
};

/// Per-query before/after record from the clone replay.
struct QueryValidation {
  uint64_t fingerprint = 0;
  double cpu_before = 0.0;
  double cpu_after = 0.0;
  bool regressed = false;
  bool improved = false;
};

/// Outcome of materialize-and-replay validation.
struct CloneValidationResult {
  std::vector<CandidateIndex> accepted;
  std::vector<CandidateIndex> rejected_unused;
  /// True when Eq. 3 holds (some query improved by ≥ λ₂).
  bool any_query_improved = false;
  /// True when Eq. 4 held for every query (after rejections).
  bool no_regressions = true;
  std::vector<QueryValidation> per_query;
  /// Before/after executions that completed on both clones.
  size_t executed = 0;
  /// Executions that failed on either clone (these queries contribute no
  /// before/after evidence).
  size_t failed = 0;
  /// False when the replay failure rate exceeded
  /// `max_replay_failure_rate`; every candidate was rejected.
  bool replay_reliable = true;
};

/// \brief Line 3 of Algorithm 1: materializes the selected candidates on a
/// *clone* of the database (the MyShadow contract, Sec. VII-B), replays
/// the workload, and keeps only indexes the optimizer actually uses
/// without regressing any query beyond λ₃ — the paper's "no regression"
/// guarantee for production.
///
/// Candidate materialization on the test clone batches all B+Tree builds
/// through `storage::Database::CreateIndexes`, fanning the heap scans over
/// `pool` while keeping catalog registration and adoption serial in
/// candidate order — ids and outcomes match the serial build exactly. The
/// whole materialize-and-replay block sits behind the
/// `shard.clone.materialize` fault point: an injected clone loss fails
/// this validation, which callers must treat as "reject the candidates",
/// never as corrupted production state.
///
/// The replay fans out over `pool` in DML-delimited segments: runs of
/// consecutive SELECTs execute concurrently (the executor's read path
/// never mutates the clone), every DML statement is a barrier executed
/// serially at its workload position, and the before/after evidence is
/// always accumulated serially in workload order. The result is therefore
/// bit-identical to the serial replay (`pool == nullptr`).
Result<CloneValidationResult> ValidateOnClone(
    const storage::Database& production,
    const std::vector<CandidateIndex>& selected,
    const std::vector<SelectedQuery>& queries, optimizer::CostModel cm,
    const CloneValidationOptions& options = {},
    common::ThreadPool* pool = nullptr);

}  // namespace aim::core

#endif  // AIM_CORE_CLONE_VALIDATION_H_
