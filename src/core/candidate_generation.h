#ifndef AIM_CORE_CANDIDATE_GENERATION_H_
#define AIM_CORE_CANDIDATE_GENERATION_H_

#include <vector>

#include "core/partial_order.h"
#include "optimizer/what_if.h"
#include "workload/monitor.h"
#include "workload/workload.h"

namespace aim::core {

/// Per-query candidate-generation mode (Algorithm 2 line 3).
enum class CoveringMode { kNonCovering, kCovering };

/// Knobs for candidate generation (Sec. IV).
struct CandidateGenOptions {
  /// The join parameter j (Algorithm 3): tables joined with more than j
  /// partners are not exhaustively explored for join orders.
  int join_parameter = 2;
  /// Allow the covering phase at all.
  bool enable_covering = true;
  /// Minimum estimated primary-key lookups per interval before a covering
  /// index is worth its storage (Sec. III-D: "this threshold is high for
  /// fast storage media such as SSDs").
  double covering_seek_threshold = 1000.0;
  /// Maximum index width; wider candidates are truncated (prefix kept).
  size_t max_index_width = 8;
  /// Optimizer feature switches in effect on the fleet (Sec. VIII-a):
  /// candidate generation skips candidates whose execution strategy is
  /// disabled — per-OR-factor candidates when index_merge is off,
  /// group/order candidates when sort avoidance is off.
  optimizer::OptimizerSwitches switches;
  /// IPP relaxation (Sec. V-A): once the cumulative selectivity of the
  /// most selective index-prefix columns falls below this floor, further
  /// IPP columns add no selectivity and are dropped from the candidate
  /// (narrower index, less storage). 0 disables relaxation.
  double ipp_selectivity_floor = 0.0;
  /// Use the what-if optimizer to pick the most selective residual range
  /// column (Algorithm 5's dataless_index_cost). When false, fall back to
  /// raw column selectivity — the ablation knob for the paper's "reduced
  /// reliance on the optimizer" claim.
  bool use_dataless_cost = true;
};

/// \brief Implements Algorithms 2–7: transforms query structure into
/// candidate partial orders of index columns.
///
/// The generator consults the what-if optimizer only for the
/// `dataless_index_cost` argmin of Algorithm 5 (choosing the most
/// selective residual range column) — the "reduced reliance on the
/// optimizer" the paper highlights.
class CandidateGenerator {
 public:
  CandidateGenerator(const catalog::Catalog& catalog,
                     optimizer::WhatIfOptimizer* what_if,
                     CandidateGenOptions options = {})
      : catalog_(&catalog), what_if_(what_if), options_(options) {}

  /// Algorithm 2 body for one query: covering decision + the three
  /// generators. `stats` (optional) feeds the covering threshold.
  std::vector<PartialOrder> GenerateForQuery(
      const workload::Query& query, const optimizer::AnalyzedQuery& aq,
      const workload::QueryStats* stats);

  /// Algorithm 2 over a whole workload: per-query generation, then
  /// MergePartialOrders.
  Result<std::vector<PartialOrder>> GenerateForWorkload(
      const workload::Workload& workload,
      const workload::WorkloadMonitor* monitor);

  // --- individual steps, exposed for tests ---------------------------------

  /// TryCoveringIndex (Sec. III-D): covering only when selectivity cannot
  /// improve further with the current indexes and the PK seek volume
  /// justifies the extra storage.
  CoveringMode TryCoveringIndex(const workload::Query& query,
                                const optimizer::AnalyzedQuery& aq,
                                const workload::QueryStats* stats);

  /// Algorithm 3: power set of join-partner instance sets of `instance`,
  /// empty-set-only when the partner count exceeds j.
  std::vector<std::vector<int>> JoinedTablesPowerset(
      const optimizer::AnalyzedQuery& aq, int instance, int j) const;

  /// Algorithm 4.
  std::vector<PartialOrder> GenerateCandidatesForSelection(
      const workload::Query& query, const optimizer::AnalyzedQuery& aq,
      int j, CoveringMode mode);
  /// Algorithm 6.
  std::vector<PartialOrder> GenerateCandidatesForGroupBy(
      const workload::Query& query, const optimizer::AnalyzedQuery& aq,
      int j, CoveringMode mode);
  /// Algorithm 7.
  std::vector<PartialOrder> GenerateCandidatesForOrderBy(
      const workload::Query& query, const optimizer::AnalyzedQuery& aq,
      int j, CoveringMode mode);

  /// Algorithm 5: factorize the predicates over `columns` of `instance`
  /// into DNF groups and emit `<C_IPP, {most selective residual}>` per
  /// group. `join_columns` are treated as index-prefix columns.
  std::vector<PartialOrder> GenerateCandidateIndexPredicates(
      const workload::Query& query, const optimizer::AnalyzedQuery& aq,
      int instance, const std::vector<catalog::ColumnId>& columns,
      const std::vector<catalog::ColumnId>& join_columns);

  /// Converts each final partial order to one concrete index definition
  /// (Algorithm 2 line 7), truncated to max_index_width.
  std::vector<catalog::IndexDef> GenerateCandidateIndexPerPO(
      const std::vector<PartialOrder>& orders) const;

  /// What-if calls consumed by dataless_index_cost decisions.
  uint64_t dataless_cost_calls() const { return dataless_cost_calls_; }

 private:
  /// dataless_index_cost(Q, <C_IPP, {c}>) of Algorithm 5: the estimated
  /// cost of Q with a hypothetical index on C_IPP + c.
  double DatalessIndexCost(const workload::Query& query,
                           catalog::TableId table,
                           const std::vector<catalog::ColumnId>& ipp,
                           catalog::ColumnId extra);

  const catalog::Catalog* catalog_;
  optimizer::WhatIfOptimizer* what_if_;
  CandidateGenOptions options_;
  uint64_t dataless_cost_calls_ = 0;
};

}  // namespace aim::core

#endif  // AIM_CORE_CANDIDATE_GENERATION_H_
