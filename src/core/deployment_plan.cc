#include "core/deployment_plan.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace aim::core {

namespace {

/// Canonical tie-break signature: table then key columns. Ids and names
/// are excluded so the order is stable across catalog rebuilds.
std::string CanonicalSignature(const catalog::IndexDef& def) {
  std::ostringstream out;
  out << def.table;
  for (catalog::ColumnId c : def.columns) out << ':' << c;
  return out.str();
}

}  // namespace

double DeploymentPlan::TimeToBenefitFraction(double fraction) const {
  if (steps.empty() || total_benefit_seconds <= 0.0) return 0.0;
  const double target = fraction * total_benefit_seconds;
  // Walk finishes in time order; cumulative_benefit_seconds is already
  // accumulated in finish order.
  std::vector<const DeploymentStep*> by_finish;
  by_finish.reserve(steps.size());
  for (const DeploymentStep& s : steps) by_finish.push_back(&s);
  std::sort(by_finish.begin(), by_finish.end(),
            [](const DeploymentStep* a, const DeploymentStep* b) {
              return a->finish_seconds < b->finish_seconds;
            });
  for (const DeploymentStep* s : by_finish) {
    if (s->cumulative_benefit_seconds >= target) return s->finish_seconds;
  }
  return makespan_seconds;
}

double DeploymentPlanner::ModeledBuildSeconds(
    const CandidateIndex& c) const {
  const double rate = options_.build_bytes_per_second > 0.0
                          ? options_.build_bytes_per_second
                          : 64.0 * 1024 * 1024;
  return std::max(c.size_bytes, 1.0) / rate;
}

DeploymentPlan DeploymentPlanner::Plan(
    const std::vector<CandidateIndex>& approved) const {
  DeploymentPlan plan;
  if (approved.empty()) return plan;

  // Smith's rule: descending benefit-per-build-second. Benefit floors at
  // zero so a (rare) negative-utility candidate sorts last, not first.
  struct Ranked {
    const CandidateIndex* c;
    double rate;
    double build_seconds;
    std::string signature;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(approved.size());
  for (const CandidateIndex& c : approved) {
    const double t = ModeledBuildSeconds(c);
    ranked.push_back(
        {&c, std::max(c.benefit, 0.0) / t, t, CanonicalSignature(c.def)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.rate != b.rate) return a.rate > b.rate;
              return a.signature < b.signature;
            });

  // Storage headroom is consumed in priority order: a too-big candidate
  // defers, smaller lower-priority ones may still fit.
  const double headroom = options_.storage_headroom_bytes;
  double used_bytes = 0.0;
  std::vector<const Ranked*> scheduled;
  for (const Ranked& r : ranked) {
    if (headroom > 0.0 && used_bytes + r.c->size_bytes > headroom) {
      plan.deferred_for_storage.push_back(*r.c);
      continue;
    }
    used_bytes += r.c->size_bytes;
    scheduled.push_back(&r);
  }

  // Earliest-available-slot assignment (ties to the lowest slot id).
  const int slots = std::max(options_.max_concurrent_builds, 1);
  std::vector<double> slot_free(static_cast<size_t>(slots), 0.0);
  for (const Ranked* r : scheduled) {
    int best = 0;
    for (int s = 1; s < slots; ++s) {
      if (slot_free[static_cast<size_t>(s)] <
          slot_free[static_cast<size_t>(best)]) {
        best = s;
      }
    }
    DeploymentStep step;
    step.index = *r->c;
    step.slot = best;
    step.start_seconds = slot_free[static_cast<size_t>(best)];
    step.finish_seconds = step.start_seconds + r->build_seconds;
    slot_free[static_cast<size_t>(best)] = step.finish_seconds;
    plan.total_benefit_seconds += std::max(r->c->benefit, 0.0);
    plan.makespan_seconds =
        std::max(plan.makespan_seconds, step.finish_seconds);
    plan.steps.push_back(std::move(step));
  }

  // Accumulate benefit in finish-time order (equals plan order for one
  // slot), then write the running sums back through the finish ranking.
  std::vector<size_t> by_finish(plan.steps.size());
  for (size_t i = 0; i < by_finish.size(); ++i) by_finish[i] = i;
  std::sort(by_finish.begin(), by_finish.end(), [&](size_t a, size_t b) {
    if (plan.steps[a].finish_seconds != plan.steps[b].finish_seconds) {
      return plan.steps[a].finish_seconds < plan.steps[b].finish_seconds;
    }
    return a < b;
  });
  double cumulative = 0.0;
  for (size_t i : by_finish) {
    cumulative += std::max(plan.steps[i].index.benefit, 0.0);
    plan.steps[i].cumulative_benefit_seconds = cumulative;
  }
  return plan;
}

}  // namespace aim::core
