#ifndef AIM_CORE_MERGE_H_
#define AIM_CORE_MERGE_H_

#include <optional>
#include <vector>

#include "core/partial_order.h"

namespace aim::core {

/// \brief MergeCandidatesPairwise (Sec. III-E).
///
/// Defined when (a) both orders are on the same table, (b) cols(P) ⊆
/// cols(Q), and (c) no pair of P's columns is ordered oppositely by P and
/// Q (the C_merge condition). The result is the ordinal sum
/// P ⊕ (Q restricted to cols(Q) \ cols(P)): P's partitions first, then
/// Q's partitions with P's columns removed.
///
/// Returns nullopt when C_merge does not hold.
std::optional<PartialOrder> MergeCandidatesPairwise(const PartialOrder& p,
                                                    const PartialOrder& q);

/// Options bounding the fixpoint iteration (defensive: the set of merges
/// is finite but can be large for adversarial inputs).
struct MergeOptions {
  size_t max_orders = 4096;
  size_t max_iterations = 8;
};

/// \brief MergePartialOrders (Algorithm 2, line 6): repeatedly applies
/// pairwise merges until the set reaches a fixpoint (PO_m == PO_{m+1}),
/// deduplicating by canonical form. Input orders may span multiple
/// tables; merging only happens within a table.
std::vector<PartialOrder> MergePartialOrders(
    std::vector<PartialOrder> orders, const MergeOptions& options = {});

}  // namespace aim::core

#endif  // AIM_CORE_MERGE_H_
