#include "core/exploration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

#include "obs/metrics.h"

namespace aim::core {

namespace {

constexpr uint64_t kMagic = 0x41494d4741544531ULL;  // "AIMGATE1"
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void PutPod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool GetPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

void PutString(std::ostream& out, const std::string& s) {
  PutPod(out, static_cast<uint64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetString(std::istream& in, std::string* s) {
  uint64_t n = 0;
  if (!GetPod(in, &n) || n > (1u << 20)) return false;
  s->resize(n);
  in.read(s->data(), static_cast<std::streamsize>(n));
  return in.good() || (n == 0 && !in.bad());
}

}  // namespace

uint64_t IndexArmKey(const catalog::IndexDef& def) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  h = Fnv1a(h, static_cast<uint64_t>(def.table));
  h = Fnv1a(h, static_cast<uint64_t>(def.columns.size()));
  for (catalog::ColumnId c : def.columns) {
    h = Fnv1a(h, static_cast<uint64_t>(c));
  }
  return h;
}

size_t ExplorationGate::SyncFingerprint(uint64_t fingerprint) {
  if (fingerprint == fingerprint_) return 0;
  size_t released = 0;
  for (auto it = quarantine_.begin(); it != quarantine_.end();) {
    if (it->second.fingerprint != fingerprint) {
      if (it->second.quarantined) ++released;
      it = quarantine_.erase(it);
    } else {
      ++it;
    }
  }
  // Measured benefits were computed under the old schema/statistics;
  // after a drift they may be arbitrarily wrong, so arms fall back to the
  // optimistic what-if prior (pull counts survive — the arm's exploration
  // history is real even if its reward samples went stale).
  for (auto& [key, arm] : arms_) {
    (void)key;
    arm.measured_count = 0;
    arm.measured_total_seconds = 0.0;
  }
  fingerprint_ = fingerprint;
  return released;
}

bool ExplorationGate::IsQuarantined(const catalog::IndexDef& def) const {
  auto it = quarantine_.find(IndexArmKey(def));
  return it != quarantine_.end() && it->second.quarantined;
}

double ExplorationGate::UcbScore(const CandidateIndex& c,
                                 uint64_t total_pulls) const {
  const uint64_t key = IndexArmKey(c.def);
  uint64_t pulls = 0;
  double estimate = c.benefit;  // optimistic what-if prior
  auto it = arms_.find(key);
  if (it != arms_.end()) {
    pulls = it->second.pulls;
    if (it->second.measured_count > 0) {
      estimate = it->second.measured_total_seconds /
                 static_cast<double>(it->second.measured_count);
    }
  }
  const double bonus =
      options_.ucb_coefficient * reward_scale_ *
      std::sqrt(std::log(1.0 + static_cast<double>(total_pulls)) /
                (1.0 + static_cast<double>(pulls)));
  return estimate + bonus;
}

double ExplorationGate::DownsideRisk(const CandidateIndex& c) const {
  double risk = std::max(c.maintenance, 0.0);
  auto it = arms_.find(IndexArmKey(c.def));
  const bool measured = it != arms_.end() && it->second.measured_count > 0;
  if (!measured) {
    risk += options_.unproven_risk_fraction * std::max(c.benefit, 0.0);
  }
  return risk;
}

AdmissionDecision ExplorationGate::Admit(
    const std::vector<CandidateIndex>& validated) {
  AdmissionDecision decision;
  if (validated.empty()) return decision;

  uint64_t total_pulls = 0;
  for (const auto& [key, arm] : arms_) {
    (void)key;
    total_pulls += arm.pulls;
  }

  // Rank by UCB score; arm key breaks ties so the order is a pure
  // function of gate state + candidates (bit-identical at any thread
  // count — the inputs already are).
  struct Ranked {
    const CandidateIndex* c;
    double score;
    uint64_t key;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(validated.size());
  for (const CandidateIndex& c : validated) {
    ranked.push_back({&c, UcbScore(c, total_pulls), IndexArmKey(c.def)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                             const Ranked& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.key < b.key;
  });

  const double budget = options_.regret_budget_seconds;
  for (const Ranked& r : ranked) {
    const double risk = DownsideRisk(*r.c);
    const bool fits = budget <= 0.0 ||
                      decision.projected_regret_seconds + risk <= budget;
    // Soft budget: the top arm always goes through, mirroring the fleet's
    // soft CPU budget — exploration throttles, it never stalls.
    if (fits || decision.admitted.empty()) {
      decision.projected_regret_seconds += risk;
      decision.admitted.push_back(*r.c);
      ++arms_[r.key].pulls;
    } else {
      decision.deferred.push_back(*r.c);
    }
  }
  return decision;
}

void ExplorationGate::ObserveValidation(
    const std::vector<CandidateIndex>& applied,
    const CloneValidationResult& validation) {
  if (applied.empty() || validation.per_query.empty()) return;
  for (const CandidateIndex& c : applied) {
    double measured = 0.0;
    bool any = false;
    for (const QueryValidation& q : validation.per_query) {
      if (std::find(c.benefiting_queries.begin(),
                    c.benefiting_queries.end(),
                    q.fingerprint) == c.benefiting_queries.end()) {
        continue;
      }
      measured += q.cpu_before - q.cpu_after;
      any = true;
    }
    if (!any) continue;
    ArmState& arm = arms_[IndexArmKey(c.def)];
    ++arm.measured_count;
    arm.measured_total_seconds += measured;
  }
}

bool ExplorationGate::ObserveRegression(const catalog::IndexDef& def) {
  QuarantineState& q = quarantine_[IndexArmKey(def)];
  q.def = def;
  q.def.hypothetical = false;
  q.fingerprint = fingerprint_;
  ++q.offenses;
  if (!q.quarantined && q.offenses >= options_.quarantine_after_offenses) {
    q.quarantined = true;
    static obs::Counter* const quarantined =
        obs::MetricsRegistry::Global()->counter(
            "aim.exploration.quarantined");
    quarantined->Add();
    return true;
  }
  return false;
}

void ExplorationGate::ObserveFleetBenefit(double benefit_seconds) {
  const double sample = std::fabs(benefit_seconds);
  reward_scale_ = 0.5 * reward_scale_ + 0.5 * sample;
  // Floor keeps the confidence bonus alive through quiet fleets (a zero
  // scale would freeze exploration entirely).
  reward_scale_ = std::max(reward_scale_, 1e-3);
}

Status ExplorationGate::SaveTo(std::ostream& out) const {
  PutPod(out, kMagic);
  PutPod(out, kVersion);
  PutPod(out, fingerprint_);
  PutPod(out, reward_scale_);
  PutPod(out, static_cast<uint64_t>(arms_.size()));
  for (const auto& [key, arm] : arms_) {
    PutPod(out, key);
    PutPod(out, arm.pulls);
    PutPod(out, arm.measured_count);
    PutPod(out, arm.measured_total_seconds);
  }
  PutPod(out, static_cast<uint64_t>(quarantine_.size()));
  for (const auto& [key, q] : quarantine_) {
    PutPod(out, key);
    PutPod(out, static_cast<int32_t>(q.offenses));
    PutPod(out, static_cast<uint8_t>(q.quarantined ? 1 : 0));
    PutPod(out, q.fingerprint);
    PutPod(out, static_cast<int32_t>(q.def.table));
    PutString(out, q.def.name);
    PutPod(out, static_cast<uint64_t>(q.def.columns.size()));
    for (catalog::ColumnId c : q.def.columns) {
      PutPod(out, static_cast<int32_t>(c));
    }
  }
  if (!out.good()) return Status::Internal("gate state write failed");
  return Status::OK();
}

Status ExplorationGate::LoadFrom(std::istream& in) {
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t fp = 0;
  double scale = 1.0;
  if (!GetPod(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("not a gate state file");
  }
  if (!GetPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported gate state version");
  }
  if (!GetPod(in, &fp) || !GetPod(in, &scale)) {
    return Status::InvalidArgument("truncated gate state header");
  }
  std::map<uint64_t, ArmState> arms;
  std::map<uint64_t, QuarantineState> quarantine;
  uint64_t n = 0;
  if (!GetPod(in, &n) || n > (1u << 22)) {
    return Status::InvalidArgument("bad gate arm count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    ArmState arm;
    if (!GetPod(in, &key) || !GetPod(in, &arm.pulls) ||
        !GetPod(in, &arm.measured_count) ||
        !GetPod(in, &arm.measured_total_seconds)) {
      return Status::InvalidArgument("truncated gate arm entry");
    }
    arms[key] = arm;
  }
  if (!GetPod(in, &n) || n > (1u << 22)) {
    return Status::InvalidArgument("bad gate quarantine count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    QuarantineState q;
    int32_t offenses = 0;
    uint8_t quarantined = 0;
    int32_t table = 0;
    uint64_t ncols = 0;
    if (!GetPod(in, &key) || !GetPod(in, &offenses) ||
        !GetPod(in, &quarantined) || !GetPod(in, &q.fingerprint) ||
        !GetPod(in, &table) || !GetString(in, &q.def.name) ||
        !GetPod(in, &ncols) || ncols > 4096) {
      return Status::InvalidArgument("truncated gate quarantine entry");
    }
    q.offenses = offenses;
    q.quarantined = quarantined != 0;
    q.def.table = static_cast<catalog::TableId>(table);
    q.def.created_by_automation = true;
    for (uint64_t ci = 0; ci < ncols; ++ci) {
      int32_t col = 0;
      if (!GetPod(in, &col)) {
        return Status::InvalidArgument("truncated gate quarantine columns");
      }
      q.def.columns.push_back(static_cast<catalog::ColumnId>(col));
    }
    quarantine[key] = std::move(q);
  }
  fingerprint_ = fp;
  reward_scale_ = scale;
  arms_ = std::move(arms);
  quarantine_ = std::move(quarantine);
  return Status::OK();
}

Status ExplorationGate::SaveSnapshot() const {
  if (options_.state_path.empty()) return Status::OK();
  // Temp-file + rename in the target directory, tagged by thread id:
  // same atomicity story as the what-if cache snapshots.
  const size_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%zx", tid);
  const std::string tmp = options_.state_path + suffix;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open gate temp file " + tmp);
    Status st = SaveTo(out);
    if (st.ok() && !out.good()) {
      st = Status::Internal("short write to gate temp file " + tmp);
    }
    if (!st.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return st;
    }
  }
  if (std::rename(tmp.c_str(), options_.state_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " failed");
  }
  return Status::OK();
}

Status ExplorationGate::LoadSnapshot() {
  if (options_.state_path.empty()) return Status::OK();
  std::ifstream in(options_.state_path, std::ios::binary);
  if (!in) return Status::OK();  // cold start
  return LoadFrom(in);
}

std::vector<ArmView> ExplorationGate::arms() const {
  std::vector<ArmView> out;
  out.reserve(arms_.size());
  for (const auto& [key, arm] : arms_) {
    out.push_back({key, arm.pulls, arm.measured_count,
                   arm.measured_total_seconds});
  }
  return out;
}

std::vector<QuarantineView> ExplorationGate::quarantine() const {
  std::vector<QuarantineView> out;
  out.reserve(quarantine_.size());
  for (const auto& [key, q] : quarantine_) {
    out.push_back({key, q.def, q.offenses, q.quarantined, q.fingerprint});
  }
  return out;
}

std::set<uint64_t> ExplorationGate::quarantined_keys() const {
  std::set<uint64_t> out;
  for (const auto& [key, q] : quarantine_) {
    if (q.quarantined) out.insert(key);
  }
  return out;
}

}  // namespace aim::core
