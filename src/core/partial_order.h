#ifndef AIM_CORE_PARTIAL_ORDER_H_
#define AIM_CORE_PARTIAL_ORDER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace aim::core {

/// \brief A strict partial order of index columns on one table
/// (Sec. III-A3), represented as a sequence of *ordered partitions*.
///
/// `<{c1,c2},{c3}>` denotes every index whose first two key parts are
/// c1 and c2 (in either order) followed by c3: a compact stand-in for a
/// whole family of concrete composite indexes. AIM's candidate generation
/// emits partial orders; only after merging is one total order chosen.
class PartialOrder {
 public:
  /// One partition: a set of columns mutually unordered. Kept sorted for
  /// canonical comparison.
  using Partition = std::vector<catalog::ColumnId>;

  explicit PartialOrder(catalog::TableId table = catalog::kInvalidTable)
      : table_(table) {}

  static PartialOrder FromPartitions(catalog::TableId table,
                                     std::vector<Partition> partitions);

  catalog::TableId table() const { return table_; }
  const std::vector<Partition>& partitions() const { return partitions_; }
  bool empty() const { return partitions_.empty(); }

  /// Appends `cols \ Columns()` as one new partition (the paper's
  /// `candidate.append(...)`: duplicates are dropped, empty appends are
  /// no-ops).
  void AppendPartition(const std::vector<catalog::ColumnId>& cols);
  /// Appends each column (minus duplicates) as its own singleton
  /// partition, preserving sequence (ORDER BY semantics).
  void AppendSequence(const std::vector<catalog::ColumnId>& cols);

  /// All columns in the order, ascending.
  std::vector<catalog::ColumnId> Columns() const;
  /// Total number of columns (index width).
  size_t width() const;
  bool Contains(catalog::ColumnId col) const;
  /// True iff `a` strictly precedes `b` (they sit in different
  /// partitions, a's earlier).
  bool Precedes(catalog::ColumnId a, catalog::ColumnId b) const;

  /// An arbitrary total order satisfying the partial order: partitions in
  /// sequence, columns within a partition ascending
  /// (GenerateCandidateIndexPerPO's "arbitrarily choosing a total
  /// ordering", Algorithm 2 line 7).
  std::vector<catalog::ColumnId> AnyTotalOrder() const;

  /// Number of distinct total orders represented (product of partition
  /// factorials; saturates at SIZE_MAX).
  size_t TotalOrderCount() const;

  /// Canonical text key for dedup: "t3:<{1,2},{5}>".
  std::string CanonicalKey() const;
  /// Human-readable rendering with column names.
  std::string ToString(const catalog::Catalog& catalog) const;

  bool operator==(const PartialOrder& other) const {
    return table_ == other.table_ && partitions_ == other.partitions_;
  }

 private:
  catalog::TableId table_;
  std::vector<Partition> partitions_;
};

}  // namespace aim::core

#endif  // AIM_CORE_PARTIAL_ORDER_H_
