#ifndef AIM_CORE_FLEET_H_
#define AIM_CORE_FLEET_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/continuous.h"
#include "support/fleet_aggregator.h"

namespace aim::core {

/// Global per-interval tuning budget (Sec. VII at fleet scale: thousands
/// of databases, one tuning service). Non-positive fields are
/// unconstrained.
struct FleetBudget {
  /// Estimated tuning CPU-seconds the interval may spend, accounted in
  /// per-tenant cost estimates (EWMA of measured tick wall time on the
  /// dedicated pool).
  double cpu_seconds = 0.0;
  /// Hard cap on tenants tuned per interval.
  int max_tenants = 0;
  /// Cap on validation clones materialized per interval (one per tenant
  /// tick when `validate_on_clone` is on).
  int max_clones = 0;
};

struct FleetCacheStoreOptions {
  /// Capacity (entries) of each per-schema plan-cost cache.
  size_t cache_entries = 4096;
  /// Schema-fingerprint-keyed caches kept in memory; least-recently-used
  /// stores beyond this are evicted at interval boundaries.
  size_t max_stores = 64;
  /// When non-empty, every store persists here (one file per schema
  /// fingerprint, temp-file + atomic rename) and new stores warm-start
  /// from disk — a restarted fleet service resumes with warm caches.
  std::string snapshot_dir;
};

/// \brief The fleet's persistent what-if cache store: one `WhatIfCache`
/// per `Catalog::SchemaStatsFingerprint`, shared by every tenant whose
/// schema + statistics fingerprint matches. Same-schema tenants therefore
/// warm-start each other: the second tenant of a family begins with every
/// plan cost its sibling already computed. Sound because a fingerprint
/// pins the cost model's whole input — a cached (statement, configuration)
/// cost equals what recomputation would produce for ANY tenant with that
/// fingerprint, so sharing can never change a decision.
///
/// Thread-safe lookup; eviction only happens in TrimToCapacity, which
/// callers must invoke at quiescent points (no tenant mid-tick), since
/// running tuners hold bare cache pointers.
class FleetCacheStore {
 public:
  explicit FleetCacheStore(FleetCacheStoreOptions options = {});

  /// The cache for one schema fingerprint, created (and, with a snapshot
  /// dir, loaded from disk) on first sight. The pointer stays valid until
  /// the next TrimToCapacity.
  optimizer::WhatIfCache* GetOrCreate(uint64_t schema_stats_fingerprint);

  /// Best-effort persistence of every store (atomic per file). Returns
  /// the first failure but keeps writing the rest.
  Status SaveAll();

  /// Evicts least-recently-used stores beyond `max_stores`. Quiescent
  /// callers only.
  void TrimToCapacity();

  size_t store_count() const;
  /// Stores that warm-started from a disk snapshot.
  uint64_t snapshot_loads() const;

 private:
  struct StoreEntry {
    std::unique_ptr<optimizer::WhatIfCache> cache;
    std::list<uint64_t>::iterator lru;
  };

  std::string PathFor(uint64_t fingerprint) const;

  FleetCacheStoreOptions options_;
  mutable std::mutex mu_;
  std::map<uint64_t, StoreEntry> stores_;
  std::list<uint64_t> lru_;  // most recently used at front
  uint64_t snapshot_loads_ = 0;
};

struct FleetTunerOptions {
  /// Per-tenant tuner template. `aim.shared_cache` and `aim.shared_pool`
  /// are overwritten per tick by the fleet (schema-keyed store cache,
  /// fleet-wide pool); everything else applies to every tenant alike.
  ContinuousTunerOptions tuner;
  optimizer::CostModel cost_model = optimizer::CostModel();
  FleetBudget budget;
  /// Width of the shared worker pool both fan-out levels run on: tenant
  /// ticks, and each tick's inner what-if work one nesting level deeper
  /// (see common::ThreadPool's helping protocol). 1 = serial fleet loop.
  int num_threads = 1;
  /// Priority aging per starved interval (see Priority below); > 0
  /// guarantees every tenant is eventually scheduled under any budget
  /// that admits at least one tenant per interval.
  double aging_rate = 0.25;
  /// Benefit prior for never-tuned tenants, CPU seconds.
  double default_benefit_seconds = 0.010;
  /// Cost estimate for never-tuned tenants, CPU seconds.
  double default_cost_seconds = 0.050;
  /// EWMA weight of the newest measured tick cost (0..1].
  double cost_smoothing = 0.5;
  /// Multiplicative decay of a tenant's benefit estimate after an
  /// interval that changed nothing (converged tenants sink down the
  /// ranking until their workload shifts).
  double converged_decay = 0.5;
  FleetCacheStoreOptions cache_store;
};

/// What the scheduler decided and observed for one tenant this interval.
struct TenantOutcome {
  std::string tenant;
  uint64_t schema_fingerprint = 0;
  /// Scheduling inputs, as of the decision point.
  double priority = 0.0;
  double estimated_benefit_seconds = 0.0;
  double estimated_cost_seconds = 0.0;
  int intervals_since_tuned = 0;
  /// True when the tenant was scheduled (report/measured fields valid).
  bool tuned = false;
  /// True when an admissible tenant was passed over for budget.
  bool skipped_for_budget = false;
  IntervalReport report;
  double measured_seconds = 0.0;
  /// True when this tenant's cache already existed in the store (it
  /// warm-started off a same-schema sibling or a disk snapshot).
  bool cache_shared = false;
};

struct FleetIntervalReport {
  int interval = 0;
  size_t tenants_considered = 0;
  size_t tenants_tuned = 0;
  size_t tenants_skipped_budget = 0;
  size_t degraded_ticks = 0;
  double estimated_spend_seconds = 0.0;
  double measured_spend_seconds = 0.0;
  size_t cache_stores = 0;
  /// Registration order, one entry per tenant.
  std::vector<TenantOutcome> outcomes;
};

/// \brief Fleet-scale multi-tenant tuning (Sec. VII): N tenant databases
/// with distinct schemas and workloads, one tuning service.
///
/// Each RunInterval ranks every tenant by estimated benefit — measured
/// improvement deltas from the tenant's last tuned IntervalReport plus
/// the aggregator's workload-pressure signal — aged by intervals since
/// last tuned so starved tenants eventually win, then admits tenants in
/// rank order under the global budget and fans the admitted ticks over
/// the shared pool. Inner what-if work nests one level deeper on the
/// same pool (no second pool, no nested-pool deadlock — see
/// common::ThreadPool). Per-tenant decisions are bit-identical to an
/// isolated ContinuousTuner run with the same per-tenant options: the
/// schedule changes WHEN a tenant is tuned, never WHAT a tick decides,
/// and cache/pool sharing are decision-invariant by construction.
class FleetTuner {
 public:
  explicit FleetTuner(FleetTunerOptions options = {});

  /// Registers a tenant. `db`, `workload`, and `monitor` (optional,
  /// bootstrap mode when null) must outlive the tuner. Registration
  /// order is the deterministic tie-break everywhere.
  void AddTenant(std::string name, storage::Database* db,
                 const workload::Workload* workload,
                 const workload::WorkloadMonitor* monitor = nullptr);

  /// One fleet interval: rank, admit under budget, tune in parallel,
  /// fold outcomes, persist + trim the cache store.
  Result<FleetIntervalReport> RunInterval();

  /// The warehouse-side stats view; attach StatsExporters here to feed
  /// the scheduler monitor-driven benefit signals.
  support::FleetAggregator* aggregator() { return &aggregator_; }

  FleetCacheStore* cache_store() { return &cache_store_; }
  size_t tenant_count() const { return tenants_.size(); }
  int intervals_run() const { return interval_; }

 private:
  struct TenantState {
    std::string name;
    storage::Database* db = nullptr;
    const workload::Workload* workload = nullptr;
    const workload::WorkloadMonitor* monitor = nullptr;
    std::unique_ptr<ContinuousTuner> tuner;
    /// Measured-improvement estimate from the last tuned interval.
    double benefit_estimate = 0.0;
    /// EWMA of measured tick seconds.
    double cost_estimate = 0.0;
    int intervals_since_tuned = 0;
    bool ever_tuned = false;
  };

  common::ThreadPool* EnsurePool();
  double Priority(const TenantState& t, double benefit) const;
  /// Benefit signal for ranking: last report's measured per-query CPU
  /// deltas (or the never-tuned prior) plus the aggregator's view.
  double BenefitEstimate(const TenantState& t) const;

  FleetTunerOptions options_;
  std::vector<TenantState> tenants_;
  support::FleetAggregator aggregator_;
  FleetCacheStore cache_store_;
  std::unique_ptr<common::ThreadPool> pool_;
  int interval_ = 0;
};

}  // namespace aim::core

#endif  // AIM_CORE_FLEET_H_
