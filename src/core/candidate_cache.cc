#include "core/candidate_cache.h"

#include <cstring>

#include "optimizer/what_if.h"

namespace aim::core {

namespace {

void Mix(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9E3779B97F4A7C15ull + (*h << 6) + (*h >> 2);
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t CandidateCache::ClusterKey(const sql::Statement& stmt,
                                    uint64_t covering_executions) {
  uint64_t h = optimizer::FingerprintStatement(stmt);
  Mix(&h, covering_executions);
  return h;
}

uint64_t CandidateCache::ContextFingerprint(
    uint64_t schema_stats_fingerprint, uint64_t config_fingerprint,
    const CandidateGenOptions& options) {
  uint64_t h = schema_stats_fingerprint;
  Mix(&h, config_fingerprint);
  Mix(&h, static_cast<uint64_t>(options.join_parameter));
  Mix(&h, options.enable_covering ? 1u : 0u);
  Mix(&h, DoubleBits(options.covering_seek_threshold));
  Mix(&h, options.max_index_width);
  Mix(&h, options.switches.index_merge_union ? 1u : 0u);
  Mix(&h, options.switches.index_condition_pushdown ? 1u : 0u);
  Mix(&h, options.switches.sort_avoidance ? 1u : 0u);
  Mix(&h, options.switches.index_skip_scan ? 1u : 0u);
  Mix(&h, DoubleBits(options.ipp_selectivity_floor));
  Mix(&h, options.use_dataless_cost ? 1u : 0u);
  return h;
}

bool CandidateCache::Lookup(uint64_t cluster, uint64_t context,
                            std::vector<PartialOrder>* out) {
  const Key key{cluster, context};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  *out = it->second->second;
  return true;
}

void CandidateCache::Insert(uint64_t cluster, uint64_t context,
                            std::vector<PartialOrder> orders) {
  const Key key{cluster, context};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent workers computing the same cluster insert identical
    // results; keep the first.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(orders));
  map_.emplace(key, lru_.begin());
  ++stats_.insertions;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void CandidateCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

size_t CandidateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

CandidateCache::Stats CandidateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace aim::core
