#include "core/sharding.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "storage/index_transaction.h"

namespace aim::core {

namespace {
std::string Key(const catalog::IndexDef& def) {
  std::string k = std::to_string(def.table);
  for (catalog::ColumnId c : def.columns) k += "," + std::to_string(c);
  return k;
}
}  // namespace

common::ThreadPool* ShardedIndexManager::EnsurePool() {
  if (options_.aim.num_threads <= 1) {
    pool_.reset();
    return nullptr;
  }
  if (pool_ == nullptr ||
      pool_->worker_count() != options_.aim.num_threads) {
    pool_ = std::make_unique<common::ThreadPool>(options_.aim.num_threads);
  }
  return pool_.get();
}

Result<ShardedReport> ShardedIndexManager::Recommend(
    const workload::Workload& workload, const std::vector<Shard>& shards,
    optimizer::CostModel cm) {
  ShardedReport report;
  if (shards.empty() || shards[0].db == nullptr) {
    return Status::InvalidArgument("no shards");
  }

  // Holistic statistics: the cross-shard aggregate (the stats pipeline of
  // Sec. VII-A feeds exactly this view).
  workload::WorkloadMonitor aggregate;
  bool any_stats = false;
  for (const Shard& s : shards) {
    if (s.monitor != nullptr) {
      aggregate.MergeFrom(*s.monitor);
      any_stats = true;
    }
  }

  AimOptions aim_options = options_.aim;
  aim_options.validate_on_clone = false;  // validation handled per shard
  // Sharded economics: every shard stores every index, so a candidate's
  // effective storage is its size times the shard count, while its
  // benefit comes from the aggregated statistics.
  aim_options.ranking.storage_replication_factor =
      static_cast<double>(shards.size());
  AutomaticIndexManager aim(shards[0].db, cm, aim_options);
  AIM_ASSIGN_OR_RETURN(report.aim,
                       aim.Recommend(workload,
                                     any_stats ? &aggregate : nullptr));
  return report;
}

Result<ShardedReport> ShardedIndexManager::RunOnce(
    const workload::Workload& workload, const std::vector<Shard>& shards,
    optimizer::CostModel cm) {
  obs::Span run_span(obs::Tracer::Get(), "sharded.run_once");
  run_span.SetAttr("shards", shards.size());
  AIM_ASSIGN_OR_RETURN(ShardedReport report,
                       Recommend(workload, shards, cm));
  if (report.aim.recommended.empty()) return report;

  // Per-shard clone validation: an index survives only if it is actually
  // used on at least one validated shard and no validated shard regresses
  // while the candidates are installed. Query regressions confined to a
  // subset of shards are invisible in aggregate statistics — hence the
  // `comprehensive_validation` knob for performance-sensitive databases
  // (Sec. VIII-b); the rest of the fleet relies on the continuous
  // regression detector to revert bad changes after the fact.
  const size_t shards_to_validate =
      options_.comprehensive_validation ? shards.size() : 1;
  common::ThreadPool* pool = EnsurePool();
  CloneValidationOptions validation_opts = options_.aim.validation;
  validation_opts.dedup_replay = validation_opts.dedup_replay ||
                                 options_.aim.what_if_cache_entries > 0 ||
                                 options_.aim.shared_cache != nullptr;

  // Fan the clone validations out over the pool, one slot per shard.
  // When several shards validate concurrently each validation replays
  // serially inside (a nested blocking fan-out on the same fixed-size
  // pool can deadlock: every worker would block on futures only an
  // occupied worker could run). With a single validated shard the pool
  // is spent inside that one validation instead.
  obs::PhaseTimer validate_timer(
      "sharded.validation",
      &report.aim.stats.shard_validation_seconds);
  // Workers attach their per-shard spans under the validation phase by
  // explicit parent id: the thread-local span stack is empty on pool
  // threads, so auto-parenting would make them roots.
  const uint64_t validate_parent = validate_timer.span()->id();
  const bool shard_fan_out = pool != nullptr && shards_to_validate > 1;
  std::vector<Result<CloneValidationResult>> outcomes(
      shards_to_validate,
      Result<CloneValidationResult>(Status::Internal("unresolved")));
  common::ParallelFor(pool, shards_to_validate, [&](size_t si) {
    obs::Span shard_span(obs::Tracer::Get(), "shard.validate",
                         validate_parent);
    shard_span.SetAttr("shard", si);
    const Status lost = AIM_FAULT_POINT_STATUS("shard.validate");
    if (!lost.ok()) {
      shard_span.SetAttr("lost", true);
      outcomes[si] = lost;
      return;
    }
    outcomes[si] = ValidateOnClone(
        *shards[si].db, report.aim.recommended,
        report.aim.selected_workload, cm, validation_opts,
        shard_fan_out ? nullptr : pool);
    shard_span.SetAttr("ok", outcomes[si].ok());
  });

  // Serial fold in shard order: the used-set, the regression veto, and
  // the per-shard records never depend on completion order.
  std::set<std::string> used_somewhere;
  bool any_shard_regressed = false;
  for (size_t si = 0; si < shards_to_validate; ++si) {
    ShardValidation sv;
    sv.shard = si;
    if (!outcomes[si].ok()) {
      // Lost shard: no evidence, conservative veto, run still completes.
      sv.error = outcomes[si].status();
      any_shard_regressed = true;
      ++report.shards_lost;
      report.degraded = true;
      AIM_LOG(Warn) << "shard " << si << " lost during validation: "
                    << sv.error.ToString();
    } else {
      CloneValidationResult vr = outcomes[si].MoveValue();
      for (const CandidateIndex& c : vr.accepted) {
        used_somewhere.insert(Key(c.def));
      }
      any_shard_regressed = any_shard_regressed || !vr.no_regressions;
      sv.result = std::move(vr);
    }
    report.validations.push_back(std::move(sv));
  }
  validate_timer.span()->SetAttr("shards_lost", report.shards_lost);
  validate_timer.Stop();

  std::vector<CandidateIndex> accepted;
  for (const CandidateIndex& c : report.aim.recommended) {
    // A whole-batch regression on any validated shard vetoes the change
    // (the conservative reading of Eq. 4 across shards).
    if (!any_shard_regressed && used_somewhere.count(Key(c.def)) > 0) {
      accepted.push_back(c);
    } else {
      report.rejected_by_shards.push_back(c);
    }
  }
  report.aim.recommended = std::move(accepted);

  // Common physical design: materialize the survivors on every shard.
  // Shard transactions build concurrently (each touches only its own
  // database) but commit together, serially, after every build has been
  // checked in shard order — a failure anywhere rolls back every shard,
  // so the fleet never diverges into a mixed configuration.
  obs::PhaseTimer apply_timer("sharded.apply",
                              &report.aim.stats.shard_apply_seconds);
  const uint64_t apply_parent = apply_timer.span()->id();
  std::vector<std::unique_ptr<storage::IndexSetTransaction>> txns(
      shards.size());
  std::vector<Status> apply_status(shards.size());
  common::ParallelFor(pool, shards.size(), [&](size_t si) {
    obs::Span shard_span(obs::Tracer::Get(), "shard.apply", apply_parent);
    shard_span.SetAttr("shard", si);
    txns[si] =
        std::make_unique<storage::IndexSetTransaction>(shards[si].db);
    for (const CandidateIndex& c : report.aim.recommended) {
      catalog::IndexDef def = c.def;
      def.id = catalog::kInvalidIndex;
      def.hypothetical = false;
      def.created_by_automation = true;
      Result<catalog::IndexId> id = txns[si]->CreateIndex(std::move(def));
      if (!id.ok() &&
          id.status().code() != Status::Code::kAlreadyExists) {
        apply_status[si] = id.status();
        return;
      }
    }
  });
  for (const Status& st : apply_status) {
    if (!st.ok()) return st;  // txn destructors roll back every shard
  }
  for (auto& txn : txns) txn->Commit();
  apply_timer.Stop();
  return report;
}

}  // namespace aim::core
