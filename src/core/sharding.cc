#include "core/sharding.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "storage/index_transaction.h"

namespace aim::core {

namespace {
std::string Key(const catalog::IndexDef& def) {
  std::string k = std::to_string(def.table);
  for (catalog::ColumnId c : def.columns) k += "," + std::to_string(c);
  return k;
}
}  // namespace

Result<ShardedReport> ShardedIndexManager::Recommend(
    const workload::Workload& workload, const std::vector<Shard>& shards,
    optimizer::CostModel cm) {
  ShardedReport report;
  if (shards.empty() || shards[0].db == nullptr) {
    return Status::InvalidArgument("no shards");
  }

  // Holistic statistics: the cross-shard aggregate (the stats pipeline of
  // Sec. VII-A feeds exactly this view).
  workload::WorkloadMonitor aggregate;
  bool any_stats = false;
  for (const Shard& s : shards) {
    if (s.monitor != nullptr) {
      aggregate.MergeFrom(*s.monitor);
      any_stats = true;
    }
  }

  AimOptions aim_options = options_.aim;
  aim_options.validate_on_clone = false;  // validation handled per shard
  // Sharded economics: every shard stores every index, so a candidate's
  // effective storage is its size times the shard count, while its
  // benefit comes from the aggregated statistics.
  aim_options.ranking.storage_replication_factor =
      static_cast<double>(shards.size());
  AutomaticIndexManager aim(shards[0].db, cm, aim_options);
  AIM_ASSIGN_OR_RETURN(report.aim,
                       aim.Recommend(workload,
                                     any_stats ? &aggregate : nullptr));
  return report;
}

Result<ShardedReport> ShardedIndexManager::RunOnce(
    const workload::Workload& workload, const std::vector<Shard>& shards,
    optimizer::CostModel cm) {
  AIM_ASSIGN_OR_RETURN(ShardedReport report,
                       Recommend(workload, shards, cm));
  if (report.aim.recommended.empty()) return report;

  // Per-shard clone validation: an index survives only if it is actually
  // used on at least one validated shard and no validated shard regresses
  // while the candidates are installed. Query regressions confined to a
  // subset of shards are invisible in aggregate statistics — hence the
  // `comprehensive_validation` knob for performance-sensitive databases
  // (Sec. VIII-b); the rest of the fleet relies on the continuous
  // regression detector to revert bad changes after the fact.
  const size_t shards_to_validate =
      options_.comprehensive_validation ? shards.size() : 1;
  std::set<std::string> used_somewhere;
  bool any_shard_regressed = false;
  for (size_t si = 0; si < shards_to_validate; ++si) {
    AIM_ASSIGN_OR_RETURN(
        CloneValidationResult vr,
        ValidateOnClone(*shards[si].db, report.aim.recommended,
                        report.aim.selected_workload, cm,
                        options_.aim.validation));
    for (const CandidateIndex& c : vr.accepted) {
      used_somewhere.insert(Key(c.def));
    }
    any_shard_regressed = any_shard_regressed || !vr.no_regressions;
    ShardValidation sv;
    sv.shard = si;
    sv.result = std::move(vr);
    report.validations.push_back(std::move(sv));
  }

  std::vector<CandidateIndex> accepted;
  for (const CandidateIndex& c : report.aim.recommended) {
    // A whole-batch regression on any validated shard vetoes the change
    // (the conservative reading of Eq. 4 across shards).
    if (!any_shard_regressed && used_somewhere.count(Key(c.def)) > 0) {
      accepted.push_back(c);
    } else {
      report.rejected_by_shards.push_back(c);
    }
  }
  report.aim.recommended = std::move(accepted);

  // Common physical design: materialize the survivors on every shard.
  // All shard transactions commit together — a failure anywhere rolls
  // back every shard, so the fleet never diverges into a mixed
  // configuration.
  std::vector<std::unique_ptr<storage::IndexSetTransaction>> txns;
  txns.reserve(shards.size());
  for (const Shard& s : shards) {
    txns.push_back(
        std::make_unique<storage::IndexSetTransaction>(s.db));
    for (const CandidateIndex& c : report.aim.recommended) {
      catalog::IndexDef def = c.def;
      def.id = catalog::kInvalidIndex;
      def.hypothetical = false;
      def.created_by_automation = true;
      Result<catalog::IndexId> id =
          txns.back()->CreateIndex(std::move(def));
      if (!id.ok() &&
          id.status().code() != Status::Code::kAlreadyExists) {
        return id.status();  // txn destructors roll back every shard
      }
    }
  }
  for (auto& txn : txns) txn->Commit();
  return report;
}

}  // namespace aim::core
