#ifndef AIM_CORE_AIM_H_
#define AIM_CORE_AIM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/candidate_cache.h"
#include "core/candidate_generation.h"
#include "core/clone_validation.h"
#include "core/deployment_plan.h"
#include "core/explain.h"
#include "core/exploration.h"
#include "core/merge.h"
#include "core/ranking.h"
#include "core/workload_selection.h"
#include "storage/database.h"
#include "storage/online_index_builder.h"
#include "workload/compression.h"

namespace aim::core {

/// End-to-end configuration of one AIM run (Algorithm 1).
struct AimOptions {
  CandidateGenOptions candidates;
  WorkloadSelectionOptions selection;
  RankingOptions ranking;
  CloneValidationOptions validation;
  MergeOptions merge;
  /// Materialize-and-replay validation on a clone before recommending
  /// (line 3 of Algorithm 1). Disable for estimate-only benchmarks.
  bool validate_on_clone = true;
  /// Two-phase generation (Sec. III-B): first narrow indexes for every
  /// inefficient query, then covering indexes where the seek volume
  /// justifies them.
  bool two_phase = true;
  /// Worker threads of the parallel what-if engine. 1 = the serial
  /// fallback (no pool, no worker clones). The pipeline is deterministic:
  /// any value produces bit-identical reports.
  int num_threads = 1;
  /// Externally owned worker pool to fan out on instead of a private one
  /// (`num_threads` is then ignored for pool sizing). This is how the
  /// fleet tuner runs many tenants' inner what-if work on one shared
  /// pool: inner tasks are queued one nesting level deeper than the
  /// tenant-level tasks, and waiting tasks help drain deeper work, so
  /// two-level fan-out on a single fixed-size pool cannot deadlock (see
  /// common::ThreadPool). Determinism is unaffected — the pipeline is
  /// bit-identical at any worker count. Null = private per-run pool.
  common::ThreadPool* shared_pool = nullptr;
  /// Capacity (entries) of the memoizing plan-cost cache shared by all
  /// what-if clones of one run. 0 disables memoization entirely — the
  /// pre-cache engine, kept for A/B benchmarking.
  size_t what_if_cache_entries = 4096;
  /// Externally owned plan-cost cache to use instead of a per-run one.
  /// This is how the continuous tuner carries warm entries (and their
  /// snapshot on disk) across intervals; the advisor never clears it —
  /// lifetime and invalidation are the owner's job. Null = per-run cache.
  optimizer::WhatIfCache* shared_cache = nullptr;
  /// Online-apply target. When set, RunOnce's apply phase installs the
  /// accepted indexes on *this* database through OnlineIndexBuilder
  /// (side-build + delta catch-up + bounded-stall swap under its latch())
  /// instead of blocking CreateIndex on `db`. This is how the continuous
  /// tuner plans on a quiesced snapshot while installing on the live,
  /// traffic-bearing database. Null = classic blocking apply on `db`.
  storage::Database* online_apply_db = nullptr;
  /// Build knobs for the online apply path (ignored when
  /// `online_apply_db` is null).
  storage::OnlineBuildOptions online;
  /// Workload compression (the CoPhy-style pre-pass): cluster the
  /// interval's statements into templates / structural clusters and run
  /// selection → candidate generation → ranking on weighted cluster
  /// representatives, with per-cluster frequency roll-up. Off by default.
  workload::WorkloadCompressionOptions compression;
  /// Externally owned per-cluster candidate cache — how the continuous
  /// tuner makes candidate generation incremental across intervals. Keys
  /// embed the statement, configuration, schema/stats, and option
  /// fingerprints, so a hit is exactly what recomputation would produce;
  /// drifted or new clusters miss and recompute. Null = recompute every
  /// cluster. Lifetime and invalidation are the owner's job (the LRU ages
  /// stale keys out on its own).
  CandidateCache* candidate_cache = nullptr;
  /// Externally owned exploration gate (bandit admission + quarantine).
  /// When set, Recommend excludes quarantined candidates and RunOnce
  /// gates the validated set through `Admit` before applying. Null = no
  /// gating. The gate is mutated only from RunOnce's serial sections, so
  /// the owner (the continuous tuner) needs no locking.
  ExplorationGate* exploration_gate = nullptr;
  /// Ordered per-step deployment of the approved set (Kimura et al.).
  /// `deployment.ordered = false` keeps the classic all-or-nothing
  /// single-transaction apply.
  DeploymentOptions deployment;
};

/// Run statistics, for the runtime comparisons of Fig. 4.
struct AimRunStats {
  double runtime_seconds = 0.0;
  uint64_t what_if_calls = 0;
  size_t queries_selected = 0;
  size_t partial_orders_generated = 0;
  size_t partial_orders_after_merge = 0;
  size_t candidates_evaluated = 0;
  size_t indexes_recommended = 0;
  size_t indexes_rejected_by_validation = 0;
  /// Plan-cost cache activity attributable to this run (zeros when
  /// disabled). With a shared cache these are deltas against the counters
  /// at run start, so carried-over caches don't double-count prior runs.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  /// Ready cache entries visible when the run started. Non-zero means a
  /// warm start: entries carried over from an earlier interval or loaded
  /// from a persisted snapshot.
  size_t cache_entries_at_start = 0;
  bool cache_warm_start = false;
  /// Per-phase wall-time breakdown, seconds (where a Fig. 4-style bench's
  /// time actually goes). selection + candgen + ranking sum to Recommend;
  /// validation + apply are the extra RunOnce phases.
  double selection_seconds = 0.0;
  double candgen_seconds = 0.0;
  double ranking_seconds = 0.0;
  double validation_seconds = 0.0;
  double apply_seconds = 0.0;
  /// Sharded-run extras (zero outside ShardedIndexManager): wall time of
  /// the per-shard validation fan-out and of the all-shard apply.
  double shard_validation_seconds = 0.0;
  double shard_apply_seconds = 0.0;
  /// Online-apply extras (zero on the blocking path): indexes installed
  /// through OnlineIndexBuilder, delta entries applied across those
  /// builds, and the worst exclusive swap stall.
  size_t online_builds = 0;
  uint64_t online_delta_applied = 0;
  double online_max_stall_seconds = 0.0;
  /// Workload-compression activity (identity values when disabled).
  uint64_t compression_statements_in = 0;
  size_t compression_clusters = 0;
  double compression_ratio = 1.0;
  double compression_seconds = 0.0;
  /// Incremental candidate generation (zeros without a candidate cache).
  /// One "cluster" per selected query per generation pass; reused =
  /// served from the carried cache, recomputed = generated this run.
  size_t candgen_clusters_total = 0;
  size_t candgen_clusters_reused = 0;
  size_t candgen_clusters_recomputed = 0;

  double candgen_reuse_rate() const {
    return candgen_clusters_total == 0
               ? 0.0
               : static_cast<double>(candgen_clusters_reused) /
                     static_cast<double>(candgen_clusters_total);
  }

  double cache_hit_rate() const {
    const double total = static_cast<double>(cache_hits + cache_misses);
    return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
};

/// The outcome of one AIM run.
struct AimReport {
  std::vector<CandidateIndex> recommended;
  std::vector<std::string> explanations;
  std::vector<SelectedQuery> selected_workload;
  CloneValidationResult validation;
  AimRunStats stats;
  /// Bandit-gate admission summary (zeros unless an exploration gate was
  /// configured for the run).
  ExplorationSummary exploration;
  /// Ordered-deployment outcome (zeros unless `deployment.ordered`).
  DeploymentReport deployment;
  /// The compressed workload the run planned on (null when compression is
  /// off). Shared ownership keeps the representative queries that
  /// `selected_workload` points at alive across report copies/moves.
  std::shared_ptr<const workload::CompressedWorkload> compressed;
};

/// \brief AIM — the Automatic Index Manager (Algorithm 1).
///
/// Typical use:
/// \code
///   AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
///   AIM_ASSIGN_OR_RETURN(AimReport report, aim.RunOnce(workload, &mon));
/// \endcode
///
/// `Recommend` computes (but does not apply) the recommendation;
/// `RunOnce` additionally validates on a clone and materializes the
/// accepted indexes on the production database, tagged
/// `created_by_automation` for the regression detector.
class AutomaticIndexManager {
 public:
  AutomaticIndexManager(storage::Database* db, optimizer::CostModel cm,
                        AimOptions options = {})
      : db_(db), cm_(cm), options_(options) {}

  /// Lines 1–2 + ranking of Algorithm 1 (no materialization). `monitor`
  /// may be null for pure bootstrap (weights drive the selection).
  Result<AimReport> Recommend(const workload::Workload& workload,
                              const workload::WorkloadMonitor* monitor);

  /// Full Algorithm 1: recommend, validate on a clone, materialize the
  /// survivors on the production database.
  Result<AimReport> RunOnce(const workload::Workload& workload,
                            const workload::WorkloadMonitor* monitor);

  const AimOptions& options() const { return options_; }
  AimOptions* mutable_options() { return &options_; }

 private:
  /// Wraps every workload query as a SelectedQuery when no monitor data
  /// exists (static tuning / bootstrapping, Sec. II-A).
  std::vector<SelectedQuery> SelectQueries(
      const workload::Workload& workload,
      const workload::WorkloadMonitor* monitor) const;

  /// Lazily (re)builds the worker pool to match `options_.num_threads`.
  /// Returns nullptr in serial mode.
  common::ThreadPool* EnsurePool();

  /// The ordered apply path (`options_.deployment.ordered`): plans the
  /// build order via DeploymentPlanner, then installs each step in its
  /// own IndexSetTransaction — a failed step rolls back only itself,
  /// earlier installs stay (each index was individually validated).
  /// `report->recommended` is rewritten to the installed subset.
  Status ApplyOrdered(AimReport* report);

  storage::Database* db_;
  optimizer::CostModel cm_;
  AimOptions options_;
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace aim::core

#endif  // AIM_CORE_AIM_H_
