#ifndef AIM_CORE_AIM_H_
#define AIM_CORE_AIM_H_

#include <string>
#include <vector>

#include "core/candidate_generation.h"
#include "core/clone_validation.h"
#include "core/explain.h"
#include "core/merge.h"
#include "core/ranking.h"
#include "core/workload_selection.h"
#include "storage/database.h"

namespace aim::core {

/// End-to-end configuration of one AIM run (Algorithm 1).
struct AimOptions {
  CandidateGenOptions candidates;
  WorkloadSelectionOptions selection;
  RankingOptions ranking;
  CloneValidationOptions validation;
  MergeOptions merge;
  /// Materialize-and-replay validation on a clone before recommending
  /// (line 3 of Algorithm 1). Disable for estimate-only benchmarks.
  bool validate_on_clone = true;
  /// Two-phase generation (Sec. III-B): first narrow indexes for every
  /// inefficient query, then covering indexes where the seek volume
  /// justifies them.
  bool two_phase = true;
};

/// Run statistics, for the runtime comparisons of Fig. 4.
struct AimRunStats {
  double runtime_seconds = 0.0;
  uint64_t what_if_calls = 0;
  size_t queries_selected = 0;
  size_t partial_orders_generated = 0;
  size_t partial_orders_after_merge = 0;
  size_t candidates_evaluated = 0;
  size_t indexes_recommended = 0;
  size_t indexes_rejected_by_validation = 0;
};

/// The outcome of one AIM run.
struct AimReport {
  std::vector<CandidateIndex> recommended;
  std::vector<std::string> explanations;
  std::vector<SelectedQuery> selected_workload;
  CloneValidationResult validation;
  AimRunStats stats;
};

/// \brief AIM — the Automatic Index Manager (Algorithm 1).
///
/// Typical use:
/// \code
///   AutomaticIndexManager aim(&db, optimizer::CostModel(), options);
///   AIM_ASSIGN_OR_RETURN(AimReport report, aim.RunOnce(workload, &mon));
/// \endcode
///
/// `Recommend` computes (but does not apply) the recommendation;
/// `RunOnce` additionally validates on a clone and materializes the
/// accepted indexes on the production database, tagged
/// `created_by_automation` for the regression detector.
class AutomaticIndexManager {
 public:
  AutomaticIndexManager(storage::Database* db, optimizer::CostModel cm,
                        AimOptions options = {})
      : db_(db), cm_(cm), options_(options) {}

  /// Lines 1–2 + ranking of Algorithm 1 (no materialization). `monitor`
  /// may be null for pure bootstrap (weights drive the selection).
  Result<AimReport> Recommend(const workload::Workload& workload,
                              const workload::WorkloadMonitor* monitor);

  /// Full Algorithm 1: recommend, validate on a clone, materialize the
  /// survivors on the production database.
  Result<AimReport> RunOnce(const workload::Workload& workload,
                            const workload::WorkloadMonitor* monitor);

  const AimOptions& options() const { return options_; }
  AimOptions* mutable_options() { return &options_; }

 private:
  /// Wraps every workload query as a SelectedQuery when no monitor data
  /// exists (static tuning / bootstrapping, Sec. II-A).
  std::vector<SelectedQuery> SelectQueries(
      const workload::Workload& workload,
      const workload::WorkloadMonitor* monitor) const;

  storage::Database* db_;
  optimizer::CostModel cm_;
  AimOptions options_;
};

}  // namespace aim::core

#endif  // AIM_CORE_AIM_H_
