#ifndef AIM_CORE_WORKLOAD_SELECTION_H_
#define AIM_CORE_WORKLOAD_SELECTION_H_

#include <vector>

#include "workload/compression.h"
#include "workload/monitor.h"
#include "workload/workload.h"

namespace aim::core {

/// Knobs for representative workload selection (Sec. III-C).
struct WorkloadSelectionOptions {
  /// Queries executed fewer times than this per interval are considered
  /// spurious ad-hoc executions and skipped.
  uint64_t min_executions = 5;
  /// Threshold on the expected-benefit *rate* B·freq/Δt, in CPU cores
  /// (the paper's example: 1/20 of a core).
  double min_benefit_cores = 0.05;
  /// Length of the observation interval Δt, seconds.
  double interval_seconds = 60.0;
  /// Cap on the representative sample size (top-k by benefit).
  size_t max_queries = 64;
};

/// One selected query with its statistics and computed benefit.
struct SelectedQuery {
  const workload::Query* query = nullptr;
  workload::QueryStats stats;
  /// B(q, X, Δt) of Eq. 5 (CPU seconds per execution).
  double expected_benefit = 0.0;
  /// B · executions / Δt: CPU cores recoverable by optimizing q.
  double benefit_cores = 0.0;
  /// Workload-compression roll-up (zeros outside compressed monitor-driven
  /// runs): how many raw statements this representative stands for and
  /// their summed observed executions across the cluster. Ranking uses
  /// `cluster_executions` (when non-zero) as the per-interval frequency,
  /// so knapsack benefit is a per-cluster roll-up.
  uint64_t cluster_members = 0;
  uint64_t cluster_executions = 0;
};

/// \brief Selects the representative workload: the most expensive
/// inefficient queries by optimistic expected benefit (Eq. 5), ordered by
/// benefit rate descending.
///
/// DML statements are always carried along (they never "benefit" via ddr
/// but their maintenance costs must be priced during ranking), flagged by
/// `SelectedQuery::query->stmt.is_dml()`.
std::vector<SelectedQuery> SelectRepresentativeWorkload(
    const workload::Workload& workload,
    const workload::WorkloadMonitor& monitor,
    const WorkloadSelectionOptions& options = {});

/// \brief Compressed-workload selection: one SelectedQuery per cluster
/// representative, thresholded exactly like one uncompressed entry of the
/// representative's template (so compressed and uncompressed runs admit
/// the same clusters), but carrying the per-cluster execution roll-up for
/// ranking. The `max_queries` cap is consumed in raw-statement units
/// (cluster members), and clusters are never split.
std::vector<SelectedQuery> SelectCompressedWorkload(
    const workload::CompressedWorkload& compressed,
    const workload::WorkloadMonitor& monitor,
    const WorkloadSelectionOptions& options = {});

}  // namespace aim::core

#endif  // AIM_CORE_WORKLOAD_SELECTION_H_
