#include "core/candidate_generation.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "core/merge.h"
#include "optimizer/access_path.h"
#include "optimizer/selectivity.h"

namespace aim::core {

namespace {

using optimizer::AnalyzedQuery;
using optimizer::AtomicPredicate;
using optimizer::Factor;

/// Sargable predicate columns of `instance` within one DNF factor,
/// restricted to `allowed` (empty allowed = no restriction).
struct FactorGroup {
  std::vector<catalog::ColumnId> ipp;       // index-prefix columns
  std::vector<catalog::ColumnId> residual;  // range/like columns
};

void InsertUnique(std::vector<catalog::ColumnId>* v, catalog::ColumnId c) {
  if (std::find(v->begin(), v->end(), c) == v->end()) v->push_back(c);
}

bool Allowed(const std::vector<catalog::ColumnId>& allowed,
             catalog::ColumnId c) {
  return std::find(allowed.begin(), allowed.end(), c) != allowed.end();
}

}  // namespace

/// The DNF factors candidate generation may target. With index-merge
/// union disabled on the fleet, per-OR-factor candidates cannot be used
/// by any plan, so only the conjunctive skeleton is considered.
static std::vector<optimizer::Factor> EffectiveFactors(
    const optimizer::AnalyzedQuery& aq,
    const optimizer::OptimizerSwitches& switches) {
  if (!switches.index_merge_union && aq.dnf.size() > 1) {
    return {optimizer::Factor{aq.conjuncts}};
  }
  std::vector<optimizer::Factor> out;
  out.reserve(aq.dnf.size());
  for (const optimizer::Factor& f : aq.dnf) out.push_back(f);
  return out;
}

std::vector<std::vector<int>> CandidateGenerator::JoinedTablesPowerset(
    const AnalyzedQuery& aq, int instance, int j) const {
  std::vector<int> partners;
  for (const auto& [col, other] : aq.JoinColumnsOf(instance)) {
    (void)col;
    if (std::find(partners.begin(), partners.end(), other) ==
        partners.end()) {
      partners.push_back(other);
    }
  }
  // Algorithm 3: too many partners -> only the empty set (no exhaustive
  // join-order support for this table).
  if (static_cast<int>(partners.size()) > j) partners.clear();
  std::vector<std::vector<int>> powerset;
  const size_t n = partners.size();
  for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
    std::vector<int> subset;
    for (size_t b = 0; b < n; ++b) {
      if ((mask >> b) & 1) subset.push_back(partners[b]);
    }
    powerset.push_back(std::move(subset));
  }
  return powerset;
}

double CandidateGenerator::DatalessIndexCost(
    const workload::Query& query, catalog::TableId table,
    const std::vector<catalog::ColumnId>& ipp, catalog::ColumnId extra) {
  ++dataless_cost_calls_;
  if (what_if_ == nullptr || !options_.use_dataless_cost) {
    // Fallback: raw per-column cardinality (no optimizer consultation) --
    // prefer the column with more distinct values.
    return catalog_->column_stats({table, extra}).DefaultEqSelectivity();
  }
  catalog::IndexDef def;
  def.table = table;
  def.columns = ipp;
  def.columns.push_back(extra);
  // Probe with the candidate index alone, then restore the ambient
  // configuration (e.g. the staged phase-1 candidates of two-phase
  // generation) so the covering checks of *later* queries still see it —
  // each query's generation is independent of where it sits in the loop,
  // which is also what lets the per-query fan-out chunk arbitrarily.
  const std::vector<catalog::IndexDef> ambient =
      what_if_->CurrentConfiguration();
  Status st = what_if_->SetConfiguration({def});
  double cost = 1e30;
  if (st.ok()) {
    Result<double> c = what_if_->QueryCost(query.stmt);
    if (c.ok()) cost = c.ValueOrDie();
  }
  if (!what_if_->SetConfiguration(ambient).ok()) {
    what_if_->ClearConfiguration();
  }
  return cost;
}

std::vector<PartialOrder>
CandidateGenerator::GenerateCandidateIndexPredicates(
    const workload::Query& query, const AnalyzedQuery& aq, int instance,
    const std::vector<catalog::ColumnId>& columns,
    const std::vector<catalog::ColumnId>& join_columns) {
  const catalog::TableId table = aq.instances[instance].table;
  std::vector<PartialOrder> out;
  std::unordered_set<std::string> seen;

  // FactorizeIndexPredicates: one group per DNF factor, restricted to the
  // allowed columns; join columns act as equality (IPP) members of every
  // group.
  const std::vector<Factor> factors = EffectiveFactors(aq, options_.switches);
  std::vector<FactorGroup> groups;
  for (const Factor& factor : factors) {
    FactorGroup g;
    for (const AtomicPredicate& p : factor.predicates) {
      if (p.column.instance != instance) continue;
      if (!p.is_sargable()) continue;
      if (!Allowed(columns, p.column.column)) continue;
      if (p.is_index_prefix()) {
        InsertUnique(&g.ipp, p.column.column);
      } else {
        InsertUnique(&g.residual, p.column.column);
      }
    }
    for (catalog::ColumnId c : join_columns) {
      if (Allowed(columns, c)) InsertUnique(&g.ipp, c);
    }
    // A column with both an IPP and a range predicate counts as IPP.
    g.residual.erase(
        std::remove_if(g.residual.begin(), g.residual.end(),
                       [&](catalog::ColumnId c) {
                         return std::find(g.ipp.begin(), g.ipp.end(), c) !=
                                g.ipp.end();
                       }),
        g.residual.end());
    if (g.ipp.empty() && g.residual.empty()) continue;
    groups.push_back(std::move(g));
  }

  for (FactorGroup& g : groups) {
    if (options_.ipp_selectivity_floor > 0.0 && g.ipp.size() > 1) {
      // IPP relaxation (Sec. V-A): order prefix columns most selective
      // first and stop once the additive selectivity falls below the
      // floor — further columns cannot reduce the scanned range.
      std::sort(g.ipp.begin(), g.ipp.end(),
                [&](catalog::ColumnId a, catalog::ColumnId b) {
                  return catalog_->column_stats({table, a})
                             .DefaultEqSelectivity() <
                         catalog_->column_stats({table, b})
                             .DefaultEqSelectivity();
                });
      double cumulative = 1.0;
      size_t keep = 0;
      for (; keep < g.ipp.size(); ++keep) {
        if (cumulative < options_.ipp_selectivity_floor) break;
        cumulative *= std::max(
            catalog_->column_stats({table, g.ipp[keep]})
                .DefaultEqSelectivity(),
            1e-12);
      }
      g.ipp.resize(std::max<size_t>(1, keep));
    }
    PartialOrder po(table);
    po.AppendPartition(g.ipp);
    if (!g.residual.empty()) {
      // last_col = argmin dataless_index_cost(Q, <C_IPP, {c}>).
      catalog::ColumnId best = g.residual[0];
      if (g.residual.size() > 1) {
        double best_cost = DatalessIndexCost(query, table, g.ipp, best);
        for (size_t i = 1; i < g.residual.size(); ++i) {
          const double c =
              DatalessIndexCost(query, table, g.ipp, g.residual[i]);
          if (c < best_cost) {
            best_cost = c;
            best = g.residual[i];
          }
        }
      }
      po.AppendPartition({best});
    }
    if (po.empty()) continue;
    if (seen.insert(po.CanonicalKey()).second) {
      out.push_back(std::move(po));
    }
  }
  return out;
}

std::vector<PartialOrder> CandidateGenerator::GenerateCandidatesForSelection(
    const workload::Query& query, const AnalyzedQuery& aq, int j,
    CoveringMode mode) {
  std::vector<PartialOrder> out;
  std::unordered_set<std::string> seen;
  for (int t = 0; t < static_cast<int>(aq.instances.size()); ++t) {
    // C_F: columns of t featuring in (sargable) filter predicates.
    std::vector<catalog::ColumnId> c_f;
    for (const Factor& factor : EffectiveFactors(aq, options_.switches)) {
      for (const AtomicPredicate& p : factor.predicates) {
        if (p.column.instance == t && p.is_sargable()) {
          InsertUnique(&c_f, p.column.column);
        }
      }
    }
    for (const std::vector<int>& s : JoinedTablesPowerset(aq, t, j)) {
      // C_J: columns of t joining to any instance in S.
      std::vector<catalog::ColumnId> c_j;
      for (const auto& [col, other] : aq.JoinColumnsOf(t)) {
        if (std::find(s.begin(), s.end(), other) != s.end()) {
          InsertUnique(&c_j, col);
        }
      }
      std::vector<catalog::ColumnId> allowed = c_f;
      for (catalog::ColumnId c : c_j) InsertUnique(&allowed, c);
      if (allowed.empty()) continue;
      std::vector<PartialOrder> candidates = GenerateCandidateIndexPredicates(
          query, aq, t, allowed, c_j);
      if (mode == CoveringMode::kCovering) {
        for (PartialOrder& c : candidates) {
          c.AppendPartition(aq.instances[t].referenced_columns);
        }
      }
      for (PartialOrder& c : candidates) {
        if (seen.insert(c.CanonicalKey()).second) {
          out.push_back(std::move(c));
        }
      }
    }
  }
  return out;
}

std::vector<PartialOrder> CandidateGenerator::GenerateCandidatesForGroupBy(
    const workload::Query& query, const AnalyzedQuery& aq, int j,
    CoveringMode mode) {
  (void)query;
  std::vector<PartialOrder> out;
  if (!options_.switches.sort_avoidance) return out;
  std::unordered_set<std::string> seen;
  for (int t = 0; t < static_cast<int>(aq.instances.size()); ++t) {
    const auto& inst = aq.instances[t];
    const std::vector<catalog::ColumnId>& c_g = inst.group_by_columns;
    if (c_g.empty()) continue;
    if (mode == CoveringMode::kNonCovering) {
      PartialOrder po(inst.table);
      po.AppendPartition(c_g);
      if (seen.insert(po.CanonicalKey()).second) {
        out.push_back(std::move(po));
      }
      continue;
    }
    // Covering: prefix with IPP columns per DNF factor, then group
    // columns, then the remaining referenced columns.
    std::vector<catalog::ColumnId> c_f;
    for (const Factor& factor : EffectiveFactors(aq, options_.switches)) {
      for (const AtomicPredicate& p : factor.predicates) {
        if (p.column.instance == t && p.is_sargable()) {
          InsertUnique(&c_f, p.column.column);
        }
      }
    }
    for (const std::vector<int>& s : JoinedTablesPowerset(aq, t, j)) {
      std::vector<catalog::ColumnId> c_j;
      for (const auto& [col, other] : aq.JoinColumnsOf(t)) {
        if (std::find(s.begin(), s.end(), other) != s.end()) {
          InsertUnique(&c_j, col);
        }
      }
      std::vector<catalog::ColumnId> allowed = c_f;
      for (catalog::ColumnId c : c_j) InsertUnique(&allowed, c);
      for (const Factor& factor : EffectiveFactors(aq, options_.switches)) {
        std::vector<catalog::ColumnId> ipp;
        for (const AtomicPredicate& p : factor.predicates) {
          if (p.column.instance == t && p.is_index_prefix() &&
              Allowed(allowed, p.column.column)) {
            InsertUnique(&ipp, p.column.column);
          }
        }
        for (catalog::ColumnId c : c_j) InsertUnique(&ipp, c);
        PartialOrder po(inst.table);
        po.AppendPartition(ipp);
        po.AppendPartition(c_g);
        po.AppendPartition(inst.referenced_columns);
        if (po.empty()) continue;
        if (seen.insert(po.CanonicalKey()).second) {
          out.push_back(std::move(po));
        }
      }
    }
  }
  return out;
}

std::vector<PartialOrder> CandidateGenerator::GenerateCandidatesForOrderBy(
    const workload::Query& query, const AnalyzedQuery& aq, int j,
    CoveringMode mode) {
  std::vector<PartialOrder> out;
  if (!options_.switches.sort_avoidance) return out;
  std::unordered_set<std::string> seen;
  for (int t = 0; t < static_cast<int>(aq.instances.size()); ++t) {
    const auto& inst = aq.instances[t];
    if (inst.order_by_columns.empty()) continue;
    std::vector<catalog::ColumnId> c_o;
    for (const auto& o : inst.order_by_columns) {
      c_o.push_back(o.column.column);
    }
    if (mode == CoveringMode::kNonCovering) {
      PartialOrder po(inst.table);
      po.AppendSequence(c_o);  // sequence: the order matters
      if (seen.insert(po.CanonicalKey()).second) {
        out.push_back(std::move(po));
      }
      continue;
    }
    std::vector<catalog::ColumnId> c_f;
    for (const Factor& factor : EffectiveFactors(aq, options_.switches)) {
      for (const AtomicPredicate& p : factor.predicates) {
        if (p.column.instance == t && p.is_sargable()) {
          InsertUnique(&c_f, p.column.column);
        }
      }
    }
    for (const std::vector<int>& s : JoinedTablesPowerset(aq, t, j)) {
      std::vector<catalog::ColumnId> c_j;
      for (const auto& [col, other] : aq.JoinColumnsOf(t)) {
        if (std::find(s.begin(), s.end(), other) != s.end()) {
          InsertUnique(&c_j, col);
        }
      }
      std::vector<catalog::ColumnId> allowed = c_f;
      for (catalog::ColumnId c : c_j) InsertUnique(&allowed, c);
      for (const Factor& factor : EffectiveFactors(aq, options_.switches)) {
        std::vector<catalog::ColumnId> ipp;
        for (const AtomicPredicate& p : factor.predicates) {
          if (p.column.instance == t && p.is_index_prefix() &&
              Allowed(allowed, p.column.column)) {
            InsertUnique(&ipp, p.column.column);
          }
        }
        for (catalog::ColumnId c : c_j) InsertUnique(&ipp, c);
        PartialOrder po(inst.table);
        po.AppendPartition(ipp);
        po.AppendSequence(c_o);
        po.AppendPartition(inst.referenced_columns);
        if (po.empty()) continue;
        if (seen.insert(po.CanonicalKey()).second) {
          out.push_back(std::move(po));
        }
      }
    }
  }
  (void)query;
  return out;
}

CoveringMode CandidateGenerator::TryCoveringIndex(
    const workload::Query& query, const AnalyzedQuery& aq,
    const workload::QueryStats* stats) {
  (void)query;
  if (!options_.enable_covering) return CoveringMode::kNonCovering;
  // A covering index is tried only when (a) some index — existing or
  // staged hypothetical — already consumes every index-prefix predicate
  // of an instance (selectivity cannot improve further), and (b) that
  // access would still pay enough primary-key seeks to justify the wider
  // index's storage (Sec. III-D). Candidate index *paths* are evaluated
  // directly: whether the optimizer would currently pick them over a
  // scan is irrelevant — high seek volume is exactly why it may not.
  const catalog::Catalog& cat = *catalog_;
  const optimizer::CostModel cm(what_if_ != nullptr
                                    ? what_if_->cost_model()
                                    : optimizer::CostModel());
  const double executions =
      stats != nullptr ? static_cast<double>(stats->executions) : 1.0;
  for (int t = 0; t < static_cast<int>(aq.instances.size()); ++t) {
    const auto preds = aq.ConjunctsForInstance(t);
    size_t ipp_columns = 0;
    bool any_sargable = false;
    for (const auto& p : preds) {
      if (p.is_index_prefix()) ++ipp_columns;
      any_sargable = any_sargable || p.is_sargable();
    }
    if (!any_sargable) continue;
    optimizer::AccessPathRequest req;
    req.query = &aq;
    req.instance = t;
    req.predicates = preds;
    req.include_hypothetical = true;
    for (const catalog::IndexDef* idx :
         cat.TableIndexes(aq.instances[t].table, true)) {
      optimizer::AccessPath path =
          optimizer::EvaluateIndexPath(req, *idx, cat, cm);
      if (path.covering) continue;  // already covering: nothing to add
      // "Not possible to improve selectivity any further": the index
      // already consumes every index-prefix predicate, plus the range
      // residual when there are no IPPs at all (range-only filters).
      if (path.eq_prefix_len < ipp_columns) continue;
      if (path.eq_prefix_len == 0 && !path.range_on_next) continue;
      const double seeks_per_interval = path.rows_fetched * executions;
      if (seeks_per_interval >= options_.covering_seek_threshold) {
        return CoveringMode::kCovering;
      }
    }
  }
  return CoveringMode::kNonCovering;
}

std::vector<PartialOrder> CandidateGenerator::GenerateForQuery(
    const workload::Query& query, const AnalyzedQuery& aq,
    const workload::QueryStats* stats) {
  const CoveringMode mode = TryCoveringIndex(query, aq, stats);
  const int j = options_.join_parameter;
  std::vector<PartialOrder> out =
      GenerateCandidatesForSelection(query, aq, j, mode);
  std::vector<PartialOrder> group =
      GenerateCandidatesForGroupBy(query, aq, j, mode);
  std::vector<PartialOrder> order =
      GenerateCandidatesForOrderBy(query, aq, j, mode);
  out.insert(out.end(), std::make_move_iterator(group.begin()),
             std::make_move_iterator(group.end()));
  out.insert(out.end(), std::make_move_iterator(order.begin()),
             std::make_move_iterator(order.end()));
  // Dedup across the three generators.
  std::unordered_set<std::string> seen;
  std::vector<PartialOrder> dedup;
  for (PartialOrder& po : out) {
    if (po.empty()) continue;
    if (seen.insert(po.CanonicalKey()).second) {
      dedup.push_back(std::move(po));
    }
  }
  return dedup;
}

Result<std::vector<PartialOrder>> CandidateGenerator::GenerateForWorkload(
    const workload::Workload& workload,
    const workload::WorkloadMonitor* monitor) {
  std::vector<PartialOrder> all;
  for (const workload::Query& q : workload.queries) {
    if (q.stmt.kind != sql::Statement::Kind::kSelect &&
        q.stmt.kind != sql::Statement::Kind::kUpdate &&
        q.stmt.kind != sql::Statement::Kind::kDelete) {
      continue;  // INSERTs generate no read candidates
    }
    Result<AnalyzedQuery> aq = optimizer::Analyze(q.stmt, *catalog_);
    if (!aq.ok()) {
      AIM_LOG(Warn) << "skipping unanalyzable query: "
                    << aq.status().ToString();
      continue;
    }
    const workload::QueryStats* stats =
        monitor != nullptr ? monitor->Find(q.fingerprint) : nullptr;
    std::vector<PartialOrder> pos =
        GenerateForQuery(q, aq.ValueOrDie(), stats);
    all.insert(all.end(), std::make_move_iterator(pos.begin()),
               std::make_move_iterator(pos.end()));
  }
  return MergePartialOrders(std::move(all));
}

std::vector<catalog::IndexDef> CandidateGenerator::GenerateCandidateIndexPerPO(
    const std::vector<PartialOrder>& orders) const {
  std::vector<catalog::IndexDef> out;
  std::set<std::pair<catalog::TableId, std::vector<catalog::ColumnId>>> seen;
  for (const PartialOrder& po : orders) {
    catalog::IndexDef def;
    def.table = po.table();
    def.columns = po.AnyTotalOrder();
    if (def.columns.empty()) continue;
    if (def.columns.size() > options_.max_index_width) {
      def.columns.resize(options_.max_index_width);
    }
    // Skip candidates subsumed by the clustered primary key: a prefix of
    // the PK, or any index that *starts with* the whole PK (the clustered
    // index already delivers that access path).
    const auto& pk = catalog_->table(def.table).primary_key;
    if (!pk.empty()) {
      if (def.columns.size() <= pk.size() &&
          std::equal(def.columns.begin(), def.columns.end(), pk.begin())) {
        continue;
      }
      if (def.columns.size() >= pk.size() &&
          std::equal(pk.begin(), pk.end(), def.columns.begin())) {
        continue;
      }
    }
    if (seen.emplace(def.table, def.columns).second) {
      out.push_back(std::move(def));
    }
  }
  return out;
}

}  // namespace aim::core
