#include "core/merge.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_set>

namespace aim::core {

std::optional<PartialOrder> MergeCandidatesPairwise(const PartialOrder& p,
                                                    const PartialOrder& q) {
  if (p.table() != q.table()) return std::nullopt;

  // cols(P) subset of cols(Q).
  const std::vector<catalog::ColumnId> pc = p.Columns();
  const std::vector<catalog::ColumnId> qc = q.Columns();
  if (!std::includes(qc.begin(), qc.end(), pc.begin(), pc.end())) {
    return std::nullopt;
  }
  // No conflicting pair: a <_P b while b <_Q a.
  for (catalog::ColumnId a : pc) {
    for (catalog::ColumnId b : pc) {
      if (a == b) continue;
      if (p.Precedes(a, b) && q.Precedes(b, a)) return std::nullopt;
    }
  }
  // Ordinal sum: P's partitions, then Q's partitions minus P's columns.
  PartialOrder out(p.table());
  for (const auto& part : p.partitions()) out.AppendPartition(part);
  for (const auto& part : q.partitions()) {
    PartialOrder::Partition rest;
    for (catalog::ColumnId c : part) {
      if (!std::binary_search(pc.begin(), pc.end(), c)) rest.push_back(c);
    }
    out.AppendPartition(rest);
  }
  return out;
}

std::vector<PartialOrder> MergePartialOrders(std::vector<PartialOrder> orders,
                                             const MergeOptions& options) {
  // Dedup the input.
  std::vector<PartialOrder> current;
  std::unordered_set<std::string> seen;
  for (auto& po : orders) {
    if (po.empty()) continue;
    if (seen.insert(po.CanonicalKey()).second) {
      current.push_back(std::move(po));
    }
  }

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool grew = false;
    const size_t n = current.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        if (current.size() >= options.max_orders) break;
        std::optional<PartialOrder> merged =
            MergeCandidatesPairwise(current[i], current[j]);
        if (!merged.has_value()) continue;
        if (seen.insert(merged->CanonicalKey()).second) {
          current.push_back(std::move(*merged));
          grew = true;
        }
      }
      if (current.size() >= options.max_orders) break;
    }
    if (!grew) break;  // fixpoint: PO_m == PO_{m+1}
  }
  return current;
}

}  // namespace aim::core
