#ifndef AIM_CORE_EXPLORATION_H_
#define AIM_CORE_EXPLORATION_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/clone_validation.h"
#include "core/ranking.h"

namespace aim::core {

/// Stable identity of a candidate index as a bandit arm: a hash of its
/// table and key columns only. Ids, names, and flags are excluded so the
/// same logical index maps to the same arm across intervals, restarts,
/// and databases rebuilt from the same schema (no pointers, no ASLR).
uint64_t IndexArmKey(const catalog::IndexDef& def);

/// Knobs of the bandit-style exploration gate (DBA bandits, PAPERS.md:
/// bound the regret of online index exploration under ad-hoc workloads).
struct ExplorationOptions {
  /// Master switch; the tuner constructs no gate when false.
  bool enabled = false;
  /// Scale of the UCB confidence bonus. 0 = pure exploitation (rank by
  /// measured/estimated benefit alone).
  double ucb_coefficient = 1.0;
  /// Per-interval regret budget, CPU seconds: the summed downside risk of
  /// the indexes admitted in one interval may not exceed this. The budget
  /// is soft the same way the fleet's CPU budget is soft — the top-ranked
  /// arm is always admitted, so tuning can never stall outright.
  /// Non-positive = unconstrained.
  double regret_budget_seconds = 0.05;
  /// Offenses (distinct intervals in which RegressionDetector implicated
  /// the index) before an arm is quarantined.
  int quarantine_after_offenses = 2;
  /// Downside risk charged to a never-measured arm, as a fraction of its
  /// estimated benefit (an optimistic estimate may be entirely wrong;
  /// maintenance cost alone understates the exposure).
  double unproven_risk_fraction = 0.5;
  /// When non-empty, gate state (arms + quarantine) persists here via
  /// temp-file + atomic rename, loaded once on the first Tick. A missing
  /// or corrupt snapshot cold-starts the gate.
  std::string state_path;
};

/// One candidate's admission-time bandit accounting, for reports/tests.
struct ArmView {
  uint64_t key = 0;
  uint64_t pulls = 0;
  uint64_t measured_count = 0;
  /// Sum of measured per-interval benefits (validated CPU-seconds deltas
  /// over the arm's benefiting queries).
  double measured_total_seconds = 0.0;
};

/// Quarantine bookkeeping of one repeat-offender arm.
struct QuarantineView {
  uint64_t key = 0;
  catalog::IndexDef def;
  int offenses = 0;
  bool quarantined = false;
  /// Schema/stats fingerprint the offenses were observed under; drift
  /// invalidates the entry (SyncFingerprint).
  uint64_t fingerprint = 0;
};

/// What Admit decided for one interval.
struct AdmissionDecision {
  /// Admitted candidates in UCB order (best first).
  std::vector<CandidateIndex> admitted;
  /// Deferred for regret budget this interval (not rejected — they simply
  /// retry next interval, when installed arms have left the pool).
  std::vector<CandidateIndex> deferred;
  /// Σ downside risk of the admitted set, CPU seconds.
  double projected_regret_seconds = 0.0;
};

/// Admission summary embedded in AimReport (zeros when no gate is set).
struct ExplorationSummary {
  bool gated = false;
  size_t candidates_quarantined = 0;
  size_t admitted = 0;
  size_t deferred = 0;
  double projected_regret_seconds = 0.0;
  double regret_budget_seconds = 0.0;
};

/// \brief Bandit-style exploration gate over candidate index configs.
///
/// Each candidate index is an arm keyed by IndexArmKey. The gate ranks
/// validated candidates by a UCB score — measured mean benefit when the
/// arm has validated evidence, the optimistic what-if estimate otherwise,
/// plus a confidence bonus that shrinks with pulls — and admits greedily
/// until the interval's summed downside risk would exceed the regret
/// budget (top-1 always admitted). Repeat offenders flagged by
/// RegressionDetector are quarantined: excluded from candidate generation
/// until the schema/stats fingerprint drifts, at which point the evidence
/// against them is void and the entry is released.
///
/// Not thread-safe by design: every mutation happens in the tuner's
/// serial sections (admission before apply, regression fold after), which
/// is also what makes decisions bit-identical across worker counts.
class ExplorationGate {
 public:
  explicit ExplorationGate(ExplorationOptions options = {})
      : options_(options) {}

  /// Adopts the current schema/stats fingerprint. Quarantine entries
  /// recorded under a different fingerprint are released (their evidence
  /// predates the drift) and arm measurements are reset; returns how many
  /// quarantined entries the drift released.
  size_t SyncFingerprint(uint64_t fingerprint);

  /// True when the arm of `def` is currently quarantined.
  bool IsQuarantined(const catalog::IndexDef& def) const;

  /// Gate the validated recommendation set for this interval. Mutates arm
  /// state (admitted arms are pulled); call once per interval.
  AdmissionDecision Admit(const std::vector<CandidateIndex>& validated);

  /// Folds validated replay evidence into the admitted arms' measured
  /// benefit: Σ (cpu_before − cpu_after) over each arm's benefiting
  /// queries.
  void ObserveValidation(const std::vector<CandidateIndex>& applied,
                         const CloneValidationResult& validation);

  /// Records one offense against `def` (RegressionDetector implicated it
  /// this interval). Returns true when this offense newly quarantined the
  /// arm.
  bool ObserveRegression(const catalog::IndexDef& def);

  /// Folds a fleet-level benefit measurement (FleetAggregator per-tenant
  /// delta) into the reward scale of the UCB confidence bonus via EWMA.
  /// Scale-only: it widens/narrows every unproven arm's bonus alike.
  void ObserveFleetBenefit(double benefit_seconds);

  /// Binary persistence (magic + version + fingerprint + arms +
  /// quarantine). LoadFrom replaces the gate's state wholesale; call
  /// SyncFingerprint afterwards so a drifted snapshot self-invalidates.
  Status SaveTo(std::ostream& out) const;
  Status LoadFrom(std::istream& in);
  /// Temp-file + atomic-rename snapshot at options().state_path (no-ops
  /// when the path is empty). Load failures cold-start silently.
  Status SaveSnapshot() const;
  Status LoadSnapshot();

  const ExplorationOptions& options() const { return options_; }
  uint64_t fingerprint() const { return fingerprint_; }
  double reward_scale() const { return reward_scale_; }
  /// Deterministic (key-ordered) views, for signatures and tests.
  std::vector<ArmView> arms() const;
  std::vector<QuarantineView> quarantine() const;
  /// Keys currently quarantined, key-ordered.
  std::set<uint64_t> quarantined_keys() const;

 private:
  struct ArmState {
    uint64_t pulls = 0;
    uint64_t measured_count = 0;
    double measured_total_seconds = 0.0;
  };
  struct QuarantineState {
    catalog::IndexDef def;
    int offenses = 0;
    bool quarantined = false;
    uint64_t fingerprint = 0;
  };

  double UcbScore(const CandidateIndex& c, uint64_t total_pulls) const;
  double DownsideRisk(const CandidateIndex& c) const;

  ExplorationOptions options_;
  uint64_t fingerprint_ = 0;
  /// EWMA of |fleet benefit| observations; 1.0 until the first sample.
  double reward_scale_ = 1.0;
  /// std::map: deterministic iteration is part of the bit-identity story.
  std::map<uint64_t, ArmState> arms_;
  std::map<uint64_t, QuarantineState> quarantine_;
};

}  // namespace aim::core

#endif  // AIM_CORE_EXPLORATION_H_
