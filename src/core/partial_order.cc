#include "core/partial_order.h"

#include <algorithm>

#include "common/strings.h"

namespace aim::core {

PartialOrder PartialOrder::FromPartitions(catalog::TableId table,
                                          std::vector<Partition> partitions) {
  PartialOrder po(table);
  for (auto& p : partitions) po.AppendPartition(p);
  return po;
}

void PartialOrder::AppendPartition(
    const std::vector<catalog::ColumnId>& cols) {
  Partition p;
  for (catalog::ColumnId c : cols) {
    if (!Contains(c) && std::find(p.begin(), p.end(), c) == p.end()) {
      p.push_back(c);
    }
  }
  if (p.empty()) return;
  std::sort(p.begin(), p.end());
  partitions_.push_back(std::move(p));
}

void PartialOrder::AppendSequence(
    const std::vector<catalog::ColumnId>& cols) {
  for (catalog::ColumnId c : cols) {
    if (!Contains(c)) partitions_.push_back(Partition{c});
  }
}

std::vector<catalog::ColumnId> PartialOrder::Columns() const {
  std::vector<catalog::ColumnId> out;
  for (const Partition& p : partitions_) {
    out.insert(out.end(), p.begin(), p.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t PartialOrder::width() const {
  size_t w = 0;
  for (const Partition& p : partitions_) w += p.size();
  return w;
}

bool PartialOrder::Contains(catalog::ColumnId col) const {
  for (const Partition& p : partitions_) {
    if (std::find(p.begin(), p.end(), col) != p.end()) return true;
  }
  return false;
}

bool PartialOrder::Precedes(catalog::ColumnId a, catalog::ColumnId b) const {
  int pa = -1;
  int pb = -1;
  for (int i = 0; i < static_cast<int>(partitions_.size()); ++i) {
    if (std::find(partitions_[i].begin(), partitions_[i].end(), a) !=
        partitions_[i].end()) {
      pa = i;
    }
    if (std::find(partitions_[i].begin(), partitions_[i].end(), b) !=
        partitions_[i].end()) {
      pb = i;
    }
  }
  return pa >= 0 && pb >= 0 && pa < pb;
}

std::vector<catalog::ColumnId> PartialOrder::AnyTotalOrder() const {
  std::vector<catalog::ColumnId> out;
  for (const Partition& p : partitions_) {
    out.insert(out.end(), p.begin(), p.end());  // partitions kept sorted
  }
  return out;
}

size_t PartialOrder::TotalOrderCount() const {
  size_t count = 1;
  for (const Partition& p : partitions_) {
    for (size_t k = 2; k <= p.size(); ++k) {
      if (count > SIZE_MAX / k) return SIZE_MAX;
      count *= k;
    }
  }
  return count;
}

std::string PartialOrder::CanonicalKey() const {
  std::string out = StringPrintf("t%u:<", table_);
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (i > 0) out += ",";
    out += "{";
    for (size_t j = 0; j < partitions_[i].size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(partitions_[i][j]);
    }
    out += "}";
  }
  out += ">";
  return out;
}

std::string PartialOrder::ToString(const catalog::Catalog& catalog) const {
  const auto& table = catalog.table(table_);
  std::string out = table.name + ":<";
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{";
    for (size_t j = 0; j < partitions_[i].size(); ++j) {
      if (j > 0) out += ", ";
      out += table.columns[partitions_[i][j]].name;
    }
    out += "}";
  }
  out += ">";
  return out;
}

}  // namespace aim::core
