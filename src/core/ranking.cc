#include "core/ranking.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/logging.h"

namespace aim::core {

namespace {

/// Effective executions per interval: the cluster roll-up when the entry
/// is a compression representative (Σ member executions — knapsack
/// benefit per cluster, not per statement), otherwise observed executions
/// when stats exist, otherwise the query's static weight (bootstrap mode,
/// where the compressor has already summed member weights).
double Executions(const SelectedQuery& sq) {
  if (sq.cluster_executions > 0) {
    return static_cast<double>(sq.cluster_executions);
  }
  if (sq.stats.executions > 0) {
    return static_cast<double>(sq.stats.executions);
  }
  return sq.query != nullptr ? std::max(sq.query->weight, 0.0) : 1.0;
}

/// Observed average CPU seconds per execution; falls back to the
/// estimated cost when the monitor has no data (bootstrap mode).
double CpuAvg(const SelectedQuery& sq, double est_cost_phi,
              const optimizer::CostModel& cm) {
  if (sq.stats.executions > 0) return sq.stats.cpu_avg();
  return cm.ToCpuSeconds(est_cost_phi);
}

/// Repoints `path`'s IndexDef pointers at `target`'s entries by id. Plans
/// reference the planning optimizer's catalog; a plan produced by a worker
/// clone must be rebound to the master catalog before the clone dies.
void RebindPath(optimizer::AccessPath* path,
                const catalog::Catalog& target) {
  if (path->index != nullptr) {
    path->index = target.index(path->index->id);
  }
  for (optimizer::AccessPath& part : path->union_parts) {
    RebindPath(&part, target);
  }
}

}  // namespace

RankingResult RankAndSelect(const std::vector<catalog::IndexDef>& candidates,
                            const std::vector<SelectedQuery>& queries,
                            optimizer::WhatIfOptimizer* what_if,
                            const RankingOptions& options,
                            common::ThreadPool* pool) {
  RankingResult result;
  if (candidates.empty() || what_if == nullptr) return result;

  const uint64_t calls_before = what_if->call_count();

  // cost(q, φ): plans under the *current* configuration (no candidates).
  // Fanned out over the pool; each slot depends only on its own query, so
  // chunking is unobservable. Duplicate statements are served by the
  // shared cache (single-flight: one plan per unique statement).
  what_if->ClearConfiguration();
  std::vector<double> cost_phi(queries.size(), 0.0);
  optimizer::ParallelWhatIf(
      pool, queries.size(), what_if,
      [&](optimizer::WhatIfOptimizer* w, size_t qi) {
        Result<double> c = w->QueryCost(queries[qi].query->stmt);
        cost_phi[qi] = c.ok() ? c.ValueOrDie() : 0.0;
      });

  // Install all candidates hypothetically and identify their ids.
  if (Status st = what_if->SetConfiguration(candidates); !st.ok()) {
    AIM_LOG(Warn) << "SetConfiguration failed: " << st.ToString();
    return result;
  }
  std::vector<CandidateIndex> ranked(candidates.size());
  std::map<catalog::IndexId, size_t> candidate_by_id;
  for (size_t i = 0; i < candidates.size(); ++i) {
    ranked[i].def = candidates[i];
    ranked[i].size_bytes =
        what_if->catalog().IndexSizeBytes(ranked[i].def);
    const catalog::IndexDef* installed = what_if->catalog().FindIndex(
        candidates[i].table, candidates[i].columns);
    if (installed != nullptr && installed->hypothetical) {
      ranked[i].def.id = installed->id;
      candidate_by_id[installed->id] = i;
    }
  }

  // Plans under the full candidate configuration. Planning fans out over
  // the pool; when a cache is attached, duplicate statements share one
  // plan (the optimizer is deterministic, so a representative's plan is
  // bit-identical to what each duplicate would have produced). Without a
  // cache — the pre-memoization engine — every query is planned.
  std::vector<size_t> plan_owner(queries.size());
  std::unordered_map<uint64_t, size_t> first_by_fingerprint;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (what_if->cache() != nullptr) {
      const uint64_t fp =
          optimizer::FingerprintStatement(queries[qi].query->stmt);
      plan_owner[qi] = first_by_fingerprint.emplace(fp, qi).first->second;
    } else {
      plan_owner[qi] = qi;
    }
  }
  std::vector<size_t> representatives;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (plan_owner[qi] == qi) representatives.push_back(qi);
  }
  std::vector<std::optional<optimizer::Plan>> plans(queries.size());
  optimizer::ParallelWhatIf(
      pool, representatives.size(), what_if,
      [&](optimizer::WhatIfOptimizer* w, size_t ri) {
        const size_t qi = representatives[ri];
        Result<optimizer::Plan> r = w->PlanQuery(queries[qi].query->stmt);
        if (!r.ok()) return;
        optimizer::Plan plan = r.MoveValue();
        if (w != what_if) {
          // Clone() preserves index ids, so the rebind is a pure pointer
          // swap; it must happen here, while the clone is still alive.
          for (optimizer::JoinStep& step : plan.steps) {
            RebindPath(&step.path, what_if->catalog());
          }
        }
        plans[qi] = std::move(plan);
      });

  // Benefit/maintenance accumulation stays serial, in query order — the
  // floating-point sums are identical at any thread count.
  const optimizer::CostModel& cm = what_if->cost_model();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const SelectedQuery& sq = queries[qi];
    if (!plans[plan_owner[qi]].has_value()) continue;
    const optimizer::Plan& plan = *plans[plan_owner[qi]];
    const double execs = Executions(sq);
    const double cpu = CpuAvg(sq, cost_phi[qi], cm);

    if (!sq.query->stmt.is_dml()) {
      const double cost_with = plan.total_cost();
      if (cost_phi[qi] <= 0.0) continue;
      const double gain_fraction =
          std::max(0.0, (cost_phi[qi] - cost_with) / cost_phi[qi]);
      // U₊(q, I) · executions, Eq. 7 (per-interval CPU seconds).
      const double u_plus = gain_fraction * cpu * execs;
      if (u_plus <= 0.0) continue;
      // Distribute across used candidate indexes proportional to each
      // step's I/O reduction vs. a table scan (the share s_{i,q}).
      std::vector<std::pair<size_t, double>> shares;
      double share_total = 0.0;
      auto credit = [&](const optimizer::AccessPath& path) {
        if (path.index == nullptr) return;
        auto it = candidate_by_id.find(path.index->id);
        if (it == candidate_by_id.end()) return;  // pre-existing index
        const double scan_cost =
            cm.FullScanCost(what_if->catalog(), path.index->table);
        const double reduction = std::max(scan_cost - path.cost, 1e-6);
        shares.emplace_back(it->second, reduction);
        share_total += reduction;
      };
      for (const optimizer::JoinStep& step : plan.steps) {
        if (step.path.is_index_merge()) {
          // Index-merge union: every OR arm's index earns a share.
          for (const optimizer::AccessPath& part : step.path.union_parts) {
            credit(part);
          }
        } else {
          credit(step.path);
        }
      }
      for (const auto& [ci, share] : shares) {
        ranked[ci].benefit += u_plus * share / share_total;
        ranked[ci].benefiting_queries.push_back(sq.query->fingerprint);
      }
    } else {
      // Eq. 8: u₋(i) += cost_u(q,i)/cost(q,φ) · cpu_avg(q,φ) · freq.
      if (cost_phi[qi] <= 0.0) continue;
      for (const optimizer::IndexMaintenance& m : plan.maintenance) {
        auto it = candidate_by_id.find(m.index);
        if (it == candidate_by_id.end()) continue;
        ranked[it->second].maintenance +=
            (m.cost / cost_phi[qi]) * cpu * execs;
      }
    }
  }
  what_if->ClearConfiguration();

  // Knapsack by utility density, budget-bounded (Sec. III-F).
  std::vector<size_t> order(ranked.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ranked[a].density() > ranked[b].density();
  });
  double used = 0.0;
  const double replication =
      std::max(1.0, options.storage_replication_factor);
  for (size_t i : order) {
    CandidateIndex& c = ranked[i];
    c.def.hypothetical = false;
    c.def.id = catalog::kInvalidIndex;
    const double effective_size = c.size_bytes * replication;
    if (c.utility() > 0.0 &&
        used + effective_size <= options.storage_budget_bytes) {
      used += effective_size;
      result.selected.push_back(c);
    } else {
      result.rejected.push_back(c);
    }
  }
  result.selected_bytes = used;
  result.what_if_calls = what_if->call_count() - calls_before;
  return result;
}

}  // namespace aim::core
