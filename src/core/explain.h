#ifndef AIM_CORE_EXPLAIN_H_
#define AIM_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/ranking.h"

namespace aim::core {

/// \brief Builds the metrics-driven explanation that accompanies each AIM
/// recommendation ("Each index recommendation from AIM is accompanied
/// with a metrics driven explanation", abstract): what the index is,
/// which queries it serves, and the expected CPU benefit vs. maintenance
/// and storage costs.
std::string ExplainRecommendation(const CandidateIndex& candidate,
                                  const std::vector<SelectedQuery>& queries,
                                  const catalog::Catalog& catalog);

/// Explanations for a whole selection, one string per index.
std::vector<std::string> ExplainAll(
    const std::vector<CandidateIndex>& selection,
    const std::vector<SelectedQuery>& queries,
    const catalog::Catalog& catalog);

}  // namespace aim::core

#endif  // AIM_CORE_EXPLAIN_H_
