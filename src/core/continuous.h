#ifndef AIM_CORE_CONTINUOUS_H_
#define AIM_CORE_CONTINUOUS_H_

#include <map>
#include <vector>

#include "core/aim.h"
#include "storage/index_transaction.h"

namespace aim::core {

/// Options for the continuous tuner (Sec. VI-D).
struct ContinuousTunerOptions {
  AimOptions aim;
  /// Automation-created indexes unused for this many consecutive
  /// intervals are dropped ("detect and drop unused indexes").
  int drop_after_idle_intervals = 3;
  /// Shrink automation-created indexes whose trailing key parts go unused
  /// for this many intervals ("drop *parts of* unused indexes").
  int shrink_after_idle_intervals = 3;
  bool enable_drop = true;
  bool enable_shrink = true;
};

/// What one tuning interval did.
struct IntervalReport {
  AimReport aim;
  std::vector<catalog::IndexDef> dropped;
  /// (old definition, new narrower definition) pairs.
  std::vector<std::pair<catalog::IndexDef, catalog::IndexDef>> shrunk;
  /// True when the interval failed and was skipped: all of its index
  /// changes were rolled back, production is exactly as before the Tick,
  /// and `error` holds the cause. Tuning resumes on the next interval.
  bool degraded = false;
  Status error;
};

/// \brief Periodic (naïve, per Sec. VI-D) continuous tuning: run AIM at
/// the end of every statistics interval, and garbage-collect
/// automation-created indexes that the current workload's plans no longer
/// use — entirely or in their trailing key parts.
class ContinuousTuner {
 public:
  ContinuousTuner(storage::Database* db, optimizer::CostModel cm,
                  ContinuousTunerOptions options = {})
      : db_(db), cm_(cm), options_(options) {}

  /// One tuning interval: analyze usage of existing automation indexes
  /// against the current workload, drop/shrink idle ones, then run AIM on
  /// the interval's statistics.
  ///
  /// Degrades gracefully: an internal failure never escapes as a non-OK
  /// Result. Instead the interval's changes are rolled back and the
  /// returned report is marked `degraded` with the failure status — the
  /// production configuration is untouched and the tuner stays usable.
  Result<IntervalReport> Tick(const workload::Workload& workload,
                              const workload::WorkloadMonitor* monitor);

 private:
  struct UsageState {
    int idle_intervals = 0;
    size_t max_used_prefix = 0;
    int prefix_idle_intervals = 0;
  };

  /// Plans every workload query against the real configuration and
  /// records which indexes (and how many leading key parts) are used.
  void ObserveUsage(const workload::Workload& workload);

  /// The fallible interval body; all index changes go through `txn` so
  /// Tick can roll them back on failure.
  Status TickInternal(const workload::Workload& workload,
                      const workload::WorkloadMonitor* monitor,
                      storage::IndexSetTransaction* txn,
                      IntervalReport* report);

  /// Drops usage entries whose index no longer exists (rolled-back or
  /// externally dropped ids).
  void PruneUsage();

  storage::Database* db_;
  optimizer::CostModel cm_;
  ContinuousTunerOptions options_;
  std::map<catalog::IndexId, UsageState> usage_;
};

}  // namespace aim::core

#endif  // AIM_CORE_CONTINUOUS_H_
