#ifndef AIM_CORE_CONTINUOUS_H_
#define AIM_CORE_CONTINUOUS_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/aim.h"
#include "storage/index_transaction.h"
#include "support/regression_detector.h"

namespace aim::core {

/// Options for the continuous tuner (Sec. VI-D).
struct ContinuousTunerOptions {
  AimOptions aim;
  /// Automation-created indexes unused for this many consecutive
  /// intervals are dropped ("detect and drop unused indexes").
  int drop_after_idle_intervals = 3;
  /// Shrink automation-created indexes whose trailing key parts go unused
  /// for this many intervals ("drop *parts of* unused indexes").
  int shrink_after_idle_intervals = 3;
  bool enable_drop = true;
  bool enable_shrink = true;
  /// Keep the what-if plan-cost cache alive across intervals instead of
  /// rebuilding it from zero every Tick. Sound because cache keys embed
  /// the index-configuration fingerprint (so DDL between intervals only
  /// adds new keys) and the tuner clears the cache whenever the schema
  /// or statistics drift (see Catalog::SchemaStatsFingerprint). Requires
  /// `aim.what_if_cache_entries > 0`; ignored when the tuner is handed an
  /// `aim.shared_cache` explicitly.
  bool carry_what_if_cache = true;
  /// Keep per-cluster candidate-generation results across intervals
  /// (incremental candidate generation). Cache keys embed the statement,
  /// configuration, schema/stats, and option fingerprints, so unchanged
  /// clusters are served from the cache while drifted or new clusters —
  /// and any interval after schema/statistics or configuration drift —
  /// miss and recompute; the bounded LRU ages stale keys out. Reuse is
  /// exact (a hit equals recomputation), so this never changes a
  /// selection. Ignored when the tuner is handed an
  /// `aim.candidate_cache` explicitly.
  bool carry_candidate_cache = true;
  /// Capacity of the carried candidate cache, entries (clusters × passes).
  size_t candidate_cache_entries = 8192;
  /// When non-empty, the carried cache is additionally persisted under
  /// this path: a snapshot is loaded once on the first Tick (warm-starting
  /// a restarted tuner) and rewritten after every successful interval. A
  /// missing, stale, or corrupt snapshot simply cold-starts the cache.
  /// The actual file is namespaced by schema/statistics fingerprint —
  /// `optimizer::SnapshotPathForFingerprint(path, fp)` — and written via
  /// temp-file + atomic rename, so any number of tuners (a fleet of
  /// tenants, concurrent processes) may share one configured path without
  /// torn or clobbered snapshots.
  std::string cache_snapshot_path;
  /// Tune a live, traffic-bearing database. Each Tick then plans and
  /// validates against a snapshot copied under a brief exclusive
  /// acquisition of the database latch(), while accepted indexes install
  /// on the live database through OnlineIndexBuilder (side-build + delta
  /// catch-up + bounded-stall swap) and GC drops go through a latch-aware
  /// transaction. Requires every concurrent writer/reader to follow the
  /// Database latch() protocol.
  bool online_apply = false;
  /// Build knobs for online installs (ignored unless `online_apply`).
  storage::OnlineBuildOptions online;
  /// Bandit-guarded exploration (see ExplorationGate). When enabled the
  /// tuner owns a gate: quarantined candidates are excluded from
  /// generation, the validated set is admitted under the per-interval
  /// regret budget, RegressionDetector offenses roll the implicated
  /// indexes back (and quarantine repeat offenders until the
  /// schema/stats fingerprint drifts), and gate state persists at
  /// `exploration.state_path`. Ordered deployment is configured
  /// separately at `aim.deployment`.
  ExplorationOptions exploration;
  /// Detector knobs for the regression → rollback/quarantine feedback
  /// loop (only used when `exploration.enabled`).
  support::RegressionDetectorOptions regression;
};

/// What one tuning interval did.
struct IntervalReport {
  AimReport aim;
  std::vector<catalog::IndexDef> dropped;
  /// (old definition, new narrower definition) pairs.
  std::vector<std::pair<catalog::IndexDef, catalog::IndexDef>> shrunk;
  /// True when the interval failed and was skipped: all of its index
  /// changes were rolled back, production is exactly as before the Tick,
  /// and `error` holds the cause. Tuning resumes on the next interval.
  bool degraded = false;
  Status error;
  /// Cross-interval plan-cost cache bookkeeping (valid even on degraded
  /// intervals). `cache_entries_carried` is how many warm entries this
  /// interval started with; per-interval hit/miss deltas live in
  /// `aim.stats`. `cache_invalidated` means schema/statistics drift
  /// cleared the carried entries before this interval's run;
  /// `cache_loaded_from_snapshot` means the warm entries came from the
  /// persisted snapshot rather than the previous interval.
  size_t cache_entries_carried = 0;
  bool cache_loaded_from_snapshot = false;
  bool cache_invalidated = false;
  /// Exploration bookkeeping (empty/zero unless `exploration.enabled`).
  /// Automation indexes dropped this interval because RegressionDetector
  /// implicated them.
  std::vector<catalog::IndexDef> rolled_back;
  /// Arm keys newly quarantined this interval (offense threshold hit).
  std::vector<uint64_t> quarantined_now;
  /// Quarantine entries released because the schema/stats fingerprint
  /// drifted since they were recorded (survives a degraded reset).
  size_t quarantine_released = 0;
};

/// \brief Periodic (naïve, per Sec. VI-D) continuous tuning: run AIM at
/// the end of every statistics interval, and garbage-collect
/// automation-created indexes that the current workload's plans no longer
/// use — entirely or in their trailing key parts.
class ContinuousTuner {
 public:
  ContinuousTuner(storage::Database* db, optimizer::CostModel cm,
                  ContinuousTunerOptions options = {})
      : db_(db), cm_(cm), options_(options) {}

  /// One tuning interval: analyze usage of existing automation indexes
  /// against the current workload, drop/shrink idle ones, then run AIM on
  /// the interval's statistics.
  ///
  /// Degrades gracefully: an internal failure never escapes as a non-OK
  /// Result. Instead the interval's changes are rolled back and the
  /// returned report is marked `degraded` with the failure status — the
  /// production configuration is untouched and the tuner stays usable.
  Result<IntervalReport> Tick(const workload::Workload& workload,
                              const workload::WorkloadMonitor* monitor);

  /// The carried plan-cost cache; null when carrying is disabled. Exposed
  /// for tests and benchmarks asserting warm-start behaviour.
  const optimizer::WhatIfCache* cache() const { return cache_.get(); }

  /// Mutable options, for owners that re-point per-interval resources —
  /// the fleet tuner injects the schema-keyed shared `aim.shared_cache`
  /// (and the fleet-wide `aim.shared_pool`) before each Tick. Changing
  /// tuning semantics mid-flight is the caller's responsibility.
  ContinuousTunerOptions* mutable_options() { return &options_; }

  /// The carried candidate cache; null until the first Tick (or when
  /// carrying is disabled). Exposed for tests asserting incremental
  /// candidate generation.
  const CandidateCache* candidate_cache() const {
    return candidate_cache_.get();
  }

  /// The exploration gate; null until the first Tick with
  /// `exploration.enabled` (the fleet tuner feeds aggregator benefit
  /// signals here, tests read arm/quarantine state).
  ExplorationGate* exploration_gate() { return gate_.get(); }
  const ExplorationGate* exploration_gate() const { return gate_.get(); }

 private:
  struct UsageState {
    int idle_intervals = 0;
    size_t max_used_prefix = 0;
    int prefix_idle_intervals = 0;
  };

  /// Plans every workload query against `db`'s real configuration and
  /// records which indexes (and how many leading key parts) are used.
  /// `db` is the tuning view: the live database in classic mode, the
  /// interval's snapshot in online mode.
  void ObserveUsage(const workload::Workload& workload,
                    const storage::Database& db);

  /// The fallible interval body; all index changes go through `txn` so
  /// Tick can roll them back on failure.
  Status TickInternal(const workload::Workload& workload,
                      const workload::WorkloadMonitor* monitor,
                      storage::IndexSetTransaction* txn,
                      IntervalReport* report);

  /// Drops usage entries whose index no longer exists (rolled-back or
  /// externally dropped ids).
  void PruneUsage();

  /// Readies `cache_` for the coming interval: allocates it on first use,
  /// loads the snapshot exactly once, and clears carried entries when the
  /// schema/statistics fingerprint drifted. Fills the report's cache
  /// bookkeeping fields (they survive a degraded-interval reset because
  /// Tick re-applies them after the reset).
  void PrepareCache(IntervalReport* report);

  /// Best-effort snapshot write after a successful interval; failures are
  /// logged, never surfaced (the cache stays warm in memory regardless).
  void SaveCacheSnapshot();

  /// Readies the exploration gate: allocates it (and the regression
  /// detector) on the first enabled Tick, loads the persisted gate state
  /// exactly once, and releases quarantine entries whose schema/stats
  /// fingerprint drifted.
  void PrepareGate(IntervalReport* report);

  /// Best-effort gate-state write after a successful interval.
  void SaveGateSnapshot();

  /// Regression → rollback/quarantine feedback: feeds the interval's
  /// monitor statistics to the detector and drops every implicated
  /// automation index through `txn` (repeat offenders are quarantined by
  /// the gate). `automation` is this interval's automation-index
  /// snapshot; rolled-back ids are erased from it and from `usage_` so
  /// the GC loop does not double-drop.
  Status ObserveRegressions(const workload::WorkloadMonitor* monitor,
                            std::vector<catalog::IndexDef>* automation,
                            storage::IndexSetTransaction* txn,
                            IntervalReport* report);

  storage::Database* db_;
  optimizer::CostModel cm_;
  ContinuousTunerOptions options_;
  std::map<catalog::IndexId, UsageState> usage_;
  /// Carried across Ticks; keyed entries stay valid across index DDL, so
  /// only schema/statistics drift clears it.
  std::unique_ptr<optimizer::WhatIfCache> cache_;
  /// Carried per-cluster candidate-generation results (incremental
  /// candgen). Never explicitly invalidated: keys embed every input
  /// fingerprint, so drift surfaces as misses and the LRU evicts.
  std::unique_ptr<CandidateCache> candidate_cache_;
  /// SchemaStatsFingerprint the cached costs were computed against.
  uint64_t cache_schema_fingerprint_ = 0;
  bool snapshot_load_attempted_ = false;
  /// Bandit exploration gate + its regression feedback source; allocated
  /// on the first Tick with `exploration.enabled`. Mutated only in the
  /// tuner's serial sections.
  std::unique_ptr<ExplorationGate> gate_;
  std::unique_ptr<support::RegressionDetector> detector_;
  bool gate_load_attempted_ = false;
};

}  // namespace aim::core

#endif  // AIM_CORE_CONTINUOUS_H_
