#include "core/fleet.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aim::core {

// ---------------------------------------------------------------------------
// FleetCacheStore

FleetCacheStore::FleetCacheStore(FleetCacheStoreOptions options)
    : options_(std::move(options)) {}

std::string FleetCacheStore::PathFor(uint64_t fingerprint) const {
  return optimizer::SnapshotPathForFingerprint(
      options_.snapshot_dir + "/whatif_cache", fingerprint);
}

optimizer::WhatIfCache* FleetCacheStore::GetOrCreate(
    uint64_t schema_stats_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stores_.find(schema_stats_fingerprint);
  if (it != stores_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.cache.get();
  }
  StoreEntry entry;
  entry.cache =
      std::make_unique<optimizer::WhatIfCache>(options_.cache_entries);
  if (!options_.snapshot_dir.empty()) {
    std::ifstream in(PathFor(schema_stats_fingerprint), std::ios::binary);
    if (in) {
      Result<bool> loaded =
          entry.cache->LoadFrom(in, schema_stats_fingerprint);
      if (loaded.ok() && loaded.ValueOrDie()) {
        ++snapshot_loads_;
        obs::MetricsRegistry::Global()
            ->counter("fleet.cache.snapshot_loads")
            ->Add();
      }
      // A rejected or failed load is the designed cold start.
    }
  }
  lru_.push_front(schema_stats_fingerprint);
  entry.lru = lru_.begin();
  optimizer::WhatIfCache* cache = entry.cache.get();
  stores_.emplace(schema_stats_fingerprint, std::move(entry));
  return cache;
}

Status FleetCacheStore::SaveAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.snapshot_dir.empty()) return Status::OK();
  Status first_error = Status::OK();
  for (const auto& [fingerprint, entry] : stores_) {
    Status st = optimizer::SaveSnapshotAtomic(*entry.cache,
                                              PathFor(fingerprint),
                                              fingerprint);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

void FleetCacheStore::TrimToCapacity() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_stores == 0) return;
  while (stores_.size() > options_.max_stores) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    stores_.erase(victim);
  }
}

size_t FleetCacheStore::store_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_.size();
}

uint64_t FleetCacheStore::snapshot_loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_loads_;
}

// ---------------------------------------------------------------------------
// FleetTuner

FleetTuner::FleetTuner(FleetTunerOptions options)
    : options_(std::move(options)), cache_store_(options_.cache_store) {}

void FleetTuner::AddTenant(std::string name, storage::Database* db,
                           const workload::Workload* workload,
                           const workload::WorkloadMonitor* monitor) {
  TenantState t;
  t.name = std::move(name);
  t.db = db;
  t.workload = workload;
  t.monitor = monitor;
  t.tuner = std::make_unique<ContinuousTuner>(db, options_.cost_model,
                                              options_.tuner);
  t.cost_estimate = options_.default_cost_seconds;
  tenants_.push_back(std::move(t));
}

common::ThreadPool* FleetTuner::EnsurePool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<common::ThreadPool>(
        options_.num_threads <= 1 ? 0 : options_.num_threads);
  }
  return pool_.get();
}

double FleetTuner::BenefitEstimate(const TenantState& t) const {
  double benefit = t.ever_tuned ? t.benefit_estimate
                                : options_.default_benefit_seconds;
  // Workload pressure from the stats stream: what the tenant's latest
  // interval of traffic could save under ideal indexing (Eq. 5 summed
  // over executions). Zero for tenants with no exporter attached.
  benefit += aggregator_.view(t.name).last_delta_benefit_seconds;
  return benefit;
}

double FleetTuner::Priority(const TenantState& t, double benefit) const {
  const double age = static_cast<double>(t.intervals_since_tuned);
  // Multiplicative aging alone never lifts a zero-benefit tenant; the
  // additive term grows without bound in age, so any tenant eventually
  // outranks every bounded-benefit competitor (starvation-freedom).
  return benefit * (1.0 + options_.aging_rate * age) +
         options_.aging_rate * age * options_.default_benefit_seconds;
}

Result<FleetIntervalReport> FleetTuner::RunInterval() {
  static obs::Counter* const intervals =
      obs::MetricsRegistry::Global()->counter("fleet.intervals");
  static obs::Counter* const tuned_counter =
      obs::MetricsRegistry::Global()->counter("fleet.tenants_tuned");
  static obs::Counter* const skipped_counter =
      obs::MetricsRegistry::Global()->counter(
          "fleet.tenants_skipped_budget");

  obs::Span interval_span(obs::Tracer::Get(), "fleet.interval");
  interval_span.SetAttr("interval", interval_);
  interval_span.SetAttr("tenants", tenants_.size());

  FleetIntervalReport report;
  report.interval = interval_;
  report.tenants_considered = tenants_.size();
  report.outcomes.resize(tenants_.size());

  // ---- Rank (serial, deterministic). --------------------------------
  std::vector<size_t> order(tenants_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> priorities(tenants_.size());
  for (size_t i = 0; i < tenants_.size(); ++i) {
    TenantState& t = tenants_[i];
    const double benefit = BenefitEstimate(t);
    priorities[i] = Priority(t, benefit);
    TenantOutcome& out = report.outcomes[i];
    out.tenant = t.name;
    out.schema_fingerprint = t.db->catalog().SchemaStatsFingerprint();
    out.priority = priorities[i];
    out.estimated_benefit_seconds = benefit;
    out.estimated_cost_seconds = t.cost_estimate;
    out.intervals_since_tuned = t.intervals_since_tuned;
  }
  // Stable sort: equal priorities resolve in registration order.
  std::stable_sort(order.begin(), order.end(),
                   [&priorities](size_t a, size_t b) {
                     return priorities[a] > priorities[b];
                   });

  // ---- Admit under the global budget (serial). ----------------------
  const int clone_cost = options_.tuner.aim.validate_on_clone ? 1 : 0;
  std::vector<size_t> admitted;
  double planned_spend = 0.0;
  int planned_clones = 0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t i = order[rank];
    TenantState& t = tenants_[i];
    const FleetBudget& budget = options_.budget;
    bool fits = true;
    if (budget.max_tenants > 0 &&
        static_cast<int>(admitted.size()) >= budget.max_tenants) {
      fits = false;
    }
    if (budget.max_clones > 0 &&
        planned_clones + clone_cost > budget.max_clones) {
      fits = false;
    }
    // The CPU budget is soft for the single top-ranked tenant: an
    // interval always makes progress even when every tenant's estimate
    // exceeds the budget alone.
    if (budget.cpu_seconds > 0.0 &&
        planned_spend + t.cost_estimate > budget.cpu_seconds &&
        !admitted.empty()) {
      fits = false;
    }
    if (!fits) {
      report.outcomes[i].skipped_for_budget = true;
      continue;
    }
    planned_spend += t.cost_estimate;
    planned_clones += clone_cost;
    admitted.push_back(i);
  }
  report.estimated_spend_seconds = planned_spend;
  report.tenants_tuned = admitted.size();
  report.tenants_skipped_budget =
      tenants_.size() - admitted.size();

  // ---- Bind shared resources (serial: GetOrCreate may touch disk and
  // the "did the store already exist" observation must be race-free).
  common::ThreadPool* pool = EnsurePool();
  for (size_t i : admitted) {
    TenantState& t = tenants_[i];
    TenantOutcome& out = report.outcomes[i];
    const size_t stores_before = cache_store_.store_count();
    optimizer::WhatIfCache* cache =
        cache_store_.GetOrCreate(out.schema_fingerprint);
    out.cache_shared = cache_store_.store_count() == stores_before;
    ContinuousTunerOptions* topts = t.tuner->mutable_options();
    topts->aim.shared_cache = cache;
    topts->aim.shared_pool = pool;
  }

  // ---- Tune the admitted tenants in parallel. -----------------------
  // Tenant ticks are depth-1 tasks on the shared pool; each tick's inner
  // what-if fan-out submits depth-2 tasks to the same pool, and ticks
  // waiting on inner work help drain it (common::ThreadPool's helping
  // protocol) — so one pool serves both levels without deadlock. Results
  // land in pre-sized slots keyed by registration index, so the fold
  // below is deterministic regardless of completion order.
  struct TickResult {
    IntervalReport report;
    double seconds = 0.0;
    Status error;
  };
  std::vector<TickResult> results(tenants_.size());
  {
    const uint64_t parent = interval_span.id();
    std::vector<std::future<void>> futures;
    futures.reserve(admitted.size());
    for (size_t i : admitted) {
      TenantState& t = tenants_[i];
      TickResult& slot = results[i];
      futures.push_back(pool->Submit([&t, &slot, parent] {
        obs::Span tenant_span(obs::Tracer::Get(), "fleet.tenant", parent);
        tenant_span.SetAttr("tenant", t.name);
        const auto start = std::chrono::steady_clock::now();
        Result<IntervalReport> tick = t.tuner->Tick(*t.workload, t.monitor);
        slot.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        if (tick.ok()) {
          slot.report = tick.MoveValue();
        } else {
          slot.error = tick.status();
        }
        tenant_span.SetAttr("seconds", slot.seconds);
        tenant_span.SetAttr("degraded",
                            !slot.error.ok() || slot.report.degraded);
      }));
    }
    for (std::future<void>& f : futures) {
      pool->WaitHelping(f);
      f.get();
    }
  }

  // ---- Fold outcomes (serial, registration order). ------------------
  for (size_t i = 0; i < tenants_.size(); ++i) {
    TenantState& t = tenants_[i];
    TenantOutcome& out = report.outcomes[i];
    const bool was_admitted =
        std::find(admitted.begin(), admitted.end(), i) != admitted.end();
    if (!was_admitted) {
      ++t.intervals_since_tuned;
      continue;
    }
    TickResult& r = results[i];
    out.tuned = true;
    out.measured_seconds = r.seconds;
    report.measured_spend_seconds += r.seconds;
    if (!r.error.ok()) {
      // Tick's contract is to degrade internally; a non-OK Result is
      // unexpected but folded the same way: nothing changed, try again.
      out.report.degraded = true;
      out.report.error = r.error;
    } else {
      out.report = std::move(r.report);
    }
    if (out.report.degraded) ++report.degraded_ticks;

    // Exploration: feed the warehouse-side benefit signal into the
    // tenant's bandit gate (serial fold — the gate is lock-free by
    // design). The signal scales the UCB confidence bonus; admission
    // stays a pure function of each tenant's own serial history.
    if (ExplorationGate* gate = t.tuner->exploration_gate()) {
      gate->ObserveFleetBenefit(
          aggregator_.view(t.name).last_delta_benefit_seconds);
    }

    // Benefit estimate for the next interval: measured per-query CPU
    // improvement from clone validation when available, otherwise decay
    // toward zero — a converged tenant sinks until its workload shifts.
    double measured_benefit = 0.0;
    for (const QueryValidation& q : out.report.aim.validation.per_query) {
      measured_benefit += std::max(0.0, q.cpu_before - q.cpu_after);
    }
    const bool changed_something = !out.report.aim.recommended.empty() ||
                                   !out.report.dropped.empty() ||
                                   !out.report.shrunk.empty();
    if (out.report.degraded) {
      // Keep the estimate: the work is still pending.
    } else if (measured_benefit > 0.0) {
      t.benefit_estimate = measured_benefit;
    } else if (changed_something) {
      t.benefit_estimate =
          std::max(t.benefit_estimate, options_.default_benefit_seconds);
    } else {
      t.benefit_estimate *= options_.converged_decay;
    }
    t.cost_estimate = options_.cost_smoothing * r.seconds +
                      (1.0 - options_.cost_smoothing) * t.cost_estimate;
    t.ever_tuned = true;
    t.intervals_since_tuned = 0;
  }

  // ---- Persist + trim the cache store (quiescent: no tenant mid-tick).
  Status save = cache_store_.SaveAll();
  (void)save;  // best-effort, like ContinuousTuner::SaveCacheSnapshot
  cache_store_.TrimToCapacity();
  report.cache_stores = cache_store_.store_count();

  intervals->Add();
  tuned_counter->Add(report.tenants_tuned);
  skipped_counter->Add(report.tenants_skipped_budget);
  interval_span.SetAttr("tuned", report.tenants_tuned);
  interval_span.SetAttr("skipped_budget", report.tenants_skipped_budget);
  interval_span.SetAttr("degraded", report.degraded_ticks);
  interval_span.SetAttr("measured_seconds", report.measured_spend_seconds);

  ++interval_;
  return report;
}

}  // namespace aim::core
