#include "core/clone_validation.h"

#include <algorithm>
#include <set>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/retry.h"
#include "executor/executor.h"

namespace aim::core {

Result<CloneValidationResult> ValidateOnClone(
    const storage::Database& production,
    const std::vector<CandidateIndex>& selected,
    const std::vector<SelectedQuery>& queries, optimizer::CostModel cm,
    const CloneValidationOptions& options) {
  CloneValidationResult result;
  if (selected.empty()) return result;

  // Clone construction shares the MyShadow fault point: validation
  // cannot start without its test environment.
  AIM_FAULT_POINT("shadow.clone");

  // Control clone: production as-is. Test clone: production + candidates,
  // actually materialized (B+Trees built).
  storage::Database control = production;
  storage::Database test = production;
  RetryPolicy retry(options.retry);
  std::vector<catalog::IndexId> created;
  for (const CandidateIndex& c : selected) {
    catalog::IndexDef def = c.def;
    def.hypothetical = false;
    def.id = catalog::kInvalidIndex;
    def.created_by_automation = true;
    Result<catalog::IndexId> id =
        retry.Run([&] { return test.CreateIndex(def); });
    if (!id.ok()) {
      // A candidate that cannot be built contributes no evidence; it is
      // simply never observed as used and falls out as rejected below.
      AIM_LOG(Warn) << "clone materialization failed: "
                    << id.status().ToString();
      created.push_back(catalog::kInvalidIndex);
      continue;
    }
    created.push_back(id.ValueOrDie());
  }

  executor::Executor control_exec(&control, cm);
  executor::Executor test_exec(&test, cm);

  std::set<catalog::IndexId> used;
  bool improved = false;
  for (const SelectedQuery& sq : queries) {
    Result<executor::ExecuteResult> before =
        control_exec.Execute(sq.query->stmt);
    Result<executor::ExecuteResult> after =
        test_exec.Execute(sq.query->stmt);
    if (!before.ok() || !after.ok()) {
      ++result.failed;
      AIM_LOG(Warn) << "validation replay failed: "
                    << (before.ok() ? after.status() : before.status())
                           .ToString();
      continue;
    }
    ++result.executed;
    for (catalog::IndexId id :
         after.ValueOrDie().metrics.used_indexes) {
      used.insert(id);
    }
    QueryValidation v;
    v.fingerprint = sq.query->fingerprint;
    v.cpu_before = before.ValueOrDie().metrics.cpu_seconds;
    v.cpu_after = after.ValueOrDie().metrics.cpu_seconds;
    v.improved =
        v.cpu_after <= (1.0 - options.lambda2) * v.cpu_before &&
        v.cpu_before > 0;
    v.regressed = v.cpu_after > (1.0 + options.lambda3) * v.cpu_before &&
                  v.cpu_after - v.cpu_before > 1e-9;
    improved = improved || v.improved;
    if (v.regressed) result.no_regressions = false;
    result.per_query.push_back(v);
  }
  result.any_query_improved = improved;

  // A replay where too many queries failed proves nothing about the
  // candidates' effect on production (the failed queries are exactly the
  // ones whose regressions we would miss): reject the whole set and keep
  // production unchanged.
  const size_t replayed = result.executed + result.failed;
  if (replayed > 0 &&
      static_cast<double>(result.failed) >
          options.max_replay_failure_rate * static_cast<double>(replayed)) {
    result.replay_reliable = false;
    result.no_regressions = false;
    result.rejected_unused = selected;
    AIM_LOG(Warn) << "clone validation rejected candidate set: "
                  << result.failed << "/" << replayed
                  << " replayed executions failed";
    return result;
  }

  for (size_t i = 0; i < selected.size(); ++i) {
    const catalog::IndexId id =
        i < created.size() ? created[i] : catalog::kInvalidIndex;
    const bool index_used =
        id != catalog::kInvalidIndex && used.count(id) > 0;
    if (index_used || !options.drop_unused) {
      result.accepted.push_back(selected[i]);
    } else {
      result.rejected_unused.push_back(selected[i]);
    }
  }
  return result;
}

}  // namespace aim::core
