#include "core/clone_validation.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/retry.h"
#include "executor/executor.h"

namespace aim::core {

Result<CloneValidationResult> ValidateOnClone(
    const storage::Database& production,
    const std::vector<CandidateIndex>& selected,
    const std::vector<SelectedQuery>& queries, optimizer::CostModel cm,
    const CloneValidationOptions& options, common::ThreadPool* pool) {
  CloneValidationResult result;
  if (selected.empty()) return result;

  // Clone construction shares the MyShadow fault point: validation
  // cannot start without its test environment.
  AIM_FAULT_POINT("shadow.clone");

  // Control clone: production as-is. Test clone: production + candidates,
  // actually materialized (B+Trees built). Losing the clone here — the
  // `shard.clone.materialize` fault — fails this validation, which the
  // sharding layer reads as "this shard vetoes", not as a crashed run.
  AIM_FAULT_POINT("shard.clone.materialize");
  storage::Database control = production;
  storage::Database test = production;
  std::vector<catalog::IndexDef> defs;
  defs.reserve(selected.size());
  for (const CandidateIndex& c : selected) {
    catalog::IndexDef def = c.def;
    def.hypothetical = false;
    def.id = catalog::kInvalidIndex;
    def.created_by_automation = true;
    defs.push_back(std::move(def));
  }
  // Batch build: heap scans fan out over the pool, ids and adoption order
  // stay identical to the serial one-by-one path. Transient failures get
  // the retry policy serially afterwards; a candidate that still cannot
  // be built contributes no evidence — it is simply never observed as
  // used and falls out as rejected below.
  RetryPolicy retry(options.retry);
  std::vector<Result<catalog::IndexId>> built =
      test.CreateIndexes(defs, pool);
  std::vector<catalog::IndexId> created;
  created.reserve(selected.size());
  for (size_t i = 0; i < built.size(); ++i) {
    Result<catalog::IndexId> id = built[i];
    if (!id.ok() && id.status().IsRetriable()) {
      id = retry.Run([&] { return test.CreateIndex(defs[i]); });
    }
    if (!id.ok()) {
      AIM_LOG(Warn) << "clone materialization failed: "
                    << id.status().ToString();
      created.push_back(catalog::kInvalidIndex);
      continue;
    }
    created.push_back(id.ValueOrDie());
  }

  executor::ExecutorOptions exec_options;
  exec_options.engine = options.replay_engine;
  executor::Executor control_exec(&control, cm, exec_options);
  executor::Executor test_exec(&test, cm, exec_options);

  // Replay both clones. Runs of consecutive SELECTs are read-only on both
  // databases and fan out over the pool; each DML statement is a barrier
  // executed serially at its workload position so every later query sees
  // the same clone state as in a serial replay. Outcomes land in
  // per-query slots and the evidence below is accumulated serially in
  // workload order — bit-identical to the serial path.
  struct ReplayOutcome {
    bool ok = false;
    Status error;
    executor::ExecuteResult before;
    executor::ExecuteResult after;
  };
  std::vector<ReplayOutcome> outcomes(queries.size());
  auto run_query = [&](size_t qi) {
    ReplayOutcome& out = outcomes[qi];
    Result<executor::ExecuteResult> before =
        control_exec.Execute(queries[qi].query->stmt);
    Result<executor::ExecuteResult> after =
        test_exec.Execute(queries[qi].query->stmt);
    if (!before.ok() || !after.ok()) {
      out.error = before.ok() ? after.status() : before.status();
      return;
    }
    out.ok = true;
    out.before = before.MoveValue();
    out.after = after.MoveValue();
  };
  for (size_t qi = 0; qi < queries.size();) {
    if (queries[qi].query->stmt.is_dml()) {
      run_query(qi);
      ++qi;
      continue;
    }
    size_t end = qi;
    while (end < queries.size() && !queries[end].query->stmt.is_dml()) {
      ++end;
    }
    // Within one segment the clone state is fixed and the executor is
    // deterministic, so duplicates of a statement may share one
    // execution (`dedup_replay`); each query still gets its own outcome
    // slot. Owners are discovered in query order, keeping the owner set
    // (and thus all results) independent of thread count.
    std::vector<size_t> owners;
    std::vector<size_t> owner_of(end - qi);
    std::unordered_map<uint64_t, size_t> first_by_fingerprint;
    for (size_t k = qi; k < end; ++k) {
      if (options.dedup_replay) {
        const uint64_t fp =
            optimizer::FingerprintStatement(queries[k].query->stmt);
        auto [it, inserted] = first_by_fingerprint.emplace(fp, k);
        owner_of[k - qi] = it->second;
        if (inserted) owners.push_back(k);
      } else {
        owner_of[k - qi] = k;
        owners.push_back(k);
      }
    }
    common::ParallelFor(pool, owners.size(),
                        [&](size_t j) { run_query(owners[j]); });
    for (size_t k = qi; k < end; ++k) {
      const size_t owner = owner_of[k - qi];
      if (owner != k) outcomes[k] = outcomes[owner];
    }
    qi = end;
  }

  std::set<catalog::IndexId> used;
  bool improved = false;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const SelectedQuery& sq = queries[qi];
    const ReplayOutcome& out = outcomes[qi];
    if (!out.ok) {
      ++result.failed;
      AIM_LOG(Warn) << "validation replay failed: "
                    << out.error.ToString();
      continue;
    }
    ++result.executed;
    for (catalog::IndexId id : out.after.metrics.used_indexes) {
      used.insert(id);
    }
    QueryValidation v;
    v.fingerprint = sq.query->fingerprint;
    v.cpu_before = out.before.metrics.cpu_seconds;
    v.cpu_after = out.after.metrics.cpu_seconds;
    v.improved =
        v.cpu_after <= (1.0 - options.lambda2) * v.cpu_before &&
        v.cpu_before > 0;
    v.regressed = v.cpu_after > (1.0 + options.lambda3) * v.cpu_before &&
                  v.cpu_after - v.cpu_before > 1e-9;
    improved = improved || v.improved;
    if (v.regressed) result.no_regressions = false;
    result.per_query.push_back(v);
  }
  result.any_query_improved = improved;

  // A replay where too many queries failed proves nothing about the
  // candidates' effect on production (the failed queries are exactly the
  // ones whose regressions we would miss): reject the whole set and keep
  // production unchanged.
  const size_t replayed = result.executed + result.failed;
  if (replayed > 0 &&
      static_cast<double>(result.failed) >
          options.max_replay_failure_rate * static_cast<double>(replayed)) {
    result.replay_reliable = false;
    result.no_regressions = false;
    result.rejected_unused = selected;
    AIM_LOG(Warn) << "clone validation rejected candidate set: "
                  << result.failed << "/" << replayed
                  << " replayed executions failed";
    return result;
  }

  for (size_t i = 0; i < selected.size(); ++i) {
    const catalog::IndexId id =
        i < created.size() ? created[i] : catalog::kInvalidIndex;
    const bool index_used =
        id != catalog::kInvalidIndex && used.count(id) > 0;
    if (index_used || !options.drop_unused) {
      result.accepted.push_back(selected[i]);
    } else {
      result.rejected_unused.push_back(selected[i]);
    }
  }
  return result;
}

}  // namespace aim::core
