#ifndef AIM_CORE_SHARDING_H_
#define AIM_CORE_SHARDING_H_

#include <memory>
#include <vector>

#include "core/aim.h"

namespace aim::core {

/// One shard of a horizontally partitioned database. All shards share the
/// same schema and — by deployment mandate — the same physical design
/// (Sec. VIII-b).
struct Shard {
  storage::Database* db = nullptr;
  /// The shard's own observed statistics (may be null in bootstrap mode).
  const workload::WorkloadMonitor* monitor = nullptr;
};

struct ShardedOptions {
  AimOptions aim;
  /// Validate candidates on a clone of *every* shard before accepting
  /// (the paper's "comprehensive validation" knob for performance
  /// sensitive databases); otherwise only the first shard is validated.
  bool comprehensive_validation = false;
};

/// Per-shard validation outcome.
struct ShardValidation {
  size_t shard = 0;
  CloneValidationResult result;
  /// Non-OK when this shard's validation never completed — its clone was
  /// lost mid-materialization or mid-replay (`shard.clone.materialize`,
  /// `shard.validate`). `result` is then empty and the shard counts as a
  /// veto: a shard we could not validate is a shard we must assume would
  /// regress.
  Status error = Status::OK();
};

struct ShardedReport {
  AimReport aim;
  std::vector<ShardValidation> validations;
  /// Candidates rejected because some shard regressed or never used them.
  std::vector<CandidateIndex> rejected_by_shards;
  /// Shards whose validation failed outright (see ShardValidation::error).
  size_t shards_lost = 0;
  /// True when at least one shard was lost: the run completed and
  /// production is untouched, but the rejection decision was made on
  /// degraded evidence rather than a full validation.
  bool degraded = false;
};

/// \brief Index management for sharded deployments (Sec. VIII-b).
///
/// The economics differ from a single database: statistics are aggregated
/// across shards (a hot query may run on few shards), but *every* shard
/// pays the storage and maintenance cost of every index. The ranking
/// therefore multiplies maintenance and storage by the shard count while
/// benefits come from the aggregated statistics.
///
/// With `aim.num_threads > 1`, RunOnce fans per-shard clone validation
/// and the per-shard apply transactions over a worker pool. Validation
/// outcomes land in per-shard slots and every decision — the used-on-
/// some-shard set, the regression veto, the rejection list — is folded
/// serially in shard order, so the report is bit-identical to a serial
/// run at any thread count. When several shards validate concurrently,
/// each shard's inner replay runs serially (nesting blocking fan-outs on
/// one fixed-size pool can deadlock); the single-validated-shard default
/// instead parallelizes inside the one validation.
///
/// A shard lost mid-validation (fault points `shard.validate` and
/// `shard.clone.materialize`) degrades the run instead of failing it:
/// the lost shard vetoes the candidate set (all candidates land in
/// `rejected_by_shards`), production stays untouched, and the report
/// carries `degraded` / `shards_lost` so operators can distinguish "no
/// useful index" from "no usable evidence".
class ShardedIndexManager {
 public:
  explicit ShardedIndexManager(ShardedOptions options = {})
      : options_(options) {}

  /// Recommends one shared physical design for all shards.
  Result<ShardedReport> Recommend(const workload::Workload& workload,
                                  const std::vector<Shard>& shards,
                                  optimizer::CostModel cm);

  /// Recommends, validates per shard, and materializes the survivors on
  /// every shard (the common physical design mandate).
  Result<ShardedReport> RunOnce(const workload::Workload& workload,
                                const std::vector<Shard>& shards,
                                optimizer::CostModel cm);

 private:
  /// Lazily (re)builds the shard fan-out pool to match
  /// `options_.aim.num_threads`. Returns nullptr in serial mode.
  common::ThreadPool* EnsurePool();

  ShardedOptions options_;
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace aim::core

#endif  // AIM_CORE_SHARDING_H_
