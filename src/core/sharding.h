#ifndef AIM_CORE_SHARDING_H_
#define AIM_CORE_SHARDING_H_

#include <vector>

#include "core/aim.h"

namespace aim::core {

/// One shard of a horizontally partitioned database. All shards share the
/// same schema and — by deployment mandate — the same physical design
/// (Sec. VIII-b).
struct Shard {
  storage::Database* db = nullptr;
  /// The shard's own observed statistics (may be null in bootstrap mode).
  const workload::WorkloadMonitor* monitor = nullptr;
};

struct ShardedOptions {
  AimOptions aim;
  /// Validate candidates on a clone of *every* shard before accepting
  /// (the paper's "comprehensive validation" knob for performance
  /// sensitive databases); otherwise only the first shard is validated.
  bool comprehensive_validation = false;
};

/// Per-shard validation outcome.
struct ShardValidation {
  size_t shard = 0;
  CloneValidationResult result;
};

struct ShardedReport {
  AimReport aim;
  std::vector<ShardValidation> validations;
  /// Candidates rejected because some shard regressed or never used them.
  std::vector<CandidateIndex> rejected_by_shards;
};

/// \brief Index management for sharded deployments (Sec. VIII-b).
///
/// The economics differ from a single database: statistics are aggregated
/// across shards (a hot query may run on few shards), but *every* shard
/// pays the storage and maintenance cost of every index. The ranking
/// therefore multiplies maintenance and storage by the shard count while
/// benefits come from the aggregated statistics.
class ShardedIndexManager {
 public:
  explicit ShardedIndexManager(ShardedOptions options = {})
      : options_(options) {}

  /// Recommends one shared physical design for all shards.
  Result<ShardedReport> Recommend(const workload::Workload& workload,
                                  const std::vector<Shard>& shards,
                                  optimizer::CostModel cm);

  /// Recommends, validates per shard, and materializes the survivors on
  /// every shard (the common physical design mandate).
  Result<ShardedReport> RunOnce(const workload::Workload& workload,
                                const std::vector<Shard>& shards,
                                optimizer::CostModel cm);

 private:
  ShardedOptions options_;
};

}  // namespace aim::core

#endif  // AIM_CORE_SHARDING_H_
