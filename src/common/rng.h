#ifndef AIM_COMMON_RNG_H_
#define AIM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace aim {

/// \brief Deterministic pseudo-random number generator (xorshift128+).
///
/// All experiments are seeded so that benchmark output is reproducible
/// run-to-run. Not cryptographically secure; not intended to be.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t Next();
  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);
  /// Uniform real in [0, 1).
  double NextDouble();
  /// True with probability p.
  bool Bernoulli(double p);
  /// Zipfian-distributed value in [0, n) with skew theta (0 = uniform-ish).
  uint64_t Zipf(uint64_t n, double theta);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
  // Cached zipf parameters (recomputed when (n, theta) changes).
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zeta_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace aim

#endif  // AIM_COMMON_RNG_H_
