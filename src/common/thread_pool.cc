#include "common/thread_pool.h"

namespace aim::common {

namespace {

/// Per-thread nesting depth of the currently executing pool task. Global
/// across pool instances on purpose: a task of pool A performing an inner
/// fan-out on pool B is still one level deeper in the wait graph.
thread_local int tls_task_depth = 0;

/// RAII depth scope so exceptions restore the submitter's depth.
struct DepthScope {
  explicit DepthScope(int depth) : saved(tls_task_depth) {
    tls_task_depth = depth;
  }
  ~DepthScope() { tls_task_depth = saved; }
  int saved;
};

}  // namespace

ThreadPool::ThreadPool(int workers) {
  const int count = workers > 1 ? workers : 0;
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::CurrentDepth() { return tls_task_depth; }

void ThreadPool::RunWithDepth(int depth, const std::function<void()>& fn) {
  DepthScope scope(depth);
  fn();
}

bool ThreadPool::HelpOne() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int mine = tls_task_depth;
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [mine](const Task& t) { return t.depth > mine; });
    if (it == queue_.end()) return false;
    task = std::move(*it);
    queue_.erase(it);
  }
  RunWithDepth(task.depth, task.fn);
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task captures exceptions into the future
    RunWithDepth(task.depth, task.fn);
  }
}

}  // namespace aim::common
