#include "common/thread_pool.h"

namespace aim::common {

ThreadPool::ThreadPool(int workers) {
  const int count = workers > 1 ? workers : 0;
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace aim::common
