#ifndef AIM_COMMON_LOGGING_H_
#define AIM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace aim {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Minimal streaming logger. Messages below the global threshold are
/// dropped. Thread-compatible (benchmarks and the advisor are single
/// threaded; the stats exporter serializes through this API).
class Logger {
 public:
  /// Sets the global minimum level; returns the previous one.
  static LogLevel SetLevel(LogLevel level);
  static LogLevel GetLevel();

  Logger(LogLevel level, const char* file, int line);
  ~Logger();

  template <typename T>
  Logger& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace aim

#define AIM_LOG(level) \
  ::aim::Logger(::aim::LogLevel::k##level, __FILE__, __LINE__)

#endif  // AIM_COMMON_LOGGING_H_
