#ifndef AIM_COMMON_RETRY_H_
#define AIM_COMMON_RETRY_H_

#include <algorithm>
#include <functional>
#include <type_traits>
#include <utility>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace aim {

/// Knobs for RetryPolicy. Backoff for attempt k (1-based) is
///   min(initial_backoff_ms * multiplier^(k-1), max_backoff_ms)
/// scaled by a deterministic jitter factor in
/// [1 - jitter_fraction, 1 + jitter_fraction] drawn from `seed`.
struct RetryOptions {
  int max_attempts = 4;
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  double jitter_fraction = 0.2;
  uint64_t seed = 42;
};

/// \brief Exponential-backoff retry for transient (`IsRetriable`)
/// failures.
///
/// Time is virtual: backoff is accounted in `total_backoff_ms()` and
/// reported to an optional sleep hook, never slept in-process — tests
/// exercising hundreds of fault schedules stay wall-clock free, and a
/// production embedder can plug a real sleep in.
class RetryPolicy {
 public:
  using SleepFn = std::function<void(double ms)>;

  explicit RetryPolicy(RetryOptions options = {})
      : options_(options), rng_(options.seed) {}

  void set_sleep_fn(SleepFn fn) { sleep_fn_ = std::move(fn); }

  /// Runs `fn` (returning Status or Result<T>) up to max_attempts times,
  /// backing off between attempts while the failure is retriable. Returns
  /// the first success or the last failure. A policy may be reused for
  /// several operations; each Run gets the full attempt budget and
  /// `attempts()` / `total_backoff_ms()` accumulate across them.
  template <typename F>
  auto Run(F&& fn) -> std::decay_t<decltype(fn())> {
    using R = std::decay_t<decltype(fn())>;
    for (int attempt = 1;; ++attempt) {
      R result = fn();
      ++attempts_;
      const Status& status = StatusOf(result);
      if (status.ok() || !status.IsRetriable() ||
          attempt >= options_.max_attempts) {
        return result;
      }
      Backoff(attempt);
    }
  }

  /// The (jittered) backoff that follows attempt `attempt` (1-based).
  /// Advances the jitter RNG; exposed for tests asserting determinism.
  double NextBackoffMs(int attempt) {
    double backoff = options_.initial_backoff_ms;
    for (int i = 1; i < attempt; ++i) backoff *= options_.backoff_multiplier;
    backoff = std::min(backoff, options_.max_backoff_ms);
    const double jitter =
        1.0 + options_.jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
    return backoff * jitter;
  }

  int attempts() const { return attempts_; }
  double total_backoff_ms() const { return total_backoff_ms_; }
  const RetryOptions& options() const { return options_; }

 private:
  static const Status& StatusOf(const Status& status) { return status; }
  template <typename T>
  static const Status& StatusOf(const Result<T>& result) {
    return result.status();
  }

  void Backoff(int attempt) {
    const double ms = NextBackoffMs(attempt);
    total_backoff_ms_ += ms;
    if (sleep_fn_) sleep_fn_(ms);
  }

  RetryOptions options_;
  Rng rng_;
  SleepFn sleep_fn_;
  int attempts_ = 0;
  double total_backoff_ms_ = 0.0;
};

}  // namespace aim

#endif  // AIM_COMMON_RETRY_H_
