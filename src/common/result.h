#ifndef AIM_COMMON_RESULT_H_
#define AIM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace aim {

/// \brief Arrow-style Result<T>: either a value or an error Status.
///
/// Use `AIM_ASSIGN_OR_RETURN` to unwrap in Status-returning functions.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& ValueOrDie() const {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() {
    assert(ok());
    return *value_;
  }
  /// Moves the value out. Requires ok().
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define AIM_CONCAT_IMPL(x, y) x##y
#define AIM_CONCAT(x, y) AIM_CONCAT_IMPL(x, y)

/// Unwraps a Result<T> into `lhs`, returning the error Status on failure.
#define AIM_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto AIM_CONCAT(_res_, __LINE__) = (rexpr);                 \
  if (!AIM_CONCAT(_res_, __LINE__).ok())                      \
    return AIM_CONCAT(_res_, __LINE__).status();              \
  lhs = AIM_CONCAT(_res_, __LINE__).MoveValue()

}  // namespace aim

#endif  // AIM_COMMON_RESULT_H_
