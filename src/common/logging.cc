#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace aim {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel Logger::SetLevel(LogLevel level) {
  return static_cast<LogLevel>(
      g_level.exchange(static_cast<int>(level)));
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load());
}

Logger::Logger(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

Logger::~Logger() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace aim
