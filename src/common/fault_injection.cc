#include "common/fault_injection.h"

namespace aim {

std::atomic<int> FaultRegistry::armed_points_{0};

int& FaultRegistry::SuppressionDepth() {
  static thread_local int depth = 0;
  return depth;
}

FaultRegistry::ScopedFaultSuppression::ScopedFaultSuppression() {
  ++SuppressionDepth();
}

FaultRegistry::ScopedFaultSuppression::~ScopedFaultSuppression() {
  --SuppressionDepth();
}

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultSpec spec,
                        uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spec.message.empty()) {
    spec.message = "injected fault at " + point;
  }
  auto [it, inserted] = faults_.insert_or_assign(
      point, ArmedFault{std::move(spec), Rng(seed), FaultStats{}});
  (void)it;
  if (inserted) {
    armed_points_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (faults_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_points_.fetch_sub(static_cast<int>(faults_.size()),
                          std::memory_order_relaxed);
  faults_.clear();
}

Status FaultRegistry::Check(const char* point) {
  if (SuppressionDepth() > 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = faults_.find(point);
  if (it == faults_.end()) return Status::OK();
  ArmedFault& fault = it->second;
  const FaultSpec& spec = fault.spec;
  ++fault.stats.hits;
  fault.stats.injected_latency_ms += spec.latency_ms;
  if (fault.stats.hits <= static_cast<uint64_t>(spec.skip)) {
    return Status::OK();
  }
  if (spec.fail_times >= 0 &&
      fault.stats.triggers >= static_cast<uint64_t>(spec.fail_times)) {
    return Status::OK();
  }
  if (spec.probability < 1.0 && !fault.rng.Bernoulli(spec.probability)) {
    return Status::OK();
  }
  ++fault.stats.triggers;
  return Status::FromCode(spec.code, spec.message);
}

FaultStats FaultRegistry::stats(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = faults_.find(point);
  return it == faults_.end() ? FaultStats{} : it->second.stats;
}

double FaultRegistry::total_injected_latency_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [name, fault] : faults_) {
    total += fault.stats.injected_latency_ms;
  }
  return total;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> points;
  points.reserve(faults_.size());
  for (const auto& [name, fault] : faults_) points.push_back(name);
  return points;
}

}  // namespace aim
