#ifndef AIM_COMMON_STATUS_H_
#define AIM_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace aim {

/// \brief RocksDB-style status object used for error handling on all library
/// paths (the library does not throw exceptions).
///
/// A Status is cheap to copy and carries an error code plus a human-readable
/// message. `Status::OK()` represents success.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfBudget,
    kParseError,
    kUnsupported,
    kInternal,
    /// Transient failure (resource busy, shadow instance briefly gone).
    /// The only retriable code: callers may re-attempt via RetryPolicy.
    kUnavailable,
  };

  Status() : code_(Code::kOk) {}

  /// Success status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfBudget(std::string msg) {
    return Status(Code::kOutOfBudget, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// Generic factory for code-driven construction (fault injection).
  /// `code` must not be kOk.
  static Status FromCode(Code code, std::string msg) {
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  /// True when a retry may succeed (currently only kUnavailable).
  bool IsRetriable() const { return code_ == Code::kUnavailable; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  static std::string CodeName(Code code) {
    switch (code) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kNotFound:
        return "NotFound";
      case Code::kAlreadyExists:
        return "AlreadyExists";
      case Code::kOutOfBudget:
        return "OutOfBudget";
      case Code::kParseError:
        return "ParseError";
      case Code::kUnsupported:
        return "Unsupported";
      case Code::kInternal:
        return "Internal";
      case Code::kUnavailable:
        return "Unavailable";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller (RocksDB/Arrow idiom).
#define AIM_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::aim::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace aim

#endif  // AIM_COMMON_STATUS_H_
