#ifndef AIM_COMMON_FAULT_INJECTION_H_
#define AIM_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace aim {

/// \brief Deterministic fault injection for robustness testing.
///
/// Library code declares *fault points* — named places where a failure can
/// be injected — via `AIM_FAULT_POINT("storage.create_index")`. In
/// production (nothing armed) a fault point costs one relaxed atomic load
/// and a never-taken branch. Tests arm points on the process-wide
/// `FaultRegistry` with a `FaultSpec`: a deterministic
/// succeed-S/fail-F schedule, seeded probabilistic triggering, an error
/// code to inject, and virtual latency (accounted, never slept — tests
/// stay wall-clock free).
///
/// The registry is process-wide and thread-safe. Tests should arm through
/// `ScopedFault` so points are disarmed even when an assertion fails.
struct FaultSpec {
  /// Error code injected when the fault triggers. Defaults to the
  /// retriable code so retry paths are exercised; set kInternal (etc.) to
  /// model hard failures.
  Status::Code code = Status::Code::kUnavailable;
  /// Message of the injected Status; defaults to "injected fault at
  /// <point>".
  std::string message;
  /// Probability that an eligible hit triggers (1.0 = deterministic).
  double probability = 1.0;
  /// Number of initial hits that always succeed before the fault becomes
  /// eligible (fail-the-k-th schedules: skip = k - 1).
  int skip = 0;
  /// Number of triggers after which the point stops failing (the classic
  /// fail-N-times-then-succeed transient); -1 = fail forever.
  int fail_times = -1;
  /// Virtual latency accounted on *every* hit of an armed point (virtual
  /// clock: accumulated in FaultStats, never slept).
  double latency_ms = 0.0;
};

/// Observed activity of one armed fault point.
struct FaultStats {
  uint64_t hits = 0;      // times the point was reached while armed
  uint64_t triggers = 0;  // times a fault was actually injected
  double injected_latency_ms = 0.0;
};

class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  /// Fast-path gate for AIM_FAULT_POINT: true iff any point is armed.
  static bool ArmedGlobally() {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms (or re-arms, resetting counters) a fault point. `seed` drives
  /// the point's private RNG for probabilistic triggering.
  void Arm(const std::string& point, FaultSpec spec, uint64_t seed = 42);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Evaluates `point`: records a hit and returns the injected Status if
  /// the fault triggers, OK otherwise. Called by AIM_FAULT_POINT; cheap
  /// only when armed — guard calls with ArmedGlobally().
  Status Check(const char* point);

  /// Stats for an armed point (zeros when not armed).
  FaultStats stats(const std::string& point) const;
  /// Total virtual latency injected across all armed points.
  double total_injected_latency_ms() const;
  std::vector<std::string> ArmedPoints() const;

  /// Thread-local suppression used by rollback paths: while any
  /// ScopedFaultSuppression lives on this thread, Check() always returns
  /// OK, so recovery code cannot itself be failed (rollback must be able
  /// to make progress to guarantee atomicity).
  class ScopedFaultSuppression {
   public:
    ScopedFaultSuppression();
    ~ScopedFaultSuppression();
    ScopedFaultSuppression(const ScopedFaultSuppression&) = delete;
    ScopedFaultSuppression& operator=(const ScopedFaultSuppression&) =
        delete;
  };

 private:
  FaultRegistry() = default;

  struct ArmedFault {
    FaultSpec spec;
    Rng rng{42};
    FaultStats stats;
  };

  // Accessed only from fault_injection.cc; kept behind an out-of-line
  // accessor because cross-TU inline access to a thread_local member
  // trips GCC's UBSan TLS-wrapper check.
  static int& SuppressionDepth();

  mutable std::mutex mu_;
  std::map<std::string, ArmedFault> faults_;
  static std::atomic<int> armed_points_;
};

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultSpec spec, uint64_t seed = 42)
      : point_(std::move(point)) {
    FaultRegistry::Instance().Arm(point_, std::move(spec), seed);
  }
  ~ScopedFault() { FaultRegistry::Instance().Disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// Declares a fault point in a function returning Status or Result<T>.
/// Compiles to a relaxed atomic load + branch when nothing is armed.
#define AIM_FAULT_POINT(point)                                       \
  do {                                                               \
    if (::aim::FaultRegistry::ArmedGlobally()) {                     \
      ::aim::Status _aim_fault_st =                                  \
          ::aim::FaultRegistry::Instance().Check(point);             \
      if (!_aim_fault_st.ok()) return _aim_fault_st;                 \
    }                                                                \
  } while (0)

/// Fault-point variant for contexts that cannot `return Status` (loops,
/// constructors): evaluates to the injected Status (OK when disarmed).
#define AIM_FAULT_POINT_STATUS(point)                                \
  (::aim::FaultRegistry::ArmedGlobally()                             \
       ? ::aim::FaultRegistry::Instance().Check(point)               \
       : ::aim::Status::OK())

}  // namespace aim

#endif  // AIM_COMMON_FAULT_INJECTION_H_
