#include "common/rng.h"

#include <cmath>

namespace aim {

Rng::Rng(uint64_t seed) {
  // SplitMix64 initialization to decorrelate nearby seeds.
  auto splitmix = [](uint64_t& x) {
    x += 0x9E3779B97f4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  return Next() % bound;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(n);
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    double zeta = 0.0;
    for (uint64_t i = 1; i <= n; ++i) zeta += 1.0 / std::pow(double(i), theta);
    zipf_zeta_ = zeta;
    zipf_alpha_ = 1.0 / (1.0 - theta);
    double zeta2 = 1.0 + std::pow(0.5, theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
                (1.0 - zeta2 / zeta);
  }
  const double u = NextDouble();
  const double uz = u * zipf_zeta_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, zipf_theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(zipf_n_) *
      std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
  if (v >= n) v = n - 1;
  return v;
}

}  // namespace aim
