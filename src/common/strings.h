#ifndef AIM_COMMON_STRINGS_H_
#define AIM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace aim {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on character `sep` (no empty-trailing suppression).
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);
/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a byte count as "12.34 MiB" style text.
std::string HumanBytes(double bytes);

}  // namespace aim

#endif  // AIM_COMMON_STRINGS_H_
