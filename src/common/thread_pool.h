#ifndef AIM_COMMON_THREAD_POOL_H_
#define AIM_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/fault_injection.h"

namespace aim::common {

/// \brief Fixed-size worker pool behind the parallel what-if engine.
///
/// Tasks are submitted as futures. The fan-out helpers below always
/// identify results by *input index*, never by completion order, so the
/// scheduler cannot leak nondeterminism into pipeline results — the
/// parallel advisor must stay bit-identical to its serial fallback.
///
/// Task hand-off crosses the `common.pool.dispatch` fault point. An
/// injected dispatch failure degrades gracefully: the task runs inline on
/// the submitting thread instead, so a faulty scheduler can slow the
/// pipeline down but can never change or lose results.
///
/// ## Nested fan-out (two-level sharing, no deadlock)
///
/// One pool can be shared between an outer fan-out (e.g. the fleet
/// tuner's per-tenant tasks) and the inner fan-outs those tasks perform
/// (the what-if engine's chunked workers). Naively that deadlocks: every
/// worker blocks in an outer task waiting on inner futures that no free
/// worker exists to run. Instead, each queued task carries its *nesting
/// depth* (submitter depth + 1), and a thread waiting on futures via
/// `WaitHelping` drains queued tasks of strictly greater depth inline.
/// Blocking therefore only happens when every awaited task is actively
/// executing on some thread, and a task only ever waits on deeper tasks
/// — the wait graph is acyclic and bottoms out at leaf compute, so the
/// shared pool can never deadlock. Helping runs tasks to completion on
/// the waiting thread, which is exactly what Submit's inline fallback
/// already does, so results are unchanged.
class ThreadPool {
 public:
  /// Spawns `workers` threads; values <= 1 create no threads at all and
  /// every Submit runs inline (the serial fallback).
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// The calling thread's current task nesting depth: 0 outside any pool
  /// task, task depth while one runs (including helped and inline runs).
  static int CurrentDepth();

  /// Schedules `fn` and returns its future. Runs inline when the pool has
  /// no workers or dispatch fails (injected fault). The task is tagged
  /// with the submitter's depth + 1 for the nested-helping protocol.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    const int depth = CurrentDepth() + 1;
    const Status dispatch = AIM_FAULT_POINT_STATUS("common.pool.dispatch");
    if (workers_.empty() || !dispatch.ok()) {
      // Degraded dispatch: execute inline, results unchanged. Depth is
      // entered all the same so nested submits keep consistent tags.
      RunWithDepth(depth, [&] { (*task)(); });
      return future;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(Task{depth, [task] { (*task)(); }});
    }
    cv_.notify_one();
    return future;
  }

  /// Runs one queued task of depth greater than the calling thread's
  /// current depth inline; returns whether one ran. This is the
  /// cooperative-helping hook that makes nested fan-out on one shared
  /// pool deadlock-free: only strictly-deeper tasks are eligible, so a
  /// helping chain always descends and stack growth is bounded by the
  /// pipeline's real nesting, never by queue length.
  bool HelpOne();

  /// Blocks until `future` is ready, helping with deeper queued tasks
  /// instead of sleeping while any are available.
  template <typename R>
  void WaitHelping(std::future<R>& future) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!HelpOne()) {
        // Nothing deeper is queued: everything this future depends on is
        // actively executing somewhere, so a plain wait cannot deadlock.
        future.wait();
      }
    }
  }

 private:
  struct Task {
    int depth = 1;
    std::function<void()> fn;
  };

  void WorkerLoop();
  /// Runs `fn` with the thread-local depth set to `depth` (restored on
  /// exit, exception-safe via RAII in the implementation).
  static void RunWithDepth(int depth, const std::function<void()>& fn);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Splits [0, n) into at most `pool->worker_count()` contiguous chunks and
/// runs `fn(begin, end)` for each as one pool task, waiting for all of
/// them in input order. `fn` must produce results that depend only on the
/// item indexes it is given (per-item independence); chunk boundaries are
/// then unobservable. With a null or single-worker pool the whole range
/// runs as one inline chunk. While waiting, the calling thread helps run
/// deeper queued tasks (see ThreadPool::WaitHelping), so nested fan-outs
/// sharing one pool make progress instead of deadlocking. Exceptions
/// propagate to the caller.
template <typename Fn>
void ParallelChunks(ThreadPool* pool, size_t n, const Fn& fn) {
  const size_t workers =
      pool != nullptr ? static_cast<size_t>(pool->worker_count()) : 0;
  if (workers <= 1 || n <= 1) {
    if (n > 0) fn(size_t{0}, n);
    return;
  }
  const size_t chunks = std::min(workers, n);
  const size_t base = n / chunks;
  const size_t extra = n % chunks;  // first `extra` chunks get one more
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t end = begin + base + (c < extra ? 1 : 0);
    futures.push_back(pool->Submit([&fn, begin, end] { fn(begin, end); }));
    begin = end;
  }
  for (std::future<void>& f : futures) {
    pool->WaitHelping(f);
    f.get();
  }
}

/// Runs fn(i) for every i in [0, n), fanned out over `pool` in contiguous
/// chunks. fn must be safe to call concurrently for distinct i.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t n, const Fn& fn) {
  ParallelChunks(pool, n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace aim::common

#endif  // AIM_COMMON_THREAD_POOL_H_
