#ifndef AIM_COMMON_THREAD_POOL_H_
#define AIM_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/fault_injection.h"

namespace aim::common {

/// \brief Fixed-size worker pool behind the parallel what-if engine.
///
/// Tasks are submitted as futures. The fan-out helpers below always
/// identify results by *input index*, never by completion order, so the
/// scheduler cannot leak nondeterminism into pipeline results — the
/// parallel advisor must stay bit-identical to its serial fallback.
///
/// Task hand-off crosses the `common.pool.dispatch` fault point. An
/// injected dispatch failure degrades gracefully: the task runs inline on
/// the submitting thread instead, so a faulty scheduler can slow the
/// pipeline down but can never change or lose results.
class ThreadPool {
 public:
  /// Spawns `workers` threads; values <= 1 create no threads at all and
  /// every Submit runs inline (the serial fallback).
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` and returns its future. Runs inline when the pool has
  /// no workers or dispatch fails (injected fault).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    const Status dispatch = AIM_FAULT_POINT_STATUS("common.pool.dispatch");
    if (workers_.empty() || !dispatch.ok()) {
      (*task)();  // degraded dispatch: execute inline, results unchanged
      return future;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Splits [0, n) into at most `pool->worker_count()` contiguous chunks and
/// runs `fn(begin, end)` for each as one pool task, waiting for all of
/// them in input order. `fn` must produce results that depend only on the
/// item indexes it is given (per-item independence); chunk boundaries are
/// then unobservable. With a null or single-worker pool the whole range
/// runs as one inline chunk. Exceptions propagate to the caller.
template <typename Fn>
void ParallelChunks(ThreadPool* pool, size_t n, const Fn& fn) {
  const size_t workers =
      pool != nullptr ? static_cast<size_t>(pool->worker_count()) : 0;
  if (workers <= 1 || n <= 1) {
    if (n > 0) fn(size_t{0}, n);
    return;
  }
  const size_t chunks = std::min(workers, n);
  const size_t base = n / chunks;
  const size_t extra = n % chunks;  // first `extra` chunks get one more
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t end = begin + base + (c < extra ? 1 : 0);
    futures.push_back(pool->Submit([&fn, begin, end] { fn(begin, end); }));
    begin = end;
  }
  for (std::future<void>& f : futures) f.get();
}

/// Runs fn(i) for every i in [0, n), fanned out over `pool` in contiguous
/// chunks. fn must be safe to call concurrently for distinct i.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t n, const Fn& fn) {
  ParallelChunks(pool, n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace aim::common

#endif  // AIM_COMMON_THREAD_POOL_H_
