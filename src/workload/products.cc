#include "workload/products.h"

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "optimizer/predicate.h"
#include "storage/data_generator.h"

namespace aim::workload {

namespace {

using catalog::ColumnDef;
using catalog::ColumnType;
using catalog::TableDef;
using storage::ColumnSpec;

constexpr int kColsPerTable = 9;

// Column layout per product table:
//   0: id (PK)        1: fk1            2: fk2
//   3: c0 (ndv 10)    4: c1 (ndv 100)   5: c2 (ndv 1000, zipf)
//   6: ts (quasi-unique)  7: metric (double)  8: tag (string, ndv 50)
TableDef MakeTableDef(int i) {
  TableDef def;
  def.name = StringPrintf("t%d", i);
  auto col = [](const char* name, ColumnType type, uint32_t width) {
    ColumnDef c;
    c.name = name;
    c.type = type;
    c.avg_width = width;
    return c;
  };
  def.columns = {col("id", ColumnType::kInt64, 8),
                 col("fk1", ColumnType::kInt64, 8),
                 col("fk2", ColumnType::kInt64, 8),
                 col("c0", ColumnType::kInt64, 4),
                 col("c1", ColumnType::kInt64, 4),
                 col("c2", ColumnType::kInt64, 4),
                 col("ts", ColumnType::kInt64, 8),
                 col("metric", ColumnType::kDouble, 8),
                 col("tag", ColumnType::kString, 12)};
  def.primary_key = {0};
  return def;
}

std::vector<ColumnSpec> MakeSpecs(uint64_t rows, uint64_t fk1_domain,
                                  uint64_t fk2_domain) {
  std::vector<ColumnSpec> specs(kColsPerTable);
  specs[1].ndv = std::max<uint64_t>(1, fk1_domain);
  specs[2].ndv = std::max<uint64_t>(1, fk2_domain);
  specs[2].distribution = storage::Distribution::kZipf;
  specs[2].zipf_theta = 0.7;
  specs[3].ndv = 10;
  specs[4].ndv = 100;
  specs[5].ndv = 1000;
  specs[5].distribution = storage::Distribution::kZipf;
  specs[5].zipf_theta = 0.8;
  specs[6].ndv = std::max<uint64_t>(2, rows / 2);
  specs[7].ndv = 10000;
  specs[8].ndv = 50;
  specs[8].string_prefix = "tag";
  return specs;
}

int Fk1Target(int i, int tables) { return (i * 7 + 1) % tables; }
int Fk2Target(int i, int tables) { return (i * 3 + 2) % tables; }

/// Random single-table SELECT on table `t`.
std::string MakeSingleTableQuery(int t, uint64_t rows, Rng* rng) {
  std::string sql = "SELECT id, metric FROM " + StringPrintf("t%d", t);
  std::vector<std::string> preds;
  const int npreds = 1 + static_cast<int>(rng->Uniform(3));
  const char* eq_cols[] = {"c0", "c1", "c2", "tag"};
  const uint64_t eq_ndv[] = {10, 100, 1000, 50};
  std::set<int> used;
  for (int p = 0; p < npreds; ++p) {
    const int c = static_cast<int>(rng->Uniform(4));
    if (!used.insert(c).second) continue;
    if (c == 3) {
      preds.push_back(StringPrintf("tag = 'tag%d'",
                                   static_cast<int>(rng->Uniform(50))));
    } else {
      preds.push_back(StringPrintf(
          "%s = %d", eq_cols[c],
          static_cast<int>(rng->Uniform(eq_ndv[c]))));
    }
  }
  if (rng->Bernoulli(0.5)) {
    const uint64_t lo = rng->Uniform(std::max<uint64_t>(1, rows / 2));
    preds.push_back(StringPrintf("ts > %llu",
                                 static_cast<unsigned long long>(lo)));
  }
  sql += " WHERE " + Join(preds, " AND ");
  const double r = rng->NextDouble();
  if (r < 0.2) {
    sql += " ORDER BY ts DESC LIMIT 20";
  } else if (r < 0.35) {
    // Aggregate form: replace the select list.
    sql = "SELECT c0, COUNT(*) FROM " + StringPrintf("t%d", t) +
          " WHERE " + Join(preds, " AND ") + " GROUP BY c0";
  }
  return sql;
}

/// Random join query over a chain of 2–4 tables following FK links.
std::string MakeJoinQuery(int start, int tables, Rng* rng) {
  const int chain = 2 + static_cast<int>(rng->Uniform(3));
  std::vector<int> path{start};
  std::vector<std::string> joins;
  int cur = start;
  for (int k = 1; k < chain; ++k) {
    const bool via1 = rng->Bernoulli(0.5);
    const int next =
        via1 ? Fk1Target(cur, tables) : Fk2Target(cur, tables);
    if (std::find(path.begin(), path.end(), next) != path.end()) break;
    joins.push_back(StringPrintf("a%zu.%s = a%zu.id", path.size() - 1,
                                 via1 ? "fk1" : "fk2", path.size()));
    path.push_back(next);
    cur = next;
  }
  if (path.size() < 2) {
    // Degenerate chain (self-link): fall back to a two-table join on fk2.
    const int next = (start + 1) % tables;
    path = {start, next};
    joins = {"a0.fk2 = a1.id"};
  }
  std::string from;
  for (size_t k = 0; k < path.size(); ++k) {
    if (k > 0) from += ", ";
    from += StringPrintf("t%d a%zu", path[k], k);
  }
  std::vector<std::string> preds = joins;
  // Filters on the first and last table of the chain.
  preds.push_back(StringPrintf("a0.c1 = %d",
                               static_cast<int>(rng->Uniform(100))));
  if (rng->Bernoulli(0.6)) {
    preds.push_back(StringPrintf("a%zu.c0 = %d", path.size() - 1,
                                 static_cast<int>(rng->Uniform(10))));
  }
  if (rng->Bernoulli(0.3)) {
    preds.push_back(StringPrintf("a0.ts > %d",
                                 static_cast<int>(rng->Uniform(1000))));
  }
  std::string sql = "SELECT a0.id, a0.metric FROM " + from + " WHERE " +
                    Join(preds, " AND ");
  if (rng->Bernoulli(0.25)) sql += " ORDER BY a0.ts DESC LIMIT 10";
  return sql;
}

std::string MakeWriteQuery(int t, uint64_t rows, Rng* rng) {
  const double r = rng->NextDouble();
  if (r < 0.5) {
    return StringPrintf(
        "INSERT INTO t%d (id, fk1, fk2, c0, c1, c2, ts, metric, tag) "
        "VALUES (%llu, %d, %d, %d, %d, %d, %llu, %d, 'tag%d')",
        t, static_cast<unsigned long long>(rows * 10 + rng->Uniform(100000)),
        static_cast<int>(rng->Uniform(1000)),
        static_cast<int>(rng->Uniform(1000)),
        static_cast<int>(rng->Uniform(10)),
        static_cast<int>(rng->Uniform(100)),
        static_cast<int>(rng->Uniform(1000)),
        static_cast<unsigned long long>(rng->Uniform(rows)),
        static_cast<int>(rng->Uniform(10000)),
        static_cast<int>(rng->Uniform(50)));
  }
  if (r < 0.85) {
    return StringPrintf("UPDATE t%d SET metric = %d WHERE id = %llu", t,
                        static_cast<int>(rng->Uniform(10000)),
                        static_cast<unsigned long long>(rng->Uniform(rows)));
  }
  return StringPrintf("DELETE FROM t%d WHERE id = %llu", t,
                      static_cast<unsigned long long>(
                          rows * 10 + rng->Uniform(100000)));
}

/// Human-plausible index for a query: the most-filtered table's equality
/// columns (up to 2) plus a range column.
Result<std::vector<catalog::IndexDef>> DbaIndexesForQuery(
    const sql::Statement& stmt, const catalog::Catalog& catalog,
    Rng* rng) {
  std::vector<catalog::IndexDef> out;
  AIM_ASSIGN_OR_RETURN(optimizer::AnalyzedQuery aq,
                       optimizer::Analyze(stmt, catalog));
  for (int t = 0; t < static_cast<int>(aq.instances.size()); ++t) {
    std::vector<catalog::ColumnId> eq;
    std::vector<catalog::ColumnId> range;
    for (const auto& p : aq.ConjunctsForInstance(t)) {
      if (!p.is_sargable()) continue;
      auto& dst = p.is_index_prefix() ? eq : range;
      if (std::find(dst.begin(), dst.end(), p.column.column) ==
          dst.end()) {
        dst.push_back(p.column.column);
      }
    }
    for (const auto& [col, other] : aq.JoinColumnsOf(t)) {
      (void)other;
      if (std::find(eq.begin(), eq.end(), col) == eq.end()) {
        eq.push_back(col);
      }
    }
    if (eq.empty() && range.empty()) continue;
    catalog::IndexDef def;
    def.table = aq.instances[t].table;
    // A competent DBA writes the equality columns first (any canonical
    // order), then one range column — the same family of composites AIM
    // derives from query structure. Occasionally (20%) the DBA picks an
    // ad-hoc column order instead.
    std::sort(eq.begin(), eq.end());
    if (rng->Bernoulli(0.2)) rng->Shuffle(&eq);
    for (size_t i = 0; i < eq.size() && i < 3; ++i) {
      def.columns.push_back(eq[i]);
    }
    if (!range.empty() && def.columns.size() < 4) {
      std::sort(range.begin(), range.end());
      def.columns.push_back(range[0]);
    }
    if (def.columns.empty()) continue;
    // Skip PK prefixes.
    const auto& pk = catalog.table(def.table).primary_key;
    if (!pk.empty() && def.columns[0] == pk[0]) continue;
    out.push_back(std::move(def));
  }
  return out;
}

}  // namespace

std::vector<ProductSpec> TableIIProducts() {
  // Metadata from Table II; row counts are simulator-scale.
  return {
      {"Product A", 147, 67, WorkloadMix::kWriteHeavy, 0, 1500, 101},
      {"Product B", 184, 733, WorkloadMix::kReadHeavy, 0, 1200, 102},
      {"Product C", 42, 25, WorkloadMix::kBalanced, 0, 2500, 103},
      {"Product D", 16, 18, WorkloadMix::kWriteHeavy, 0, 2000, 104},
      {"Product E", 51, 41, WorkloadMix::kReadHeavy, 0, 4000, 105},
      {"Product F", 5, 10, WorkloadMix::kReadHeavy, 0, 1000, 106},
      {"Product G", 79, 386, WorkloadMix::kBalanced, 0, 2500, 107},
  };
}

Result<ProductInstance> BuildProduct(const ProductSpec& spec) {
  ProductInstance product;
  product.name = spec.name;
  Rng rng(spec.seed);

  // Schema + data.
  for (int i = 0; i < spec.tables; ++i) {
    const catalog::TableId id = product.db.CreateTable(MakeTableDef(i));
    const uint64_t fk1_rows = spec.rows_per_table;
    AIM_RETURN_NOT_OK(storage::GenerateRows(
        &product.db, id, spec.rows_per_table,
        MakeSpecs(spec.rows_per_table, fk1_rows, fk1_rows), &rng));
  }
  product.db.AnalyzeAll();

  // Workload.
  const int singles = spec.single_table_queries > 0
                          ? spec.single_table_queries
                          : std::max(10, spec.join_queries * 2);
  double write_fraction = 0.3;
  if (spec.mix == WorkloadMix::kWriteHeavy) write_fraction = 0.5;
  if (spec.mix == WorkloadMix::kReadHeavy) write_fraction = 0.1;
  const int reads = singles + spec.join_queries;
  const int writes =
      static_cast<int>(reads * write_fraction / (1.0 - write_fraction));

  for (int q = 0; q < singles; ++q) {
    const int t = static_cast<int>(rng.Uniform(spec.tables));
    const double weight = 1.0 + static_cast<double>(rng.Zipf(100, 0.9));
    AIM_RETURN_NOT_OK(product.workload.Add(
        MakeSingleTableQuery(t, spec.rows_per_table, &rng), weight));
  }
  for (int q = 0; q < spec.join_queries; ++q) {
    const int t = static_cast<int>(rng.Uniform(spec.tables));
    const double weight = 1.0 + static_cast<double>(rng.Zipf(50, 0.9));
    AIM_RETURN_NOT_OK(product.workload.Add(
        MakeJoinQuery(t, spec.tables, &rng), weight));
  }
  for (int q = 0; q < writes; ++q) {
    const int t = static_cast<int>(rng.Uniform(spec.tables));
    AIM_RETURN_NOT_OK(product.workload.Add(
        MakeWriteQuery(t, spec.rows_per_table, &rng), 2.0));
  }

  // DBA index set: per-query heuristic, hot queries first, one index
  // kept per (table, leading column) — a DBA consolidates rather than
  // keeping five variants — with ~10% skipped queries (manual tuning
  // gaps) and ~10% legacy noise.
  std::set<std::pair<catalog::TableId, std::vector<catalog::ColumnId>>>
      seen;
  std::set<std::pair<catalog::TableId, catalog::ColumnId>> leading_seen;
  std::vector<const Query*> by_weight;
  for (const Query& q : product.workload.queries) {
    if (!q.stmt.is_dml()) by_weight.push_back(&q);
  }
  std::sort(by_weight.begin(), by_weight.end(),
            [](const Query* a, const Query* b) {
              return a->weight > b->weight;
            });
  for (const Query* q : by_weight) {
    if (rng.Bernoulli(0.10)) continue;  // manual tuning gap
    Result<std::vector<catalog::IndexDef>> defs =
        DbaIndexesForQuery(q->stmt, product.db.catalog(), &rng);
    if (!defs.ok()) continue;
    for (catalog::IndexDef& def : defs.ValueOrDie()) {
      if (!leading_seen.emplace(def.table, def.columns[0]).second) {
        continue;
      }
      if (seen.emplace(def.table, def.columns).second) {
        product.dba_indexes.push_back(std::move(def));
      }
    }
  }
  const size_t noise = product.dba_indexes.size() / 10 + 1;
  for (size_t i = 0; i < noise; ++i) {
    catalog::IndexDef def;
    def.table = static_cast<catalog::TableId>(rng.Uniform(spec.tables));
    const catalog::ColumnId a =
        1 + static_cast<catalog::ColumnId>(rng.Uniform(kColsPerTable - 1));
    def.columns = {a};
    if (rng.Bernoulli(0.5)) {
      catalog::ColumnId b = 1 + static_cast<catalog::ColumnId>(
                                    rng.Uniform(kColsPerTable - 1));
      if (b != a) def.columns.push_back(b);
    }
    if (seen.emplace(def.table, def.columns).second) {
      product.dba_indexes.push_back(std::move(def));
    }
  }
  return product;
}

Status ApplyIndexes(storage::Database* db,
                    const std::vector<catalog::IndexDef>& indexes,
                    bool created_by_automation) {
  for (catalog::IndexDef def : indexes) {
    def.id = catalog::kInvalidIndex;
    def.hypothetical = false;
    def.created_by_automation = created_by_automation;
    Result<catalog::IndexId> id = db->CreateIndex(std::move(def));
    if (!id.ok() &&
        id.status().code() != Status::Code::kAlreadyExists) {
      return id.status();
    }
  }
  return Status::OK();
}

double IndexSetJaccard(const std::vector<catalog::IndexDef>& a,
                       const std::vector<catalog::IndexDef>& b) {
  std::set<std::pair<catalog::TableId, std::vector<catalog::ColumnId>>>
      sa, sb;
  for (const auto& d : a) sa.emplace(d.table, d.columns);
  for (const auto& d : b) sb.emplace(d.table, d.columns);
  size_t inter = 0;
  for (const auto& k : sa) inter += sb.count(k);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

}  // namespace aim::workload
