#ifndef AIM_WORKLOAD_TPCC_OLTP_H_
#define AIM_WORKLOAD_TPCC_OLTP_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace aim::workload {

/// Scale knobs for the TPC-C-shaped OLTP database. The defaults are
/// simulator-scale (thousands of rows, not millions) so hundreds of chaos
/// schedules stay fast.
struct TpccConfig {
  int warehouses = 2;
  int districts_per_warehouse = 4;
  int customers_per_district = 30;
  int items = 100;
  /// Orders pre-loaded per district (each with order lines and an open
  /// new_orders entry, so Delivery has work from the start).
  int initial_orders_per_district = 5;
  uint64_t seed = 7;
};

/// \brief A TPC-C-shaped transactional database: warehouse / district /
/// customer / orders / new_orders / order_line / stock / item / history
/// with composite clustered primary keys, plus NewOrder / Payment /
/// Delivery transaction templates.
///
/// Deliberately simplified for the reproduction: every column is an
/// integer (c_last is an id, dates are ticks), there is no wait-time
/// model, and each transaction commits atomically under one exclusive
/// acquisition of the database latch(). What matters here is the *shape*:
/// multi-row read-modify-write transactions against composite-key tables,
/// producing the sustained mixed DML stream the online index builder must
/// survive. Read probes and the analytical workload run under a shared
/// latch through the real executor.
///
/// Thread model: Load() is single-threaded setup; the transaction methods
/// and ReadQuery are safe to call concurrently from many clients (each
/// self-acquires the latch). A caller-provided Rng drives each call so
/// every client thread owns its own generator.
class TpccDatabase {
 public:
  explicit TpccDatabase(TpccConfig config = {});

  /// Creates the schema, loads seed rows, and runs ANALYZE.
  Status Load();

  storage::Database& db() { return db_; }
  const storage::Database& db() const { return db_; }
  const TpccConfig& config() const { return config_; }

  /// \name Transaction templates (exclusive latch for the duration).
  /// @{
  /// Places an order: bump the district's next-order id, insert the
  /// order + new_orders rows, and 5–15 order lines each decrementing
  /// stock.
  Status NewOrder(Rng* rng);
  /// Pays: bump customer balance/payment count, warehouse and district
  /// YTD, and insert a history row.
  Status Payment(Rng* rng);
  /// Delivers the oldest open order of every district of one warehouse:
  /// delete each order's new_orders row, stamp its carrier, stamp each
  /// order line's delivery tick. Districts with no open order are
  /// skipped (a fully drained warehouse makes the call an OK no-op).
  Status Delivery(Rng* rng);
  /// @}

  /// One analytical probe through the executor under a shared latch.
  Status ReadQuery(Rng* rng);

  /// The SELECT-only workload the tuner sees: order/customer/stock
  /// lookups that benefit from secondary indexes none of the clustered
  /// PKs cover.
  Result<Workload> AnalyticalWorkload() const;

  /// \name Table ids (for tests building index definitions).
  /// @{
  catalog::TableId warehouse_table() const { return warehouse_; }
  catalog::TableId district_table() const { return district_; }
  catalog::TableId customer_table() const { return customer_; }
  catalog::TableId orders_table() const { return orders_; }
  catalog::TableId new_orders_table() const { return new_orders_; }
  catalog::TableId order_line_table() const { return order_line_; }
  catalog::TableId stock_table() const { return stock_; }
  catalog::TableId item_table() const { return item_; }
  catalog::TableId history_table() const { return history_; }
  /// @}

 private:
  /// Appends one order (+ lines, optionally an open new_orders entry) for
  /// (w, d). Caller holds the exclusive latch (or is single-threaded
  /// Load()).
  Status InsertOrderLocked(int w, int d, int o_id, Rng* rng, bool open);

  TpccConfig config_;
  storage::Database db_;
  catalog::TableId warehouse_ = 0, district_ = 0, customer_ = 0, orders_ = 0,
                   new_orders_ = 0, order_line_ = 0, stock_ = 0, item_ = 0,
                   history_ = 0;
  /// Clustered PK index ids used for point/prefix lookups inside
  /// transactions.
  catalog::IndexId orders_pk_ = catalog::kInvalidIndex;
  catalog::IndexId new_orders_pk_ = catalog::kInvalidIndex;
  catalog::IndexId order_line_pk_ = catalog::kInvalidIndex;
  /// RowId bookkeeping for the fixed-population tables (RowIds are stable
  /// for the database's lifetime).
  std::vector<storage::RowId> warehouse_rid_;           // [w]
  std::vector<storage::RowId> district_rid_;            // [w*D + d]
  std::vector<storage::RowId> customer_rid_;            // [(w*D + d)*C + c]
  std::vector<storage::RowId> stock_rid_;               // [w*I + i]
  std::vector<storage::RowId> item_rid_;                // [i]
  /// Next order id per district and a global history sequence; guarded by
  /// the latch the transactions already hold.
  std::vector<int64_t> next_o_id_;                      // [w*D + d]
  int64_t next_h_id_ = 0;
  int64_t clock_ticks_ = 0;  // logical "date" source
};

/// Transaction mix weights (normalized internally).
struct OltpMix {
  double new_order = 0.45;
  double payment = 0.43;
  double delivery = 0.04;
  double read = 0.08;
};

/// Commit counts and latency from one driver run.
struct OltpStats {
  uint64_t new_orders = 0;
  uint64_t payments = 0;
  uint64_t deliveries = 0;
  uint64_t reads = 0;
  uint64_t errors = 0;
  /// Worst single-transaction wall latency observed by any client —
  /// the write-stall measurement bench_online_build reports.
  double max_txn_seconds = 0.0;

  uint64_t total_commits() const {
    return new_orders + payments + deliveries + reads;
  }
};

/// \brief Multi-client traffic generator: `clients` concurrent loops on a
/// ThreadPool, each running the weighted transaction mix until Stop().
///
/// The pool must have at least one real worker (a ≤1-worker pool runs
/// Submit inline, which would spin the until-stop loop on the calling
/// thread forever); Start() rejects such pools. Each client owns an Rng
/// seeded from `seed` + client id, so runs are reproducible per client
/// count.
class OltpDriver {
 public:
  OltpDriver(TpccDatabase* tpcc, common::ThreadPool* pool, int clients = 4,
             uint64_t seed = 99, OltpMix mix = {});

  /// Launches the client loops. Fails InvalidArgument on an inline pool.
  Status Start();
  /// Signals stop, joins the clients, and returns merged stats.
  OltpStats Stop();

  bool running() const { return running_; }

 private:
  void ClientLoop(int client, OltpStats* stats);

  TpccDatabase* tpcc_;
  common::ThreadPool* pool_;
  int clients_;
  uint64_t seed_;
  OltpMix mix_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::vector<std::future<void>> futures_;
  std::vector<OltpStats> per_client_;
};

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_TPCC_OLTP_H_
