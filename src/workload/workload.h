#ifndef AIM_WORKLOAD_WORKLOAD_H_
#define AIM_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace aim::workload {

/// \brief One workload query: literal SQL + parsed statement + weight.
///
/// `weight` is w_q of the problem definition (Sec. II) — execution
/// frequency, CPU share, or a manual importance measure. `fingerprint`
/// keys the normalized form (queries differing only in parameters share
/// it).
struct Query {
  std::string sql;
  sql::Statement stmt;
  double weight = 1.0;
  uint64_t fingerprint = 0;
  std::string normalized_sql;
  /// Number of raw workload statements this entry stands for. 1 for
  /// directly added queries; the workload compressor folds k duplicate
  /// statements into one representative with multiplicity k (weights are
  /// summed alongside). Monitor-driven ranking scales the representative's
  /// per-template executions by the cluster roll-up, not this field — see
  /// `SelectedQuery::cluster_executions`.
  uint64_t multiplicity = 1;

  Query() = default;
  Query(Query&&) = default;
  Query& operator=(Query&&) = default;
  Query(const Query& other) { *this = other; }
  Query& operator=(const Query& other) {
    if (this != &other) {
      sql = other.sql;
      stmt = other.stmt.Clone();
      weight = other.weight;
      fingerprint = other.fingerprint;
      normalized_sql = other.normalized_sql;
      multiplicity = other.multiplicity;
    }
    return *this;
  }
};

/// Parses `sql` into a Query with normalized fingerprint.
Result<Query> MakeQuery(std::string sql, double weight = 1.0);

/// \brief A workload: weighted set of queries.
struct Workload {
  std::vector<Query> queries;

  /// Parses and appends; returns the parse status.
  Status Add(std::string sql, double weight = 1.0);

  /// Statement pointers (for WhatIfOptimizer::WorkloadCost).
  std::vector<const sql::Statement*> statements() const;
  std::vector<double> weights() const;

  size_t size() const { return queries.size(); }
  bool empty() const { return queries.empty(); }
};

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_WORKLOAD_H_
