#include "workload/spec.h"

#include <cstdlib>
#include <map>

#include "common/rng.h"
#include "common/strings.h"
#include "storage/data_generator.h"

namespace aim::workload {

namespace {

/// Strips a '#' comment and surrounding whitespace.
std::string_view CleanLine(std::string_view line) {
  const size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  return Trim(line);
}

Result<catalog::ColumnType> ParseType(std::string_view text,
                                      uint32_t* width) {
  *width = 8;
  if (EqualsIgnoreCase(text, "INT") || EqualsIgnoreCase(text, "INT64")) {
    return catalog::ColumnType::kInt64;
  }
  if (EqualsIgnoreCase(text, "DOUBLE")) {
    return catalog::ColumnType::kDouble;
  }
  if (EqualsIgnoreCase(text, "DATE")) {
    *width = 4;
    return catalog::ColumnType::kDate;
  }
  if (text.size() >= 7 && EqualsIgnoreCase(text.substr(0, 6), "STRING")) {
    // STRING or STRING(len)
    const size_t open = text.find('(');
    if (open != std::string_view::npos) {
      *width = static_cast<uint32_t>(
          std::strtoul(std::string(text.substr(open + 1)).c_str(),
                       nullptr, 10));
      if (*width == 0) *width = 16;
    } else {
      *width = 16;
    }
    return catalog::ColumnType::kString;
  }
  if (EqualsIgnoreCase(text, "STRING")) {
    *width = 16;
    return catalog::ColumnType::kString;
  }
  return Status::ParseError("unknown column type '" + std::string(text) +
                            "'");
}

struct PendingRows {
  catalog::TableId table;
  uint64_t count = 0;
  std::vector<storage::ColumnSpec> specs;
};

}  // namespace

Result<storage::Database> BuildDatabaseFromSpec(const std::string& text,
                                                uint64_t seed) {
  storage::Database db;
  Rng rng(seed);
  std::vector<PendingRows> pending;
  std::vector<catalog::IndexDef> indexes;

  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    const std::string line{CleanLine(raw)};
    if (line.empty()) continue;
    auto fail = [&](const std::string& msg) {
      return Status::ParseError(StringPrintf("schema line %d: %s", line_no,
                                             msg.c_str()));
    };

    if (EqualsIgnoreCase(line.substr(0, 6), "TABLE ")) {
      const size_t open = line.find('(');
      const size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        return fail("expected TABLE name (col TYPE [PK], ...)");
      }
      catalog::TableDef def;
      def.name = std::string(Trim(line.substr(6, open - 6)));
      if (def.name.empty()) return fail("missing table name");
      for (const std::string& col_text :
           Split(line.substr(open + 1, close - open - 1), ',')) {
        std::vector<std::string> parts;
        for (const std::string& p : Split(std::string(Trim(col_text)), ' ')) {
          if (!p.empty()) parts.push_back(p);
        }
        if (parts.size() < 2) {
          return fail("column needs 'name TYPE' in '" + col_text + "'");
        }
        catalog::ColumnDef col;
        col.name = parts[0];
        AIM_ASSIGN_OR_RETURN(col.type,
                             ParseType(parts[1], &col.avg_width));
        bool pk = false;
        for (size_t i = 2; i < parts.size(); ++i) {
          if (EqualsIgnoreCase(parts[i], "PK")) pk = true;
          if (EqualsIgnoreCase(parts[i], "NULLABLE")) col.nullable = true;
        }
        if (pk) {
          def.primary_key.push_back(
              static_cast<catalog::ColumnId>(def.columns.size()));
        }
        def.columns.push_back(std::move(col));
      }
      if (def.columns.empty()) return fail("table has no columns");
      db.CreateTable(std::move(def));
      continue;
    }

    if (EqualsIgnoreCase(line.substr(0, 5), "ROWS ")) {
      std::vector<std::string> parts;
      for (const std::string& p : Split(line.substr(5), ' ')) {
        if (!p.empty()) parts.push_back(p);
      }
      if (parts.size() < 2) return fail("expected ROWS table count ...");
      AIM_ASSIGN_OR_RETURN(catalog::TableId table,
                           db.catalog().FindTable(parts[0]));
      PendingRows rows;
      rows.table = table;
      rows.count = std::strtoull(parts[1].c_str(), nullptr, 10);
      const catalog::TableDef& def = db.catalog().table(table);
      rows.specs.assign(def.columns.size(), storage::ColumnSpec{});
      // Reasonable default: ~rows/10 distinct values per column.
      for (auto& spec : rows.specs) {
        spec.ndv = std::max<uint64_t>(2, rows.count / 10);
      }
      for (size_t i = 2; i < parts.size(); ++i) {
        const std::vector<std::string> kv = Split(parts[i], ':');
        if (kv.size() != 2) {
          return fail("expected col:key=value in '" + parts[i] + "'");
        }
        auto col = def.FindColumn(kv[0]);
        if (!col.has_value()) {
          return fail("unknown column '" + kv[0] + "'");
        }
        const std::vector<std::string> eq = Split(kv[1], '=');
        if (eq.size() != 2) {
          return fail("expected key=value in '" + kv[1] + "'");
        }
        storage::ColumnSpec& spec = rows.specs[*col];
        if (EqualsIgnoreCase(eq[0], "ndv")) {
          spec.ndv = std::strtoull(eq[1].c_str(), nullptr, 10);
        } else if (EqualsIgnoreCase(eq[0], "zipf")) {
          spec.distribution = storage::Distribution::kZipf;
          spec.zipf_theta = std::strtod(eq[1].c_str(), nullptr);
        } else if (EqualsIgnoreCase(eq[0], "null")) {
          spec.null_fraction = std::strtod(eq[1].c_str(), nullptr);
        } else {
          return fail("unknown column option '" + eq[0] + "'");
        }
      }
      pending.push_back(std::move(rows));
      continue;
    }

    if (EqualsIgnoreCase(line.substr(0, 6), "INDEX ")) {
      const size_t open = line.find('(');
      const size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos) {
        return fail("expected INDEX table (col, ...)");
      }
      AIM_ASSIGN_OR_RETURN(
          catalog::TableId table,
          db.catalog().FindTable(
              std::string(Trim(line.substr(6, open - 6)))));
      catalog::IndexDef def;
      def.table = table;
      const catalog::TableDef& t = db.catalog().table(table);
      for (const std::string& col_text :
           Split(line.substr(open + 1, close - open - 1), ',')) {
        auto col = t.FindColumn(std::string(Trim(col_text)));
        if (!col.has_value()) {
          return fail("unknown index column '" + col_text + "'");
        }
        def.columns.push_back(*col);
      }
      indexes.push_back(std::move(def));
      continue;
    }

    return fail("unknown directive (expected TABLE / ROWS / INDEX)");
  }

  for (const PendingRows& rows : pending) {
    AIM_RETURN_NOT_OK(storage::GenerateRows(&db, rows.table, rows.count,
                                            rows.specs, &rng));
  }
  db.AnalyzeAll();
  for (const catalog::IndexDef& def : indexes) {
    AIM_RETURN_NOT_OK(db.CreateIndex(def).status());
  }
  return db;
}

Result<Workload> ParseWorkloadSpec(const std::string& text) {
  Workload w;
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    const std::string line{CleanLine(raw)};
    if (line.empty()) continue;
    char* sql_start = nullptr;
    const double weight =
        std::strtod(line.c_str(), &sql_start);
    if (sql_start == line.c_str() || sql_start == nullptr) {
      return Status::ParseError(
          StringPrintf("workload line %d: expected 'weight SQL'",
                       line_no));
    }
    const std::string sql{Trim(std::string_view(sql_start))};
    if (sql.empty()) {
      return Status::ParseError(
          StringPrintf("workload line %d: missing SQL", line_no));
    }
    Status st = w.Add(sql, weight);
    if (!st.ok()) {
      return Status::ParseError(StringPrintf(
          "workload line %d: %s", line_no, st.ToString().c_str()));
    }
  }
  return w;
}

}  // namespace aim::workload
