#ifndef AIM_WORKLOAD_SPEC_H_
#define AIM_WORKLOAD_SPEC_H_

#include <string>

#include "storage/database.h"
#include "workload/workload.h"

namespace aim::workload {

/// \brief Text formats consumed by the `aim_cli` tool, so a downstream
/// user can run the advisor without writing C++.
///
/// Schema spec — one directive per line, '#' comments:
///
///   TABLE users (id INT PK, org_id INT, status INT, email STRING(20))
///   ROWS users 10000 org_id:ndv=100 status:ndv=5 score:zipf=0.8
///   INDEX users (org_id, status)        # pre-existing index
///
/// Column types: INT, DOUBLE, DATE, STRING(avg_len). `PK` marks primary
/// key columns (composite allowed, in declaration order). The ROWS
/// directive generates synthetic rows; `col:ndv=N` sets the number of
/// distinct values, `col:zipf=T` makes the distribution zipfian with
/// skew T. Statistics are analyzed after loading.
Result<storage::Database> BuildDatabaseFromSpec(const std::string& text,
                                                uint64_t seed = 1);

/// Workload spec — one query per line: `weight SQL...`. Lines starting
/// with '#' and blank lines are skipped.
///
///   500 SELECT id FROM users WHERE org_id = 7
///   20  UPDATE users SET status = 2 WHERE id = 11
Result<Workload> ParseWorkloadSpec(const std::string& text);

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_SPEC_H_
