#include "workload/workload.h"

#include "sql/normalizer.h"
#include "sql/parser.h"

namespace aim::workload {

Result<Query> MakeQuery(std::string sql, double weight) {
  Query q;
  AIM_ASSIGN_OR_RETURN(q.stmt, sql::Parse(sql));
  // Canonical literal form (sorted, deduplicated IN lists): statements
  // that differ only in IN-list literal order/duplication become
  // byte-identical, so they share plan-cache keys and compression
  // clusters.
  sql::Canonicalize(&q.stmt);
  q.sql = std::move(sql);
  q.weight = weight;
  q.normalized_sql = sql::NormalizedSql(q.stmt);
  q.fingerprint = sql::NormalizedFingerprint(q.stmt);
  return q;
}

Status Workload::Add(std::string sql, double weight) {
  AIM_ASSIGN_OR_RETURN(Query q, MakeQuery(std::move(sql), weight));
  queries.push_back(std::move(q));
  return Status::OK();
}

std::vector<const sql::Statement*> Workload::statements() const {
  std::vector<const sql::Statement*> out;
  out.reserve(queries.size());
  for (const Query& q : queries) out.push_back(&q.stmt);
  return out;
}

std::vector<double> Workload::weights() const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const Query& q : queries) out.push_back(q.weight);
  return out;
}

}  // namespace aim::workload
