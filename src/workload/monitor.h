#ifndef AIM_WORKLOAD_MONITOR_H_
#define AIM_WORKLOAD_MONITOR_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "executor/metrics.h"
#include "sql/ast.h"

namespace aim::workload {

/// \brief Accumulated execution statistics for one normalized query —
/// the per-query record the workload monitor keeps (Sec. III-C): number
/// of executions, CPU cost, rows read and rows sent.
struct QueryStats {
  uint64_t fingerprint = 0;
  std::string normalized_sql;
  uint64_t executions = 0;
  double total_cpu_seconds = 0.0;
  uint64_t rows_examined = 0;
  uint64_t rows_sent = 0;
  /// Sum over executions of (data sent / data read); the ddr ingredient.
  double sum_sent_to_read = 0.0;

  /// cpu_avg(q, X, Δt): average CPU seconds per execution (incl. IOWAIT).
  double cpu_avg() const {
    return executions == 0 ? 0.0 : total_cpu_seconds / executions;
  }
  /// ddr_avg(q, X, Δt): "ratio of data sent to data read averaged across
  /// executions" (Sec. III-A2).
  double ddr_avg() const {
    return executions == 0 ? 1.0 : sum_sent_to_read / executions;
  }
  /// Optimistic expected benefit B(q, X, Δt) of Eq. 5, in CPU seconds per
  /// execution.
  double expected_benefit() const {
    return (1.0 - ddr_avg()) * cpu_avg();
  }
};

/// \brief The workload monitor: groups execution metrics by normalized
/// query fingerprint.
///
/// One monitor instance models one replica's statistics; `MergeFrom`
/// implements the cross-replica aggregation performed by the continuous
/// statistics export pipeline (Sec. VII-A).
///
/// Thread-safe: traffic threads Record concurrently while the export
/// daemon Snapshots/Resets (the fleet pipeline's shape). All methods
/// lock one internal mutex; `Find`'s returned pointer is only stable
/// while no concurrent mutation can run — use it at quiescent points
/// (tuning phases), never against a live-traffic monitor.
class WorkloadMonitor {
 public:
  WorkloadMonitor() = default;
  WorkloadMonitor(const WorkloadMonitor& other) { *this = other; }
  WorkloadMonitor& operator=(const WorkloadMonitor& other);

  /// Records one execution of the (already-normalized-keyed) statement.
  void Record(const sql::Statement& stmt,
              const executor::ExecutionMetrics& metrics);
  /// Records by precomputed key (avoids re-normalizing hot statements).
  void RecordKeyed(uint64_t fingerprint, const std::string& normalized_sql,
                   const executor::ExecutionMetrics& metrics);

  /// Merges another monitor's statistics (replica aggregation).
  void MergeFrom(const WorkloadMonitor& other);

  /// Snapshot of all per-query stats.
  std::vector<QueryStats> Snapshot() const;
  /// Stats for one normalized query, or nullptr.
  const QueryStats* Find(uint64_t fingerprint) const;

  void Reset();
  size_t distinct_queries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, QueryStats> stats_;
};

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_MONITOR_H_
