#include "workload/replay.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/logging.h"

namespace aim::workload {

std::vector<ReplayTick> ReplayDriver::Run(
    const Workload& workload, int ticks,
    const std::function<void(int)>& on_tick) {
  std::vector<ReplayTick> series;
  if (workload.empty()) return series;

  // Weighted sampling distribution over queries.
  std::vector<double> cum;
  double total_weight = 0.0;
  for (const Query& q : workload.queries) {
    total_weight += std::max(q.weight, 0.0);
    cum.push_back(total_weight);
  }

  executor::Executor exec(db_, cm_);
  for (int t = 0; t < ticks; ++t) {
    if (on_tick) on_tick(t);
    double cpu_used = 0.0;
    double served = 0.0;
    const int offered = static_cast<int>(options_.offered_qps);
    for (int i = 0; i < offered; ++i) {
      // Saturated host: excess load queues / sheds.
      if (cpu_used >= options_.cpu_capacity_seconds_per_tick) break;
      const double r = rng_.NextDouble() * total_weight;
      const size_t pick =
          std::lower_bound(cum.begin(), cum.end(), r) - cum.begin();
      const Query& q = workload.queries[std::min(pick, cum.size() - 1)];
      // An injected replay fault behaves exactly like a failed execution:
      // logged, skipped, and absorbed by the driver's shed-load model.
      const Status fault = AIM_FAULT_POINT_STATUS("workload.replay");
      if (!fault.ok()) {
        AIM_LOG(Warn) << "replay execution failed: " << fault.ToString()
                      << " sql=" << q.sql;
        continue;
      }
      Result<executor::ExecuteResult> res = exec.Execute(q.stmt);
      if (!res.ok()) {
        AIM_LOG(Warn) << "replay execution failed: "
                      << res.status().ToString() << " sql=" << q.sql;
        continue;
      }
      cpu_used += res.ValueOrDie().metrics.cpu_seconds;
      served += 1.0;
      monitor_.RecordKeyed(q.fingerprint, q.normalized_sql,
                           res.ValueOrDie().metrics);
    }
    ReplayTick tick;
    tick.tick = t;
    tick.cpu_utilization_pct = std::min(
        100.0, 100.0 * cpu_used / options_.cpu_capacity_seconds_per_tick);
    tick.throughput_qps = served;
    tick.avg_cpu_per_query = served > 0 ? cpu_used / served : 0.0;
    series.push_back(tick);
  }
  return series;
}

}  // namespace aim::workload
