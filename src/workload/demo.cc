#include "workload/demo.h"

#include "common/rng.h"
#include "storage/data_generator.h"

namespace aim::workload {

namespace {
catalog::ColumnDef Col(const char* name, catalog::ColumnType type,
                       uint32_t width) {
  catalog::ColumnDef c;
  c.name = name;
  c.type = type;
  c.avg_width = width;
  return c;
}
}  // namespace

storage::Database MakeUsersDemoDb(uint64_t rows, uint64_t seed) {
  storage::Database db;
  catalog::TableDef def;
  def.name = "users";
  def.columns = {Col("id", catalog::ColumnType::kInt64, 8),
                 Col("org_id", catalog::ColumnType::kInt64, 8),
                 Col("status", catalog::ColumnType::kInt64, 4),
                 Col("score", catalog::ColumnType::kInt64, 4),
                 Col("created_at", catalog::ColumnType::kInt64, 8),
                 Col("email", catalog::ColumnType::kString, 20),
                 Col("payload", catalog::ColumnType::kString, 40)};
  def.primary_key = {0};
  const catalog::TableId id = db.CreateTable(std::move(def));

  std::vector<storage::ColumnSpec> specs(7);
  specs[1].ndv = 100;
  specs[2].ndv = 5;
  specs[3].ndv = 1000;
  specs[3].distribution = storage::Distribution::kZipf;
  specs[3].zipf_theta = 0.6;
  specs[4].ndv = rows;
  specs[5].ndv = rows;
  specs[5].string_prefix = "user";
  specs[6].ndv = rows;
  specs[6].string_prefix = "payload";
  Rng rng(seed);
  (void)storage::GenerateRows(&db, id, rows, specs, &rng);
  db.AnalyzeAll();
  return db;
}

storage::Database MakeOrdersDemoDb(uint64_t users, uint64_t orders,
                                   uint64_t seed) {
  storage::Database db = MakeUsersDemoDb(users, seed);
  catalog::TableDef def;
  def.name = "orders";
  def.columns = {Col("id", catalog::ColumnType::kInt64, 8),
                 Col("user_id", catalog::ColumnType::kInt64, 8),
                 Col("status", catalog::ColumnType::kInt64, 4),
                 Col("total", catalog::ColumnType::kDouble, 8),
                 Col("day", catalog::ColumnType::kInt64, 4)};
  def.primary_key = {0};
  const catalog::TableId id = db.CreateTable(std::move(def));
  std::vector<storage::ColumnSpec> specs(5);
  specs[1].ndv = users;
  specs[2].ndv = 4;
  specs[3].ndv = 10000;
  specs[4].ndv = 365;
  Rng rng(seed + 1);
  (void)storage::GenerateRows(&db, id, orders, specs, &rng);
  db.AnalyzeAll();
  return db;
}

}  // namespace aim::workload
