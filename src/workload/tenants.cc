#include "workload/tenants.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "workload/spec.h"

namespace aim::workload {

namespace {

/// One generatable column: spec-text type plus the knobs queries need to
/// form predicates that actually select against the generated domain
/// (int values land in [0, ndv)).
struct ColumnGen {
  std::string name;
  std::string type;
  uint64_t ndv = 16;
  double zipf = 0.0;  // 0 = uniform
  bool filterable = false;
};

struct TableGen {
  std::string name;
  std::vector<ColumnGen> cols;  // excludes the id primary key
  uint64_t rows = 0;
};

constexpr const char* kEntityNames[] = {"accounts", "users", "customers",
                                        "devices", "vendors"};
constexpr const char* kFactNames[] = {"events", "orders", "clicks",
                                      "readings", "payments"};
constexpr const char* kIntCols[] = {"org_id", "region_id", "status",
                                    "tier",   "kind",      "priority",
                                    "group_id", "channel"};
constexpr const char* kNumCols[] = {"score", "amount", "total", "latency",
                                    "rating"};

std::vector<ColumnGen> PickFilterColumns(Rng* rng, size_t int_cols,
                                         uint64_t max_ndv) {
  std::vector<const char*> pool(std::begin(kIntCols), std::end(kIntCols));
  rng->Shuffle(&pool);
  std::vector<ColumnGen> cols;
  for (size_t i = 0; i < int_cols && i < pool.size(); ++i) {
    ColumnGen c;
    c.name = pool[i];
    c.type = "INT";
    c.ndv = std::min<uint64_t>(max_ndv, uint64_t{4} << rng->Uniform(7));
    if (rng->Bernoulli(0.4)) c.zipf = 0.5 + 0.4 * rng->NextDouble();
    c.filterable = true;
    cols.push_back(std::move(c));
  }
  return cols;
}

TableGen MakeTable(Rng* rng, const std::string& name, uint64_t rows,
                   size_t int_cols) {
  TableGen t;
  t.name = name;
  t.rows = rows;
  t.cols = PickFilterColumns(rng, int_cols, std::max<uint64_t>(4, rows / 2));
  ColumnGen num;
  num.name = kNumCols[rng->Uniform(std::size(kNumCols))];
  num.type = "DOUBLE";
  num.ndv = std::max<uint64_t>(8, rows / 4);
  num.filterable = true;
  t.cols.push_back(std::move(num));
  ColumnGen date;
  date.name = "created_at";
  date.type = "DATE";
  date.ndv = std::max<uint64_t>(16, rows / 8);
  date.filterable = true;
  t.cols.push_back(std::move(date));
  ColumnGen note;
  note.name = "note";
  note.type = "STRING(12)";
  note.ndv = std::max<uint64_t>(8, rows / 10);
  t.cols.push_back(std::move(note));
  return t;
}

/// The family's schema: every tenant of one family builds from this exact
/// description with the same seed, so their databases (and
/// SchemaStatsFingerprints) are bit-identical.
std::vector<TableGen> MakeFamilySchema(int family, uint64_t seed,
                                       double scale) {
  Rng rng(seed * 7919 + static_cast<uint64_t>(family) * 104729 + 11);
  const std::string prefix = StringPrintf("f%d_", family);
  std::vector<TableGen> tables;
  const uint64_t entity_rows = std::max<uint64_t>(
      64, static_cast<uint64_t>((500.0 + rng.Uniform(700)) * scale));
  tables.push_back(MakeTable(
      &rng, prefix + kEntityNames[rng.Uniform(std::size(kEntityNames))],
      entity_rows, 2 + rng.Uniform(3)));
  const uint64_t fact_rows = entity_rows * (2 + rng.Uniform(2));
  TableGen fact = MakeTable(
      &rng, prefix + kFactNames[rng.Uniform(std::size(kFactNames))],
      fact_rows, 2 + rng.Uniform(2));
  ColumnGen ref;
  ref.name = "owner_id";
  ref.type = "INT";
  ref.ndv = std::max<uint64_t>(4, entity_rows / 2);
  ref.filterable = true;
  fact.cols.insert(fact.cols.begin(), std::move(ref));
  tables.push_back(std::move(fact));
  return tables;
}

std::string SchemaSpecText(const std::vector<TableGen>& tables) {
  std::string text;
  for (const TableGen& t : tables) {
    text += "TABLE " + t.name + " (id INT PK";
    for (const ColumnGen& c : t.cols) {
      text += ", " + c.name + " " + c.type;
    }
    text += ")\n";
    text += StringPrintf("ROWS %s %llu", t.name.c_str(),
                         static_cast<unsigned long long>(t.rows));
    for (const ColumnGen& c : t.cols) {
      text += StringPrintf(" %s:ndv=%llu", c.name.c_str(),
                           static_cast<unsigned long long>(c.ndv));
      if (c.zipf > 0.0) {
        text += StringPrintf(" %s:zipf=%.2f", c.name.c_str(), c.zipf);
      }
    }
    text += "\n";
  }
  return text;
}

/// One predicate over a filterable column. Literal domains are kept small
/// relative to ndv so (a) predicates are selective against the generated
/// values and (b) same-family tenants frequently produce byte-identical
/// statements — the cross-tenant plan-cost cache hit surface.
std::string MakePredicate(Rng* rng, const ColumnGen& c) {
  const uint64_t domain = std::max<uint64_t>(2, std::min<uint64_t>(c.ndv, 12));
  const uint64_t v = rng->Uniform(domain);
  switch (rng->Uniform(4)) {
    case 0:
      return StringPrintf("%s = %llu", c.name.c_str(),
                          static_cast<unsigned long long>(v));
    case 1:
      return StringPrintf("%s > %llu", c.name.c_str(),
                          static_cast<unsigned long long>(
                              rng->Uniform(std::max<uint64_t>(2, c.ndv / 2))));
    case 2: {
      const uint64_t lo = rng->Uniform(std::max<uint64_t>(2, c.ndv / 2));
      return StringPrintf(
          "%s BETWEEN %llu AND %llu", c.name.c_str(),
          static_cast<unsigned long long>(lo),
          static_cast<unsigned long long>(lo + 1 + rng->Uniform(domain)));
    }
    default:
      return StringPrintf(
          "%s IN (%llu, %llu, %llu)", c.name.c_str(),
          static_cast<unsigned long long>(v),
          static_cast<unsigned long long>((v + 1) % domain),
          static_cast<unsigned long long>((v + 3) % domain));
  }
}

Status MakeTenantWorkload(Rng* rng, const std::vector<TableGen>& tables,
                          int queries, Workload* w) {
  for (int q = 0; q < queries; ++q) {
    const TableGen& t = tables[rng->Uniform(tables.size())];
    std::vector<size_t> filterable;
    for (size_t i = 0; i < t.cols.size(); ++i) {
      if (t.cols[i].filterable && t.cols[i].type == "INT") {
        filterable.push_back(i);
      }
    }
    rng->Shuffle(&filterable);
    const size_t preds =
        std::min<size_t>(filterable.size(), 1 + rng->Uniform(3));
    // Projection: one data column (plus id sometimes) so covering-index
    // candidates have something to cover.
    std::string select = rng->Bernoulli(0.3) ? "id" : t.cols.back().name;
    if (rng->Bernoulli(0.4)) {
      select += ", " + t.cols[rng->Uniform(t.cols.size())].name;
    }
    std::string sql = "SELECT " + select + " FROM " + t.name + " WHERE ";
    for (size_t i = 0; i < preds; ++i) {
      if (i > 0) sql += " AND ";
      sql += MakePredicate(rng, t.cols[filterable[i]]);
    }
    const double weight =
        (1.0 + static_cast<double>(rng->Uniform(20))) *
        (rng->Bernoulli(0.1) ? 10.0 : 1.0);
    AIM_RETURN_NOT_OK(w->Add(std::move(sql), weight));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<GeneratedTenant>> GenerateTenantFleet(
    const TenantFleetOptions& options) {
  if (options.tenants <= 0 || options.families <= 0) {
    return Status::InvalidArgument("tenants and families must be positive");
  }
  const int families = std::min(options.families, options.tenants);
  // Build each family's database once; tenants copy it (bit-identical
  // schema + rows + statistics ⇒ identical SchemaStatsFingerprint).
  std::vector<std::vector<TableGen>> schemas;
  std::vector<storage::Database> bases;
  schemas.reserve(families);
  bases.reserve(families);
  for (int f = 0; f < families; ++f) {
    schemas.push_back(MakeFamilySchema(f, options.seed, options.scale));
    AIM_ASSIGN_OR_RETURN(
        storage::Database db,
        BuildDatabaseFromSpec(SchemaSpecText(schemas.back()),
                              options.seed * 131 + f));
    bases.push_back(std::move(db));
  }

  std::vector<GeneratedTenant> fleet;
  fleet.reserve(options.tenants);
  for (int i = 0; i < options.tenants; ++i) {
    const int family = i % families;
    GeneratedTenant tenant;
    tenant.name = StringPrintf("t%04d_f%d", i, family);
    tenant.family = family;
    tenant.db = bases[family];
    Rng rng(options.seed * 6364136223846793005ull +
            static_cast<uint64_t>(i) * 1442695040888963407ull);
    AIM_RETURN_NOT_OK(MakeTenantWorkload(&rng, schemas[family],
                                         options.queries_per_tenant,
                                         &tenant.workload));
    fleet.push_back(std::move(tenant));
  }
  return fleet;
}

}  // namespace aim::workload
