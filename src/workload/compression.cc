#include "workload/compression.h"

#include <algorithm>
#include <unordered_map>

#include "obs/metrics.h"
#include "optimizer/predicate.h"

namespace aim::workload {

namespace {

/// FNV-1a-style chain mixer, same shape as Catalog::SchemaStatsFingerprint.
struct HashChain {
  uint64_t h = 1469598103934665603ull;
  void Mix(uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
};

uint64_t HashPredicate(const optimizer::AtomicPredicate& p) {
  HashChain c;
  c.Mix(static_cast<uint64_t>(p.column.instance));
  c.Mix(p.column.column);
  c.Mix(static_cast<uint64_t>(p.kind));
  c.Mix(static_cast<uint64_t>(p.op));
  return c.h;
}

uint64_t HashFactor(const optimizer::Factor& f) {
  // Conjunction: order-insensitive, so permuted conjuncts hash alike.
  std::vector<uint64_t> preds;
  preds.reserve(f.predicates.size());
  for (const optimizer::AtomicPredicate& p : f.predicates) {
    preds.push_back(HashPredicate(p));
  }
  std::sort(preds.begin(), preds.end());
  HashChain c;
  c.Mix(preds.size());
  for (uint64_t p : preds) c.Mix(p);
  return c.h;
}

}  // namespace

uint64_t WorkloadCompressor::StructuralSignature(
    const sql::Statement& stmt, const catalog::Catalog& catalog) {
  Result<optimizer::AnalyzedQuery> r = optimizer::Analyze(stmt, catalog);
  if (!r.ok()) return 0;
  const optimizer::AnalyzedQuery& aq = r.ValueOrDie();

  HashChain c;
  c.Mix(static_cast<uint64_t>(stmt.kind));
  c.Mix(static_cast<uint64_t>(aq.dml));
  c.Mix(aq.instances.size());
  for (const optimizer::TableInstance& inst : aq.instances) {
    c.Mix(inst.table);
    c.Mix(inst.selects_all_columns ? 1u : 0u);
    // Referenced columns are a set; sort so permuted select lists match.
    std::vector<catalog::ColumnId> refs = inst.referenced_columns;
    std::sort(refs.begin(), refs.end());
    c.Mix(refs.size());
    for (catalog::ColumnId col : refs) c.Mix(col);
    // Group/order sequences are kept in query order: candidate
    // generation is order-sensitive there, so only identical shapes merge.
    c.Mix(inst.group_by_columns.size());
    for (catalog::ColumnId col : inst.group_by_columns) c.Mix(col);
    c.Mix(inst.order_by_columns.size());
    for (const optimizer::BoundOrderItem& o : inst.order_by_columns) {
      c.Mix(o.column.column);
      c.Mix(o.ascending ? 1u : 0u);
    }
  }

  // Join edges as an order-insensitive set of canonical pairs.
  std::vector<uint64_t> edges;
  edges.reserve(aq.joins.size());
  for (const optimizer::JoinEdge& e : aq.joins) {
    const optimizer::BoundColumn& a = e.left < e.right ? e.left : e.right;
    const optimizer::BoundColumn& b = e.left < e.right ? e.right : e.left;
    HashChain ec;
    ec.Mix(static_cast<uint64_t>(a.instance));
    ec.Mix(a.column);
    ec.Mix(static_cast<uint64_t>(b.instance));
    ec.Mix(b.column);
    edges.push_back(ec.h);
  }
  std::sort(edges.begin(), edges.end());
  c.Mix(edges.size());
  for (uint64_t e : edges) c.Mix(e);

  // DNF: order-insensitive set of conjunction hashes (sargable shape,
  // literals excluded — the same abstraction the normalized template
  // applies to predicate operands).
  std::vector<uint64_t> factors;
  factors.reserve(aq.dnf.size());
  for (const optimizer::Factor& f : aq.dnf) factors.push_back(HashFactor(f));
  std::sort(factors.begin(), factors.end());
  c.Mix(factors.size());
  for (uint64_t f : factors) c.Mix(f);
  c.Mix(aq.dnf_exact ? 1u : 0u);

  c.Mix(aq.has_group_by ? 1u : 0u);
  c.Mix(aq.has_order_by ? 1u : 0u);
  c.Mix(aq.has_aggregate ? 1u : 0u);
  c.Mix(static_cast<uint64_t>(aq.limit));
  std::vector<catalog::ColumnId> updated = aq.updated_columns;
  std::sort(updated.begin(), updated.end());
  c.Mix(updated.size());
  for (catalog::ColumnId col : updated) c.Mix(col);

  // 0 is the "analysis failed" sentinel; remap the (astronomically
  // unlikely) real hash 0.
  return c.h == 0 ? 1 : c.h;
}

CompressedWorkload WorkloadCompressor::Compress(
    const Workload& workload, const WorkloadMonitor* monitor,
    const catalog::Catalog* catalog) const {
  static obs::Counter* const statements_counter =
      obs::MetricsRegistry::Global()->counter("workload.compress.statements");
  static obs::Counter* const clusters_counter =
      obs::MetricsRegistry::Global()->counter("workload.compress.clusters");
  static obs::Gauge* const ratio_gauge =
      obs::MetricsRegistry::Global()->gauge("workload.compress.ratio");

  CompressedWorkload out;
  out.stats.entries_in = workload.size();
  std::unordered_map<uint64_t, size_t> cluster_by_key;
  // Signature memo: one Analyze per distinct template, not per statement.
  std::unordered_map<uint64_t, uint64_t> signature_by_template;

  for (const Query& q : workload.queries) {
    out.stats.statements_in += q.multiplicity;
    uint64_t key = q.fingerprint;
    if (options_.merge_equivalent_templates && catalog != nullptr) {
      auto [it, inserted] = signature_by_template.emplace(q.fingerprint, 0);
      if (inserted) {
        it->second = StructuralSignature(q.stmt, *catalog);
      }
      if (it->second != 0) key = it->second;
    }
    auto [it, inserted] = cluster_by_key.emplace(key, out.clusters.size());
    if (inserted) {
      WorkloadCluster c;
      c.fingerprint = key;
      c.template_fingerprint = q.fingerprint;
      c.representative = out.workload.queries.size();
      out.clusters.push_back(std::move(c));
      out.workload.queries.push_back(q);
      out.workload.queries.back().weight = 0.0;
      out.workload.queries.back().multiplicity = 0;
    }
    WorkloadCluster& c = out.clusters[it->second];
    Query& rep = out.workload.queries[c.representative];
    c.members += q.multiplicity;
    c.weight += q.weight;
    rep.multiplicity += q.multiplicity;
    rep.weight += q.weight;
    if (monitor != nullptr) {
      const QueryStats* stats = monitor->Find(q.fingerprint);
      if (stats != nullptr) c.executions += q.multiplicity * stats->executions;
    }
    if (std::find(c.template_fingerprints.begin(),
                  c.template_fingerprints.end(),
                  q.fingerprint) == c.template_fingerprints.end()) {
      c.template_fingerprints.push_back(q.fingerprint);
    }
  }

  out.stats.clusters = out.clusters.size();
  for (const WorkloadCluster& c : out.clusters) {
    if (out.workload.queries[c.representative].stmt.is_dml()) {
      ++out.stats.dml_clusters;
    }
  }
  statements_counter->Add(out.stats.statements_in);
  clusters_counter->Add(out.stats.clusters);
  ratio_gauge->Set(out.stats.ratio());
  return out;
}

}  // namespace aim::workload
