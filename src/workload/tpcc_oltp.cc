#include "workload/tpcc_oltp.h"

#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "common/strings.h"
#include "executor/executor.h"
#include "optimizer/cost_model.h"

namespace aim::workload {

namespace {

using catalog::ColumnDef;
using catalog::ColumnType;
using catalog::TableDef;
using storage::Row;
using storage::RowId;
using sql::Value;

TableDef MakeTable(const char* name, std::vector<const char*> columns,
                   std::vector<catalog::ColumnId> pk) {
  TableDef def;
  def.name = name;
  def.columns.reserve(columns.size());
  for (const char* col : columns) {
    ColumnDef c;
    c.name = col;
    c.type = ColumnType::kInt64;
    c.avg_width = 8;
    def.columns.push_back(std::move(c));
  }
  def.primary_key = std::move(pk);
  return def;
}

Row Ints(std::initializer_list<int64_t> values) {
  Row row;
  row.reserve(values.size());
  for (int64_t v : values) row.push_back(Value::Int(v));
  return row;
}

}  // namespace

TpccDatabase::TpccDatabase(TpccConfig config) : config_(config) {}

Status TpccDatabase::Load() {
  const int W = config_.warehouses;
  const int D = config_.districts_per_warehouse;
  const int C = config_.customers_per_district;
  const int I = config_.items;
  if (W < 1 || D < 1 || C < 1 || I < 1) {
    return Status::InvalidArgument("tpcc: scale factors must be >= 1");
  }

  warehouse_ = db_.CreateTable(MakeTable("warehouse", {"w_id", "w_ytd"}, {0}));
  district_ = db_.CreateTable(MakeTable(
      "district", {"d_w_id", "d_id", "d_next_o_id", "d_ytd"}, {0, 1}));
  customer_ = db_.CreateTable(MakeTable(
      "customer",
      {"c_w_id", "c_d_id", "c_id", "c_last_id", "c_balance", "c_payment_cnt",
       "c_delivery_cnt"},
      {0, 1, 2}));
  orders_ = db_.CreateTable(MakeTable(
      "orders",
      {"o_w_id", "o_d_id", "o_id", "o_c_id", "o_entry_d", "o_carrier_id",
       "o_ol_cnt"},
      {0, 1, 2}));
  new_orders_ = db_.CreateTable(
      MakeTable("new_orders", {"no_w_id", "no_d_id", "no_o_id"}, {0, 1, 2}));
  order_line_ = db_.CreateTable(MakeTable(
      "order_line",
      {"ol_w_id", "ol_d_id", "ol_o_id", "ol_number", "ol_i_id", "ol_quantity",
       "ol_amount", "ol_delivery_d"},
      {0, 1, 2, 3}));
  stock_ = db_.CreateTable(MakeTable(
      "stock", {"s_w_id", "s_i_id", "s_quantity", "s_ytd", "s_order_cnt"},
      {0, 1}));
  item_ = db_.CreateTable(
      MakeTable("item", {"i_id", "i_price", "i_im_id"}, {0}));
  history_ = db_.CreateTable(MakeTable(
      "history", {"h_id", "h_w_id", "h_d_id", "h_c_id", "h_amount", "h_date"},
      {0}));

  const auto pk_id = [&](catalog::TableId table) {
    const catalog::IndexDef* pk =
        db_.catalog().FindIndex(table, db_.catalog().table(table).primary_key);
    return pk != nullptr ? pk->id : catalog::kInvalidIndex;
  };
  orders_pk_ = pk_id(orders_);
  new_orders_pk_ = pk_id(new_orders_);
  order_line_pk_ = pk_id(order_line_);

  Rng rng(config_.seed);
  warehouse_rid_.resize(W);
  district_rid_.resize(static_cast<size_t>(W) * D);
  customer_rid_.resize(static_cast<size_t>(W) * D * C);
  stock_rid_.resize(static_cast<size_t>(W) * I);
  item_rid_.resize(I);
  next_o_id_.assign(static_cast<size_t>(W) * D, 0);

  for (int i = 0; i < I; ++i) {
    AIM_ASSIGN_OR_RETURN(
        item_rid_[i],
        db_.InsertRow(item_, Ints({i, 1 + static_cast<int64_t>(
                                          rng.Uniform(100)),
                                   static_cast<int64_t>(rng.Uniform(1000))})));
  }
  for (int w = 0; w < W; ++w) {
    AIM_ASSIGN_OR_RETURN(warehouse_rid_[w],
                         db_.InsertRow(warehouse_, Ints({w, 0})));
    for (int i = 0; i < I; ++i) {
      AIM_ASSIGN_OR_RETURN(
          stock_rid_[static_cast<size_t>(w) * I + i],
          db_.InsertRow(stock_,
                        Ints({w, i,
                              10 + static_cast<int64_t>(rng.Uniform(91)), 0,
                              0})));
    }
    for (int d = 0; d < D; ++d) {
      const size_t dk = static_cast<size_t>(w) * D + d;
      AIM_ASSIGN_OR_RETURN(district_rid_[dk],
                           db_.InsertRow(district_, Ints({w, d, 0, 0})));
      for (int c = 0; c < C; ++c) {
        AIM_ASSIGN_OR_RETURN(
            customer_rid_[dk * C + c],
            db_.InsertRow(customer_,
                          Ints({w, d, c,
                                static_cast<int64_t>(rng.Uniform(C / 3 + 1)),
                                0, 0, 0})));
      }
      for (int o = 0; o < config_.initial_orders_per_district; ++o) {
        AIM_RETURN_NOT_OK(InsertOrderLocked(w, d, o, &rng, /*open=*/true));
        ++next_o_id_[dk];
      }
      Row drow = db_.heap(district_).row(district_rid_[dk]);
      drow[2] = Value::Int(next_o_id_[dk]);
      AIM_RETURN_NOT_OK(db_.UpdateRow(district_, district_rid_[dk],
                                      std::move(drow)));
    }
  }
  db_.AnalyzeAll();
  return Status::OK();
}

Status TpccDatabase::InsertOrderLocked(int w, int d, int o_id, Rng* rng,
                                       bool open) {
  const int C = config_.customers_per_district;
  const int I = config_.items;
  const int64_t c_id = static_cast<int64_t>(rng->Uniform(C));
  const int64_t ol_cnt = 5 + static_cast<int64_t>(rng->Uniform(11));
  AIM_RETURN_NOT_OK(
      db_.InsertRow(orders_, Ints({w, d, o_id, c_id, clock_ticks_++, 0,
                                   ol_cnt}))
          .status());
  if (open) {
    AIM_RETURN_NOT_OK(
        db_.InsertRow(new_orders_, Ints({w, d, o_id})).status());
  }
  for (int64_t ln = 1; ln <= ol_cnt; ++ln) {
    const int i = static_cast<int>(rng->Uniform(I));
    const int64_t qty = 1 + static_cast<int64_t>(rng->Uniform(10));
    const int64_t price = db_.heap(item_).row(item_rid_[i])[1].AsInt();
    const size_t sk = static_cast<size_t>(w) * I + i;
    Row srow = db_.heap(stock_).row(stock_rid_[sk]);
    int64_t quantity = srow[2].AsInt() - qty;
    if (quantity < 10) quantity += 91;  // TPC-C restock rule
    srow[2] = Value::Int(quantity);
    srow[3] = Value::Int(srow[3].AsInt() + qty);
    srow[4] = Value::Int(srow[4].AsInt() + 1);
    AIM_RETURN_NOT_OK(db_.UpdateRow(stock_, stock_rid_[sk], std::move(srow)));
    AIM_RETURN_NOT_OK(
        db_.InsertRow(order_line_,
                      Ints({w, d, o_id, ln, i, qty, qty * price, 0}))
            .status());
  }
  return Status::OK();
}

Status TpccDatabase::NewOrder(Rng* rng) {
  std::unique_lock<std::shared_mutex> lock(db_.latch());
  const int w = static_cast<int>(rng->Uniform(config_.warehouses));
  const int d =
      static_cast<int>(rng->Uniform(config_.districts_per_warehouse));
  const size_t dk =
      static_cast<size_t>(w) * config_.districts_per_warehouse + d;
  const int o_id = static_cast<int>(next_o_id_[dk]++);
  Row drow = db_.heap(district_).row(district_rid_[dk]);
  drow[2] = Value::Int(next_o_id_[dk]);
  AIM_RETURN_NOT_OK(
      db_.UpdateRow(district_, district_rid_[dk], std::move(drow)));
  return InsertOrderLocked(w, d, o_id, rng, /*open=*/true);
}

Status TpccDatabase::Payment(Rng* rng) {
  std::unique_lock<std::shared_mutex> lock(db_.latch());
  const int w = static_cast<int>(rng->Uniform(config_.warehouses));
  const int d =
      static_cast<int>(rng->Uniform(config_.districts_per_warehouse));
  const int c =
      static_cast<int>(rng->Uniform(config_.customers_per_district));
  const int64_t amount = 1 + static_cast<int64_t>(rng->Uniform(5000));
  const size_t dk =
      static_cast<size_t>(w) * config_.districts_per_warehouse + d;
  const size_t ck =
      dk * config_.customers_per_district + static_cast<size_t>(c);

  Row crow = db_.heap(customer_).row(customer_rid_[ck]);
  crow[4] = Value::Int(crow[4].AsInt() - amount);
  crow[5] = Value::Int(crow[5].AsInt() + 1);
  AIM_RETURN_NOT_OK(
      db_.UpdateRow(customer_, customer_rid_[ck], std::move(crow)));

  Row wrow = db_.heap(warehouse_).row(warehouse_rid_[w]);
  wrow[1] = Value::Int(wrow[1].AsInt() + amount);
  AIM_RETURN_NOT_OK(
      db_.UpdateRow(warehouse_, warehouse_rid_[w], std::move(wrow)));

  Row drow = db_.heap(district_).row(district_rid_[dk]);
  drow[3] = Value::Int(drow[3].AsInt() + amount);
  AIM_RETURN_NOT_OK(
      db_.UpdateRow(district_, district_rid_[dk], std::move(drow)));

  return db_
      .InsertRow(history_,
                 Ints({next_h_id_++, w, d, c, amount, clock_ticks_++}))
      .status();
}

Status TpccDatabase::Delivery(Rng* rng) {
  std::unique_lock<std::shared_mutex> lock(db_.latch());
  const int w = static_cast<int>(rng->Uniform(config_.warehouses));
  const int64_t carrier = 1 + static_cast<int64_t>(rng->Uniform(10));
  const storage::BTreeIndex* no_pk = db_.btree(new_orders_pk_);
  const storage::BTreeIndex* o_pk = db_.btree(orders_pk_);
  const storage::BTreeIndex* ol_pk = db_.btree(order_line_pk_);
  if (no_pk == nullptr || o_pk == nullptr || ol_pk == nullptr) {
    return Status::Internal("tpcc: clustered PK indexes missing");
  }
  for (int d = 0; d < config_.districts_per_warehouse; ++d) {
    // Oldest open order = first entry under the (w, d) prefix of the
    // new_orders clustered key (no_o_id ascending).
    RowId no_rid = 0;
    int64_t o_id = -1;
    no_pk->ScanPrefix(Ints({w, d}), std::nullopt, std::nullopt,
                      [&](const Row& key, RowId rid) {
                        o_id = key[2].AsInt();
                        no_rid = rid;
                        return false;  // first only
                      });
    if (o_id < 0) continue;  // district has no open order
    AIM_RETURN_NOT_OK(db_.DeleteRow(new_orders_, no_rid));

    RowId order_rid = 0;
    bool found = false;
    o_pk->ScanPrefix(Ints({w, d, o_id}), std::nullopt, std::nullopt,
                     [&](const Row&, RowId rid) {
                       order_rid = rid;
                       found = true;
                       return false;
                     });
    if (!found) {
      return Status::Internal("tpcc: new_orders entry without order row");
    }
    Row orow = db_.heap(orders_).row(order_rid);
    const int64_t c_id = orow[3].AsInt();
    orow[5] = Value::Int(carrier);
    AIM_RETURN_NOT_OK(db_.UpdateRow(orders_, order_rid, std::move(orow)));

    std::vector<RowId> line_rids;
    ol_pk->ScanPrefix(Ints({w, d, o_id}), std::nullopt, std::nullopt,
                      [&](const Row&, RowId rid) {
                        line_rids.push_back(rid);
                        return true;
                      });
    const int64_t delivery_d = clock_ticks_++;
    for (RowId rid : line_rids) {
      Row lrow = db_.heap(order_line_).row(rid);
      lrow[7] = Value::Int(delivery_d);
      AIM_RETURN_NOT_OK(db_.UpdateRow(order_line_, rid, std::move(lrow)));
    }

    const size_t ck = (static_cast<size_t>(w) *
                           config_.districts_per_warehouse +
                       d) *
                          config_.customers_per_district +
                      static_cast<size_t>(c_id);
    Row crow = db_.heap(customer_).row(customer_rid_[ck]);
    crow[6] = Value::Int(crow[6].AsInt() + 1);
    AIM_RETURN_NOT_OK(
        db_.UpdateRow(customer_, customer_rid_[ck], std::move(crow)));
  }
  return Status::OK();
}

Status TpccDatabase::ReadQuery(Rng* rng) {
  std::string sql;
  switch (rng->Uniform(4)) {
    case 0:
      sql = StringPrintf(
          "SELECT o_id, o_entry_d FROM orders WHERE o_c_id = %d",
          static_cast<int>(rng->Uniform(config_.customers_per_district)));
      break;
    case 1:
      sql = StringPrintf(
          "SELECT ol_o_id, ol_amount FROM order_line WHERE ol_i_id = %d",
          static_cast<int>(rng->Uniform(config_.items)));
      break;
    case 2:
      sql = StringPrintf(
          "SELECT c_id, c_balance FROM customer WHERE c_last_id = %d",
          static_cast<int>(
              rng->Uniform(config_.customers_per_district / 3 + 1)));
      break;
    default:
      sql = StringPrintf(
          "SELECT s_i_id, s_quantity FROM stock WHERE s_quantity < %d",
          15 + static_cast<int>(rng->Uniform(20)));
      break;
  }
  AIM_ASSIGN_OR_RETURN(Query query, MakeQuery(std::move(sql)));
  std::shared_lock<std::shared_mutex> lock(db_.latch());
  executor::Executor ex(&db_, optimizer::CostModel());
  return ex.Execute(query.stmt).status();
}

Result<Workload> TpccDatabase::AnalyticalWorkload() const {
  Workload w;
  // Secondary-index-shaped probes: none of these are covered by a
  // clustered PK prefix, so the tuner has real candidates to find.
  AIM_RETURN_NOT_OK(
      w.Add("SELECT o_id, o_entry_d FROM orders WHERE o_c_id = 7", 10.0));
  AIM_RETURN_NOT_OK(w.Add(
      "SELECT ol_o_id, ol_amount FROM order_line WHERE ol_i_id = 11", 8.0));
  AIM_RETURN_NOT_OK(w.Add(
      "SELECT c_id, c_balance FROM customer WHERE c_last_id = 3", 6.0));
  AIM_RETURN_NOT_OK(w.Add(
      "SELECT s_i_id, s_quantity FROM stock WHERE s_quantity < 25", 4.0));
  AIM_RETURN_NOT_OK(w.Add(
      "SELECT o_id, o_c_id FROM orders WHERE o_entry_d > 50", 3.0));
  return w;
}

OltpDriver::OltpDriver(TpccDatabase* tpcc, common::ThreadPool* pool,
                       int clients, uint64_t seed, OltpMix mix)
    : tpcc_(tpcc), pool_(pool), clients_(clients), seed_(seed), mix_(mix) {}

Status OltpDriver::Start() {
  if (running_) return Status::InvalidArgument("oltp driver: already running");
  if (pool_ == nullptr || pool_->worker_count() < 1) {
    // A ≤1-worker pool runs Submit inline; an until-stop client loop
    // would never return control to the caller.
    return Status::InvalidArgument(
        "oltp driver: pool must have at least one worker");
  }
  if (clients_ < 1) {
    return Status::InvalidArgument("oltp driver: need at least one client");
  }
  stop_.store(false, std::memory_order_relaxed);
  per_client_.assign(clients_, OltpStats{});
  futures_.clear();
  futures_.reserve(clients_);
  for (int i = 0; i < clients_; ++i) {
    OltpStats* stats = &per_client_[i];
    futures_.push_back(
        pool_->Submit([this, i, stats] { ClientLoop(i, stats); }));
  }
  running_ = true;
  return Status::OK();
}

void OltpDriver::ClientLoop(int client, OltpStats* stats) {
  Rng rng(seed_ + static_cast<uint64_t>(client) * 7919 + 1);
  const double total =
      mix_.new_order + mix_.payment + mix_.delivery + mix_.read;
  while (!stop_.load(std::memory_order_relaxed)) {
    const double r = rng.NextDouble() * total;
    const auto start = std::chrono::steady_clock::now();
    Status st;
    uint64_t* bucket = nullptr;
    if (r < mix_.new_order) {
      st = tpcc_->NewOrder(&rng);
      bucket = &stats->new_orders;
    } else if (r < mix_.new_order + mix_.payment) {
      st = tpcc_->Payment(&rng);
      bucket = &stats->payments;
    } else if (r < mix_.new_order + mix_.payment + mix_.delivery) {
      st = tpcc_->Delivery(&rng);
      bucket = &stats->deliveries;
    } else {
      st = tpcc_->ReadQuery(&rng);
      bucket = &stats->reads;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (seconds > stats->max_txn_seconds) stats->max_txn_seconds = seconds;
    if (st.ok()) {
      ++*bucket;
    } else {
      ++stats->errors;
    }
  }
}

OltpStats OltpDriver::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (std::future<void>& f : futures_) f.get();
  futures_.clear();
  running_ = false;
  OltpStats merged;
  for (const OltpStats& s : per_client_) {
    merged.new_orders += s.new_orders;
    merged.payments += s.payments;
    merged.deliveries += s.deliveries;
    merged.reads += s.reads;
    merged.errors += s.errors;
    if (s.max_txn_seconds > merged.max_txn_seconds) {
      merged.max_txn_seconds = s.max_txn_seconds;
    }
  }
  return merged;
}

}  // namespace aim::workload
