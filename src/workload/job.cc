#include "workload/job.h"

#include <cmath>

#include "common/rng.h"
#include "storage/data_generator.h"

namespace aim::workload {

namespace {

using catalog::ColumnDef;
using catalog::ColumnType;
using catalog::TableDef;
using storage::ColumnSpec;

ColumnDef Col(const char* name, ColumnType type, uint32_t width) {
  ColumnDef c;
  c.name = name;
  c.type = type;
  c.avg_width = width;
  return c;
}

}  // namespace

Status BuildJob(storage::Database* db, const JobOptions& options) {
  Rng rng(options.seed);
  auto n = [&](double base) {
    return static_cast<uint64_t>(std::max(1.0, base * options.scale));
  };

  struct Build {
    TableDef def;
    std::vector<ColumnSpec> specs;
    uint64_t rows;
  };
  std::vector<Build> tables;

  const uint64_t kTitles = n(50000);
  const uint64_t kNames = n(40000);
  const uint64_t kCompanies = n(5000);
  const uint64_t kKeywords = n(8000);

  {
    Build b;
    b.def.name = "title";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("kind_id", ColumnType::kInt64, 4),
                     Col("production_year", ColumnType::kInt64, 4),
                     Col("title", ColumnType::kString, 30),
                     Col("episode_nr", ColumnType::kInt64, 4),
                     Col("season_nr", ColumnType::kInt64, 4)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{},
               ColumnSpec{.ndv = 7, .base = 1},
               ColumnSpec{.ndv = 130, .distribution =
                              storage::Distribution::kZipf,
                          .zipf_theta = 0.6, .base = 1880},
               ColumnSpec{.ndv = kTitles, .string_prefix = "title"},
               ColumnSpec{.ndv = 100},
               ColumnSpec{.ndv = 30}};
    b.rows = kTitles;
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "kind_type";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("kind", ColumnType::kString, 12)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{}, ColumnSpec{.ndv = 7, .string_prefix = "kind"}};
    b.rows = 7;
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "name";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("name", ColumnType::kString, 20),
                     Col("gender", ColumnType::kString, 1),
                     Col("name_pcode", ColumnType::kString, 5)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{},
               ColumnSpec{.ndv = kNames, .string_prefix = "person"},
               ColumnSpec{.ndv = 3, .string_prefix = "g"},
               ColumnSpec{.ndv = 1000, .string_prefix = "pc"}};
    b.rows = kNames;
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "cast_info";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("person_id", ColumnType::kInt64, 4),
                     Col("movie_id", ColumnType::kInt64, 4),
                     Col("role_id", ColumnType::kInt64, 4),
                     Col("nr_order", ColumnType::kInt64, 4)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{},
               ColumnSpec{.ndv = kNames},
               ColumnSpec{.ndv = kTitles,
                          .distribution = storage::Distribution::kZipf,
                          .zipf_theta = 0.7},
               ColumnSpec{.ndv = 11, .base = 1},
               ColumnSpec{.ndv = 60}};
    b.rows = n(400000);
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "role_type";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("role", ColumnType::kString, 12)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{}, ColumnSpec{.ndv = 11, .string_prefix = "role"}};
    b.rows = 11;
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "company_name";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("name", ColumnType::kString, 24),
                     Col("country_code", ColumnType::kString, 4)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{},
               ColumnSpec{.ndv = kCompanies, .string_prefix = "company"},
               ColumnSpec{.ndv = 120, .distribution =
                              storage::Distribution::kZipf,
                          .zipf_theta = 0.9, .string_prefix = "cc"}};
    b.rows = kCompanies;
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "company_type";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("kind", ColumnType::kString, 20)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{}, ColumnSpec{.ndv = 4, .string_prefix = "ct"}};
    b.rows = 4;
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "movie_companies";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("movie_id", ColumnType::kInt64, 4),
                     Col("company_id", ColumnType::kInt64, 4),
                     Col("company_type_id", ColumnType::kInt64, 4)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{},
               ColumnSpec{.ndv = kTitles},
               ColumnSpec{.ndv = kCompanies,
                          .distribution = storage::Distribution::kZipf,
                          .zipf_theta = 0.8},
               ColumnSpec{.ndv = 4, .base = 1}};
    b.rows = n(120000);
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "info_type";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("info", ColumnType::kString, 16)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{}, ColumnSpec{.ndv = 113, .string_prefix = "it"}};
    b.rows = 113;
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "movie_info";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("movie_id", ColumnType::kInt64, 4),
                     Col("info_type_id", ColumnType::kInt64, 4),
                     Col("info", ColumnType::kString, 20)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{},
               ColumnSpec{.ndv = kTitles},
               ColumnSpec{.ndv = 113, .base = 1},
               ColumnSpec{.ndv = 5000, .string_prefix = "info"}};
    b.rows = n(500000);
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "keyword";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("keyword", ColumnType::kString, 16)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{},
               ColumnSpec{.ndv = kKeywords, .string_prefix = "kw"}};
    b.rows = kKeywords;
    tables.push_back(std::move(b));
  }
  {
    Build b;
    b.def.name = "movie_keyword";
    b.def.columns = {Col("id", ColumnType::kInt64, 4),
                     Col("movie_id", ColumnType::kInt64, 4),
                     Col("keyword_id", ColumnType::kInt64, 4)};
    b.def.primary_key = {0};
    b.specs = {ColumnSpec{},
               ColumnSpec{.ndv = kTitles},
               ColumnSpec{.ndv = kKeywords,
                          .distribution = storage::Distribution::kZipf,
                          .zipf_theta = 0.7}};
    b.rows = n(180000);
    tables.push_back(std::move(b));
  }

  for (Build& b : tables) {
    const catalog::TableId id = db->CreateTable(b.def);
    AIM_RETURN_NOT_OK(storage::GenerateRows(db, id, b.rows, b.specs, &rng));
  }
  db->AnalyzeAll();

  // Scale statistics the way BuildTpch does.
  if (options.stats_scale > 1.0) {
    catalog::Catalog& cat = db->catalog();
    for (catalog::TableId t = 0; t < cat.table_count(); ++t) {
      catalog::TableDef* def = cat.mutable_table(t);
      const uint64_t old_rows = def->stats.row_count;
      if (old_rows < 1000) continue;  // dimension tables stay small
      def->stats.row_count = static_cast<uint64_t>(
          old_rows * options.stats_scale);
      for (auto& col : def->stats.columns) {
        if (col.ndv < static_cast<uint64_t>(0.5 * old_rows)) continue;
        const double span = static_cast<double>(col.max) -
                            static_cast<double>(col.min) + 1.0;
        col.ndv = static_cast<uint64_t>(col.ndv * options.stats_scale);
        if (span <= 2.0 * static_cast<double>(old_rows)) {
          // Dense surrogate key: domain grows with the table.
          col.max =
              col.min + static_cast<int64_t>(span * options.stats_scale);
          for (auto& bound : col.histogram) {
            bound = col.min + static_cast<int64_t>(
                                  (bound - col.min) * options.stats_scale);
          }
        } else {
          col.ndv = std::min(col.ndv, static_cast<uint64_t>(span));
        }
      }
    }
    // Foreign-key columns under-count NDV at tiny materializations;
    // restore the scaled key-domain cardinalities.
    auto fix_fk = [&](const char* table, const char* column,
                      const char* ref_table) {
      Result<catalog::TableId> t = cat.FindTable(table);
      Result<catalog::TableId> ref = cat.FindTable(ref_table);
      if (!t.ok() || !ref.ok()) return;
      catalog::TableDef* def = cat.mutable_table(t.ValueOrDie());
      auto c = def->FindColumn(column);
      if (!c.has_value()) return;
      catalog::ColumnStats& stats = def->stats.columns[*c];
      // The FK domain is the referenced table's (scaled) cardinality.
      stats.ndv = std::max<uint64_t>(
          1, cat.table(ref.ValueOrDie()).stats.row_count);
      stats.min = 0;
      stats.max = static_cast<int64_t>(stats.ndv) - 1;
      stats.histogram.clear();
    };
    fix_fk("cast_info", "movie_id", "title");
    fix_fk("cast_info", "person_id", "name");
    fix_fk("movie_companies", "movie_id", "title");
    fix_fk("movie_companies", "company_id", "company_name");
    fix_fk("movie_info", "movie_id", "title");
    fix_fk("movie_keyword", "movie_id", "title");
    fix_fk("movie_keyword", "keyword_id", "keyword");
  }
  return Status::OK();
}

Result<Workload> JobQueries() {
  static const char* kQueries[] = {
      // 1: production companies by country for recent movies.
      "SELECT t.title, cn.name FROM title t, movie_companies mc, "
      "company_name cn, company_type ct WHERE t.id = mc.movie_id AND "
      "mc.company_id = cn.id AND mc.company_type_id = ct.id AND "
      "cn.country_code = 'cc1' AND t.production_year > 2005",
      // 2: keyword-tagged titles.
      "SELECT t.title FROM title t, movie_keyword mk, keyword k WHERE "
      "t.id = mk.movie_id AND mk.keyword_id = k.id AND "
      "k.keyword = 'kw100' AND t.production_year BETWEEN 1990 AND 2000",
      // 3: cast of a movie kind.
      "SELECT n.name, t.title FROM name n, cast_info ci, title t, "
      "kind_type kt WHERE n.id = ci.person_id AND ci.movie_id = t.id AND "
      "t.kind_id = kt.id AND kt.kind = 'kind2' AND n.gender = 'g1'",
      // 4: info of movies from one company.
      "SELECT t.title, mi.info FROM title t, movie_info mi, "
      "movie_companies mc, company_name cn WHERE t.id = mi.movie_id AND "
      "t.id = mc.movie_id AND mc.company_id = cn.id AND "
      "cn.name = 'company42' AND mi.info_type_id = 8",
      // 5: actors in recent movies of a company type.
      "SELECT n.name FROM name n, cast_info ci, title t, "
      "movie_companies mc, company_type ct WHERE n.id = ci.person_id AND "
      "ci.movie_id = t.id AND t.id = mc.movie_id AND "
      "mc.company_type_id = ct.id AND ct.kind = 'ct1' AND "
      "t.production_year > 2010 AND ci.role_id = 1",
      // 6: keyword + info combination.
      "SELECT t.title FROM title t, movie_keyword mk, keyword k, "
      "movie_info mi, info_type it WHERE t.id = mk.movie_id AND "
      "mk.keyword_id = k.id AND t.id = mi.movie_id AND "
      "mi.info_type_id = it.id AND it.info = 'it5' AND "
      "k.keyword LIKE 'kw1%' AND t.production_year > 2000",
      // 7: five-way with cast and company.
      "SELECT n.name, cn.name FROM name n, cast_info ci, title t, "
      "movie_companies mc, company_name cn WHERE n.id = ci.person_id "
      "AND ci.movie_id = t.id AND t.id = mc.movie_id AND "
      "mc.company_id = cn.id AND cn.country_code = 'cc3' AND "
      "n.name_pcode = 'pc77' AND t.production_year BETWEEN 1980 AND 1995",
      // 8: episodes per season for a kind.
      "SELECT t.season_nr, COUNT(*) FROM title t, kind_type kt WHERE "
      "t.kind_id = kt.id AND kt.kind = 'kind4' AND t.episode_nr > 50 "
      "GROUP BY t.season_nr",
      // 9: role distribution for a gender.
      "SELECT rt.role, COUNT(*) FROM cast_info ci, role_type rt, name n "
      "WHERE ci.role_id = rt.id AND ci.person_id = n.id AND "
      "n.gender = 'g0' GROUP BY rt.role",
      // 10: companies of keyword-tagged movies.
      "SELECT cn.name, COUNT(*) FROM company_name cn, movie_companies mc, "
      "title t, movie_keyword mk WHERE cn.id = mc.company_id AND "
      "mc.movie_id = t.id AND t.id = mk.movie_id AND "
      "mk.keyword_id = 500 AND t.production_year > 1990 GROUP BY cn.name",
      // 11: info of an actor's movies.
      "SELECT mi.info FROM movie_info mi, title t, cast_info ci WHERE "
      "mi.movie_id = t.id AND ci.movie_id = t.id AND "
      "ci.person_id = 12345 AND mi.info_type_id IN (3, 7, 11)",
      // 12: top ordered cast members.
      "SELECT n.name, ci.nr_order FROM name n, cast_info ci, title t "
      "WHERE n.id = ci.person_id AND ci.movie_id = t.id AND "
      "t.production_year = 2004 AND ci.nr_order < 3 "
      "ORDER BY ci.nr_order LIMIT 50",
      // 13: six-way join.
      "SELECT t.title FROM title t, movie_companies mc, company_name cn, "
      "movie_keyword mk, keyword k, kind_type kt WHERE "
      "t.id = mc.movie_id AND mc.company_id = cn.id AND "
      "t.id = mk.movie_id AND mk.keyword_id = k.id AND "
      "t.kind_id = kt.id AND cn.country_code = 'cc2' AND "
      "k.keyword = 'kw2000' AND kt.kind = 'kind1'",
      // 14: person by pcode in old movies.
      "SELECT n.name, t.title FROM name n, cast_info ci, title t WHERE "
      "n.id = ci.person_id AND ci.movie_id = t.id AND "
      "n.name_pcode LIKE 'pc1%' AND t.production_year < 1940",
      // 15: info types of a company's movies, grouped.
      "SELECT it.info, COUNT(*) FROM info_type it, movie_info mi, "
      "title t, movie_companies mc WHERE it.id = mi.info_type_id AND "
      "mi.movie_id = t.id AND t.id = mc.movie_id AND "
      "mc.company_id = 77 GROUP BY it.info",
      // 16: year histogram for a keyword.
      "SELECT t.production_year, COUNT(*) FROM title t, movie_keyword mk "
      "WHERE t.id = mk.movie_id AND mk.keyword_id = 42 "
      "GROUP BY t.production_year ORDER BY t.production_year",
      // 17: double-fact join (movie_info x cast_info).
      "SELECT t.title FROM title t, movie_info mi, cast_info ci WHERE "
      "t.id = mi.movie_id AND t.id = ci.movie_id AND "
      "mi.info_type_id = 16 AND ci.role_id = 2 AND "
      "t.production_year BETWEEN 2000 AND 2010",
      // 18: selective point lookups joined.
      "SELECT t.title, n.name FROM title t, cast_info ci, name n WHERE "
      "t.id = ci.movie_id AND ci.person_id = n.id AND t.id = 999",
      // 19: companies and keywords of one year.
      "SELECT cn.name, k.keyword FROM company_name cn, "
      "movie_companies mc, title t, movie_keyword mk, keyword k WHERE "
      "cn.id = mc.company_id AND mc.movie_id = t.id AND "
      "t.id = mk.movie_id AND mk.keyword_id = k.id AND "
      "t.production_year = 1999 AND mc.company_type_id = 2",
      // 20: actors ordered by name for a kind.
      "SELECT n.name FROM name n, cast_info ci, title t, kind_type kt "
      "WHERE n.id = ci.person_id AND ci.movie_id = t.id AND "
      "t.kind_id = kt.id AND kt.kind = 'kind6' ORDER BY n.name LIMIT 100",
  };
  Workload w;
  for (const char* q : kQueries) {
    AIM_RETURN_NOT_OK(w.Add(q, 1.0));
  }
  return w;
}

}  // namespace aim::workload
