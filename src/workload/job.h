#ifndef AIM_WORKLOAD_JOB_H_
#define AIM_WORKLOAD_JOB_H_

#include "storage/database.h"
#include "workload/workload.h"

namespace aim::workload {

/// Options for the Join Order Benchmark substrate.
struct JobOptions {
  /// Row-count scale relative to the (already reduced) base sizes.
  double scale = 1.0;
  /// Statistics multiplier (JOB runs on full IMDB; we materialize less
  /// and scale the statistics the same way TPC-H does).
  double stats_scale = 50.0;
  uint64_t seed = 4321;
};

/// \brief Builds an IMDB-flavoured schema (title, cast_info, name,
/// movie_companies, company_name, movie_info, movie_keyword, keyword,
/// info_type, kind_type, company_type, role_type) with synthetic data.
Status BuildJob(storage::Database* db, const JobOptions& options);

/// \brief Join-heavy query templates in the spirit of the Join Order
/// Benchmark: 4–7 way joins over the IMDB schema with low-selectivity
/// dimension filters. Weights 1.0.
Result<Workload> JobQueries();

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_JOB_H_
