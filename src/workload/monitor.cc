#include "workload/monitor.h"

#include "sql/normalizer.h"

namespace aim::workload {

WorkloadMonitor& WorkloadMonitor::operator=(const WorkloadMonitor& other) {
  if (this == &other) return *this;
  // std::scoped_lock acquires both mutexes deadlock-free regardless of
  // which thread copies which way.
  std::scoped_lock lock(mu_, other.mu_);
  stats_ = other.stats_;
  return *this;
}

void WorkloadMonitor::Record(const sql::Statement& stmt,
                             const executor::ExecutionMetrics& metrics) {
  RecordKeyed(sql::NormalizedFingerprint(stmt), sql::NormalizedSql(stmt),
              metrics);
}

void WorkloadMonitor::RecordKeyed(
    uint64_t fingerprint, const std::string& normalized_sql,
    const executor::ExecutionMetrics& metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryStats& s = stats_[fingerprint];
  if (s.executions == 0) {
    s.fingerprint = fingerprint;
    s.normalized_sql = normalized_sql;
  }
  ++s.executions;
  s.total_cpu_seconds += metrics.cpu_seconds;
  s.rows_examined += metrics.rows_examined;
  s.rows_sent += metrics.rows_sent;
  s.sum_sent_to_read += metrics.SentToReadRatio();
}

void WorkloadMonitor::MergeFrom(const WorkloadMonitor& other) {
  if (this == &other) return;
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [fp, s] : other.stats_) {
    QueryStats& mine = stats_[fp];
    if (mine.executions == 0) {
      mine.fingerprint = fp;
      mine.normalized_sql = s.normalized_sql;
    }
    mine.executions += s.executions;
    mine.total_cpu_seconds += s.total_cpu_seconds;
    mine.rows_examined += s.rows_examined;
    mine.rows_sent += s.rows_sent;
    mine.sum_sent_to_read += s.sum_sent_to_read;
  }
}

std::vector<QueryStats> WorkloadMonitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryStats> out;
  out.reserve(stats_.size());
  for (const auto& [_, s] : stats_) out.push_back(s);
  return out;
}

const QueryStats* WorkloadMonitor::Find(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(fingerprint);
  return it == stats_.end() ? nullptr : &it->second;
}

void WorkloadMonitor::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

}  // namespace aim::workload
