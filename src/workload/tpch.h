#ifndef AIM_WORKLOAD_TPCH_H_
#define AIM_WORKLOAD_TPCH_H_

#include "common/rng.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace aim::workload {

/// Options for building the TPC-H substrate.
struct TpchOptions {
  /// Scale factor actually materialized (rows in memory). 0.01 ~ 60k
  /// lineitem rows.
  double materialized_sf = 0.01;
  /// Scale factor the *statistics* report (Fig. 4/5 run estimate-only at
  /// SF 10; estimates depend on statistics, not materialized volume).
  double stats_sf = 10.0;
  uint64_t seed = 1234;
};

/// \brief Builds the 8-table TPC-H schema, loads synthetic data at
/// `materialized_sf`, analyzes it, then scales the statistics to
/// `stats_sf` (row counts and key NDVs multiplied; low-cardinality
/// attribute NDVs kept).
///
/// Dates are day numbers since 1992-01-01 (0..2556).
Status BuildTpch(storage::Database* db, const TpchOptions& options);

/// \brief The 22 TPC-H query templates, adapted to the supported SQL
/// subset (subqueries flattened to the join/filter/group/order structure
/// that drives index selection; arithmetic select expressions reduced to
/// their source columns). Weights are 1.0 (the benchmark runs each query
/// once).
Result<Workload> TpchQueries();

/// A single TPC-H query template (1-based id), for per-query experiments.
Result<Query> TpchQuery(int number);

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_TPCH_H_
