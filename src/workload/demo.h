#ifndef AIM_WORKLOAD_DEMO_H_
#define AIM_WORKLOAD_DEMO_H_

#include "storage/database.h"

namespace aim::workload {

/// \brief Builds the demo table used by examples and tests:
///   users(id PK, org_id, status, score, created_at, email, payload)
/// org_id ndv 100, status ndv 5, score ndv 1000 (zipf), created_at and
/// email quasi-unique.
storage::Database MakeUsersDemoDb(uint64_t rows = 2000, uint64_t seed = 7);

/// users + orders(id PK, user_id, status, total, day) for join demos.
storage::Database MakeOrdersDemoDb(uint64_t users = 1000,
                                   uint64_t orders = 5000,
                                   uint64_t seed = 9);

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_DEMO_H_
