#ifndef AIM_WORKLOAD_COMPRESSION_H_
#define AIM_WORKLOAD_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "workload/monitor.h"
#include "workload/workload.h"

namespace aim::workload {

/// Knobs for workload compression (the CoPhy-style pre-pass: tune on
/// weighted cluster representatives instead of every raw statement).
struct WorkloadCompressionOptions {
  /// Master switch, consumed by AimOptions / the continuous tuner. The
  /// compressor itself always compresses when invoked.
  bool enabled = false;
  /// Additionally merge *different* templates whose structural signature
  /// matches exactly — same tables, referenced columns, sargable-predicate
  /// shape, join edges, group/order shape (e.g. permuted conjuncts or
  /// permuted select lists). Signature clustering is a strict coarsening
  /// of template clustering: literals are excluded from the signature just
  /// as they are from the normalized template.
  bool merge_equivalent_templates = true;
};

/// \brief One cluster of the compressed workload: which statements were
/// folded together and the frequency/cost roll-up that flows into
/// selection and ranking.
struct WorkloadCluster {
  /// The cluster key: the structural signature when template merging is on
  /// and analysis succeeded, otherwise the normalized-template
  /// fingerprint.
  uint64_t fingerprint = 0;
  /// Normalized-template fingerprint of the representative.
  uint64_t template_fingerprint = 0;
  /// Index of the representative query in `CompressedWorkload::workload`.
  size_t representative = 0;
  /// Raw statements folded in (Σ input multiplicities).
  uint64_t members = 0;
  /// Σ member weights (bootstrap-mode frequency).
  double weight = 0.0;
  /// Σ over folded statement entries of their template's observed
  /// executions (0 without a monitor) — the monitor-mode per-cluster
  /// frequency that rolls up into ranking.
  uint64_t executions = 0;
  /// Distinct normalized templates folded into this cluster (> 1 only via
  /// `merge_equivalent_templates`).
  std::vector<uint64_t> template_fingerprints;
};

struct CompressionStats {
  /// Raw statements in (Σ input multiplicities) and entries in.
  uint64_t statements_in = 0;
  size_t entries_in = 0;
  size_t clusters = 0;
  size_t dml_clusters = 0;

  double ratio() const {
    return clusters == 0 ? 1.0
                         : static_cast<double>(statements_in) /
                               static_cast<double>(clusters);
  }
};

/// \brief The compressed workload: one representative query per cluster
/// (weight = Σ member weights, multiplicity = member count), plus the
/// cluster metadata, parallel to `workload.queries`.
struct CompressedWorkload {
  Workload workload;
  std::vector<WorkloadCluster> clusters;
  CompressionStats stats;
};

/// \brief Clusters a workload's statements into templates (via the
/// canonical normalized form) and optionally merges structurally identical
/// templates, emitting one weighted representative per cluster.
///
/// Compression is idempotent: compressing an already-compressed workload
/// reproduces the same clusters, members, and weights. The representative
/// is the cluster's first statement in workload order, which keeps the
/// compressed candidate-generation sequence aligned with the uncompressed
/// (deduplicated) one.
class WorkloadCompressor {
 public:
  explicit WorkloadCompressor(WorkloadCompressionOptions options = {})
      : options_(options) {}

  /// `monitor` (optional) feeds per-cluster execution roll-ups; `catalog`
  /// (optional) enables structural-signature merging — without it,
  /// clustering falls back to pure template fingerprints.
  CompressedWorkload Compress(const Workload& workload,
                              const WorkloadMonitor* monitor,
                              const catalog::Catalog* catalog) const;

  /// The structural table/predicate signature: tables, referenced
  /// columns, sargable-predicate shape (column, kind, op — literals
  /// excluded), join edges, group/order shape, LIMIT, and DML kind.
  /// Returns 0 when the statement cannot be analyzed against `catalog`.
  static uint64_t StructuralSignature(const sql::Statement& stmt,
                                      const catalog::Catalog& catalog);

 private:
  WorkloadCompressionOptions options_;
};

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_COMPRESSION_H_
