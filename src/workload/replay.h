#ifndef AIM_WORKLOAD_REPLAY_H_
#define AIM_WORKLOAD_REPLAY_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "executor/executor.h"
#include "workload/monitor.h"
#include "workload/workload.h"

namespace aim::workload {

/// One tick of a replayed time series (one point on the Fig. 3 graphs).
struct ReplayTick {
  int tick = 0;
  /// CPU utilization in percent of the modeled machine capacity.
  double cpu_utilization_pct = 0.0;
  /// Queries served this tick (throughput).
  double throughput_qps = 0.0;
  /// Average CPU seconds per executed query.
  double avg_cpu_per_query = 0.0;
};

/// \brief Replays a weighted workload against a database tick by tick,
/// modelling a machine with fixed CPU capacity.
///
/// Each tick offers `offered_qps` weighted query executions. The tick's
/// CPU utilization is (sum of query CPU seconds) / capacity; throughput
/// saturates when utilization would exceed 100% (queries queue and are
/// dropped, as on a saturated production host). Between ticks the caller
/// may mutate the database (drop/create indexes) via the `on_tick` hook —
/// exactly how the Fig. 3 / Fig. 6 experiments stage their interventions.
class ReplayDriver {
 public:
  struct Options {
    double cpu_capacity_seconds_per_tick = 1.0;
    double offered_qps = 200.0;
    uint64_t seed = 7;
  };

  ReplayDriver(storage::Database* db, optimizer::CostModel cm,
               Options options)
      : db_(db), cm_(cm), options_(options), rng_(options.seed) {}

  /// Runs `ticks` ticks; `on_tick(tick)` runs before each tick's load.
  /// Statistics accumulate into `monitor()` across the whole replay.
  std::vector<ReplayTick> Run(
      const Workload& workload, int ticks,
      const std::function<void(int)>& on_tick = nullptr);

  WorkloadMonitor& monitor() { return monitor_; }

 private:
  storage::Database* db_;
  optimizer::CostModel cm_;
  Options options_;
  Rng rng_;
  WorkloadMonitor monitor_;
};

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_REPLAY_H_
