#ifndef AIM_WORKLOAD_TENANTS_H_
#define AIM_WORKLOAD_TENANTS_H_

#include <string>
#include <vector>

#include "storage/database.h"
#include "workload/workload.h"

namespace aim::workload {

/// Knobs for the synthetic multi-tenant fleet generator.
struct TenantFleetOptions {
  /// Total tenant databases to generate.
  int tenants = 16;
  /// Distinct schema families. Tenants are dealt round-robin across
  /// families; every tenant of one family shares a bit-identical database
  /// (schema, rows, statistics — hence the same SchemaStatsFingerprint),
  /// which is what lets the fleet's schema-keyed what-if cache store
  /// warm-start them off each other. Different families have genuinely
  /// different schemas: table/column names, widths, cardinalities.
  int families = 4;
  uint64_t seed = 42;
  /// Multiplier on per-table row counts (1.0 keeps tenants small enough
  /// that a 100+-tenant fleet ticks in seconds).
  double scale = 1.0;
  /// Statements per tenant workload. Drawn from the family's template
  /// pool with per-tenant literals from a small domain, so same-family
  /// tenants overlap on many exact statements (the cross-tenant cache
  /// hit surface) while still differing tenant to tenant.
  int queries_per_tenant = 10;
};

/// One generated tenant: an owned database plus its workload.
struct GeneratedTenant {
  std::string name;
  int family = 0;
  storage::Database db;
  Workload workload;
};

/// Deterministically generates a heterogeneous tenant fleet — the
/// many-databases-distinct-schemas shape of the paper's production
/// deployment (Sec. VII), as opposed to the homogeneous shards of
/// core::ShardedIndexManager. Same (options) ⇒ bit-identical fleet.
Result<std::vector<GeneratedTenant>> GenerateTenantFleet(
    const TenantFleetOptions& options);

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_TENANTS_H_
