#include "workload/tpch.h"

#include <cmath>

#include "storage/data_generator.h"

namespace aim::workload {

namespace {

using catalog::ColumnDef;
using catalog::ColumnType;
using catalog::TableDef;
using storage::ColumnSpec;
using storage::Distribution;

ColumnDef Col(const char* name, ColumnType type, uint32_t width,
              bool nullable = false) {
  ColumnDef c;
  c.name = name;
  c.type = type;
  c.avg_width = width;
  c.nullable = nullable;
  return c;
}

constexpr int64_t kDays = 2557;  // 1992-01-01 .. 1998-12-31

struct TableBuild {
  TableDef def;
  std::vector<ColumnSpec> specs;
  uint64_t rows = 0;
};

/// Scales analyzed statistics from the materialized SF to the reported
/// SF: row counts always scale; NDVs (and key maxima) scale only for
/// quasi-unique columns, matching how TPC-H cardinalities behave.
void ScaleStats(storage::Database* db, double factor) {
  if (factor <= 1.0) return;
  catalog::Catalog& cat = db->catalog();
  for (catalog::TableId t = 0; t < cat.table_count(); ++t) {
    catalog::TableDef* def = cat.mutable_table(t);
    const uint64_t old_rows = def->stats.row_count;
    def->stats.row_count =
        static_cast<uint64_t>(old_rows * factor);
    for (auto& col : def->stats.columns) {
      if (old_rows == 0 ||
          col.ndv < static_cast<uint64_t>(0.5 * old_rows)) {
        continue;  // low-cardinality attribute: unchanged by scale
      }
      // Quasi-unique column: cardinality grows with scale.
      const double span = static_cast<double>(col.max) -
                          static_cast<double>(col.min) + 1.0;
      col.ndv = static_cast<uint64_t>(col.ndv * factor);
      if (span <= 2.0 * static_cast<double>(old_rows)) {
        // Dense surrogate key (domain ~ [0, rows)): the value domain
        // grows with the table.
        col.max = col.min + static_cast<int64_t>(span * factor);
        for (auto& bound : col.histogram) {
          bound = col.min + static_cast<int64_t>(
                                (bound - col.min) * factor);
        }
      } else {
        // Value column (prices, dates): the domain is fixed; more rows
        // just fill it in. Literal range predicates must keep meaning.
        col.ndv = std::min(col.ndv, static_cast<uint64_t>(span));
      }
    }
  }
}

}  // namespace

Status BuildTpch(storage::Database* db, const TpchOptions& options) {
  Rng rng(options.seed);
  const double sf = options.materialized_sf;
  auto n = [&](double base) {
    return static_cast<uint64_t>(std::max(1.0, base * sf));
  };

  std::vector<TableBuild> tables;

  // region(r_regionkey PK, r_name)
  {
    TableBuild t;
    t.def.name = "region";
    t.def.columns = {Col("r_regionkey", ColumnType::kInt64, 4),
                     Col("r_name", ColumnType::kString, 12)};
    t.def.primary_key = {0};
    t.specs = {ColumnSpec{}, ColumnSpec{.ndv = 5, .string_prefix = "REGION"}};
    t.rows = 5;
    tables.push_back(std::move(t));
  }
  // nation(n_nationkey PK, n_name, n_regionkey)
  {
    TableBuild t;
    t.def.name = "nation";
    t.def.columns = {Col("n_nationkey", ColumnType::kInt64, 4),
                     Col("n_name", ColumnType::kString, 12),
                     Col("n_regionkey", ColumnType::kInt64, 4)};
    t.def.primary_key = {0};
    t.specs = {ColumnSpec{},
               ColumnSpec{.ndv = 25, .string_prefix = "NATION"},
               ColumnSpec{.ndv = 5}};
    t.rows = 25;
    tables.push_back(std::move(t));
  }
  // supplier
  {
    TableBuild t;
    t.def.name = "supplier";
    t.def.columns = {Col("s_suppkey", ColumnType::kInt64, 4),
                     Col("s_name", ColumnType::kString, 18),
                     Col("s_address", ColumnType::kString, 24),
                     Col("s_nationkey", ColumnType::kInt64, 4),
                     Col("s_phone", ColumnType::kString, 15),
                     Col("s_acctbal", ColumnType::kDouble, 8),
                     Col("s_comment", ColumnType::kString, 60)};
    t.def.primary_key = {0};
    t.specs = {ColumnSpec{},
               ColumnSpec{.ndv = 1000000, .string_prefix = "Supplier#"},
               ColumnSpec{.ndv = 1000000, .string_prefix = "addr"},
               ColumnSpec{.ndv = 25},
               ColumnSpec{.ndv = 1000000, .string_prefix = "phone"},
               ColumnSpec{.ndv = 11000},
               ColumnSpec{.ndv = 1000000, .string_prefix = "c"}};
    t.rows = n(10000);
    tables.push_back(std::move(t));
  }
  // customer
  {
    TableBuild t;
    t.def.name = "customer";
    t.def.columns = {Col("c_custkey", ColumnType::kInt64, 4),
                     Col("c_name", ColumnType::kString, 18),
                     Col("c_address", ColumnType::kString, 24),
                     Col("c_nationkey", ColumnType::kInt64, 4),
                     Col("c_phone", ColumnType::kString, 15),
                     Col("c_acctbal", ColumnType::kDouble, 8),
                     Col("c_mktsegment", ColumnType::kString, 10),
                     Col("c_comment", ColumnType::kString, 70)};
    t.def.primary_key = {0};
    t.specs = {ColumnSpec{},
               ColumnSpec{.ndv = 10000000, .string_prefix = "Customer#"},
               ColumnSpec{.ndv = 10000000, .string_prefix = "addr"},
               ColumnSpec{.ndv = 25},
               ColumnSpec{.ndv = 10000000, .string_prefix = "phone"},
               ColumnSpec{.ndv = 11000},
               ColumnSpec{.ndv = 5, .string_prefix = "SEGMENT"},
               ColumnSpec{.ndv = 10000000, .string_prefix = "c"}};
    t.rows = n(150000);
    tables.push_back(std::move(t));
  }
  // part
  {
    TableBuild t;
    t.def.name = "part";
    t.def.columns = {Col("p_partkey", ColumnType::kInt64, 4),
                     Col("p_name", ColumnType::kString, 32),
                     Col("p_mfgr", ColumnType::kString, 14),
                     Col("p_brand", ColumnType::kString, 10),
                     Col("p_type", ColumnType::kString, 20),
                     Col("p_size", ColumnType::kInt64, 4),
                     Col("p_container", ColumnType::kString, 10),
                     Col("p_retailprice", ColumnType::kDouble, 8)};
    t.def.primary_key = {0};
    t.specs = {ColumnSpec{},
               ColumnSpec{.ndv = 2000000, .string_prefix = "part"},
               ColumnSpec{.ndv = 5, .string_prefix = "Manufacturer#"},
               ColumnSpec{.ndv = 25, .string_prefix = "Brand#"},
               ColumnSpec{.ndv = 150, .string_prefix = "TYPE"},
               ColumnSpec{.ndv = 50, .base = 1},
               ColumnSpec{.ndv = 40, .string_prefix = "CONTAINER"},
               ColumnSpec{.ndv = 20000}};
    t.rows = n(200000);
    tables.push_back(std::move(t));
  }
  // partsupp
  {
    TableBuild t;
    t.def.name = "partsupp";
    t.def.columns = {Col("ps_partkey", ColumnType::kInt64, 4),
                     Col("ps_suppkey", ColumnType::kInt64, 4),
                     Col("ps_availqty", ColumnType::kInt64, 4),
                     Col("ps_supplycost", ColumnType::kDouble, 8)};
    t.def.primary_key = {0, 1};
    t.specs = {ColumnSpec{.ndv = n(200000)},
               ColumnSpec{.ndv = n(10000)},
               ColumnSpec{.ndv = 10000, .base = 1},
               ColumnSpec{.ndv = 100000}};
    t.rows = n(800000);
    tables.push_back(std::move(t));
  }
  // orders
  {
    TableBuild t;
    t.def.name = "orders";
    t.def.columns = {Col("o_orderkey", ColumnType::kInt64, 4),
                     Col("o_custkey", ColumnType::kInt64, 4),
                     Col("o_orderstatus", ColumnType::kString, 1),
                     Col("o_totalprice", ColumnType::kDouble, 8),
                     Col("o_orderdate", ColumnType::kDate, 4),
                     Col("o_orderpriority", ColumnType::kString, 12),
                     Col("o_clerk", ColumnType::kString, 15),
                     Col("o_shippriority", ColumnType::kInt64, 4)};
    t.def.primary_key = {0};
    t.specs = {ColumnSpec{},
               ColumnSpec{.ndv = n(150000)},
               ColumnSpec{.ndv = 3, .string_prefix = "S"},
               ColumnSpec{.ndv = 300000},
               ColumnSpec{.ndv = static_cast<uint64_t>(kDays)},
               ColumnSpec{.ndv = 5, .string_prefix = "PRIORITY"},
               ColumnSpec{.ndv = 1000, .string_prefix = "Clerk#"},
               ColumnSpec{.ndv = 1}};
    t.rows = n(1500000);
    tables.push_back(std::move(t));
  }
  // lineitem
  {
    TableBuild t;
    t.def.name = "lineitem";
    t.def.columns = {Col("l_orderkey", ColumnType::kInt64, 4),
                     Col("l_linenumber", ColumnType::kInt64, 4),
                     Col("l_partkey", ColumnType::kInt64, 4),
                     Col("l_suppkey", ColumnType::kInt64, 4),
                     Col("l_quantity", ColumnType::kInt64, 4),
                     Col("l_extendedprice", ColumnType::kDouble, 8),
                     Col("l_discount", ColumnType::kDouble, 8),
                     Col("l_tax", ColumnType::kDouble, 8),
                     Col("l_returnflag", ColumnType::kString, 1),
                     Col("l_linestatus", ColumnType::kString, 1),
                     Col("l_shipdate", ColumnType::kDate, 4),
                     Col("l_commitdate", ColumnType::kDate, 4),
                     Col("l_receiptdate", ColumnType::kDate, 4),
                     Col("l_shipinstruct", ColumnType::kString, 12),
                     Col("l_shipmode", ColumnType::kString, 10)};
    t.def.primary_key = {0, 1};
    t.specs = {ColumnSpec{.ndv = n(1500000)},
               ColumnSpec{.ndv = 7, .base = 1},
               ColumnSpec{.ndv = n(200000)},
               ColumnSpec{.ndv = n(10000)},
               ColumnSpec{.ndv = 50, .base = 1},
               ColumnSpec{.ndv = 100000},
               ColumnSpec{.ndv = 11},
               ColumnSpec{.ndv = 9},
               ColumnSpec{.ndv = 3, .string_prefix = "F"},
               ColumnSpec{.ndv = 2, .string_prefix = "L"},
               ColumnSpec{.ndv = static_cast<uint64_t>(kDays)},
               ColumnSpec{.ndv = static_cast<uint64_t>(kDays)},
               ColumnSpec{.ndv = static_cast<uint64_t>(kDays)},
               ColumnSpec{.ndv = 4, .string_prefix = "INSTRUCT"},
               ColumnSpec{.ndv = 7, .string_prefix = "MODE"}};
    t.rows = n(6000000);
    tables.push_back(std::move(t));
  }

  for (TableBuild& tb : tables) {
    const catalog::TableId id = db->CreateTable(tb.def);
    AIM_RETURN_NOT_OK(
        storage::GenerateRows(db, id, tb.rows, tb.specs, &rng));
  }
  db->AnalyzeAll();
  const double factor =
      options.stats_sf / std::max(options.materialized_sf, 1e-9);
  ScaleStats(db, factor);

  if (factor > 1.0) {
    // Foreign-key columns: the tiny materialization only draws from a
    // tiny key domain, so the analyzer under-counts their NDV. Restore
    // the TPC-H cardinalities at the reported scale factor.
    auto fix_fk = [&](const char* table, const char* column,
                      double ndv_at_sf1) {
      Result<catalog::TableId> t = db->catalog().FindTable(table);
      if (!t.ok()) return;
      catalog::TableDef* def = db->catalog().mutable_table(t.ValueOrDie());
      auto c = def->FindColumn(column);
      if (!c.has_value()) return;
      catalog::ColumnStats& stats = def->stats.columns[*c];
      stats.ndv = static_cast<uint64_t>(
          std::max(1.0, ndv_at_sf1 * options.stats_sf));
      stats.min = 0;
      stats.max = static_cast<int64_t>(stats.ndv) - 1;
      stats.histogram.clear();  // uniform over the key domain
    };
    fix_fk("orders", "o_custkey", 150000);
    fix_fk("partsupp", "ps_partkey", 200000);
    fix_fk("partsupp", "ps_suppkey", 10000);
    fix_fk("lineitem", "l_orderkey", 1500000);
    fix_fk("lineitem", "l_partkey", 200000);
    fix_fk("lineitem", "l_suppkey", 10000);
  }
  return Status::OK();
}

Result<Query> TpchQuery(int number) {
  // Templates adapted to the supported subset: subqueries flattened to
  // their join/filter skeleton; arithmetic select expressions reduced to
  // source columns. Date literals are day numbers since 1992-01-01.
  static const char* kQueries[22] = {
      // Q1: pricing summary report.
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity), "
      "SUM(l_extendedprice), AVG(l_discount), COUNT(*) FROM lineitem "
      "WHERE l_shipdate <= 2450 GROUP BY l_returnflag, l_linestatus",
      // Q2: minimum cost supplier (flattened).
      "SELECT s_acctbal, s_name, n_name, p_partkey FROM part, supplier, "
      "partsupp, nation, region WHERE p_partkey = ps_partkey AND "
      "s_suppkey = ps_suppkey AND p_size = 15 AND p_type = 'TYPE37' AND "
      "s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND "
      "r_name = 'REGION3' ORDER BY s_acctbal DESC",
      // Q3: shipping priority.
      "SELECT l_orderkey, o_orderdate, o_shippriority, "
      "SUM(l_extendedprice) FROM customer, orders, lineitem WHERE "
      "c_mktsegment = 'SEGMENT1' AND c_custkey = o_custkey AND "
      "l_orderkey = o_orderkey AND o_orderdate < 730 AND l_shipdate > 730 "
      "GROUP BY l_orderkey, o_orderdate, o_shippriority",
      // Q4: order priority checking (semi-join flattened).
      "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem WHERE "
      "l_orderkey = o_orderkey AND o_orderdate >= 730 AND "
      "o_orderdate < 820 AND l_commitdate < l_receiptdate "
      "GROUP BY o_orderpriority ORDER BY o_orderpriority",
      // Q5: local supplier volume.
      "SELECT n_name, SUM(l_extendedprice) FROM customer, orders, "
      "lineitem, supplier, nation, region WHERE c_custkey = o_custkey "
      "AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey AND "
      "c_nationkey = s_nationkey AND s_nationkey = n_nationkey AND "
      "n_regionkey = r_regionkey AND r_name = 'REGION2' AND "
      "o_orderdate >= 730 AND o_orderdate < 1095 GROUP BY n_name",
      // Q6: forecasting revenue change.
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate >= 730 "
      "AND l_shipdate < 1095 AND l_discount BETWEEN 5 AND 7 AND "
      "l_quantity < 24",
      // Q7: volume shipping (two-nation join).
      "SELECT n_name, SUM(l_extendedprice) FROM supplier, lineitem, "
      "orders, customer, nation WHERE s_suppkey = l_suppkey AND "
      "o_orderkey = l_orderkey AND c_custkey = o_custkey AND "
      "s_nationkey = n_nationkey AND l_shipdate BETWEEN 730 AND 1460 "
      "AND n_name IN ('NATION7', 'NATION12') GROUP BY n_name",
      // Q8: national market share.
      "SELECT o_orderdate, SUM(l_extendedprice) FROM part, supplier, "
      "lineitem, orders, customer, nation, region WHERE "
      "p_partkey = l_partkey AND s_suppkey = l_suppkey AND "
      "l_orderkey = o_orderkey AND o_custkey = c_custkey AND "
      "c_nationkey = n_nationkey AND n_regionkey = r_regionkey AND "
      "r_name = 'REGION1' AND o_orderdate BETWEEN 1095 AND 1825 AND "
      "p_type = 'TYPE88' GROUP BY o_orderdate",
      // Q9: product type profit measure.
      "SELECT n_name, SUM(l_extendedprice) FROM part, supplier, lineitem, "
      "partsupp, orders, nation WHERE s_suppkey = l_suppkey AND "
      "ps_suppkey = l_suppkey AND ps_partkey = l_partkey AND "
      "p_partkey = l_partkey AND o_orderkey = l_orderkey AND "
      "s_nationkey = n_nationkey AND p_name LIKE 'part1%' GROUP BY n_name",
      // Q10: returned item reporting.
      "SELECT c_custkey, c_name, c_acctbal, n_name, SUM(l_extendedprice) "
      "FROM customer, orders, lineitem, nation WHERE "
      "c_custkey = o_custkey AND l_orderkey = o_orderkey AND "
      "o_orderdate >= 730 AND o_orderdate < 820 AND l_returnflag = 'F1' "
      "AND c_nationkey = n_nationkey GROUP BY c_custkey, c_name, "
      "c_acctbal, n_name",
      // Q11: important stock identification (flattened).
      "SELECT ps_partkey, SUM(ps_supplycost) FROM partsupp, supplier, "
      "nation WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey "
      "AND n_name = 'NATION9' GROUP BY ps_partkey",
      // Q12: shipping modes and order priority.
      "SELECT l_shipmode, COUNT(*) FROM orders, lineitem WHERE "
      "o_orderkey = l_orderkey AND l_shipmode IN ('MODE1', 'MODE3') AND "
      "l_commitdate < l_receiptdate AND l_receiptdate >= 730 AND "
      "l_receiptdate < 1095 GROUP BY l_shipmode ORDER BY l_shipmode",
      // Q13: customer distribution (outer join approximated as inner).
      "SELECT c_custkey, COUNT(*) FROM customer, orders WHERE "
      "c_custkey = o_custkey AND o_clerk LIKE 'Clerk#1%' "
      "GROUP BY c_custkey",
      // Q14: promotion effect.
      "SELECT SUM(l_extendedprice) FROM lineitem, part WHERE "
      "l_partkey = p_partkey AND l_shipdate >= 820 AND l_shipdate < 850 "
      "AND p_type LIKE 'TYPE1%'",
      // Q15: top supplier (flattened view).
      "SELECT s_suppkey, s_name, SUM(l_extendedprice) FROM supplier, "
      "lineitem WHERE s_suppkey = l_suppkey AND l_shipdate >= 1095 AND "
      "l_shipdate < 1185 GROUP BY s_suppkey, s_name",
      // Q16: parts/supplier relationship.
      "SELECT p_brand, p_type, p_size, COUNT(*) FROM partsupp, part "
      "WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#11' AND "
      "p_size IN (1, 9, 14, 23, 36, 45, 49) GROUP BY p_brand, p_type, "
      "p_size",
      // Q17: small-quantity-order revenue.
      "SELECT AVG(l_extendedprice) FROM lineitem, part WHERE "
      "p_partkey = l_partkey AND p_brand = 'Brand#13' AND "
      "p_container = 'CONTAINER7' AND l_quantity < 5",
      // Q18: large volume customer.
      "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, "
      "SUM(l_quantity) FROM customer, orders, lineitem WHERE "
      "o_totalprice > 285000 AND c_custkey = o_custkey AND "
      "o_orderkey = l_orderkey GROUP BY c_name, c_custkey, o_orderkey, "
      "o_orderdate, o_totalprice",
      // Q19: discounted revenue (OR-of-ANDs on part filters).
      "SELECT SUM(l_extendedprice) FROM lineitem, part WHERE "
      "p_partkey = l_partkey AND ((p_brand = 'Brand#3' AND "
      "l_quantity BETWEEN 5 AND 15 AND p_size BETWEEN 1 AND 5) OR "
      "(p_brand = 'Brand#14' AND l_quantity BETWEEN 15 AND 25 AND "
      "p_size BETWEEN 1 AND 10))",
      // Q20: potential part promotion (flattened).
      "SELECT s_name, s_address FROM supplier, nation, partsupp, part "
      "WHERE s_suppkey = ps_suppkey AND ps_partkey = p_partkey AND "
      "p_name LIKE 'part4%' AND s_nationkey = n_nationkey AND "
      "n_name = 'NATION3' ORDER BY s_name",
      // Q21: suppliers who kept orders waiting (flattened).
      "SELECT s_name, COUNT(*) FROM supplier, lineitem, orders, nation "
      "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND "
      "o_orderstatus = 'S2' AND l_receiptdate > l_commitdate AND "
      "s_nationkey = n_nationkey AND n_name = 'NATION20' "
      "GROUP BY s_name ORDER BY s_name LIMIT 100",
      // Q22: global sales opportunity (flattened anti-join).
      "SELECT c_phone, COUNT(*), SUM(c_acctbal) FROM customer WHERE "
      "c_acctbal > 7000 AND c_phone LIKE 'phone1%' GROUP BY c_phone",
  };
  if (number < 1 || number > 22) {
    return Status::InvalidArgument("TPC-H query number out of range");
  }
  return MakeQuery(kQueries[number - 1], 1.0);
}

Result<Workload> TpchQueries() {
  Workload w;
  for (int q = 1; q <= 22; ++q) {
    AIM_ASSIGN_OR_RETURN(Query query, TpchQuery(q));
    w.queries.push_back(std::move(query));
  }
  return w;
}

}  // namespace aim::workload
