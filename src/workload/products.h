#ifndef AIM_WORKLOAD_PRODUCTS_H_
#define AIM_WORKLOAD_PRODUCTS_H_

#include <string>
#include <vector>

#include "storage/database.h"
#include "workload/workload.h"

namespace aim::workload {

/// Read/write balance of a product workload (Table II "Workload Type").
enum class WorkloadMix { kWriteHeavy, kReadHeavy, kBalanced };

/// \brief Metadata describing one synthetic "product" database, mirroring
/// the per-product metadata the paper publishes in Table II.
struct ProductSpec {
  std::string name;
  int tables = 10;
  int join_queries = 20;
  WorkloadMix mix = WorkloadMix::kBalanced;
  /// Single-table read queries (the paper does not publish this; scaled
  /// from the join-query count).
  int single_table_queries = 0;  // 0 = derive from join_queries
  uint64_t rows_per_table = 2000;
  uint64_t seed = 1;
};

/// The seven products of Table II (A–G), with published table counts,
/// join-query counts, and workload types; row counts are simulator-scale.
std::vector<ProductSpec> TableIIProducts();

/// A generated product: database + workload + the synthesized "DBA"
/// index set to compare against.
struct ProductInstance {
  std::string name;
  storage::Database db;
  Workload workload;
  /// Human-plausible manual tuning: per-query best-guess indexes plus
  /// some legacy noise — the baseline of Table II / Fig. 3.
  std::vector<catalog::IndexDef> dba_indexes;
};

/// \brief Builds a product: schema (star-ish FK links between tables),
/// zipf-skewed data, a weighted workload matching the spec's mix, and a
/// DBA index set.
///
/// The DBA heuristic indexes each query's most-filtered table on its
/// first equality columns (+ one range column), skips ~10% of queries
/// (manual-tuning gaps), and adds ~10% legacy indexes no current query
/// uses — giving Jaccard similarity < 1 against an optimal selection, as
/// the paper observes.
Result<ProductInstance> BuildProduct(const ProductSpec& spec);

/// Applies a set of index definitions to a database (materialized).
Status ApplyIndexes(storage::Database* db,
                    const std::vector<catalog::IndexDef>& indexes,
                    bool created_by_automation = false);

/// Jaccard similarity of two index sets (by table + column list).
double IndexSetJaccard(const std::vector<catalog::IndexDef>& a,
                       const std::vector<catalog::IndexDef>& b);

}  // namespace aim::workload

#endif  // AIM_WORKLOAD_PRODUCTS_H_
