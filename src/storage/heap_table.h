#ifndef AIM_STORAGE_HEAP_TABLE_H_
#define AIM_STORAGE_HEAP_TABLE_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/row.h"

namespace aim::storage {

/// \brief Append-only heap of rows with tombstone deletes.
///
/// Row ids are stable (slot positions); deleted slots are tombstoned so the
/// secondary indexes' RowId references never dangle.
class HeapTable {
 public:
  /// Appends a row; returns its RowId.
  RowId Insert(Row row);

  /// Replaces the row at `rid`. Fails if the row was deleted.
  Status Update(RowId rid, Row row);

  /// Tombstones the row at `rid`.
  Status Delete(RowId rid);

  bool IsLive(RowId rid) const {
    return rid < rows_.size() && !deleted_[rid];
  }
  const Row& row(RowId rid) const { return rows_[rid]; }

  /// Number of live rows.
  uint64_t live_count() const { return live_count_; }
  /// Total slots (live + tombstoned); scan cost is proportional to this.
  uint64_t slot_count() const { return rows_.size(); }

  /// Visits every live row; the visitor returns false to stop early.
  /// Returns the number of rows visited (rows examined).
  uint64_t Scan(
      const std::function<bool(RowId, const Row&)>& visitor) const;

  /// \brief Chunked scan cursor for the batch executor: appends up to
  /// `max_rows` live rows (pointers remain valid while the table is not
  /// mutated) starting at slot `*cursor`, advancing `*cursor` past the
  /// last slot examined.
  ///
  /// Returns the number of rows appended — identical to the visited count
  /// Scan would report for these rows. The scan is exhausted when it
  /// returns less than `max_rows`.
  size_t ScanChunk(RowId* cursor, size_t max_rows,
                   std::vector<const Row*>* out) const;

 private:
  std::vector<Row> rows_;
  std::vector<bool> deleted_;
  uint64_t live_count_ = 0;
};

}  // namespace aim::storage

#endif  // AIM_STORAGE_HEAP_TABLE_H_
