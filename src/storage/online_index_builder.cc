#include "storage/online_index_builder.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aim::storage {

namespace {

/// The delta log one build shares with the DML hook. Writers append under
/// the database latch (held exclusively during DML); the builder drains
/// from its own thread, so the log carries its own small mutex. Lock
/// order is latch -> log (writers) or log alone (builder) — never
/// inverted.
struct DeltaLog {
  std::mutex mu;
  std::vector<RowId> entries;

  void Append(RowId rid) {
    std::lock_guard<std::mutex> lock(mu);
    entries.push_back(rid);
  }
  std::vector<RowId> Take() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<RowId> out;
    out.swap(entries);
    return out;
  }
  size_t Size() {
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
  }
};

/// Builder-private view of the side tree: RowId -> key currently stored,
/// which is what makes delta application idempotent (the entry can be
/// erased without knowing the historical key the DML replaced).
using SideKeys = std::unordered_map<RowId, Row>;

void SortUnique(std::vector<RowId>* batch) {
  std::sort(batch->begin(), batch->end());
  batch->erase(std::unique(batch->begin(), batch->end()), batch->end());
}

}  // namespace

Result<OnlineBuildReport> OnlineIndexBuilder::Build(
    catalog::IndexDef def, IndexSetTransaction* txn) {
  static obs::Counter* const builds =
      obs::MetricsRegistry::Global()->counter("online.builds");
  static obs::Counter* const builds_aborted =
      obs::MetricsRegistry::Global()->counter("online.builds_aborted");
  static obs::Counter* const delta_entries =
      obs::MetricsRegistry::Global()->counter("online.delta.applied");
  static obs::Histogram* const stall_hist =
      obs::MetricsRegistry::Global()->histogram("online.swap.stall_seconds");

  obs::Span build_span(obs::Tracer::Get(), "online.build");
  builds->Add();
  const auto build_start = std::chrono::steady_clock::now();
  def.hypothetical = false;
  def.id = catalog::kInvalidIndex;

  OnlineBuildReport report;
  BTreeIndex side;
  SideKeys keys;
  DeltaLog log;
  int hook_token = 0;

  // Re-derives `rid`'s side-tree entry from its current heap state.
  // Caller holds the latch (shared or exclusive); `side`/`keys` are
  // builder-private. Idempotent: applying the same RowId twice, or an
  // entry that is stale by the time it is read, converges on the live
  // state.
  const auto apply_one = [&](RowId rid) {
    const HeapTable& heap = db_->heap(def.table);
    auto it = keys.find(rid);
    if (heap.IsLive(rid)) {
      Row key = db_->MakeIndexKey(def, heap.row(rid));
      if (it != keys.end()) {
        if (it->second == key) return;  // already current
        side.Erase(it->second, rid);
        it->second = key;
      } else {
        keys.emplace(rid, key);
      }
      side.Insert(std::move(key), rid);
    } else if (it != keys.end()) {
      side.Erase(it->second, rid);
      keys.erase(it);
    }
  };

  // Applies a drained batch; each entry crosses the `online.delta.apply`
  // fault point so chaos schedules can kill (or transiently fail) the
  // build mid-catch-up and mid-tail.
  const auto apply_entries = [&](const std::vector<RowId>& batch) -> Status {
    for (RowId rid : batch) {
      AIM_FAULT_POINT("online.delta.apply");
      apply_one(rid);
    }
    return Status::OK();
  };

  // Abort path: unregister the hook under the exclusive latch (writers
  // iterate the hook list during DML) and surface the failure. The side
  // tree and delta log are locals — dropping them IS the cleanup; the
  // database was never touched.
  const auto abort = [&](Status st) -> Status {
    std::unique_lock<std::shared_mutex> lock(db_->latch());
    db_->UnregisterDmlHook(hook_token);
    builds_aborted->Add();
    return st;
  };

  // Phase 1 — arm: hook and snapshot bound under one exclusive
  // acquisition, so every row the bounded scan can miss is in the log.
  uint64_t snapshot_slots = 0;
  {
    std::unique_lock<std::shared_mutex> lock(db_->latch());
    if (def.table >= db_->catalog().table_count()) {
      return Status::InvalidArgument("online build: unknown table");
    }
    if (def.columns.empty()) {
      return Status::InvalidArgument("online build: empty key");
    }
    if (db_->catalog().FindIndex(def.table, def.columns) != nullptr) {
      return Status::AlreadyExists("online build: duplicate index on " +
                                   db_->catalog().DescribeIndex(def));
    }
    const catalog::TableId table = def.table;
    hook_token = db_->RegisterDmlHook(
        [&log, table](DmlOp, catalog::TableId t, RowId rid) {
          if (t == table) log.Append(rid);
        });
    snapshot_slots = db_->heap(def.table).slot_count();
  }

  // Phase 2 — chunked snapshot scan under a shared latch.
  {
    obs::Span snap_span(obs::Tracer::Get(), "online.snapshot");
    const uint64_t chunk = std::max<uint64_t>(1, options_.snapshot_chunk_rows);
    for (uint64_t begin = 0; begin < snapshot_slots; begin += chunk) {
      Status st;
      {
        std::shared_lock<std::shared_mutex> lock(db_->latch());
        st = AIM_FAULT_POINT_STATUS("online.snapshot.scan");
        if (st.ok()) {
          const HeapTable& heap = db_->heap(def.table);
          const uint64_t end = std::min(begin + chunk, snapshot_slots);
          for (RowId rid = begin; rid < end; ++rid) {
            if (!heap.IsLive(rid)) continue;
            Row key = db_->MakeIndexKey(def, heap.row(rid));
            keys.emplace(rid, key);
            side.Insert(std::move(key), rid);
            ++report.snapshot_rows;
          }
        }
      }
      // abort() re-acquires the latch exclusively, so the shared scan lock
      // must be gone first.
      if (!st.ok()) return abort(st);
      if (options_.after_snapshot_chunk) options_.after_snapshot_chunk(begin);
    }
    snap_span.SetAttr("rows", report.snapshot_rows);
    snap_span.SetAttr("slots", snapshot_slots);
  }

  // Phases 3+4 — catch-up rounds until the backlog fits the stall cap,
  // then the swap. A swap attempt that finds a larger tail (DML raced the
  // convergence check) releases the latch and falls back to catch-up.
  RetryPolicy retry(options_.retry);
  int rounds = 0;
  while (true) {
    {
      obs::Span catchup_span(obs::Tracer::Get(), "online.catchup");
      uint64_t round_applied = 0;
      while (log.Size() > options_.max_swap_tail) {
        if (++rounds > options_.max_catchup_rounds) {
          catchup_span.SetAttr("applied", round_applied);
          return abort(Status::Unavailable(
              "online build: delta catch-up did not converge within " +
              std::to_string(options_.max_catchup_rounds) + " rounds"));
        }
        std::vector<RowId> batch = log.Take();
        SortUnique(&batch);
        const Status st = retry.Run([&]() -> Status {
          std::shared_lock<std::shared_mutex> lock(db_->latch());
          return apply_entries(batch);
        });
        if (!st.ok()) {
          catchup_span.SetAttr("applied", round_applied);
          return abort(st);
        }
        round_applied += batch.size();
      }
      report.delta_applied += round_applied;
      catchup_span.SetAttr("applied", round_applied);
      catchup_span.SetAttr("rounds", rounds);
    }

    std::unique_lock<std::shared_mutex> lock(db_->latch());
    obs::Span swap_span(obs::Tracer::Get(), "online.swap");
    const auto stall_start = std::chrono::steady_clock::now();
    std::vector<RowId> tail = log.Take();
    SortUnique(&tail);
    if (tail.size() > options_.max_swap_tail) {
      // Too much DML slipped in between the backlog check and the
      // exclusive acquisition: apply this batch as one more catch-up
      // round rather than blowing the stall bound.
      swap_span.SetAttr("deferred_tail", tail.size());
      lock.unlock();
      if (++rounds > options_.max_catchup_rounds) {
        return abort(Status::Unavailable(
            "online build: swap tail never fit the stall cap"));
      }
      const Status st = retry.Run([&]() -> Status {
        std::shared_lock<std::shared_mutex> relock(db_->latch());
        return apply_entries(tail);
      });
      if (!st.ok()) return abort(st);
      report.delta_applied += tail.size();
      continue;
    }

    const Status st = AIM_FAULT_POINT_STATUS("online.swap");
    if (!st.ok()) {
      db_->UnregisterDmlHook(hook_token);
      builds_aborted->Add();
      return st;
    }
    const Status tail_st = apply_entries(tail);
    if (!tail_st.ok()) {
      db_->UnregisterDmlHook(hook_token);
      builds_aborted->Add();
      return tail_st;
    }
    Result<catalog::IndexId> id = db_->AdoptIndex(def, std::move(side));
    // Whatever AdoptIndex decided, the build is over: stop observing DML
    // before the latch drops (on success, normal maintenance owns the
    // index from here).
    db_->UnregisterDmlHook(hook_token);
    if (!id.ok()) {
      builds_aborted->Add();
      return id.status();
    }
    report.id = id.ValueOrDie();
    report.swap_tail_applied = tail.size();
    report.stall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      stall_start)
            .count();
    swap_span.SetAttr("tail", tail.size());
    swap_span.SetAttr("stall_seconds", report.stall_seconds);
    if (txn != nullptr) txn->RecordCreated(report.id);
    break;
  }

  report.catchup_rounds = rounds;
  report.retry_attempts = retry.attempts();
  report.retry_backoff_ms = retry.total_backoff_ms();
  report.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    build_start)
          .count();
  build_span.SetAttr("build_seconds", report.build_seconds);
  stall_hist->Observe(report.stall_seconds);
  delta_entries->Add(report.delta_applied + report.swap_tail_applied);
  build_span.SetAttr("snapshot_rows", report.snapshot_rows);
  build_span.SetAttr("delta_applied", report.delta_applied);
  build_span.SetAttr("swap_tail", report.swap_tail_applied);
  build_span.SetAttr("rounds", report.catchup_rounds);
  return report;
}

}  // namespace aim::storage
