#ifndef AIM_STORAGE_DATABASE_H_
#define AIM_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/btree_index.h"
#include "storage/heap_table.h"

namespace aim::common {
class ThreadPool;
}  // namespace aim::common

namespace aim::storage {

/// \brief Counters for one DML operation's index-maintenance work.
struct MaintenanceCost {
  uint64_t index_entries_written = 0;  // inserts + deletes across indexes
  uint64_t indexes_touched = 0;
};

/// \brief A database: catalog + heap tables + materialized secondary
/// indexes, with index maintenance on every DML.
///
/// Hypothetical ("dataless") indexes live only in the catalog — CreateIndex
/// skips materialization for them, mirroring HypoPG / what-if indexes.
class Database {
 public:
  Database() = default;
  // Deep-copyable for MyShadow cloning.
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }

  /// Registers a table and allocates its heap.
  catalog::TableId CreateTable(catalog::TableDef def);

  const HeapTable& heap(catalog::TableId table) const {
    return heaps_[table];
  }

  /// Bulk-loads rows into a table (maintaining existing indexes).
  Status LoadRows(catalog::TableId table, std::vector<Row> rows);

  /// Creates an index; materializes it by scanning the heap unless the
  /// definition is hypothetical. Returns the index id.
  Result<catalog::IndexId> CreateIndex(catalog::IndexDef def);

  /// Batch CreateIndex with the heap scans fanned over `pool` (nullptr or
  /// single-worker pool = serial). Results are slotted by input position.
  /// Three deterministic phases: catalog registration in input order (ids
  /// are identical to serial one-by-one creation), parallel B+Tree builds
  /// against the then-frozen catalog/heaps, and adoption in input order.
  /// Each definition succeeds or fails independently — a failed build
  /// (e.g. an injected `storage.build_index_entry` crash) unregisters only
  /// its own catalog entry, exactly like single CreateIndex atomicity.
  std::vector<Result<catalog::IndexId>> CreateIndexes(
      std::vector<catalog::IndexDef> defs, common::ThreadPool* pool = nullptr);

  Status DropIndex(catalog::IndexId id);

  /// The materialized B+Tree for a real index; nullptr for hypothetical or
  /// unknown ids.
  const BTreeIndex* btree(catalog::IndexId id) const;

  /// Row mutation with index maintenance. `cost` (optional) receives the
  /// maintenance counters.
  Result<RowId> InsertRow(catalog::TableId table, Row row,
                          MaintenanceCost* cost = nullptr);
  Status UpdateRow(catalog::TableId table, RowId rid, Row row,
                   MaintenanceCost* cost = nullptr);
  Status DeleteRow(catalog::TableId table, RowId rid,
                   MaintenanceCost* cost = nullptr);

  /// Recomputes table + column statistics from the stored data
  /// (ANALYZE TABLE).
  void AnalyzeTable(catalog::TableId table, int histogram_buckets = 32);
  void AnalyzeAll(int histogram_buckets = 32);

  /// Extracts the index key for `row` under `def` (the key parts, in
  /// order).
  Row MakeIndexKey(const catalog::IndexDef& def, const Row& row) const;

 private:
  void CopyFrom(const Database& other);

  catalog::Catalog catalog_;
  std::vector<HeapTable> heaps_;                       // by TableId
  std::map<catalog::IndexId, BTreeIndex> btrees_;      // real indexes only
};

}  // namespace aim::storage

#endif  // AIM_STORAGE_DATABASE_H_
