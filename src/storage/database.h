#ifndef AIM_STORAGE_DATABASE_H_
#define AIM_STORAGE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/btree_index.h"
#include "storage/heap_table.h"

namespace aim::common {
class ThreadPool;
}  // namespace aim::common

namespace aim::storage {

/// \brief Counters for one DML operation's index-maintenance work.
struct MaintenanceCost {
  uint64_t index_entries_written = 0;  // inserts + deletes across indexes
  uint64_t indexes_touched = 0;
};

/// Kind of row mutation reported to DML hooks.
enum class DmlOp : uint8_t { kInsert, kUpdate, kDelete };

/// Observer of successful row mutations. Invoked after the heap and every
/// maintained index reflect the change, from the mutating thread (which,
/// under concurrent traffic, holds the database latch exclusively). This
/// is how the online index builder's delta log captures DML that races
/// its snapshot scan.
using DmlHook = std::function<void(DmlOp op, catalog::TableId table, RowId rid)>;

/// \brief A database: catalog + heap tables + materialized secondary
/// indexes, with index maintenance on every DML.
///
/// Hypothetical ("dataless") indexes live only in the catalog — CreateIndex
/// skips materialization for them, mirroring HypoPG / what-if indexes.
class Database {
 public:
  Database() = default;
  // Deep-copyable for MyShadow cloning.
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }

  /// Registers a table and allocates its heap.
  catalog::TableId CreateTable(catalog::TableDef def);

  const HeapTable& heap(catalog::TableId table) const {
    return heaps_[table];
  }

  /// Bulk-loads rows into a table (maintaining existing indexes).
  Status LoadRows(catalog::TableId table, std::vector<Row> rows);

  /// Creates an index; materializes it by scanning the heap unless the
  /// definition is hypothetical. Returns the index id.
  Result<catalog::IndexId> CreateIndex(catalog::IndexDef def);

  /// Batch CreateIndex with the heap scans fanned over `pool` (nullptr or
  /// single-worker pool = serial). Results are slotted by input position.
  /// Three deterministic phases: catalog registration in input order (ids
  /// are identical to serial one-by-one creation), parallel B+Tree builds
  /// against the then-frozen catalog/heaps, and adoption in input order.
  /// Each definition succeeds or fails independently — a failed build
  /// (e.g. an injected `storage.build_index_entry` crash) unregisters only
  /// its own catalog entry, exactly like single CreateIndex atomicity.
  std::vector<Result<catalog::IndexId>> CreateIndexes(
      std::vector<catalog::IndexDef> defs, common::ThreadPool* pool = nullptr);

  /// Installs an index whose B+Tree was built elsewhere (the online
  /// builder's side tree): registers the definition and adopts the tree
  /// without any heap scan. There is no failure point between catalog
  /// registration and tree adoption, so the index is either fully present
  /// (catalog entry + materialized B+Tree) or entirely absent. The caller
  /// owns synchronization (the online builder swaps under an exclusive
  /// latch() acquisition).
  Result<catalog::IndexId> AdoptIndex(catalog::IndexDef def,
                                      BTreeIndex built);

  Status DropIndex(catalog::IndexId id);

  /// The materialized B+Tree for a real index; nullptr for hypothetical or
  /// unknown ids.
  const BTreeIndex* btree(catalog::IndexId id) const;

  /// Row mutation with index maintenance. `cost` (optional) receives the
  /// maintenance counters.
  Result<RowId> InsertRow(catalog::TableId table, Row row,
                          MaintenanceCost* cost = nullptr);
  Status UpdateRow(catalog::TableId table, RowId rid, Row row,
                   MaintenanceCost* cost = nullptr);
  Status DeleteRow(catalog::TableId table, RowId rid,
                   MaintenanceCost* cost = nullptr);

  /// Recomputes table + column statistics from the stored data
  /// (ANALYZE TABLE).
  void AnalyzeTable(catalog::TableId table, int histogram_buckets = 32);
  void AnalyzeAll(int histogram_buckets = 32);

  /// Extracts the index key for `row` under `def` (the key parts, in
  /// order).
  Row MakeIndexKey(const catalog::IndexDef& def, const Row& row) const;

  /// \name Concurrent-traffic protocol
  /// Single-threaded embedders never touch these. Under concurrent OLTP
  /// traffic every mutation (DML, DDL, AnalyzeTable, copies) runs under a
  /// unique_lock of latch() and every read (executor scans, snapshot
  /// copies) under a shared_lock; the online index builder interleaves
  /// with writers by acquiring the latch in short chunks. The latch and
  /// registered hooks are identity, not state: neither is copied by the
  /// copy constructor (a clone starts unlatched with no observers).
  /// @{

  /// The traffic gate. Unusable (like any member) after a move-from.
  std::shared_mutex& latch() const { return *latch_; }

  /// Registers a DML observer; returns a token for UnregisterDmlHook.
  /// Registration and removal mutate the hook list and must hold latch()
  /// exclusively when writers are live.
  int RegisterDmlHook(DmlHook hook);
  void UnregisterDmlHook(int token);
  size_t dml_hook_count() const { return dml_hooks_.size(); }
  /// @}

 private:
  void CopyFrom(const Database& other);

  void NotifyDml(DmlOp op, catalog::TableId table, RowId rid) {
    if (dml_hooks_.empty()) return;
    for (const auto& [token, hook] : dml_hooks_) hook(op, table, rid);
  }

  catalog::Catalog catalog_;
  std::vector<HeapTable> heaps_;                       // by TableId
  std::map<catalog::IndexId, BTreeIndex> btrees_;      // real indexes only
  // Behind unique_ptr so the default move constructor keeps working
  // (std::shared_mutex is neither movable nor copyable).
  std::unique_ptr<std::shared_mutex> latch_ =
      std::make_unique<std::shared_mutex>();
  std::vector<std::pair<int, DmlHook>> dml_hooks_;
  int next_hook_token_ = 1;
};

}  // namespace aim::storage

#endif  // AIM_STORAGE_DATABASE_H_
