#include "storage/index_transaction.h"

#include <mutex>

#include "common/fault_injection.h"
#include "common/logging.h"

namespace aim::storage {

namespace {

/// unique_lock over an optional latch: no-op when the transaction was
/// constructed without one (single-threaded embedders pay nothing).
class MaybeLock {
 public:
  explicit MaybeLock(std::shared_mutex* latch) {
    if (latch != nullptr) lock_ = std::unique_lock<std::shared_mutex>(*latch);
  }

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

}  // namespace

Result<catalog::IndexId> IndexSetTransaction::CreateIndex(
    catalog::IndexDef def) {
  MaybeLock lock(latch_);
  Result<catalog::IndexId> id = db_->CreateIndex(std::move(def));
  if (id.ok()) {
    Op op;
    op.was_create = true;
    op.created_id = id.ValueOrDie();
    ops_.push_back(std::move(op));
  }
  return id;
}

void IndexSetTransaction::RecordCreated(catalog::IndexId id) {
  Op op;
  op.was_create = true;
  op.created_id = id;
  ops_.push_back(std::move(op));
}

Status IndexSetTransaction::DropIndex(catalog::IndexId id) {
  MaybeLock lock(latch_);
  const catalog::IndexDef* def = db_->catalog().index(id);
  if (def == nullptr) {
    return Status::NotFound("index transaction: unknown index id");
  }
  Op op;
  op.dropped_def = *def;  // snapshot before the drop invalidates it
  AIM_RETURN_NOT_OK(db_->DropIndex(id));
  ops_.push_back(std::move(op));
  return Status::OK();
}

Status IndexSetTransaction::Rollback() {
  if (committed_) return Status::OK();
  MaybeLock lock(latch_);
  // Recovery must not itself be failable, or atomicity is unprovable:
  // suppress injected faults for the duration.
  FaultRegistry::ScopedFaultSuppression suppress;
  Status first_error;
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    if (it->was_create) {
      Status st = db_->DropIndex(it->created_id);
      if (!st.ok() && st.code() != Status::Code::kNotFound &&
          first_error.ok()) {
        first_error = st;
      }
    } else {
      catalog::IndexDef def = it->dropped_def;
      def.id = catalog::kInvalidIndex;
      Result<catalog::IndexId> id = db_->CreateIndex(std::move(def));
      if (!id.ok() &&
          id.status().code() != Status::Code::kAlreadyExists &&
          first_error.ok()) {
        first_error = id.status();
      }
    }
  }
  if (!first_error.ok()) {
    AIM_LOG(Error) << "index transaction rollback incomplete: "
                   << first_error.ToString();
  }
  ops_.clear();
  committed_ = true;  // nothing left to undo
  return first_error;
}

}  // namespace aim::storage
