#include "storage/heap_table.h"

namespace aim::storage {

RowId HeapTable::Insert(Row row) {
  rows_.push_back(std::move(row));
  deleted_.push_back(false);
  ++live_count_;
  return rows_.size() - 1;
}

Status HeapTable::Update(RowId rid, Row row) {
  if (!IsLive(rid)) {
    return Status::NotFound("update of dead row " + std::to_string(rid));
  }
  rows_[rid] = std::move(row);
  return Status::OK();
}

Status HeapTable::Delete(RowId rid) {
  if (!IsLive(rid)) {
    return Status::NotFound("delete of dead row " + std::to_string(rid));
  }
  deleted_[rid] = true;
  --live_count_;
  return Status::OK();
}

uint64_t HeapTable::Scan(
    const std::function<bool(RowId, const Row&)>& visitor) const {
  uint64_t visited = 0;
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (deleted_[rid]) continue;
    ++visited;
    if (!visitor(rid, rows_[rid])) break;
  }
  return visited;
}

size_t HeapTable::ScanChunk(RowId* cursor, size_t max_rows,
                            std::vector<const Row*>* out) const {
  size_t appended = 0;
  RowId rid = *cursor;
  for (; rid < rows_.size() && appended < max_rows; ++rid) {
    if (deleted_[rid]) continue;
    out->push_back(&rows_[rid]);
    ++appended;
  }
  *cursor = rid;
  return appended;
}

}  // namespace aim::storage
