#ifndef AIM_STORAGE_ONLINE_INDEX_BUILDER_H_
#define AIM_STORAGE_ONLINE_INDEX_BUILDER_H_

#include <cstdint>
#include <functional>

#include "common/retry.h"
#include "storage/database.h"
#include "storage/index_transaction.h"

namespace aim::storage {

/// Knobs for one online build. The defaults keep every latch acquisition
/// short: the snapshot scan holds the shared latch for at most
/// `snapshot_chunk_rows` rows at a time, catch-up rounds apply whole delta
/// batches under a shared latch, and the one exclusive acquisition (the
/// swap) applies at most `max_swap_tail` delta entries — the stall bound.
struct OnlineBuildOptions {
  /// Heap slots examined per shared-latch acquisition of the snapshot
  /// scan. Writers interleave between chunks.
  uint64_t snapshot_chunk_rows = 256;
  /// Swap only once the delta backlog is at or below this many entries;
  /// larger backlogs trigger another catch-up round instead of a long
  /// exclusive stall.
  uint64_t max_swap_tail = 64;
  /// Catch-up rounds (including swap attempts that found too large a
  /// tail) before the build gives up with kUnavailable. Bounds livelock
  /// against writers that outpace the builder.
  int max_catchup_rounds = 64;
  /// Backoff for transient (kUnavailable) delta-apply failures: each
  /// round's batch is retried with virtual-clock exponential backoff
  /// before the build aborts. Delta application is idempotent
  /// (last-state-wins against the live row), so re-running a batch after
  /// a mid-batch failure is always safe.
  RetryOptions retry;
  /// Test-only DEBUG_SYNC-style hook: invoked after every snapshot chunk
  /// with the latch *released*, so a test can interleave DML at an exact
  /// point of the build instead of relying on scheduler races (the latch
  /// has no fairness guarantee, so an uncoordinated writer can starve
  /// behind a fast chunked scan). Production leaves it empty.
  std::function<void(uint64_t chunk_begin)> after_snapshot_chunk;
};

/// What one online build did.
struct OnlineBuildReport {
  catalog::IndexId id = catalog::kInvalidIndex;
  /// Live rows copied by the chunked snapshot scan.
  uint64_t snapshot_rows = 0;
  /// Delta entries applied during shared-latch catch-up rounds.
  uint64_t delta_applied = 0;
  /// Delta entries applied under the exclusive swap latch — always
  /// <= OnlineBuildOptions::max_swap_tail.
  uint64_t swap_tail_applied = 0;
  /// Catch-up rounds run (0 when no DML raced the scan).
  int catchup_rounds = 0;
  /// Wall time the exclusive swap latch was held. Also observed into the
  /// `online.swap.stall_seconds` histogram.
  double stall_seconds = 0.0;
  /// Retry bookkeeping from the catch-up policy (virtual clock).
  int retry_attempts = 0;
  double retry_backoff_ms = 0.0;
  /// End-to-end wall time of the build (arm → swap), seconds. Feeds the
  /// deployment planner's measured cumulative-benefit curves.
  double build_seconds = 0.0;
};

/// \brief Online index creation under live OLTP traffic: side-build +
/// delta catch-up + atomic swap.
///
/// The build never blocks writers for longer than one bounded latch
/// acquisition:
///
///   1. *Arm* (brief exclusive latch): register a DML hook on the
///      database — every committed Insert/Update/Delete on the target
///      table appends its RowId to a private delta log — and record the
///      heap's slot count as the snapshot bound.
///   2. *Snapshot scan* (chunked shared latch): copy the bounded slot
///      range into a private side B+Tree, `snapshot_chunk_rows` slots per
///      acquisition. Rows mutated mid-scan may be captured twice (old
///      value in the tree, RowId in the delta log); catch-up repairs them.
///   3. *Catch-up* (shared latch per round): drain the delta log and
///      re-derive each touched RowId's entry from its *current* heap
///      state — insert, move, or remove. Last-state-wins makes
///      application idempotent, so transient `online.delta.apply` faults
///      retry the same batch under `RetryPolicy` backoff.
///   4. *Swap* (one exclusive latch, the only stall): re-check the tail
///      is within `max_swap_tail` (otherwise back to 3), apply it, and
///      atomically adopt the side tree via Database::AdoptIndex. From
///      that moment normal DML maintenance owns the index.
///
/// Crash safety: the builder touches the database itself only in the
/// final AdoptIndex call, which has no internal failure point. A build
/// killed at `online.snapshot.scan`, `online.delta.apply`, or
/// `online.swap` unregisters its hook and discards its side state — the
/// database is bit-identical to the build never having started.
///
/// The builder holds no state across Build calls and may be reused.
class OnlineIndexBuilder {
 public:
  explicit OnlineIndexBuilder(Database* db, OnlineBuildOptions options = {})
      : db_(db), options_(options) {}

  /// Runs the full pipeline for `def` (forced non-hypothetical). When
  /// `txn` is non-null the installed index is recorded there, so a later
  /// Rollback drops it together with the rest of the transaction's
  /// changes (the multi-index online apply path).
  Result<OnlineBuildReport> Build(catalog::IndexDef def,
                                  IndexSetTransaction* txn = nullptr);

 private:
  Database* db_;
  OnlineBuildOptions options_;
};

}  // namespace aim::storage

#endif  // AIM_STORAGE_ONLINE_INDEX_BUILDER_H_
