#include "storage/database.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "common/thread_pool.h"

namespace aim::storage {

Database::Database(const Database& other) { CopyFrom(other); }

Database& Database::operator=(const Database& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

void Database::CopyFrom(const Database& other) {
  // Deliberately leaves latch_, dml_hooks_, and next_hook_token_ alone:
  // a clone is new storage with its own gate and no observers (a shadow
  // copy must not feed the source's online-build delta logs).
  catalog_ = other.catalog_;
  heaps_ = other.heaps_;
  btrees_ = other.btrees_;
}

int Database::RegisterDmlHook(DmlHook hook) {
  const int token = next_hook_token_++;
  dml_hooks_.emplace_back(token, std::move(hook));
  return token;
}

void Database::UnregisterDmlHook(int token) {
  for (auto it = dml_hooks_.begin(); it != dml_hooks_.end(); ++it) {
    if (it->first == token) {
      dml_hooks_.erase(it);
      return;
    }
  }
}

catalog::TableId Database::CreateTable(catalog::TableDef def) {
  const catalog::TableId id = catalog_.AddTable(std::move(def));
  heaps_.resize(id + 1);
  // Auto-create the clustered primary index (InnoDB-style: every table
  // is organized by its primary key).
  const catalog::TableDef& stored = catalog_.table(id);
  if (!stored.primary_key.empty()) {
    catalog::IndexDef pk;
    pk.table = id;
    pk.columns = stored.primary_key;
    pk.unique = true;
    pk.is_primary = true;
    pk.name = "PRIMARY_" + stored.name;
    Result<catalog::IndexId> pk_id = catalog_.AddIndex(std::move(pk));
    if (pk_id.ok()) {
      btrees_[pk_id.ValueOrDie()];  // empty btree, filled by inserts
    }
  }
  return id;
}

Status Database::LoadRows(catalog::TableId table, std::vector<Row> rows) {
  AIM_FAULT_POINT("storage.load_rows");
  if (table >= heaps_.size()) {
    return Status::InvalidArgument("unknown table id");
  }
  for (auto& row : rows) {
    AIM_RETURN_NOT_OK(InsertRow(table, std::move(row)).status());
  }
  return Status::OK();
}

Result<catalog::IndexId> Database::CreateIndex(catalog::IndexDef def) {
  AIM_FAULT_POINT("storage.create_index");
  const bool hypothetical = def.hypothetical;
  const catalog::TableId table = def.table;
  AIM_ASSIGN_OR_RETURN(catalog::IndexId id,
                       catalog_.AddIndex(std::move(def)));
  if (!hypothetical) {
    BTreeIndex& btree = btrees_[id];
    const catalog::IndexDef& stored = *catalog_.index(id);
    // Materialization can fail mid-scan (the injected "crash during index
    // build"); CreateIndex stays atomic by erasing the partial B+Tree and
    // the catalog entry before surfacing the error.
    Status build_status;
    heaps_[table].Scan([&](RowId rid, const Row& row) {
      build_status = AIM_FAULT_POINT_STATUS("storage.build_index_entry");
      if (!build_status.ok()) return false;
      btree.Insert(MakeIndexKey(stored, row), rid);
      return true;
    });
    if (!build_status.ok()) {
      btrees_.erase(id);
      (void)catalog_.DropIndex(id);
      return build_status;
    }
  }
  return id;
}

std::vector<Result<catalog::IndexId>> Database::CreateIndexes(
    std::vector<catalog::IndexDef> defs, common::ThreadPool* pool) {
  const size_t n = defs.size();
  std::vector<Result<catalog::IndexId>> results(
      n, Result<catalog::IndexId>(Status::Internal("unresolved")));
  // Phase 1 — serial registration, input order. Ids come out exactly as a
  // serial CreateIndex loop would assign them, which is what keeps the
  // parallel clone-materialization path bit-identical to the serial one.
  std::vector<bool> needs_build(n, false);
  for (size_t i = 0; i < n; ++i) {
    const Status faulted = AIM_FAULT_POINT_STATUS("storage.create_index");
    if (!faulted.ok()) {
      results[i] = faulted;
      continue;
    }
    const bool hypothetical = defs[i].hypothetical;
    Result<catalog::IndexId> id = catalog_.AddIndex(std::move(defs[i]));
    results[i] = id;
    needs_build[i] = id.ok() && !hypothetical;
  }
  // Phase 2 — parallel builds into standalone B+Trees. Workers only read
  // the (now frozen) catalog and heaps and write their own slot.
  std::vector<BTreeIndex> built(n);
  std::vector<Status> build_status(n);
  common::ParallelFor(pool, n, [&](size_t i) {
    if (!needs_build[i]) return;
    const catalog::IndexId id = results[i].ValueOrDie();
    const catalog::IndexDef& stored = *catalog_.index(id);
    Status st;
    heaps_[stored.table].Scan([&](RowId rid, const Row& row) {
      st = AIM_FAULT_POINT_STATUS("storage.build_index_entry");
      if (!st.ok()) return false;
      built[i].Insert(MakeIndexKey(stored, row), rid);
      return true;
    });
    build_status[i] = st;
  });
  // Phase 3 — serial adoption, input order. A failed build unregisters its
  // catalog entry (same atomicity as single CreateIndex) and surfaces the
  // build error in its slot; successful builds become visible together.
  for (size_t i = 0; i < n; ++i) {
    if (!needs_build[i]) continue;
    const catalog::IndexId id = results[i].ValueOrDie();
    if (build_status[i].ok()) {
      btrees_[id] = std::move(built[i]);
    } else {
      (void)catalog_.DropIndex(id);
      results[i] = build_status[i];
    }
  }
  return results;
}

Result<catalog::IndexId> Database::AdoptIndex(catalog::IndexDef def,
                                              BTreeIndex built) {
  def.hypothetical = false;
  AIM_ASSIGN_OR_RETURN(catalog::IndexId id, catalog_.AddIndex(std::move(def)));
  // No fault point between registration and adoption: the two-step is
  // atomic by construction, which is what the online swap relies on.
  btrees_[id] = std::move(built);
  return id;
}

Status Database::DropIndex(catalog::IndexId id) {
  AIM_FAULT_POINT("storage.drop_index");
  AIM_RETURN_NOT_OK(catalog_.DropIndex(id));
  btrees_.erase(id);
  return Status::OK();
}

const BTreeIndex* Database::btree(catalog::IndexId id) const {
  auto it = btrees_.find(id);
  return it == btrees_.end() ? nullptr : &it->second;
}

Row Database::MakeIndexKey(const catalog::IndexDef& def,
                           const Row& row) const {
  Row key;
  key.reserve(def.columns.size());
  for (catalog::ColumnId c : def.columns) key.push_back(row[c]);
  return key;
}

Result<RowId> Database::InsertRow(catalog::TableId table, Row row,
                                  MaintenanceCost* cost) {
  AIM_FAULT_POINT("storage.insert_row");
  if (table >= heaps_.size()) {
    return Status::InvalidArgument("unknown table id");
  }
  const auto& t = catalog_.table(table);
  if (row.size() != t.columns.size()) {
    return Status::InvalidArgument("row arity mismatch on " + t.name);
  }
  const RowId rid = heaps_[table].Insert(row);
  catalog_.mutable_table(table)->stats.row_count = heaps_[table].live_count();
  for (const catalog::IndexDef* idx :
       catalog_.TableIndexes(table, /*include_hypothetical=*/false)) {
    btrees_[idx->id].Insert(MakeIndexKey(*idx, row), rid);
    if (cost) {
      ++cost->index_entries_written;
      ++cost->indexes_touched;
    }
  }
  NotifyDml(DmlOp::kInsert, table, rid);
  return rid;
}

Status Database::UpdateRow(catalog::TableId table, RowId rid, Row row,
                           MaintenanceCost* cost) {
  AIM_FAULT_POINT("storage.update_row");
  if (table >= heaps_.size()) {
    return Status::InvalidArgument("unknown table id");
  }
  HeapTable& heap = heaps_[table];
  if (!heap.IsLive(rid)) {
    return Status::NotFound("update of dead row");
  }
  const Row old_row = heap.row(rid);
  for (const catalog::IndexDef* idx :
       catalog_.TableIndexes(table, /*include_hypothetical=*/false)) {
    const Row old_key = MakeIndexKey(*idx, old_row);
    const Row new_key = MakeIndexKey(*idx, row);
    if (old_key == new_key) continue;  // untouched index: no maintenance
    BTreeIndex& btree = btrees_[idx->id];
    btree.Erase(old_key, rid);
    btree.Insert(new_key, rid);
    if (cost) {
      cost->index_entries_written += 2;
      ++cost->indexes_touched;
    }
  }
  AIM_RETURN_NOT_OK(heap.Update(rid, std::move(row)));
  NotifyDml(DmlOp::kUpdate, table, rid);
  return Status::OK();
}

Status Database::DeleteRow(catalog::TableId table, RowId rid,
                           MaintenanceCost* cost) {
  AIM_FAULT_POINT("storage.delete_row");
  if (table >= heaps_.size()) {
    return Status::InvalidArgument("unknown table id");
  }
  HeapTable& heap = heaps_[table];
  if (!heap.IsLive(rid)) {
    return Status::NotFound("delete of dead row");
  }
  const Row old_row = heap.row(rid);
  for (const catalog::IndexDef* idx :
       catalog_.TableIndexes(table, /*include_hypothetical=*/false)) {
    btrees_[idx->id].Erase(MakeIndexKey(*idx, old_row), rid);
    if (cost) {
      ++cost->index_entries_written;
      ++cost->indexes_touched;
    }
  }
  AIM_RETURN_NOT_OK(heap.Delete(rid));
  catalog_.mutable_table(table)->stats.row_count = heap.live_count();
  NotifyDml(DmlOp::kDelete, table, rid);
  return Status::OK();
}

void Database::AnalyzeTable(catalog::TableId table, int histogram_buckets) {
  catalog::TableDef* t = catalog_.mutable_table(table);
  const HeapTable& heap = heaps_[table];
  t->stats.row_count = heap.live_count();
  t->stats.columns.assign(t->columns.size(), catalog::ColumnStats{});
  for (catalog::ColumnId c = 0; c < t->columns.size(); ++c) {
    std::vector<int64_t> sample;
    sample.reserve(heap.live_count());
    uint64_t nulls = 0;
    // Strings are hashed into the int64 domain: the histogram becomes a
    // hash histogram (useless for ranges, fine for NDV/equality, which is
    // all string predicates use).
    heap.Scan([&](RowId, const Row& row) {
      const sql::Value& v = row[c];
      switch (v.kind()) {
        case sql::Value::Kind::kNull:
          ++nulls;
          break;
        case sql::Value::Kind::kInt64:
          sample.push_back(v.AsInt());
          break;
        case sql::Value::Kind::kDouble:
          sample.push_back(static_cast<int64_t>(v.AsDouble()));
          break;
        case sql::Value::Kind::kString: {
          uint64_t h = 1469598103934665603ULL;
          for (char ch : v.AsString()) {
            h ^= static_cast<uint8_t>(ch);
            h *= 1099511628211ULL;
          }
          sample.push_back(static_cast<int64_t>(h >> 1));
          break;
        }
        case sql::Value::Kind::kMax:
          break;  // internal sentinel: never stored in rows
      }
      return true;
    });
    catalog::ColumnStats stats =
        catalog::ColumnStats::FromSample(std::move(sample), 0,
                                         histogram_buckets);
    const uint64_t total = heap.live_count();
    stats.null_fraction =
        total == 0 ? 0.0 : static_cast<double>(nulls) / total;
    t->stats.columns[c] = stats;
  }
}

void Database::AnalyzeAll(int histogram_buckets) {
  for (catalog::TableId t = 0; t < catalog_.table_count(); ++t) {
    AnalyzeTable(t, histogram_buckets);
  }
}

}  // namespace aim::storage
