#ifndef AIM_STORAGE_ROW_H_
#define AIM_STORAGE_ROW_H_

#include <cstdint>
#include <vector>

#include "sql/value.h"

namespace aim::storage {

/// A row is a vector of values, positionally matching the table's columns.
using Row = std::vector<sql::Value>;
/// Stable row identifier within a heap table (never reused).
using RowId = uint64_t;

/// Lexicographic comparison of value vectors (index key ordering). A shorter
/// vector that is a prefix of a longer one sorts first, which gives the
/// standard B+Tree prefix-scan semantics.
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace aim::storage

#endif  // AIM_STORAGE_ROW_H_
