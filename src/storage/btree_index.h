#ifndef AIM_STORAGE_BTREE_INDEX_H_
#define AIM_STORAGE_BTREE_INDEX_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "storage/row.h"

namespace aim::storage {

/// Bound for a one-sided or two-sided range scan on the key component that
/// follows the equality prefix.
struct KeyBound {
  sql::Value value;
  bool inclusive = true;
};

/// One gathered index entry: the row id plus the cumulative "entries
/// visited" count *at* this entry (inclusive; counts exclusive-lower-bound
/// rejects too, exactly as ScanPrefix's return value would at that point).
/// The cumulative counts let a consumer that stops at hit `h` account the
/// same visited total the callback scan would have reported.
struct IndexHit {
  RowId rid = 0;
  uint64_t visited = 0;
};

/// Per-probe result span of a batched gather: hits[begin, end) plus the
/// probe's total visited count (including trailing rejected entries after
/// the last hit).
struct ProbeSpan {
  size_t begin = 0;
  size_t end = 0;
  uint64_t visited = 0;
};

/// \brief An ordered secondary index (B+Tree semantics) mapping composite
/// keys to row ids.
///
/// Implemented over std::multimap; what matters for the reproduction is the
/// *access pattern* (prefix/range scans and per-entry costs), which the
/// executor meters, not the node layout.
class BTreeIndex {
 public:
  void Insert(Row key, RowId rid);
  /// Removes one (key, rid) entry if present; returns true on removal.
  bool Erase(const Row& key, RowId rid);

  uint64_t entry_count() const { return map_.size(); }

  /// \brief Scans entries whose key starts with `eq_prefix`, optionally
  /// range-bounded on the next key component.
  ///
  /// Visits in key order; the visitor returns false to stop (LIMIT
  /// pushdown). Returns the number of entries visited.
  uint64_t ScanPrefix(
      const Row& eq_prefix, const std::optional<KeyBound>& lower,
      const std::optional<KeyBound>& upper,
      const std::function<bool(const Row& key, RowId rid)>& visitor) const;

  /// Full in-order scan (index-ordered read for ORDER BY / GROUP BY).
  uint64_t ScanAll(
      const std::function<bool(const Row& key, RowId rid)>& visitor) const;

  /// \brief Skip scan (MySQL 8 "skip scan range access"): for every
  /// distinct value of the first `skip_width` key parts, range-scans the
  /// component that follows and jumps to the next group.
  ///
  /// Returns entries visited; `groups_probed` (optional) receives the
  /// number of distinct prefixes descended into — the cost driver.
  uint64_t ScanSkip(
      size_t skip_width, const std::optional<KeyBound>& lower,
      const std::optional<KeyBound>& upper,
      const std::function<bool(const Row& key, RowId rid)>& visitor,
      uint64_t* groups_probed = nullptr) const;

  /// \name Batch-gather API (vectorized executor).
  ///
  /// The gather calls visit exactly the entries the callback scans above
  /// would, in the same order (std::multimap preserves insertion order for
  /// equal keys, so tie order matches entry-by-entry), but append hits to
  /// plain vectors instead of invoking a std::function per entry. Metric
  /// accounting is the caller's job, via the per-hit cumulative counts.
  /// @{

  /// Gathers every entry ScanPrefix(eq_prefix, lower, upper, ...) would
  /// visit. Appends to `out`; returns the probe's total visited count.
  uint64_t GatherPrefix(const Row& eq_prefix,
                        const std::optional<KeyBound>& lower,
                        const std::optional<KeyBound>& upper,
                        std::vector<IndexHit>* out) const;

  /// \brief Batched probe: one tree descent per *distinct* prefix.
  ///
  /// `order` indexes into `probes` and must be sorted so equal prefixes
  /// are adjacent (the caller sorts once per input batch); consecutive
  /// duplicates reuse the previous descent's hit span instead of
  /// re-walking the tree. `spans` is written per *original* probe
  /// position (spans[i] describes probes[i]), so callers can account
  /// probes in their canonical enumeration order.
  void GatherPrefixBatch(const std::vector<Row>& probes,
                         const std::vector<size_t>& order,
                         const std::optional<KeyBound>& lower,
                         const std::optional<KeyBound>& upper,
                         std::vector<IndexHit>* hits,
                         std::vector<ProbeSpan>* spans) const;

  /// Gathers everything ScanSkip would visit. `cum_groups[i]` is the
  /// number of groups entered when hit i was visited (inclusive);
  /// `groups_total` receives the full group count (trailing hitless
  /// groups included, matching ScanSkip's groups_probed on a full scan).
  uint64_t GatherSkip(size_t skip_width,
                      const std::optional<KeyBound>& lower,
                      const std::optional<KeyBound>& upper,
                      std::vector<IndexHit>* out,
                      std::vector<uint64_t>* cum_groups,
                      uint64_t* groups_total) const;
  /// @}

 private:
  std::multimap<Row, RowId, RowLess> map_;
};

}  // namespace aim::storage

#endif  // AIM_STORAGE_BTREE_INDEX_H_
