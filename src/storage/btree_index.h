#ifndef AIM_STORAGE_BTREE_INDEX_H_
#define AIM_STORAGE_BTREE_INDEX_H_

#include <functional>
#include <map>
#include <optional>

#include "storage/row.h"

namespace aim::storage {

/// Bound for a one-sided or two-sided range scan on the key component that
/// follows the equality prefix.
struct KeyBound {
  sql::Value value;
  bool inclusive = true;
};

/// \brief An ordered secondary index (B+Tree semantics) mapping composite
/// keys to row ids.
///
/// Implemented over std::multimap; what matters for the reproduction is the
/// *access pattern* (prefix/range scans and per-entry costs), which the
/// executor meters, not the node layout.
class BTreeIndex {
 public:
  void Insert(Row key, RowId rid);
  /// Removes one (key, rid) entry if present; returns true on removal.
  bool Erase(const Row& key, RowId rid);

  uint64_t entry_count() const { return map_.size(); }

  /// \brief Scans entries whose key starts with `eq_prefix`, optionally
  /// range-bounded on the next key component.
  ///
  /// Visits in key order; the visitor returns false to stop (LIMIT
  /// pushdown). Returns the number of entries visited.
  uint64_t ScanPrefix(
      const Row& eq_prefix, const std::optional<KeyBound>& lower,
      const std::optional<KeyBound>& upper,
      const std::function<bool(const Row& key, RowId rid)>& visitor) const;

  /// Full in-order scan (index-ordered read for ORDER BY / GROUP BY).
  uint64_t ScanAll(
      const std::function<bool(const Row& key, RowId rid)>& visitor) const;

  /// \brief Skip scan (MySQL 8 "skip scan range access"): for every
  /// distinct value of the first `skip_width` key parts, range-scans the
  /// component that follows and jumps to the next group.
  ///
  /// Returns entries visited; `groups_probed` (optional) receives the
  /// number of distinct prefixes descended into — the cost driver.
  uint64_t ScanSkip(
      size_t skip_width, const std::optional<KeyBound>& lower,
      const std::optional<KeyBound>& upper,
      const std::function<bool(const Row& key, RowId rid)>& visitor,
      uint64_t* groups_probed = nullptr) const;

 private:
  std::multimap<Row, RowId, RowLess> map_;
};

}  // namespace aim::storage

#endif  // AIM_STORAGE_BTREE_INDEX_H_
