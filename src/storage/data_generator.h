#ifndef AIM_STORAGE_DATA_GENERATOR_H_
#define AIM_STORAGE_DATA_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/database.h"

namespace aim::storage {

/// How a generated column's values are distributed.
enum class Distribution { kUniform, kZipf, kSequential };

/// \brief Generation spec for one column.
struct ColumnSpec {
  /// Number of distinct values to draw from.
  uint64_t ndv = 1000;
  Distribution distribution = Distribution::kUniform;
  /// Zipf skew (used when distribution == kZipf).
  double zipf_theta = 0.8;
  /// Fraction of NULLs injected.
  double null_fraction = 0.0;
  /// Offset added to generated int values (controls the value domain).
  int64_t base = 0;
  /// If >= 0, this column's value is derived from the value of the column
  /// at this position (v_corr = v_src / correlation_divisor), modelling
  /// functionally correlated columns.
  int correlated_with = -1;
  int64_t correlation_divisor = 10;
  /// For kString columns: value is prefix + number.
  std::string string_prefix = "v";
};

/// \brief Fills a table with `row_count` synthetic rows.
///
/// The column at `primary_key` position (single-column int PK) receives
/// sequential unique values regardless of its spec. After loading, call
/// `Database::AnalyzeTable` to refresh statistics.
Status GenerateRows(Database* db, catalog::TableId table,
                    uint64_t row_count, const std::vector<ColumnSpec>& specs,
                    Rng* rng);

/// Generates a single row according to `specs` (used by replay drivers to
/// synthesize DML traffic).
Row GenerateRow(const catalog::TableDef& table,
                const std::vector<ColumnSpec>& specs, uint64_t sequence,
                Rng* rng);

}  // namespace aim::storage

#endif  // AIM_STORAGE_DATA_GENERATOR_H_
