#include "storage/btree_index.h"

namespace aim::storage {

void BTreeIndex::Insert(Row key, RowId rid) {
  map_.emplace(std::move(key), rid);
}

bool BTreeIndex::Erase(const Row& key, RowId rid) {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == rid) {
      map_.erase(it);
      return true;
    }
  }
  return false;
}

uint64_t BTreeIndex::ScanPrefix(
    const Row& eq_prefix, const std::optional<KeyBound>& lower,
    const std::optional<KeyBound>& upper,
    const std::function<bool(const Row& key, RowId rid)>& visitor) const {
  // Start position: eq_prefix (+ lower bound on the next component).
  Row start = eq_prefix;
  if (lower.has_value()) start.push_back(lower->value);
  auto it = map_.lower_bound(start);
  // An exclusive lower bound must skip keys whose next component equals the
  // bound value.
  uint64_t visited = 0;
  const size_t p = eq_prefix.size();
  for (; it != map_.end(); ++it) {
    const Row& key = it->first;
    // Stop once the key no longer starts with eq_prefix.
    if (key.size() < p) break;
    bool prefix_match = true;
    for (size_t i = 0; i < p; ++i) {
      if (key[i].Compare(eq_prefix[i]) != 0) {
        prefix_match = false;
        break;
      }
    }
    if (!prefix_match) break;
    if (key.size() > p) {
      const sql::Value& next = key[p];
      if (lower.has_value() && !lower->inclusive &&
          next.Compare(lower->value) == 0) {
        ++visited;  // the entry is touched before being rejected
        continue;
      }
      if (upper.has_value()) {
        const int c = next.Compare(upper->value);
        if (c > 0 || (c == 0 && !upper->inclusive)) break;
      }
    }
    ++visited;
    if (!visitor(key, it->second)) break;
  }
  return visited;
}

uint64_t BTreeIndex::ScanSkip(
    size_t skip_width, const std::optional<KeyBound>& lower,
    const std::optional<KeyBound>& upper,
    const std::function<bool(const Row& key, RowId rid)>& visitor,
    uint64_t* groups_probed) const {
  uint64_t visited = 0;
  uint64_t groups = 0;
  auto it = map_.begin();
  bool stop = false;
  while (it != map_.end() && !stop) {
    if (it->first.size() < skip_width) {
      ++it;
      continue;
    }
    // The current group: the first skip_width key parts.
    Row group(it->first.begin(), it->first.begin() + skip_width);
    ++groups;
    // Range-scan within the group on the next component.
    Row start = group;
    if (lower.has_value()) start.push_back(lower->value);
    for (auto jt = map_.lower_bound(start); jt != map_.end(); ++jt) {
      const Row& key = jt->first;
      bool in_group = key.size() >= skip_width;
      for (size_t i = 0; in_group && i < skip_width; ++i) {
        in_group = key[i].Compare(group[i]) == 0;
      }
      if (!in_group) break;
      if (key.size() > skip_width) {
        const sql::Value& next = key[skip_width];
        if (lower.has_value() && !lower->inclusive &&
            next.Compare(lower->value) == 0) {
          ++visited;
          continue;
        }
        if (upper.has_value()) {
          const int c = next.Compare(upper->value);
          if (c > 0 || (c == 0 && !upper->inclusive)) break;
        }
      }
      ++visited;
      if (!visitor(key, jt->second)) {
        stop = true;
        break;
      }
    }
    // Jump past the group: the sentinel sorts after every real value.
    Row past = group;
    past.push_back(sql::Value::Max());
    it = map_.upper_bound(past);
  }
  if (groups_probed != nullptr) *groups_probed = groups;
  return visited;
}

uint64_t BTreeIndex::GatherPrefix(const Row& eq_prefix,
                                  const std::optional<KeyBound>& lower,
                                  const std::optional<KeyBound>& upper,
                                  std::vector<IndexHit>* out) const {
  Row start = eq_prefix;
  if (lower.has_value()) start.push_back(lower->value);
  auto it = map_.lower_bound(start);
  uint64_t visited = 0;
  const size_t p = eq_prefix.size();
  for (; it != map_.end(); ++it) {
    const Row& key = it->first;
    if (key.size() < p) break;
    bool prefix_match = true;
    for (size_t i = 0; i < p; ++i) {
      if (key[i].Compare(eq_prefix[i]) != 0) {
        prefix_match = false;
        break;
      }
    }
    if (!prefix_match) break;
    if (key.size() > p) {
      const sql::Value& next = key[p];
      if (lower.has_value() && !lower->inclusive &&
          next.Compare(lower->value) == 0) {
        ++visited;  // touched before being rejected, like ScanPrefix
        continue;
      }
      if (upper.has_value()) {
        const int c = next.Compare(upper->value);
        if (c > 0 || (c == 0 && !upper->inclusive)) break;
      }
    }
    ++visited;
    out->push_back(IndexHit{it->second, visited});
  }
  return visited;
}

void BTreeIndex::GatherPrefixBatch(const std::vector<Row>& probes,
                                   const std::vector<size_t>& order,
                                   const std::optional<KeyBound>& lower,
                                   const std::optional<KeyBound>& upper,
                                   std::vector<IndexHit>* hits,
                                   std::vector<ProbeSpan>* spans) const {
  spans->resize(probes.size());
  const Row* prev = nullptr;
  ProbeSpan prev_span;
  for (size_t k = 0; k < order.size(); ++k) {
    const size_t i = order[k];
    const Row& probe = probes[i];
    if (prev != nullptr && probe == *prev) {
      (*spans)[i] = prev_span;  // duplicate prefix: reuse the descent
      continue;
    }
    ProbeSpan span;
    span.begin = hits->size();
    span.visited = GatherPrefix(probe, lower, upper, hits);
    span.end = hits->size();
    (*spans)[i] = span;
    prev = &probe;
    prev_span = span;
  }
}

uint64_t BTreeIndex::GatherSkip(size_t skip_width,
                                const std::optional<KeyBound>& lower,
                                const std::optional<KeyBound>& upper,
                                std::vector<IndexHit>* out,
                                std::vector<uint64_t>* cum_groups,
                                uint64_t* groups_total) const {
  uint64_t visited = 0;
  uint64_t groups = 0;
  auto it = map_.begin();
  while (it != map_.end()) {
    if (it->first.size() < skip_width) {
      ++it;
      continue;
    }
    Row group(it->first.begin(), it->first.begin() + skip_width);
    ++groups;
    Row start = group;
    if (lower.has_value()) start.push_back(lower->value);
    for (auto jt = map_.lower_bound(start); jt != map_.end(); ++jt) {
      const Row& key = jt->first;
      bool in_group = key.size() >= skip_width;
      for (size_t i = 0; in_group && i < skip_width; ++i) {
        in_group = key[i].Compare(group[i]) == 0;
      }
      if (!in_group) break;
      if (key.size() > skip_width) {
        const sql::Value& next = key[skip_width];
        if (lower.has_value() && !lower->inclusive &&
            next.Compare(lower->value) == 0) {
          ++visited;
          continue;
        }
        if (upper.has_value()) {
          const int c = next.Compare(upper->value);
          if (c > 0 || (c == 0 && !upper->inclusive)) break;
        }
      }
      ++visited;
      out->push_back(IndexHit{jt->second, visited});
      cum_groups->push_back(groups);
    }
    Row past = group;
    past.push_back(sql::Value::Max());
    it = map_.upper_bound(past);
  }
  *groups_total = groups;
  return visited;
}

uint64_t BTreeIndex::ScanAll(
    const std::function<bool(const Row& key, RowId rid)>& visitor) const {
  uint64_t visited = 0;
  for (const auto& [key, rid] : map_) {
    ++visited;
    if (!visitor(key, rid)) break;
  }
  return visited;
}

}  // namespace aim::storage
