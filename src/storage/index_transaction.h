#ifndef AIM_STORAGE_INDEX_TRANSACTION_H_
#define AIM_STORAGE_INDEX_TRANSACTION_H_

#include <shared_mutex>
#include <vector>

#include "storage/database.h"

namespace aim::storage {

/// \brief All-or-nothing application of a set of index changes.
///
/// AIM's apply step installs several indexes; if the k-th CreateIndex
/// fails, the catalog must not be left with k-1 half-adopted indexes (the
/// no-regression guarantee covers configuration state, not just query
/// latency). Route every change through a transaction and either Commit()
/// or let Rollback() (also run by the destructor) undo them in reverse
/// order: created indexes are dropped, dropped indexes are rebuilt from
/// their saved definitions.
///
/// Rollback runs under fault suppression so injected faults cannot strand
/// a half-rolled-back catalog; after a rolled-back drop the index is
/// rebuilt from the heap and keeps its definition but receives a fresh
/// IndexId.
///
/// Under concurrent traffic, construct with the database's latch():
/// CreateIndex, DropIndex, and Rollback then acquire it exclusively
/// around each DDL operation, so a transaction abandoned mid-apply rolls
/// back safely while OLTP clients keep running. RecordCreated never
/// locks — its caller (the online builder's swap) already holds the
/// latch exclusively.
class IndexSetTransaction {
 public:
  explicit IndexSetTransaction(Database* db,
                               std::shared_mutex* latch = nullptr)
      : db_(db), latch_(latch) {}
  ~IndexSetTransaction() {
    if (!committed_) (void)Rollback();
  }
  IndexSetTransaction(const IndexSetTransaction&) = delete;
  IndexSetTransaction& operator=(const IndexSetTransaction&) = delete;

  /// Creates an index through the transaction; on later rollback it is
  /// dropped again.
  Result<catalog::IndexId> CreateIndex(catalog::IndexDef def);

  /// Drops an index through the transaction; on later rollback it is
  /// re-created (re-materialized) from its saved definition.
  Status DropIndex(catalog::IndexId id);

  /// Enrolls an index someone else just installed (the online builder's
  /// AdoptIndex swap) so a later Rollback drops it with the rest of the
  /// transaction. Bookkeeping only — takes no locks, performs no DDL; the
  /// caller holds the latch exclusively at the call site.
  void RecordCreated(catalog::IndexId id);

  /// Keeps all changes; the destructor becomes a no-op.
  void Commit() { committed_ = true; }

  /// Undoes all uncommitted changes in reverse order. Idempotent.
  Status Rollback();

  bool committed() const { return committed_; }
  size_t pending_ops() const { return ops_.size(); }

 private:
  struct Op {
    bool was_create = false;
    catalog::IndexId created_id = catalog::kInvalidIndex;
    catalog::IndexDef dropped_def;
  };

  Database* db_;
  std::shared_mutex* latch_;  // null = single-threaded embedder, no locking
  std::vector<Op> ops_;
  bool committed_ = false;
};

}  // namespace aim::storage

#endif  // AIM_STORAGE_INDEX_TRANSACTION_H_
