#include "storage/data_generator.h"

namespace aim::storage {

namespace {

int64_t DrawValue(const ColumnSpec& spec, uint64_t sequence, Rng* rng) {
  switch (spec.distribution) {
    case Distribution::kSequential:
      return spec.base + static_cast<int64_t>(sequence);
    case Distribution::kZipf:
      return spec.base +
             static_cast<int64_t>(rng->Zipf(spec.ndv, spec.zipf_theta));
    case Distribution::kUniform:
      break;
  }
  return spec.base + static_cast<int64_t>(rng->Uniform(spec.ndv));
}

}  // namespace

Row GenerateRow(const catalog::TableDef& table,
                const std::vector<ColumnSpec>& specs, uint64_t sequence,
                Rng* rng) {
  Row row(table.columns.size());
  std::vector<int64_t> raw(table.columns.size(), 0);
  const bool single_int_pk =
      table.primary_key.size() == 1 &&
      table.columns[table.primary_key[0]].type != catalog::ColumnType::kString;

  for (size_t c = 0; c < table.columns.size(); ++c) {
    const ColumnSpec& spec =
        c < specs.size() ? specs[c] : ColumnSpec{};
    int64_t v;
    if (single_int_pk && table.primary_key[0] == c) {
      v = static_cast<int64_t>(sequence);  // unique sequential PK
    } else if (spec.correlated_with >= 0 &&
               static_cast<size_t>(spec.correlated_with) < c) {
      const int64_t div =
          spec.correlation_divisor == 0 ? 1 : spec.correlation_divisor;
      v = raw[spec.correlated_with] / div;
    } else {
      v = DrawValue(spec, sequence, rng);
    }
    raw[c] = v;
    if (spec.null_fraction > 0 && rng->Bernoulli(spec.null_fraction) &&
        table.columns[c].nullable) {
      row[c] = sql::Value::Null();
      continue;
    }
    switch (table.columns[c].type) {
      case catalog::ColumnType::kInt64:
      case catalog::ColumnType::kDate:
        row[c] = sql::Value::Int(v);
        break;
      case catalog::ColumnType::kDouble:
        row[c] = sql::Value::Real(static_cast<double>(v) +
                                  rng->NextDouble());
        break;
      case catalog::ColumnType::kString:
        row[c] = sql::Value::Str(spec.string_prefix + std::to_string(v));
        break;
    }
  }
  return row;
}

Status GenerateRows(Database* db, catalog::TableId table,
                    uint64_t row_count, const std::vector<ColumnSpec>& specs,
                    Rng* rng) {
  const catalog::TableDef& def = db->catalog().table(table);
  const uint64_t start = db->heap(table).slot_count();
  for (uint64_t i = 0; i < row_count; ++i) {
    AIM_RETURN_NOT_OK(
        db->InsertRow(table, GenerateRow(def, specs, start + i, rng))
            .status());
  }
  return Status::OK();
}

}  // namespace aim::storage
