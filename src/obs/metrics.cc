#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <ostream>

namespace aim::obs {

void Histogram::Observe(double v) {
  int bucket = 0;
  double bound = kLowestBound;
  while (bucket < kBuckets - 1 && v > bound) {
    bound *= 2.0;
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::BucketBound(int bucket) {
  if (bucket >= kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return kLowestBound * std::pow(2.0, bucket);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(c->value());
    samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.value = h->sum();
    s.count = h->count();
    samples.push_back(std::move(s));
  }
  return samples;
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  const std::vector<MetricSample> samples = Snapshot();
  out << "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << s.name << "\": ";
    if (s.kind == MetricSample::Kind::kHistogram) {
      const double mean =
          s.count > 0 ? s.value / static_cast<double>(s.count) : 0.0;
      out << "{\"count\": " << s.count << ", \"sum\": " << s.value
          << ", \"mean\": " << mean << "}";
    } else if (s.kind == MetricSample::Kind::kCounter) {
      out << static_cast<uint64_t>(s.value);
    } else {
      out << s.value;
    }
  }
  out << "}";
}

}  // namespace aim::obs
