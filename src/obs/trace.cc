#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace aim::obs {
namespace {

/// Per-thread stack of open spans. Frames carry the owning tracer so
/// nested spans parent correctly even if tests interleave two tracers on
/// one thread.
struct Frame {
  const Tracer* tracer;
  uint64_t id;
};
thread_local std::vector<Frame> t_frames;

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string AttrsJson(const std::vector<TraceAttr>& attrs) {
  std::string out = "{";
  bool first = true;
  for (const TraceAttr& a : attrs) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    AppendJsonEscaped(&out, a.key);
    out += "\": ";
    if (a.numeric) {
      out += a.value;
    } else {
      out += '"';
      AppendJsonEscaped(&out, a.value);
      out += '"';
    }
  }
  out += '}';
  return out;
}

}  // namespace

Tracer::Tracer(Clock clock)
    : enabled_(true), clock_(clock), epoch_(std::chrono::steady_clock::now()) {}

Tracer* Tracer::Disabled() {
  struct DisabledTracer : Tracer {
    DisabledTracer() : Tracer(DisabledTag{}) {}
  };
  static DisabledTracer* const tracer = new DisabledTracer();
  return tracer;
}

namespace {
std::atomic<Tracer*> g_tracer{nullptr};
}  // namespace

Tracer* Tracer::Get() {
  Tracer* t = g_tracer.load(std::memory_order_acquire);
  return t != nullptr ? t : Disabled();
}

Tracer* Tracer::Install(Tracer* tracer) {
  Tracer* prev = g_tracer.exchange(tracer, std::memory_order_acq_rel);
  return prev != nullptr ? prev : Disabled();
}

uint64_t Tracer::Now() {
  if (clock_ == Clock::kVirtual) {
    return virtual_ticks_.fetch_add(1, std::memory_order_relaxed);
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint32_t Tracer::ThreadIdLocked() {
  const std::thread::id self = std::this_thread::get_id();
  auto it = thread_ids_.find(self);
  if (it == thread_ids_.end()) {
    it = thread_ids_
             .emplace(self, static_cast<uint32_t>(thread_ids_.size() + 1))
             .first;
  }
  return it->second;
}

uint64_t Tracer::BeginSpan(const char* name, uint64_t parent) {
  if (!enabled_) return 0;
  if (parent == 0) {
    for (auto it = t_frames.rbegin(); it != t_frames.rend(); ++it) {
      if (it->tracer == this) {
        parent = it->id;
        break;
      }
    }
  }
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  t_frames.push_back(Frame{this, id});
  const uint64_t ts = Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }
  Event e;
  e.kind = Event::Kind::kBegin;
  e.id = id;
  e.parent = parent;
  e.name = name;
  e.tid = ThreadIdLocked();
  e.ts_us = ts;
  events_.push_back(std::move(e));
  return id;
}

void Tracer::EndSpan(uint64_t id, std::vector<TraceAttr> attrs) {
  if (!enabled_ || id == 0) return;
  for (auto it = t_frames.rbegin(); it != t_frames.rend(); ++it) {
    if (it->tracer == this && it->id == id) {
      t_frames.erase(std::next(it).base());
      break;
    }
  }
  const uint64_t ts = Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event e;
  e.kind = Event::Kind::kEnd;
  e.id = id;
  e.tid = ThreadIdLocked();
  e.ts_us = ts;
  e.attrs = std::move(attrs);
  events_.push_back(std::move(e));
}

std::vector<Tracer::SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> records;
  std::map<uint64_t, size_t> open;  // span id -> index into records
  for (const Event& e : events_) {
    if (e.kind == Event::Kind::kBegin) {
      SpanRecord r;
      r.name = e.name;
      r.id = e.id;
      r.parent = e.parent;
      r.tid = e.tid;
      r.begin_us = e.ts_us;
      open[e.id] = records.size();
      records.push_back(std::move(r));
    } else {
      auto it = open.find(e.id);
      if (it == open.end()) continue;
      records[it->second].end_us = e.ts_us;
      records[it->second].attrs = e.attrs;
      open.erase(it);
    }
  }
  // Drop spans still open (no end event yet).
  std::vector<SpanRecord> completed;
  completed.reserve(records.size());
  for (SpanRecord& r : records) {
    if (r.end_us != 0 || open.find(r.id) == open.end()) {
      completed.push_back(std::move(r));
    }
  }
  return completed;
}

Status Tracer::CheckBalanced() const {
  if (dropped_.load(std::memory_order_relaxed) > 0) {
    return Status::Internal("trace truncated: event cap exceeded");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::map<uint32_t, std::vector<uint64_t>> stacks;  // tid -> open span ids
  std::map<uint32_t, uint64_t> last_ts;
  for (const Event& e : events_) {
    uint64_t& last = last_ts[e.tid];
    if (e.ts_us < last) {
      return Status::Internal("trace timestamps not monotone on tid " +
                              std::to_string(e.tid));
    }
    last = e.ts_us;
    std::vector<uint64_t>& stack = stacks[e.tid];
    if (e.kind == Event::Kind::kBegin) {
      stack.push_back(e.id);
    } else {
      if (stack.empty() || stack.back() != e.id) {
        return Status::Internal("unbalanced end event for span " +
                                std::to_string(e.id) + " on tid " +
                                std::to_string(e.tid));
      }
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty()) {
      return Status::Internal(std::to_string(stack.size()) +
                              " span(s) still open on tid " +
                              std::to_string(tid));
    }
  }
  return Status::OK();
}

Status Tracer::WriteChromeTrace(std::ostream& out) const {
  Status balanced = CheckBalanced();
  if (!balanced.ok()) return balanced;
  std::lock_guard<std::mutex> lock(mu_);
  std::map<uint64_t, const char*> names;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out << ",\n";
    first = false;
    if (e.kind == Event::Kind::kBegin) {
      names[e.id] = e.name;
      std::string name;
      AppendJsonEscaped(&name, e.name);
      out << "{\"name\": \"" << name << "\", \"ph\": \"B\", \"pid\": 1, "
          << "\"tid\": " << e.tid << ", \"ts\": " << e.ts_us
          << ", \"args\": {\"span_id\": " << e.id
          << ", \"parent\": " << e.parent << "}}";
    } else {
      std::string name;
      auto it = names.find(e.id);
      AppendJsonEscaped(&name, it != names.end() ? it->second : "?");
      out << "{\"name\": \"" << name << "\", \"ph\": \"E\", \"pid\": 1, "
          << "\"tid\": " << e.tid << ", \"ts\": " << e.ts_us
          << ", \"args\": " << AttrsJson(e.attrs) << "}";
    }
  }
  out << "\n]}\n";
  if (!out.good()) return Status::Internal("trace write failed");
  return Status::OK();
}

Status Tracer::WriteJsonLines(std::ostream& out) const {
  const std::vector<SpanRecord> records = Snapshot();
  for (const SpanRecord& r : records) {
    std::string name;
    AppendJsonEscaped(&name, r.name);
    out << "{\"name\": \"" << name << "\", \"tid\": " << r.tid
        << ", \"ts_us\": " << r.begin_us
        << ", \"dur_us\": " << (r.end_us - r.begin_us)
        << ", \"id\": " << r.id << ", \"parent\": " << r.parent
        << ", \"args\": " << AttrsJson(r.attrs) << "}\n";
  }
  if (!out.good()) return Status::Internal("trace write failed");
  return Status::OK();
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  thread_ids_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Span::SetAttr(std::string key, double value) {
  if (tracer_ == nullptr) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  attrs_.push_back({std::move(key), buf, true});
}

void Span::AttrSigned(std::string key, int64_t value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  attrs_.push_back({std::move(key), buf, true});
}

void Span::AttrUnsigned(std::string key, uint64_t value) {
  if (tracer_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  attrs_.push_back({std::move(key), buf, true});
}

double PhaseTimer::Stop() {
  if (stopped_) return seconds_;
  stopped_ = true;
  seconds_ = elapsed_seconds();
  if (out_seconds_ != nullptr) *out_seconds_ = seconds_;
  MetricsRegistry::Global()
      ->histogram(std::string(name_) + ".seconds")
      ->Observe(seconds_);
  span_.SetAttr("seconds", seconds_);
  span_.End();
  return seconds_;
}

}  // namespace aim::obs
