#ifndef AIM_OBS_METRICS_H_
#define AIM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace aim::obs {

/// \brief Monotonic counter. Relaxed atomic increments: safe to bump from
/// any thread on hot paths (one atomic add, no lock, no allocation).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins floating point gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket exponential histogram (doubling bounds from
/// `kLowestBound`), built for latencies in seconds but unit-agnostic.
/// Observe() is lock-free: one bucket increment plus sum/count updates.
/// Bucket counts, sum, and count are each atomic; a concurrent reader may
/// observe a sum slightly ahead of the matching bucket count (and vice
/// versa), which is the usual monitoring-snapshot contract.
class Histogram {
 public:
  /// Bucket i covers (bound(i-1), bound(i)] with
  /// bound(i) = kLowestBound * 2^i; the last bucket is +inf.
  static constexpr int kBuckets = 40;
  static constexpr double kLowestBound = 1e-9;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Upper bound of `bucket` (+inf for the last).
  static double BucketBound(int bucket);
  double mean() const {
    const uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One metric, flattened for export.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;       // counter/gauge value; histogram sum
  uint64_t count = 0;       // histogram observation count
};

/// \brief Process-wide registry of named metrics.
///
/// Instruments register lazily by name and live for the registry's
/// lifetime: the returned pointers are stable, so hot paths cache them in
/// a function-local static and never pay the name lookup again. ResetAll
/// zeroes values without invalidating pointers (tests and per-run deltas
/// rely on this). All methods are thread-safe.
class MetricsRegistry {
 public:
  /// The processwide registry every pipeline stage reports into.
  static MetricsRegistry* Global();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Zeroes every instrument; registered pointers stay valid.
  void ResetAll();

  /// Alphabetical flat snapshot of every instrument.
  std::vector<MetricSample> Snapshot() const;

  /// One JSON object: {"name": value, ..., "hist": {"count": n, "sum": s,
  /// "mean": m}} — the same shape bench_json.h sections use, so
  /// BENCH_results.json consumers can ingest it unchanged.
  void WriteJson(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace aim::obs

#endif  // AIM_OBS_METRICS_H_
