#ifndef AIM_OBS_TRACE_H_
#define AIM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace aim::obs {

/// One span attribute. Numeric attributes export unquoted so Perfetto can
/// aggregate them; everything else exports as a JSON string.
struct TraceAttr {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// \brief Low-overhead structured tracer: nestable RAII spans, per-thread
/// attribution, exporters to JSON-lines and Chrome `trace_event` format
/// (loadable in about:tracing / Perfetto).
///
/// The disabled-mode contract the pipeline is instrumented against: a
/// span on `Tracer::Disabled()` (or any tracer that is not enabled) costs
/// exactly one predictable branch in the Span constructor and one in the
/// destructor — no lock, no allocation, no clock read. Tracing therefore
/// never changes pipeline decisions; `ctest -L equivalence` pins
/// selections bit-identical with tracing on and off.
///
/// Timestamps come from a per-tracer clock. `Clock::kSteady` reads the
/// monotonic wall clock (microseconds since tracer construction);
/// `Clock::kVirtual` is a deterministic event counter — every Begin/End
/// advances it by one, so tests get reproducible traces with no
/// wall-clock reads at all (the same virtual-time idiom as RetryPolicy).
///
/// Thread model: Begin/End append to a mutex-guarded event log. Each
/// thread carries its own span stack, so spans opened on a worker thread
/// nest under that worker's enclosing span; fan-out code passes an
/// explicit parent id to attach a worker's root span (e.g. a per-shard
/// validation) under the orchestrator's span.
class Tracer {
 public:
  enum class Clock { kSteady, kVirtual };

  explicit Tracer(Clock clock = Clock::kSteady);

  /// The canonical no-op tracer: `enabled()` is false, spans on it record
  /// nothing. This is the default installed tracer.
  static Tracer* Disabled();

  /// The currently installed process-wide tracer (never null).
  static Tracer* Get();

  /// Installs `tracer` (null restores Disabled()); returns the previous
  /// one. The caller keeps ownership and must keep the tracer alive until
  /// it is uninstalled.
  static Tracer* Install(Tracer* tracer);

  bool enabled() const { return enabled_; }

  /// Starts a span; returns its id. `parent` 0 means "the innermost open
  /// span on this thread" (1-based ids; 0 doubles as "no parent"). Called
  /// via Span, not directly.
  uint64_t BeginSpan(const char* name, uint64_t parent = 0);
  /// Ends span `id`, attaching `attrs` to its end event.
  void EndSpan(uint64_t id, std::vector<TraceAttr> attrs);

  /// A completed span, reassembled from its begin/end events.
  struct SpanRecord {
    std::string name;
    uint64_t id = 0;
    uint64_t parent = 0;
    uint32_t tid = 0;
    uint64_t begin_us = 0;
    uint64_t end_us = 0;
    std::vector<TraceAttr> attrs;
  };

  /// Every completed span, in begin order. Open spans are excluded.
  std::vector<SpanRecord> Snapshot() const;

  /// Structural self-check: every begin has a matching end, per-thread
  /// events are properly nested (LIFO), timestamps are monotone per
  /// thread, and no event was dropped by the event cap. The exporters
  /// serialize the event log directly, so a tracer that passes this check
  /// exports balanced B/E Chrome traces by construction.
  Status CheckBalanced() const;

  /// Chrome trace_event JSON: {"traceEvents": [...]} with one "B" and one
  /// "E" event per span, in recorded order. Load in about:tracing or
  /// https://ui.perfetto.dev.
  Status WriteChromeTrace(std::ostream& out) const;

  /// One JSON object per line per completed span:
  /// {"name": ..., "tid": ..., "ts_us": ..., "dur_us": ..., "id": ...,
  ///  "parent": ..., "args": {...}}
  Status WriteJsonLines(std::ostream& out) const;

  size_t event_count() const;
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear();

 protected:
  struct DisabledTag {};
  explicit Tracer(DisabledTag)
      : enabled_(false),
        clock_(Clock::kSteady),
        epoch_(std::chrono::steady_clock::now()) {}

 private:
  struct Event {
    enum class Kind { kBegin, kEnd };
    Kind kind = Kind::kBegin;
    uint64_t id = 0;
    uint64_t parent = 0;  // begin only
    const char* name = nullptr;  // begin only; static-storage span names
    uint32_t tid = 0;
    uint64_t ts_us = 0;
    std::vector<TraceAttr> attrs;  // end only
  };

  uint64_t Now();
  uint32_t ThreadIdLocked();

  const bool enabled_;
  const Clock clock_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> virtual_ticks_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> dropped_{0};
  /// Truncation guard: traces past this size stop recording (and
  /// CheckBalanced reports the loss) rather than exhausting memory.
  static constexpr size_t kMaxEvents = 4u << 20;

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, uint32_t> thread_ids_;
};

/// \brief RAII span. On a disabled tracer, construction and destruction
/// are each a single branch.
class Span {
 public:
  Span(Tracer* tracer, const char* name, uint64_t parent = 0)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(name, parent);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Ends the span early (idempotent); later SetAttr calls are no-ops.
  void End() {
    if (tracer_ == nullptr) return;
    tracer_->EndSpan(id_, std::move(attrs_));
    tracer_ = nullptr;
  }

  bool enabled() const { return tracer_ != nullptr; }
  /// This span's id, for parenting cross-thread children. 0 when
  /// disabled — which BeginSpan interprets as "no explicit parent", so
  /// passing a disabled span's id through fan-out code is harmless.
  uint64_t id() const { return id_; }

  void SetAttr(std::string key, std::string value) {
    if (tracer_ == nullptr) return;
    attrs_.push_back({std::move(key), std::move(value), false});
  }
  void SetAttr(std::string key, const char* value) {
    SetAttr(std::move(key), std::string(value));
  }
  void SetAttr(std::string key, double value);
  void SetAttr(std::string key, bool value) {
    AttrUnsigned(std::move(key), value ? 1 : 0);
  }
  template <typename T>
    requires std::is_integral_v<T>
  void SetAttr(std::string key, T value) {
    if constexpr (std::is_signed_v<T>) {
      AttrSigned(std::move(key), static_cast<int64_t>(value));
    } else {
      AttrUnsigned(std::move(key), static_cast<uint64_t>(value));
    }
  }

 private:
  void AttrSigned(std::string key, int64_t value);
  void AttrUnsigned(std::string key, uint64_t value);

  Tracer* tracer_;
  uint64_t id_ = 0;
  std::vector<TraceAttr> attrs_;
};

/// \brief Phase stopwatch: the one timing system the whole pipeline
/// reports through. Always measures wall time (the phases it wraps are
/// coarse — a handful per advisor run), records the duration into the
/// global MetricsRegistry histogram `<name>.seconds`, optionally writes
/// it to `*out_seconds` (how AimRunStats fields are sourced), and opens a
/// span of the same name on the installed tracer.
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name, double* out_seconds = nullptr,
                      uint64_t parent_span = 0)
      : span_(Tracer::Get(), name, parent_span),
        name_(name),
        out_seconds_(out_seconds),
        start_(std::chrono::steady_clock::now()) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { Stop(); }

  /// Ends the measurement early (idempotent); returns elapsed seconds.
  double Stop();

  /// Elapsed seconds so far without stopping.
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  Span* span() { return &span_; }

 private:
  Span span_;
  const char* name_;
  double* out_seconds_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
  double seconds_ = 0.0;
};

}  // namespace aim::obs

#endif  // AIM_OBS_TRACE_H_
