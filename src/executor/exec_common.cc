#include "executor/exec_common.h"

#include "common/strings.h"

namespace aim::executor {

using optimizer::AnalyzedQuery;
using sql::Expr;
using sql::Value;
using storage::Row;

bool LikeMatch(const std::string& text, const std::string& pattern,
               size_t ti, size_t pi) {
  while (pi < pattern.size()) {
    const char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive '%'.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t t = ti; t <= text.size(); ++t) {
        if (LikeMatch(text, pattern, t, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && text[ti] != pc) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

std::string PrefixSuccessor(std::string prefix) {
  while (!prefix.empty()) {
    if (static_cast<unsigned char>(prefix.back()) < 0xFF) {
      prefix.back() = static_cast<char>(prefix.back() + 1);
      return prefix;
    }
    prefix.pop_back();
  }
  return prefix;  // empty: unbounded
}

std::optional<optimizer::BoundColumn> ExecContext::Resolve(
    const Expr& col) const {
  for (int i = 0; i < static_cast<int>(query_->instances.size()); ++i) {
    const auto& inst = query_->instances[i];
    if (!col.table.empty() && !EqualsIgnoreCase(inst.alias, col.table)) {
      continue;
    }
    auto c = db_->catalog().table(inst.table).FindColumn(col.column);
    if (c.has_value()) return optimizer::BoundColumn{i, *c};
  }
  return std::nullopt;
}

std::optional<Value> ExecContext::Eval(const Expr& e) const {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.value;
    case Expr::Kind::kParam:
      return std::nullopt;  // executor requires literal statements
    case Expr::Kind::kColumn: {
      auto bc = Resolve(e);
      if (!bc.has_value()) return std::nullopt;
      const Row* row = bound_[bc->instance];
      if (row == nullptr) return std::nullopt;
      return (*row)[bc->column];
    }
    default:
      return std::nullopt;
  }
}

std::optional<bool> ExecContext::EvalPred(const Expr& e) const {
  switch (e.kind) {
    case Expr::Kind::kAnd: {
      bool unknown = false;
      for (const auto& c : e.children) {
        auto v = EvalPred(*c);
        if (!v.has_value()) {
          unknown = true;
        } else if (!*v) {
          return false;
        }
      }
      if (unknown) return std::nullopt;
      return true;
    }
    case Expr::Kind::kOr: {
      bool unknown = false;
      for (const auto& c : e.children) {
        auto v = EvalPred(*c);
        if (!v.has_value()) {
          unknown = true;
        } else if (*v) {
          return true;
        }
      }
      if (unknown) return std::nullopt;
      return false;
    }
    case Expr::Kind::kNot: {
      auto v = EvalPred(*e.children[0]);
      if (!v.has_value()) return std::nullopt;
      return !*v;
    }
    case Expr::Kind::kComparison: {
      auto lhs = Eval(*e.children[0]);
      auto rhs = Eval(*e.children[1]);
      if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
      if (e.op == sql::CompareOp::kNullSafeEq) {
        return lhs->Compare(*rhs) == 0;
      }
      if (lhs->is_null() || rhs->is_null()) return false;
      if (e.op == sql::CompareOp::kLike) {
        if (lhs->kind() != Value::Kind::kString ||
            rhs->kind() != Value::Kind::kString) {
          return false;
        }
        return LikeMatch(lhs->AsString(), rhs->AsString());
      }
      const int c = lhs->Compare(*rhs);
      switch (e.op) {
        case sql::CompareOp::kEq:
          return c == 0;
        case sql::CompareOp::kNe:
          return c != 0;
        case sql::CompareOp::kLt:
          return c < 0;
        case sql::CompareOp::kLe:
          return c <= 0;
        case sql::CompareOp::kGt:
          return c > 0;
        case sql::CompareOp::kGe:
          return c >= 0;
        default:
          return false;
      }
    }
    case Expr::Kind::kInList: {
      auto lhs = Eval(*e.children[0]);
      if (!lhs.has_value()) return std::nullopt;
      if (lhs->is_null()) return false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        auto v = Eval(*e.children[i]);
        if (!v.has_value()) return std::nullopt;
        if (!v->is_null() && lhs->Compare(*v) == 0) return true;
      }
      return false;
    }
    case Expr::Kind::kBetween: {
      auto lhs = Eval(*e.children[0]);
      auto lo = Eval(*e.children[1]);
      auto hi = Eval(*e.children[2]);
      if (!lhs.has_value() || !lo.has_value() || !hi.has_value()) {
        return std::nullopt;
      }
      if (lhs->is_null() || lo->is_null() || hi->is_null()) return false;
      return lhs->Compare(*lo) >= 0 && lhs->Compare(*hi) <= 0;
    }
    case Expr::Kind::kIsNull: {
      auto lhs = Eval(*e.children[0]);
      if (!lhs.has_value()) return std::nullopt;
      return e.negated ? !lhs->is_null() : lhs->is_null();
    }
    default:
      return true;  // opaque leaves pass (conservative)
  }
}

void ExecContext::FinalizeCost() {
  // The fold order is the bit-identity contract: step slots in plan order,
  // then the tail. See the header comment.
  double acc = 0.0;
  for (const double s : step_cost_) acc += s;
  acc += tail_cost_;
  metrics.cost_units = acc;
  metrics.cpu_seconds = cm_->ToCpuSeconds(metrics.cost_units);
  for (const auto& used : step_used_) {
    metrics.used_indexes.insert(metrics.used_indexes.end(), used.begin(),
                                used.end());
  }
}

std::vector<Value> LiteralOptionsFor(const AnalyzedQuery& query,
                                     int instance,
                                     catalog::ColumnId column) {
  for (const auto& p : query.ConjunctsForInstance(instance)) {
    if (p.column.column != column || !p.is_index_prefix()) continue;
    if (p.kind == optimizer::PredKind::kIsNull) {
      return {Value::Null()};
    }
    if (!p.values.empty()) {
      // IN lists may carry duplicate literals ("IN (9, 3, 9)"). Each
      // option becomes one index probe, so a duplicate would emit its
      // rows twice — the heap path evaluates each row once, and the two
      // plans would disagree on answers, not just cost.
      std::vector<Value> unique;
      unique.reserve(p.values.size());
      for (const Value& v : p.values) {
        bool seen = false;
        for (const Value& u : unique) {
          if (u == v) {
            seen = true;
            break;
          }
        }
        if (!seen) unique.push_back(v);
      }
      return unique;
    }
  }
  return {};
}

std::optional<Value> JoinBoundValue(const ExecContext& ctx, int instance,
                                    catalog::ColumnId column) {
  for (const auto& e : ctx.query().joins) {
    if (e.left.instance == instance && e.left.column == column) {
      const Row* other = ctx.bound(e.right.instance);
      if (other != nullptr) return (*other)[e.right.column];
    }
    if (e.right.instance == instance && e.right.column == column) {
      const Row* other = ctx.bound(e.left.instance);
      if (other != nullptr) return (*other)[e.left.column];
    }
  }
  return std::nullopt;
}

bool StaticJoinSource(const AnalyzedQuery& query,
                      const std::vector<int>& step_of_instance,
                      int instance, catalog::ColumnId column, int this_step,
                      int* src_instance, catalog::ColumnId* src_column) {
  // During step s of the nested loop, exactly the instances of steps
  // 0..s-1 are bound, so "partner bound" is a static property. Edge scan
  // order (joins order, left side checked before right) mirrors
  // JoinBoundValue so both engines pick the same source.
  auto bound_before = [&](int other) {
    const int s = step_of_instance[other];
    return s >= 0 && s < this_step;
  };
  for (const auto& e : query.joins) {
    if (e.left.instance == instance && e.left.column == column &&
        bound_before(e.right.instance)) {
      *src_instance = e.right.instance;
      *src_column = e.right.column;
      return true;
    }
    if (e.right.instance == instance && e.right.column == column &&
        bound_before(e.left.instance)) {
      *src_instance = e.left.instance;
      *src_column = e.left.column;
      return true;
    }
  }
  return false;
}

void RangeBoundsFor(const AnalyzedQuery& query, int instance,
                    catalog::ColumnId column,
                    std::optional<storage::KeyBound>* lower,
                    std::optional<storage::KeyBound>* upper) {
  for (const auto& p : query.ConjunctsForInstance(instance)) {
    if (p.column.column != column) continue;
    if (p.kind == optimizer::PredKind::kRange) {
      if (p.has_lower) {
        *lower = storage::KeyBound{Value::Int(p.lower), p.lower_inclusive};
      }
      if (p.has_upper) {
        *upper = storage::KeyBound{Value::Int(p.upper), p.upper_inclusive};
      }
    } else if (p.kind == optimizer::PredKind::kLikePrefix &&
               !p.values.empty()) {
      std::string pat = p.values[0].AsString();
      const size_t cut = pat.find_first_of("%_");
      const std::string prefix =
          cut == std::string::npos ? pat : pat.substr(0, cut);
      if (prefix.empty()) continue;
      *lower = storage::KeyBound{Value::Str(prefix), true};
      const std::string succ = PrefixSuccessor(prefix);
      if (!succ.empty()) {
        *upper = storage::KeyBound{Value::Str(succ), false};
      }
    }
  }
}

}  // namespace aim::executor
