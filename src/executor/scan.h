#ifndef AIM_EXECUTOR_SCAN_H_
#define AIM_EXECUTOR_SCAN_H_

// The scan operator of the batch engine: access paths compiled into
// static descriptors (StepAccess), and the gather routines that turn a
// descriptor into a column batch of candidate rows.
//
// A step whose index probes depend only on literals — full scans, skip
// scans, index merges, and index steps without join-bound key parts — is
// *lane-invariant*: its production is gathered once per statement and
// replayed for every outer lane (the interpreter re-scans the B+Tree for
// every outer row). Join-bound steps are probed in cross-lane batches by
// the join operator instead.
//
// Every gather preserves the exact visit order and visited counts of the
// interpreter's ScanPrefix/ScanSkip/Scan walks, including tie order of
// duplicate keys (std::multimap preserves insertion order) — the batch
// suite pins results and metrics bit-identical, so order here is a
// correctness property, not a nicety.

#include <optional>
#include <vector>

#include "executor/exec_common.h"
#include "optimizer/plan.h"

namespace aim::executor {

/// One key part of a compiled index probe.
struct KeyPart {
  std::vector<sql::Value> literals;  // literal options (deduped IN list)
  bool join_bound = false;
  int src_instance = -1;  // join-bound: partner instance / column
  catalog::ColumnId src_column = 0;

  size_t option_count() const {
    return join_bound ? 1 : literals.size();
  }
};

/// One arm of an index-merge union, with its static probe list.
struct MergeArm {
  const catalog::IndexDef* index = nullptr;
  const storage::BTreeIndex* btree = nullptr;
  std::vector<storage::Row> probes;  // enumeration order
  std::optional<storage::KeyBound> lower;
  std::optional<storage::KeyBound> upper;
};

/// A plan step's access path compiled to static form.
struct StepAccess {
  enum class Kind { kFullScan, kHypoScan, kIndex, kSkipScan, kIndexMerge };

  Kind kind = Kind::kFullScan;
  int instance = 0;
  const storage::HeapTable* heap = nullptr;
  const catalog::IndexDef* index = nullptr;
  const storage::BTreeIndex* btree = nullptr;
  bool covering = false;

  // kIndex:
  std::vector<KeyPart> parts;
  size_t probes_per_lane = 1;  // product of part option counts
  bool lane_invariant = true;  // no join-bound key part

  std::optional<storage::KeyBound> lower;
  std::optional<storage::KeyBound> upper;
  size_t skip_width = 0;  // kSkipScan

  /// kFullScan: heap pages (the interpreter's
  /// max(1, table_bytes / page_size)) for the scan cost formula.
  double pages = 1.0;

  std::vector<MergeArm> arms;  // kIndexMerge, live arms only
};

/// Compiles plan step `step_idx` against the current database state.
/// `step_of_instance` maps instance -> plan step position (-1 = unbound).
StepAccess CompileStepAccess(const ExecContext& ctx,
                             const optimizer::Plan& plan, size_t step_idx,
                             const std::vector<int>& step_of_instance);

/// A gathered production: candidate rows of one step, with the exact
/// visited counts the interpreter's walk would have reported.
struct Production {
  /// Candidate heap rows in interpreter visit order.
  std::vector<const storage::Row*> rows;
  uint64_t visited_total = 0;

  /// kIndex / kSkipScan: per-entry hits aligned with `rows` (IndexHit
  /// carries the cumulative visited count at that entry, for early-stop
  /// accounting) and per-probe spans into them.
  std::vector<storage::IndexHit> hits;
  std::vector<storage::ProbeSpan> spans;

  /// kSkipScan: groups entered up to each hit, and in total.
  std::vector<uint64_t> cum_groups;
  uint64_t groups_total = 0;

  /// kIndexMerge: per-arm probe visited counts (arm-major, probe order).
  std::vector<std::vector<uint64_t>> arm_probe_visited;
};

/// Gathers a lane-invariant step's production. Must not be called for
/// join-bound index steps (their probes vary per lane).
void GatherInvariant(const StepAccess& access, Production* out);

/// Appends the probe rows of one lane of a join-bound index step, in the
/// interpreter's enumeration order (first key part slowest).
void BuildLaneProbes(const StepAccess& access,
                     const storage::Row* const* bound,
                     std::vector<storage::Row>* out);

}  // namespace aim::executor

#endif  // AIM_EXECUTOR_SCAN_H_
