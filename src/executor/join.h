#ifndef AIM_EXECUTOR_JOIN_H_
#define AIM_EXECUTOR_JOIN_H_

// The batch engine's join pipeline.
//
// Bulk mode (the common case) runs breadth-first: all lanes advance
// through one plan step at a time, which lets join-bound index steps sort
// the whole batch's probe keys once and share B+Tree descents between
// duplicate prefixes. Strict mode (LIMIT without sort/grouping, where the
// interpreter stops mid-scan) degenerates to capacity-1 batches — an
// exact depth-first walk — so early-stop metrics stay identical.
//
// Bit-identity with the interpreter rests on two invariants maintained
// here: (1) lanes are produced and emitted in depth-first order, and
// (2) every cost-slot double add is replayed per lane in the same
// per-step sequence the interpreter performs (see exec_common.h).

#include <optional>
#include <vector>

#include "executor/aggregate.h"
#include "executor/batch.h"
#include "executor/exec_common.h"
#include "executor/filter.h"
#include "executor/scan.h"
#include "optimizer/plan.h"

namespace aim::executor {

class BatchEngine {
 public:
  BatchEngine(ExecContext* ctx, const optimizer::Plan& plan,
              const FilterProgram* filter, SelectSink* sink,
              std::vector<int> step_of_instance);

  void Run();

 private:
  const StepAccess& Access(size_t s);
  const Production& Invariant(size_t s);

  /// max(1, n) * descent * random_page / 4 with the interpreter's exact
  /// association.
  double DescentCost(uint64_t n) const;

  // --- bulk (breadth-first) path ---
  void RunBulk();
  /// Produces depth `s` children of `cur` into `next` with per-lane
  /// accounting replay.
  void ProduceBulk(size_t s, const LaneBuffer& cur, LaneBuffer* next);
  void ReplayInvariantLane(size_t s, const StepAccess& a,
                           const Production& p);
  /// Prunes `lanes` through the filter program at depth `s`.
  void FilterDepth(size_t s, LaneBuffer* lanes);

  // --- strict (early-stop, depth-first) path ---
  bool StrictStep(size_t s, const storage::Row** bound);
  bool EmitLane(const storage::Row* const* bound);

  ExecContext* ctx_;
  const optimizer::Plan& plan_;
  const FilterProgram* filter_;
  SelectSink* sink_;
  std::vector<int> step_of_instance_;
  size_t num_instances_;

  std::vector<std::optional<StepAccess>> accesses_;
  std::vector<std::optional<Production>> invariants_;

  // Cost constants, interpreter-identical.
  double c_entry_ = 0.0;  // cpu_index_entry_cost
  double c_fetch_ = 0.0;  // random_page_cost + cpu_row_cost
};

}  // namespace aim::executor

#endif  // AIM_EXECUTOR_JOIN_H_
