#ifndef AIM_EXECUTOR_EXEC_COMMON_H_
#define AIM_EXECUTOR_EXEC_COMMON_H_

// Shared execution machinery of both SELECT engines (the row-at-a-time
// interpreter and the vectorized batch engine) and the DML path: the
// binding/evaluation context, the key-part helpers that turn predicates
// into index probes, and the per-step cost accumulators.
//
// The per-step accumulators exist for bit-identity: both engines add the
// same per-entry cost constants in the same per-step order, but the batch
// engine's pipeline interleaves *across* steps differently than the
// depth-first interpreter. Folding one double accumulator per plan step
// (plus a tail slot for sort/maintenance) in fixed step order at finalize
// makes the floating-point addition sequence — and therefore cost_units
// and cpu_seconds down to the last bit — independent of the engine.

#include <optional>
#include <string>
#include <vector>

#include "executor/metrics.h"
#include "optimizer/cost_model.h"
#include "optimizer/predicate.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace aim::executor {

/// SQL LIKE matcher ('%' = any run, '_' = any one char).
bool LikeMatch(const std::string& text, const std::string& pattern,
               size_t ti = 0, size_t pi = 0);

/// Successor of a string prefix for LIKE 'p%' range scans.
std::string PrefixSuccessor(std::string prefix);

/// Execution context: bound rows per instance + accounting.
class ExecContext {
 public:
  /// `num_steps` sizes the per-step cost/used-index slots (pass
  /// max(1, plan.steps.size()); DML uses slot 0 + the tail).
  ExecContext(storage::Database* db, const optimizer::AnalyzedQuery* query,
              const optimizer::CostModel* cm, size_t num_steps)
      : db_(db),
        query_(query),
        cm_(cm),
        bound_(query->instances.size(), nullptr),
        step_cost_(num_steps, 0.0),
        step_used_(num_steps) {}

  storage::Database* db() const { return db_; }
  const optimizer::AnalyzedQuery& query() const { return *query_; }
  const optimizer::CostModel& cm() const { return *cm_; }

  void Bind(int instance, const storage::Row* row) {
    bound_[instance] = row;
  }
  const storage::Row* bound(int instance) const { return bound_[instance]; }
  /// Raw binding array (indexed by instance), for the shared emission
  /// sink: the batch engine passes per-lane arrays of the same shape.
  const storage::Row* const* bound_data() const { return bound_.data(); }
  size_t num_instances() const { return bound_.size(); }

  /// Resolves a column expression to (instance, column).
  std::optional<optimizer::BoundColumn> Resolve(const sql::Expr& col) const;

  /// Evaluates an expression; returns nullopt when it references an
  /// unbound instance (three-valued partial evaluation).
  std::optional<sql::Value> Eval(const sql::Expr& e) const;

  /// Three-valued predicate evaluation: true / false / unknown (nullopt).
  /// Unknown arises only from unbound instances; SQL NULL comparisons
  /// evaluate to false (two-valued simplification adequate for the
  /// generated workloads).
  std::optional<bool> EvalPred(const sql::Expr& e) const;

  /// \name Cost / used-index accumulation (see file comment).
  /// @{
  void AddStepCost(size_t step, double c) { step_cost_[step] += c; }
  void AddTailCost(double c) { tail_cost_ += c; }
  void UseIndex(size_t step, catalog::IndexId id) {
    step_used_[step].push_back(id);
  }
  /// Folds the slots into metrics.cost_units / metrics.used_indexes in
  /// plan-step order (tail last) and derives cpu_seconds. Call once, at
  /// the end of execution.
  void FinalizeCost();
  /// @}

  ExecutionMetrics metrics;

 private:
  storage::Database* db_;
  const optimizer::AnalyzedQuery* query_;
  const optimizer::CostModel* cm_;
  std::vector<const storage::Row*> bound_;
  std::vector<double> step_cost_;
  double tail_cost_ = 0.0;
  std::vector<std::vector<catalog::IndexId>> step_used_;
};

/// Finds the literal values available for an eq-prefix key part, or an
/// empty vector when the part is only join-bound / unavailable.
std::vector<sql::Value> LiteralOptionsFor(
    const optimizer::AnalyzedQuery& query, int instance,
    catalog::ColumnId column);

/// Join-bound value for a key part: the value from an already-bound
/// partner instance, if any.
std::optional<sql::Value> JoinBoundValue(const ExecContext& ctx,
                                         int instance,
                                         catalog::ColumnId column);

/// The join edge a key part would be bound through, resolved statically:
/// the first edge (in query.joins order) matching (instance, column)
/// whose partner instance is produced by an earlier plan step. Mirrors
/// JoinBoundValue's runtime search, which the batch engine compiles away.
/// Returns false when no such edge exists.
bool StaticJoinSource(const optimizer::AnalyzedQuery& query,
                      const std::vector<int>& step_of_instance,
                      int instance, catalog::ColumnId column, int this_step,
                      int* src_instance, catalog::ColumnId* src_column);

/// Range bound for the key part after the prefix, from literal range /
/// LIKE-prefix predicates.
void RangeBoundsFor(const optimizer::AnalyzedQuery& query, int instance,
                    catalog::ColumnId column,
                    std::optional<storage::KeyBound>* lower,
                    std::optional<storage::KeyBound>* upper);

}  // namespace aim::executor

#endif  // AIM_EXECUTOR_EXEC_COMMON_H_
