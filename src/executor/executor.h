#ifndef AIM_EXECUTOR_EXECUTOR_H_
#define AIM_EXECUTOR_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "executor/metrics.h"
#include "optimizer/optimizer.h"
#include "storage/database.h"

namespace aim::executor {

/// A query result: output rows (select-list shaped) plus observed metrics.
struct ExecuteResult {
  std::vector<storage::Row> rows;
  ExecutionMetrics metrics;
};

/// \brief Interprets optimizer plans against the storage engine.
///
/// Execution is nested-loop join over the plan's join order, using real
/// B+Tree index scans for index paths and heap scans otherwise, with
/// grouping / ordering / limit applied at the end. Every row and index
/// entry touched is counted; the cost model converts the counts into the
/// "CPU seconds" currency the workload monitor reports.
///
/// Statements must be literal (no '?' parameters).
class Executor {
 public:
  Executor(storage::Database* db, optimizer::CostModel cm)
      : db_(db), cm_(cm) {}

  /// Plans (using only real indexes) and executes.
  Result<ExecuteResult> Execute(const sql::Statement& stmt);

  /// Executes with a caller-provided plan (the plan must have been built
  /// against this database's catalog without hypothetical indexes).
  Result<ExecuteResult> ExecutePlanned(const sql::Statement& stmt,
                                       const optimizer::AnalyzedQuery& query,
                                       const optimizer::Plan& plan);

 private:
  Result<ExecuteResult> ExecuteSelect(const sql::Statement& stmt,
                                      const optimizer::AnalyzedQuery& query,
                                      const optimizer::Plan& plan);
  Result<ExecuteResult> ExecuteDml(const sql::Statement& stmt,
                                   const optimizer::AnalyzedQuery& query,
                                   const optimizer::Plan& plan);

  storage::Database* db_;
  optimizer::CostModel cm_;
};

}  // namespace aim::executor

#endif  // AIM_EXECUTOR_EXECUTOR_H_
