#ifndef AIM_EXECUTOR_EXECUTOR_H_
#define AIM_EXECUTOR_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "executor/metrics.h"
#include "optimizer/optimizer.h"
#include "storage/database.h"

namespace aim::executor {

/// A query result: output rows (select-list shaped) plus observed metrics.
struct ExecuteResult {
  std::vector<storage::Row> rows;
  ExecutionMetrics metrics;
};

/// Engine selection and tuning knobs.
struct ExecutorOptions {
  /// SELECT engine. The vectorized batch engine is the default; the
  /// row-at-a-time interpreter remains as the differential oracle the
  /// batch equivalence suite pins against.
  EngineKind engine = EngineKind::kBatch;
};

/// \brief Executes optimizer plans against the storage engine.
///
/// Two SELECT engines share one accounting/emission substrate (see
/// executor/exec_common.h): the original row-at-a-time nested-loop
/// interpreter, and a vectorized batch engine that scans heaps in column
/// batches, evaluates compiled predicates over lane buffers, and probes
/// B+Trees with sorted probe batches. Results and metrics are
/// bit-identical between the two by construction; the batch engine exists
/// because clone-validation replay is executor-bound.
///
/// Statements must be literal (no '?' parameters).
class Executor {
 public:
  Executor(storage::Database* db, optimizer::CostModel cm,
           ExecutorOptions options = {})
      : db_(db), cm_(cm), options_(options) {}

  /// Plans (using only real indexes) and executes.
  Result<ExecuteResult> Execute(const sql::Statement& stmt);

  /// Executes with a caller-provided plan (the plan must have been built
  /// against this database's catalog without hypothetical indexes).
  Result<ExecuteResult> ExecutePlanned(const sql::Statement& stmt,
                                       const optimizer::AnalyzedQuery& query,
                                       const optimizer::Plan& plan);

 private:
  Result<ExecuteResult> ExecuteSelect(const sql::Statement& stmt,
                                      const optimizer::AnalyzedQuery& query,
                                      const optimizer::Plan& plan);
  Result<ExecuteResult> ExecuteDml(const sql::Statement& stmt,
                                   const optimizer::AnalyzedQuery& query,
                                   const optimizer::Plan& plan);

  storage::Database* db_;
  optimizer::CostModel cm_;
  ExecutorOptions options_;
};

}  // namespace aim::executor

#endif  // AIM_EXECUTOR_EXECUTOR_H_
