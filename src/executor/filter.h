#ifndef AIM_EXECUTOR_FILTER_H_
#define AIM_EXECUTOR_FILTER_H_

// Compiled predicate evaluation for the batch engine.
//
// The row interpreter re-resolves every column reference by name on every
// row (ExecContext::Resolve walks instances and does a string column
// lookup); that resolution dominated replay profiles. Compilation resolves
// references once per statement into (instance, column) slots read
// straight off a lane's binding array.
//
// Semantics contract: EvalCompiled() is an exact mirror of
// ExecContext::EvalPred (three-valued logic, NULL handling, LIKE type
// checks, IN-list unknown short-circuit) — the batch suite pins the two
// engines bit-identical, so any divergence here is a test failure, not a
// quiet skew.

#include <cstdint>
#include <optional>
#include <vector>

#include "executor/exec_common.h"

namespace aim::executor {

enum class Tri : uint8_t { kFalse, kTrue, kUnknown };

/// A value operand resolved at compile time. kUnknown covers '?' params,
/// unresolvable columns, and opaque expression kinds — everything
/// ExecContext::Eval answers nullopt for regardless of bindings.
struct CompiledValue {
  enum class Kind : uint8_t { kLiteral, kColumn, kUnknown };
  Kind kind = Kind::kUnknown;
  sql::Value literal;
  int instance = -1;
  catalog::ColumnId column = 0;

  /// The value under `bound` (indexed by instance), or nullptr when
  /// unknown. Mirrors ExecContext::Eval.
  const sql::Value* Get(const storage::Row* const* bound) const {
    switch (kind) {
      case Kind::kLiteral:
        return &literal;
      case Kind::kColumn: {
        const storage::Row* row = bound[instance];
        return row == nullptr ? nullptr : &(*row)[column];
      }
      default:
        return nullptr;
    }
  }
  /// True when Get can return nullptr even with every step's instance
  /// bound (params, unresolved references).
  bool unknown_capable(const std::vector<int>& step_of_instance) const {
    if (kind == Kind::kUnknown) return true;
    return kind == Kind::kColumn && step_of_instance[instance] < 0;
  }
  /// Plan depth at which this operand becomes readable (0 for literals
  /// and never-bound references).
  int depth(const std::vector<int>& step_of_instance) const {
    if (kind != Kind::kColumn) return 0;
    const int s = step_of_instance[instance];
    return s < 0 ? 0 : s;
  }
};

/// Compiles a value expression against the query's instances.
CompiledValue CompileValue(const sql::Expr& e, const ExecContext& ctx);

/// A predicate tree with pre-resolved operands.
struct CompiledPred {
  sql::Expr::Kind kind = sql::Expr::Kind::kLiteral;
  sql::CompareOp op = sql::CompareOp::kEq;
  bool negated = false;
  std::vector<CompiledPred> children;   // kAnd / kOr / kNot
  std::vector<CompiledValue> operands;  // leaf operands, child order
};

CompiledPred CompilePred(const sql::Expr& e, const ExecContext& ctx);

/// Three-valued evaluation over a lane's binding array; exact mirror of
/// ExecContext::EvalPred.
Tri EvalCompiled(const CompiledPred& p, const storage::Row* const* bound);

/// \brief The WHERE clause as scheduled conjuncts.
///
/// The top-level AND is flattened; each conjunct is checked at plan
/// depths [first_check, last_check], where last_check is the step binding
/// its deepest resolved reference (its value is fixed from there on) and
/// first_check is a safe lower bound on the first depth it can evaluate
/// to a definite false. Checking earlier than the row interpreter would
/// is harmless — lanes are pruned only on definite kFalse, and
/// three-valued evaluation is monotone in bindings — so lower bounds are
/// always safe.
///
/// Conjuncts containing unknown-capable operands can still be kUnknown
/// with every instance bound; those are re-checked at emit time requiring
/// a definite kTrue, mirroring the interpreter's EmitCombination.
class FilterProgram {
 public:
  FilterProgram(const sql::Expr* where, const ExecContext& ctx,
                const std::vector<int>& step_of_instance, int num_steps);

  /// Prune check after binding step `depth`. False = lane rejected.
  bool CheckLane(int depth, const storage::Row* const* bound) const {
    for (const int ci : by_depth_[depth]) {
      if (EvalCompiled(conjuncts_[ci].pred, bound) == Tri::kFalse) {
        return false;
      }
    }
    return true;
  }

  /// Final check: every emit-check conjunct must be definitively true.
  bool EmitCheck(const storage::Row* const* bound) const {
    for (const int ci : emit_checks_) {
      if (EvalCompiled(conjuncts_[ci].pred, bound) != Tri::kTrue) {
        return false;
      }
    }
    return true;
  }

  size_t conjunct_count() const { return conjuncts_.size(); }

 private:
  struct Conjunct {
    CompiledPred pred;
    int first_check = 0;
    int last_check = 0;
    bool emit_check = false;
  };
  std::vector<Conjunct> conjuncts_;
  std::vector<std::vector<int>> by_depth_;  // conjunct ids per depth
  std::vector<int> emit_checks_;
};

}  // namespace aim::executor

#endif  // AIM_EXECUTOR_FILTER_H_
