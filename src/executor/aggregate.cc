#include "executor/aggregate.h"

#include <algorithm>

namespace aim::executor {

using sql::Expr;
using sql::Value;
using storage::Row;

Value AggState::Final(sql::AggFunc func) const {
  switch (func) {
    case sql::AggFunc::kCount:
      return Value::Int(static_cast<int64_t>(count));
    case sql::AggFunc::kSum:
      return count == 0 ? Value::Null() : Value::Real(sum);
    case sql::AggFunc::kAvg:
      return count == 0 ? Value::Null()
                        : Value::Real(sum / static_cast<double>(count));
    case sql::AggFunc::kMin:
      return has_minmax ? min : Value::Null();
    case sql::AggFunc::kMax:
      return has_minmax ? max : Value::Null();
    case sql::AggFunc::kNone:
      break;
  }
  return Value::Null();
}

SelectSink::SelectSink(const sql::SelectStatement& select,
                       const optimizer::AnalyzedQuery& query,
                       const optimizer::Plan& plan, ExecContext* ctx)
    : ctx_(ctx),
      select_(select),
      num_instances_(query.instances.size()) {
  grouped_ = query.has_group_by || query.has_aggregate;
  needs_sort_ = plan.needs_sort;
  limit_ = select.limit >= 0 ? select.limit : -1;
  can_stop_early_ = !grouped_ && !needs_sort_ && limit_ >= 0;

  items_.reserve(select.select_list.size());
  for (const auto& item : select.select_list) {
    Item it;
    switch (item->kind) {
      case Expr::Kind::kStar:
        it.kind = Item::Kind::kStar;
        break;
      case Expr::Kind::kAggregate:
        it.kind = Item::Kind::kAggregate;
        it.agg = item->agg;
        if (item->children.empty() ||
            item->children[0]->kind == Expr::Kind::kStar) {
          it.count_star = true;
        } else {
          it.value = CompileValue(*item->children[0], *ctx);
        }
        break;
      default:
        it.kind = Item::Kind::kValue;
        it.value = CompileValue(*item, *ctx);
        break;
    }
    items_.push_back(std::move(it));
  }
  for (const auto& o : select.order_by) {
    order_exprs_.push_back(CompileValue(*o.expr, *ctx));
    order_asc_.push_back(o.ascending);
  }
  for (const auto& g : select.group_by) {
    group_exprs_.push_back(CompileValue(*g, *ctx));
  }

  if (!grouped_) {
    // Reserve from the optimizer's cardinality estimate (clamped by the
    // LIMIT when one applies and a sanity cap): replays of the same
    // template then fill a right-sized buffer instead of growing it.
    double est = plan.est_result_rows;
    if (limit_ >= 0 && !needs_sort_) {
      est = std::min(est, static_cast<double>(limit_));
    }
    const size_t cap = 1u << 20;
    const size_t reserve = static_cast<size_t>(
        std::min(std::max(est, 0.0), static_cast<double>(cap)));
    ungrouped_.reserve(reserve);
  }
}

Row SelectSink::Project(const Row* const* bound) const {
  Row out;
  for (const auto& it : items_) {
    switch (it.kind) {
      case Item::Kind::kStar: {
        for (size_t i = 0; i < num_instances_; ++i) {
          const Row* row = bound[i];
          if (row != nullptr) {
            out.insert(out.end(), row->begin(), row->end());
          }
        }
        break;
      }
      case Item::Kind::kAggregate:
        out.push_back(Value::Null());  // filled during finalization
        break;
      case Item::Kind::kValue: {
        const Value* v = it.value.Get(bound);
        out.push_back(v != nullptr ? *v : Value::Null());
        break;
      }
    }
  }
  return out;
}

bool SelectSink::Emit(const Row* const* bound) {
  ++rows_emitted_;
  if (grouped_) {
    Row key;
    key.reserve(group_exprs_.size());
    for (const auto& g : group_exprs_) {
      const Value* v = g.Get(bound);
      key.push_back(v != nullptr ? *v : Value::Null());
    }
    auto [it, inserted] = groups_.try_emplace(key, items_.size());
    if (inserted) group_first_values_.emplace(key, Project(bound));
    for (size_t i = 0; i < items_.size(); ++i) {
      const Item& item = items_[i];
      if (item.kind != Item::Kind::kAggregate) continue;
      if (item.count_star) {
        it->second[i].Add(Value::Int(1));
      } else {
        const Value* v = item.value.Get(bound);
        it->second[i].Add(v != nullptr ? *v : Value::Null());
      }
    }
    return true;
  }
  Row key;
  key.reserve(order_exprs_.size());
  for (const auto& o : order_exprs_) {
    const Value* v = o.Get(bound);
    key.push_back(v != nullptr ? *v : Value::Null());
  }
  ungrouped_.emplace_back(std::move(key), Project(bound));
  ++emitted_;
  if (can_stop_early_ && emitted_ >= limit_) return false;
  return true;
}

void SelectSink::Finalize(std::vector<Row>* out) {
  const optimizer::CostModel& cm = ctx_->cm();
  if (grouped_) {
    out->reserve(out->size() + groups_.size());
    for (auto& [key, states] : groups_) {
      Row row = group_first_values_[key];
      for (size_t i = 0; i < items_.size(); ++i) {
        if (items_[i].kind == Item::Kind::kAggregate) {
          row[i] = states[i].Final(items_[i].agg);
        }
      }
      out->push_back(std::move(row));
    }
    // Grouping via std::map is already in group-key order; an explicit
    // ORDER BY on other columns is not supported for grouped queries.
    if (needs_sort_) {
      ctx_->metrics.rows_sorted += out->size();
      ctx_->AddTailCost(cm.SortCost(static_cast<double>(out->size())));
    }
    if (limit_ >= 0 && static_cast<int64_t>(out->size()) > limit_) {
      out->resize(limit_);
    }
    return;
  }
  if (needs_sort_ && !order_exprs_.empty()) {
    std::stable_sort(ungrouped_.begin(), ungrouped_.end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t i = 0; i < a.first.size(); ++i) {
                         const int c = a.first[i].Compare(b.first[i]);
                         if (c != 0) return order_asc_[i] ? c < 0 : c > 0;
                       }
                       return false;
                     });
    ctx_->metrics.rows_sorted += ungrouped_.size();
    ctx_->AddTailCost(cm.SortCost(static_cast<double>(ungrouped_.size())));
  }
  const size_t n =
      limit_ >= 0 ? std::min(ungrouped_.size(), static_cast<size_t>(limit_))
                  : ungrouped_.size();
  out->reserve(out->size() + n);
  for (auto& [key, row] : ungrouped_) {
    out->push_back(std::move(row));
    if (limit_ >= 0 && static_cast<int64_t>(out->size()) >= limit_) {
      break;
    }
  }
}

}  // namespace aim::executor
