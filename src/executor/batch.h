#ifndef AIM_EXECUTOR_BATCH_H_
#define AIM_EXECUTOR_BATCH_H_

// The batch engine's working representation: a lane is one partial join
// combination — an array of row pointers indexed by table *instance*
// (nullptr = not yet bound), the same shape ExecContext keeps for the row
// interpreter, so the shared sink and filters work on both. A LaneBuffer
// is a flat lanes x instances pointer matrix; lane order is depth-first
// production order, which is what keeps emission order (and therefore
// aggregation and stable-sort inputs) identical to the interpreter.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "storage/row.h"

namespace aim::executor {

class LaneBuffer {
 public:
  explicit LaneBuffer(size_t stride) : stride_(stride) {}

  size_t stride() const { return stride_; }
  size_t size() const { return stride_ == 0 ? 0 : data_.size() / stride_; }
  bool empty() const { return data_.empty(); }

  const storage::Row* const* lane(size_t i) const {
    return data_.data() + i * stride_;
  }

  void Clear() { data_.clear(); }
  void ReserveLanes(size_t lanes) { data_.reserve(lanes * stride_); }

  /// Seeds the buffer with one all-null lane (the join root).
  void PushEmptyLane() { data_.resize(data_.size() + stride_, nullptr); }

  /// Appends a copy of `parent` with `instance` bound to `row`. `parent`
  /// must not point into this buffer (resize may reallocate).
  void PushChild(const storage::Row* const* parent, int instance,
                 const storage::Row* row) {
    const size_t base = data_.size();
    data_.resize(base + stride_);
    std::copy(parent, parent + stride_, data_.begin() + base);
    data_[base + instance] = row;
  }

  /// Keeps only the lanes whose indices are in `keep` (ascending),
  /// preserving order.
  void Compact(const std::vector<size_t>& keep) {
    size_t w = 0;
    for (const size_t i : keep) {
      if (i != w) {
        std::copy(data_.begin() + i * stride_,
                  data_.begin() + (i + 1) * stride_,
                  data_.begin() + w * stride_);
      }
      ++w;
    }
    data_.resize(w * stride_);
  }

  void Swap(LaneBuffer& other) {
    data_.swap(other.data_);
    std::swap(stride_, other.stride_);
  }

 private:
  size_t stride_;
  std::vector<const storage::Row*> data_;
};

}  // namespace aim::executor

#endif  // AIM_EXECUTOR_BATCH_H_
