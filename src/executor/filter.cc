#include "executor/filter.h"

#include <algorithm>

namespace aim::executor {

using sql::Expr;
using sql::Value;

CompiledValue CompileValue(const Expr& e, const ExecContext& ctx) {
  CompiledValue v;
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      v.kind = CompiledValue::Kind::kLiteral;
      v.literal = e.value;
      break;
    case Expr::Kind::kColumn: {
      auto bc = ctx.Resolve(e);
      if (bc.has_value()) {
        v.kind = CompiledValue::Kind::kColumn;
        v.instance = bc->instance;
        v.column = bc->column;
      }
      break;
    }
    default:
      break;  // kParam and opaque kinds stay kUnknown
  }
  return v;
}

CompiledPred CompilePred(const Expr& e, const ExecContext& ctx) {
  CompiledPred p;
  p.kind = e.kind;
  p.op = e.op;
  p.negated = e.negated;
  switch (e.kind) {
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
    case Expr::Kind::kNot:
      p.children.reserve(e.children.size());
      for (const auto& c : e.children) {
        p.children.push_back(CompilePred(*c, ctx));
      }
      break;
    case Expr::Kind::kComparison:
    case Expr::Kind::kInList:
    case Expr::Kind::kBetween:
    case Expr::Kind::kIsNull:
      p.operands.reserve(e.children.size());
      for (const auto& c : e.children) {
        p.operands.push_back(CompileValue(*c, ctx));
      }
      break;
    default:
      break;  // opaque predicate: evaluates kTrue
  }
  return p;
}

Tri EvalCompiled(const CompiledPred& p, const storage::Row* const* bound) {
  switch (p.kind) {
    case Expr::Kind::kAnd: {
      bool unknown = false;
      for (const auto& c : p.children) {
        const Tri v = EvalCompiled(c, bound);
        if (v == Tri::kUnknown) {
          unknown = true;
        } else if (v == Tri::kFalse) {
          return Tri::kFalse;
        }
      }
      return unknown ? Tri::kUnknown : Tri::kTrue;
    }
    case Expr::Kind::kOr: {
      bool unknown = false;
      for (const auto& c : p.children) {
        const Tri v = EvalCompiled(c, bound);
        if (v == Tri::kUnknown) {
          unknown = true;
        } else if (v == Tri::kTrue) {
          return Tri::kTrue;
        }
      }
      return unknown ? Tri::kUnknown : Tri::kFalse;
    }
    case Expr::Kind::kNot: {
      const Tri v = EvalCompiled(p.children[0], bound);
      if (v == Tri::kUnknown) return Tri::kUnknown;
      return v == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
    }
    case Expr::Kind::kComparison: {
      const Value* lhs = p.operands[0].Get(bound);
      const Value* rhs = p.operands[1].Get(bound);
      if (lhs == nullptr || rhs == nullptr) return Tri::kUnknown;
      if (p.op == sql::CompareOp::kNullSafeEq) {
        return lhs->Compare(*rhs) == 0 ? Tri::kTrue : Tri::kFalse;
      }
      if (lhs->is_null() || rhs->is_null()) return Tri::kFalse;
      if (p.op == sql::CompareOp::kLike) {
        if (lhs->kind() != Value::Kind::kString ||
            rhs->kind() != Value::Kind::kString) {
          return Tri::kFalse;
        }
        return LikeMatch(lhs->AsString(), rhs->AsString()) ? Tri::kTrue
                                                           : Tri::kFalse;
      }
      const int c = lhs->Compare(*rhs);
      bool r = false;
      switch (p.op) {
        case sql::CompareOp::kEq:
          r = c == 0;
          break;
        case sql::CompareOp::kNe:
          r = c != 0;
          break;
        case sql::CompareOp::kLt:
          r = c < 0;
          break;
        case sql::CompareOp::kLe:
          r = c <= 0;
          break;
        case sql::CompareOp::kGt:
          r = c > 0;
          break;
        case sql::CompareOp::kGe:
          r = c >= 0;
          break;
        default:
          r = false;
          break;
      }
      return r ? Tri::kTrue : Tri::kFalse;
    }
    case Expr::Kind::kInList: {
      const Value* lhs = p.operands[0].Get(bound);
      if (lhs == nullptr) return Tri::kUnknown;
      if (lhs->is_null()) return Tri::kFalse;
      for (size_t i = 1; i < p.operands.size(); ++i) {
        const Value* v = p.operands[i].Get(bound);
        if (v == nullptr) return Tri::kUnknown;
        if (!v->is_null() && lhs->Compare(*v) == 0) return Tri::kTrue;
      }
      return Tri::kFalse;
    }
    case Expr::Kind::kBetween: {
      const Value* lhs = p.operands[0].Get(bound);
      const Value* lo = p.operands[1].Get(bound);
      const Value* hi = p.operands[2].Get(bound);
      if (lhs == nullptr || lo == nullptr || hi == nullptr) {
        return Tri::kUnknown;
      }
      if (lhs->is_null() || lo->is_null() || hi->is_null()) {
        return Tri::kFalse;
      }
      return lhs->Compare(*lo) >= 0 && lhs->Compare(*hi) <= 0 ? Tri::kTrue
                                                              : Tri::kFalse;
    }
    case Expr::Kind::kIsNull: {
      const Value* lhs = p.operands[0].Get(bound);
      if (lhs == nullptr) return Tri::kUnknown;
      const bool n = lhs->is_null();
      return (p.negated ? !n : n) ? Tri::kTrue : Tri::kFalse;
    }
    default:
      return Tri::kTrue;  // opaque leaves pass (conservative)
  }
}

namespace {

/// Deepest plan step among resolved operand references in the subtree.
int RefsMax(const CompiledPred& p, const std::vector<int>& soi) {
  int d = 0;
  for (const auto& o : p.operands) d = std::max(d, o.depth(soi));
  for (const auto& c : p.children) d = std::max(d, RefsMax(c, soi));
  return d;
}

bool HasUnknownCapable(const CompiledPred& p, const std::vector<int>& soi) {
  for (const auto& o : p.operands) {
    if (o.unknown_capable(soi)) return true;
  }
  for (const auto& c : p.children) {
    if (HasUnknownCapable(c, soi)) return true;
  }
  return false;
}

int FirstTrue(const CompiledPred& p, const std::vector<int>& soi,
              int num_steps);

/// Lower bound on the first depth the subtree can evaluate to a definite
/// false. Leaves need all their operands bound; AND is false as soon as
/// any child is, OR only once every child is, NOT once the child is true.
int FirstFalse(const CompiledPred& p, const std::vector<int>& soi,
               int num_steps) {
  switch (p.kind) {
    case Expr::Kind::kAnd: {
      int d = num_steps;  // empty AND is never false
      for (const auto& c : p.children) {
        d = std::min(d, FirstFalse(c, soi, num_steps));
      }
      return d;
    }
    case Expr::Kind::kOr: {
      int d = 0;
      for (const auto& c : p.children) {
        d = std::max(d, FirstFalse(c, soi, num_steps));
      }
      return d;
    }
    case Expr::Kind::kNot:
      return FirstTrue(p.children[0], soi, num_steps);
    case Expr::Kind::kInList:
      // IN is definitively false as soon as the probe value is NULL —
      // EvalPred short-circuits before touching the elements — so the
      // probe operand's depth is the safe lower bound, not RefsMax.
      return p.operands[0].depth(soi);
    case Expr::Kind::kComparison:
    case Expr::Kind::kBetween:
    case Expr::Kind::kIsNull:
      return RefsMax(p, soi);
    default:
      return num_steps;  // opaque: never false
  }
}

int FirstTrue(const CompiledPred& p, const std::vector<int>& soi,
              int num_steps) {
  switch (p.kind) {
    case Expr::Kind::kAnd: {
      int d = 0;
      for (const auto& c : p.children) {
        d = std::max(d, FirstTrue(c, soi, num_steps));
      }
      return d;
    }
    case Expr::Kind::kOr: {
      int d = num_steps;
      for (const auto& c : p.children) {
        d = std::min(d, FirstTrue(c, soi, num_steps));
      }
      return p.children.empty() ? 0 : d;
    }
    case Expr::Kind::kNot:
      return FirstFalse(p.children[0], soi, num_steps);
    case Expr::Kind::kInList: {
      // True needs the probe value plus a matching element; unknown
      // elements before the match make it kUnknown, so min-over-elements
      // is a (safe) lower bound.
      int d = p.operands[0].depth(soi);
      int e = num_steps;
      for (size_t i = 1; i < p.operands.size(); ++i) {
        e = std::min(e, p.operands[i].depth(soi));
      }
      if (p.operands.size() > 1) d = std::max(d, e);
      return d;
    }
    case Expr::Kind::kComparison:
    case Expr::Kind::kBetween:
    case Expr::Kind::kIsNull:
      return RefsMax(p, soi);
    default:
      return 0;  // opaque: true immediately
  }
}

/// Flattens the top-level AND skeleton into conjuncts, as the optimizer's
/// conjunct extraction does.
void FlattenConjuncts(const Expr& e, const ExecContext& ctx,
                      std::vector<CompiledPred>* out) {
  if (e.kind == Expr::Kind::kAnd) {
    for (const auto& c : e.children) FlattenConjuncts(*c, ctx, out);
    return;
  }
  out->push_back(CompilePred(e, ctx));
}

}  // namespace

FilterProgram::FilterProgram(const Expr* where, const ExecContext& ctx,
                             const std::vector<int>& step_of_instance,
                             int num_steps) {
  by_depth_.resize(std::max(num_steps, 1));
  if (where == nullptr) return;
  std::vector<CompiledPred> preds;
  FlattenConjuncts(*where, ctx, &preds);
  conjuncts_.reserve(preds.size());
  const int last_depth = std::max(num_steps, 1) - 1;
  for (auto& p : preds) {
    Conjunct c;
    c.last_check = std::min(RefsMax(p, step_of_instance), last_depth);
    c.first_check = std::min(
        std::min(FirstFalse(p, step_of_instance, num_steps), c.last_check),
        last_depth);
    c.emit_check = HasUnknownCapable(p, step_of_instance);
    c.pred = std::move(p);
    const int idx = static_cast<int>(conjuncts_.size());
    conjuncts_.push_back(std::move(c));
    for (int d = conjuncts_[idx].first_check;
         d <= conjuncts_[idx].last_check; ++d) {
      by_depth_[d].push_back(idx);
    }
    if (conjuncts_[idx].emit_check) emit_checks_.push_back(idx);
  }
}

}  // namespace aim::executor
