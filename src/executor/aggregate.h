#ifndef AIM_EXECUTOR_AGGREGATE_H_
#define AIM_EXECUTOR_AGGREGATE_H_

// The SELECT output sink: projection, grouping/aggregation, ordering and
// LIMIT. Both engines emit surviving join combinations into the same sink
// (lane binding arrays in, final result rows out), which is what makes
// the row-vs-batch bit-identity argument local to the join pipeline:
// everything downstream of Emit() is shared code.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "executor/filter.h"
#include "optimizer/plan.h"

namespace aim::executor {

/// Aggregate accumulator.
struct AggState {
  double sum = 0.0;
  uint64_t count = 0;
  bool has_minmax = false;
  sql::Value min;
  sql::Value max;

  void Add(const sql::Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.kind() == sql::Value::Kind::kInt64 ||
        v.kind() == sql::Value::Kind::kDouble) {
      sum += v.AsDouble();
    }
    if (!has_minmax) {
      min = max = v;
      has_minmax = true;
    } else {
      if (v.Compare(min) < 0) min = v;
      if (v.Compare(max) > 0) max = v;
    }
  }

  sql::Value Final(sql::AggFunc func) const;
};

/// \brief Output sink for SELECT execution.
///
/// Emit() consumes one join combination (a binding array indexed by
/// instance) and returns false when the whole execution can stop (LIMIT
/// reached with no sort/grouping pending). Finalize() produces the result
/// rows and accounts sort work into the context's tail cost slot.
class SelectSink {
 public:
  SelectSink(const sql::SelectStatement& select,
             const optimizer::AnalyzedQuery& query,
             const optimizer::Plan& plan, ExecContext* ctx);

  bool can_stop_early() const { return can_stop_early_; }
  int64_t limit() const { return limit_; }
  uint64_t rows_emitted() const { return rows_emitted_; }

  /// Feeds one combination; false = stop execution (early LIMIT).
  bool Emit(const storage::Row* const* bound);

  /// Grouping/sort/limit finalization; appends output rows to `out`.
  void Finalize(std::vector<storage::Row>* out);

 private:
  struct Item {
    enum class Kind { kStar, kAggregate, kValue };
    Kind kind = Kind::kValue;
    sql::AggFunc agg = sql::AggFunc::kNone;
    bool count_star = false;  // COUNT(*) / argless aggregate
    CompiledValue value;      // kValue projection or aggregate argument
  };

  storage::Row Project(const storage::Row* const* bound) const;

  ExecContext* ctx_;
  const sql::SelectStatement& select_;
  size_t num_instances_;
  bool grouped_ = false;
  bool needs_sort_ = false;
  int64_t limit_ = -1;
  bool can_stop_early_ = false;

  std::vector<Item> items_;
  std::vector<CompiledValue> order_exprs_;
  std::vector<bool> order_asc_;
  std::vector<CompiledValue> group_exprs_;

  // Group state: key -> aggregate states (one per select item).
  std::map<storage::Row, std::vector<AggState>, storage::RowLess> groups_;
  std::map<storage::Row, storage::Row, storage::RowLess>
      group_first_values_;
  std::vector<std::pair<storage::Row, storage::Row>>
      ungrouped_;  // (sort key, output row)
  int64_t emitted_ = 0;
  uint64_t rows_emitted_ = 0;
};

}  // namespace aim::executor

#endif  // AIM_EXECUTOR_AGGREGATE_H_
