#include "executor/join.h"

#include <algorithm>
#include <numeric>

namespace aim::executor {

using storage::IndexHit;
using storage::ProbeSpan;
using storage::Row;

BatchEngine::BatchEngine(ExecContext* ctx, const optimizer::Plan& plan,
                         const FilterProgram* filter, SelectSink* sink,
                         std::vector<int> step_of_instance)
    : ctx_(ctx),
      plan_(plan),
      filter_(filter),
      sink_(sink),
      step_of_instance_(std::move(step_of_instance)),
      num_instances_(ctx->num_instances()),
      accesses_(plan.steps.size()),
      invariants_(plan.steps.size()) {
  const auto& pp = ctx_->cm().params();
  c_entry_ = pp.cpu_index_entry_cost;
  c_fetch_ = pp.random_page_cost + pp.cpu_row_cost;
}

const StepAccess& BatchEngine::Access(size_t s) {
  if (!accesses_[s].has_value()) {
    accesses_[s] = CompileStepAccess(*ctx_, plan_, s, step_of_instance_);
  }
  return *accesses_[s];
}

const Production& BatchEngine::Invariant(size_t s) {
  if (!invariants_[s].has_value()) {
    invariants_[s].emplace();
    GatherInvariant(Access(s), &*invariants_[s]);
    const Production& p = *invariants_[s];
    auto& sc = ctx_->metrics.op_scan;
    ++sc.batches;
    sc.rows_in += p.visited_total;
    sc.rows_out += p.rows.size();
  }
  return *invariants_[s];
}

double BatchEngine::DescentCost(uint64_t n) const {
  const auto& pp = ctx_->cm().params();
  return static_cast<double>(std::max<uint64_t>(1, n)) *
         pp.btree_descent_cost * pp.random_page_cost / 4.0;
}

bool BatchEngine::EmitLane(const Row* const* bound) {
  ++ctx_->metrics.op_aggregate.rows_in;
  if (!filter_->EmitCheck(bound)) return true;
  return sink_->Emit(bound);
}

void BatchEngine::Run() {
  ++ctx_->metrics.op_aggregate.batches;
  if (plan_.steps.empty()) {
    std::vector<const Row*> bound(std::max<size_t>(num_instances_, 1),
                                  nullptr);
    if (filter_->CheckLane(0, bound.data())) {
      (void)EmitLane(bound.data());
    }
    return;
  }
  if (sink_->can_stop_early()) {
    // Capacity-1 batches: an exact depth-first walk, so mid-scan stop
    // accounting matches the interpreter entry for entry.
    std::vector<const Row*> bound(num_instances_, nullptr);
    (void)StrictStep(0, bound.data());
    return;
  }
  RunBulk();
}

// ---------------------------------------------------------------------------
// Bulk (breadth-first) path.

void BatchEngine::RunBulk() {
  LaneBuffer cur(num_instances_);
  LaneBuffer next(num_instances_);
  cur.PushEmptyLane();
  for (size_t s = 0; s < plan_.steps.size(); ++s) {
    if (cur.empty()) return;
    next.Clear();
    const double est = std::max(1.0, plan_.steps[s].rows_after);
    const size_t hint = std::max<size_t>(plan_.batch_size_hint, 1);
    next.ReserveLanes(std::min<size_t>(
        std::max<size_t>(static_cast<size_t>(est), hint), 1u << 20));
    ProduceBulk(s, cur, &next);
    FilterDepth(s, &next);
    cur.Swap(next);
  }
  for (size_t i = 0; i < cur.size(); ++i) {
    (void)EmitLane(cur.lane(i));
  }
}

void BatchEngine::ReplayInvariantLane(size_t s, const StepAccess& a,
                                      const Production& p) {
  auto& m = ctx_->metrics;
  switch (a.kind) {
    case StepAccess::Kind::kFullScan: {
      m.rows_examined += p.visited_total;
      m.heap_rows_read += p.visited_total;
      const auto& pp = ctx_->cm().params();
      ctx_->AddStepCost(
          s, a.pages * pp.seq_page_cost +
                 static_cast<double>(p.visited_total) * pp.cpu_row_cost);
      return;
    }
    case StepAccess::Kind::kHypoScan:
      // The interpreter's hypothetical-leak fallback counts rows but
      // charges nothing and claims no index.
      m.rows_examined += p.visited_total;
      m.heap_rows_read += p.visited_total;
      return;
    case StepAccess::Kind::kSkipScan: {
      for (size_t k = 0; k < p.hits.size(); ++k) {
        ctx_->AddStepCost(s, c_entry_);
        if (!a.covering) {
          ++m.pk_lookups;
          ++m.heap_rows_read;
          ctx_->AddStepCost(s, c_fetch_);
        }
      }
      m.index_entries_read += p.visited_total;
      m.rows_examined += p.visited_total;
      ctx_->AddStepCost(s, DescentCost(p.groups_total));
      ctx_->UseIndex(s, a.index->id);
      return;
    }
    case StepAccess::Kind::kIndex: {
      for (const ProbeSpan& span : p.spans) {
        for (size_t k = span.begin; k < span.end; ++k) {
          ctx_->AddStepCost(s, c_entry_);
          if (!a.covering) {
            ++m.pk_lookups;
            ++m.heap_rows_read;
            ctx_->AddStepCost(s, c_fetch_);
          }
        }
        m.index_entries_read += span.visited;
        m.rows_examined += span.visited;
      }
      ctx_->AddStepCost(s, DescentCost(p.spans.size()));
      ctx_->UseIndex(s, a.index->id);
      return;
    }
    case StepAccess::Kind::kIndexMerge: {
      const auto& pp = ctx_->cm().params();
      for (size_t ai = 0; ai < a.arms.size(); ++ai) {
        for (const uint64_t v : p.arm_probe_visited[ai]) {
          m.index_entries_read += v;
          m.rows_examined += v;
          ctx_->AddStepCost(s, pp.btree_descent_cost);
        }
        ctx_->UseIndex(s, a.arms[ai].index->id);
      }
      for (size_t k = 0; k < p.rows.size(); ++k) {
        m.heap_rows_read += a.covering ? 0 : 1;
        ctx_->AddStepCost(s, c_entry_);
        if (!a.covering) {
          ++m.pk_lookups;
          ctx_->AddStepCost(s, c_fetch_);
        }
      }
      return;
    }
  }
}

void BatchEngine::ProduceBulk(size_t s, const LaneBuffer& cur,
                              LaneBuffer* next) {
  const StepAccess& a = Access(s);
  const int instance = a.instance;

  if (a.kind != StepAccess::Kind::kIndex || a.lane_invariant) {
    const Production& p = Invariant(s);
    for (size_t li = 0; li < cur.size(); ++li) {
      ReplayInvariantLane(s, a, p);
      const Row* const* lane = cur.lane(li);
      for (const Row* row : p.rows) {
        next->PushChild(lane, instance, row);
      }
    }
    return;
  }

  // Join-bound index step: batch all lanes' probes, sort the keys so
  // duplicate prefixes share one descent, then replay per lane in order.
  const size_t lanes = cur.size();
  const size_t ppl = a.probes_per_lane;
  std::vector<Row> probes;
  probes.reserve(lanes * ppl);
  for (size_t li = 0; li < lanes; ++li) {
    BuildLaneProbes(a, cur.lane(li), &probes);
  }
  std::vector<size_t> order(probes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return storage::RowLess()(probes[x], probes[y]);
  });
  std::vector<IndexHit> hits;
  std::vector<ProbeSpan> spans;
  a.btree->GatherPrefixBatch(probes, order, a.lower, a.upper, &hits,
                             &spans);

  auto& m = ctx_->metrics;
  auto& oj = ctx_->metrics.op_join;
  ++oj.batches;
  oj.rows_in += probes.size();
  for (size_t li = 0; li < lanes; ++li) {
    const Row* const* lane = cur.lane(li);
    for (size_t j = 0; j < ppl; ++j) {
      const ProbeSpan& span = spans[li * ppl + j];
      for (size_t k = span.begin; k < span.end; ++k) {
        ctx_->AddStepCost(s, c_entry_);
        if (!a.covering) {
          ++m.pk_lookups;
          ++m.heap_rows_read;
          ctx_->AddStepCost(s, c_fetch_);
        }
        next->PushChild(lane, instance, &a.heap->row(hits[k].rid));
        ++oj.rows_out;
      }
      m.index_entries_read += span.visited;
      m.rows_examined += span.visited;
    }
    ctx_->AddStepCost(s, DescentCost(ppl));
    ctx_->UseIndex(s, a.index->id);
  }
}

void BatchEngine::FilterDepth(size_t s, LaneBuffer* lanes) {
  auto& of = ctx_->metrics.op_filter;
  ++of.batches;
  of.rows_in += lanes->size();
  std::vector<size_t> keep;
  keep.reserve(lanes->size());
  for (size_t i = 0; i < lanes->size(); ++i) {
    if (filter_->CheckLane(static_cast<int>(s), lanes->lane(i))) {
      keep.push_back(i);
    }
  }
  if (keep.size() != lanes->size()) lanes->Compact(keep);
  of.rows_out += lanes->size();
}

// ---------------------------------------------------------------------------
// Strict (early-stop) path. Mirrors NestedLoopDriver::RunStep with
// compiled filters and cached lane-invariant productions.

bool BatchEngine::StrictStep(size_t s, const Row** bound) {
  if (s >= plan_.steps.size()) return EmitLane(bound);
  const StepAccess& a = Access(s);
  const int instance = a.instance;
  auto& m = ctx_->metrics;

  auto consider = [&](const Row* row, bool via_index,
                      bool covering) -> bool {
    m.heap_rows_read += (via_index && covering) ? 0 : 1;
    if (via_index) {
      ctx_->AddStepCost(s, c_entry_);
      if (!covering) {
        ++m.pk_lookups;
        ctx_->AddStepCost(s, c_fetch_);
      }
    }
    bound[instance] = row;
    bool keep = true;
    if (filter_->CheckLane(static_cast<int>(s), bound)) {
      keep = StrictStep(s + 1, bound);
    }
    bound[instance] = nullptr;
    return keep;
  };

  switch (a.kind) {
    case StepAccess::Kind::kFullScan:
    case StepAccess::Kind::kHypoScan: {
      const Production& p = Invariant(s);
      uint64_t visited = 0;
      bool keep = true;
      for (const Row* row : p.rows) {
        ++visited;
        keep = consider(row, /*via_index=*/false, /*covering=*/false);
        if (!keep) break;
      }
      m.rows_examined += visited;
      if (a.kind == StepAccess::Kind::kFullScan) {
        const auto& pp = ctx_->cm().params();
        ctx_->AddStepCost(
            s, a.pages * pp.seq_page_cost +
                   static_cast<double>(visited) * pp.cpu_row_cost);
      }
      return keep;
    }
    case StepAccess::Kind::kSkipScan: {
      const Production& p = Invariant(s);
      uint64_t visited = p.visited_total;
      uint64_t groups = p.groups_total;
      bool keep = true;
      for (size_t k = 0; k < p.hits.size(); ++k) {
        keep = consider(p.rows[k], /*via_index=*/true, a.covering);
        if (!keep) {
          visited = p.hits[k].visited;
          groups = p.cum_groups[k];
          break;
        }
      }
      m.index_entries_read += visited;
      m.rows_examined += visited;
      ctx_->AddStepCost(s, DescentCost(groups));
      ctx_->UseIndex(s, a.index->id);
      return keep;
    }
    case StepAccess::Kind::kIndex: {
      bool keep = true;
      uint64_t probes_done = 0;
      if (a.lane_invariant) {
        const Production& p = Invariant(s);
        for (const ProbeSpan& span : p.spans) {
          ++probes_done;
          uint64_t probe_visited = span.visited;
          for (size_t k = span.begin; k < span.end && keep; ++k) {
            keep = consider(p.rows[k], /*via_index=*/true, a.covering);
            if (!keep) probe_visited = p.hits[k].visited;
          }
          m.index_entries_read += probe_visited;
          m.rows_examined += probe_visited;
          if (!keep) break;
        }
      } else {
        // Locals, not members: StrictStep recurses and a nested index
        // step must not clobber this step's probe iteration state.
        std::vector<Row> probes;
        BuildLaneProbes(a, bound, &probes);
        std::vector<IndexHit> hits;
        for (const Row& probe : probes) {
          ++probes_done;
          hits.clear();
          const uint64_t full_visited =
              a.btree->GatherPrefix(probe, a.lower, a.upper, &hits);
          uint64_t probe_visited = full_visited;
          for (size_t k = 0; k < hits.size() && keep; ++k) {
            keep = consider(&a.heap->row(hits[k].rid),
                            /*via_index=*/true, a.covering);
            if (!keep) probe_visited = hits[k].visited;
          }
          m.index_entries_read += probe_visited;
          m.rows_examined += probe_visited;
          if (!keep) break;
        }
      }
      ctx_->AddStepCost(s, DescentCost(probes_done));
      ctx_->UseIndex(s, a.index->id);
      return keep;
    }
    case StepAccess::Kind::kIndexMerge: {
      const Production& p = Invariant(s);
      const auto& pp = ctx_->cm().params();
      // Arm scans complete before any row is considered (interpreter
      // order), so their accounting always replays in full.
      for (size_t ai = 0; ai < a.arms.size(); ++ai) {
        for (const uint64_t v : p.arm_probe_visited[ai]) {
          m.index_entries_read += v;
          m.rows_examined += v;
          ctx_->AddStepCost(s, pp.btree_descent_cost);
        }
        ctx_->UseIndex(s, a.arms[ai].index->id);
      }
      bool keep = true;
      for (const Row* row : p.rows) {
        keep = consider(row, /*via_index=*/true, a.covering);
        if (!keep) break;
      }
      return keep;
    }
  }
  return true;
}

}  // namespace aim::executor
