#include "executor/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/predicate.h"

namespace aim::executor {

namespace {

using optimizer::AnalyzedQuery;
using optimizer::Plan;
using sql::Expr;
using sql::Value;
using storage::Row;
using storage::RowId;

/// SQL LIKE matcher ('%' = any run, '_' = any one char).
bool LikeMatch(const std::string& text, const std::string& pattern,
               size_t ti = 0, size_t pi = 0) {
  while (pi < pattern.size()) {
    const char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive '%'.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t t = ti; t <= text.size(); ++t) {
        if (LikeMatch(text, pattern, t, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && text[ti] != pc) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

/// Successor of a string prefix for LIKE 'p%' range scans.
std::string PrefixSuccessor(std::string prefix) {
  while (!prefix.empty()) {
    if (static_cast<unsigned char>(prefix.back()) < 0xFF) {
      prefix.back() = static_cast<char>(prefix.back() + 1);
      return prefix;
    }
    prefix.pop_back();
  }
  return prefix;  // empty: unbounded
}

/// Execution context: bound rows per instance + accounting.
class ExecContext {
 public:
  ExecContext(storage::Database* db, const AnalyzedQuery* query,
              const optimizer::CostModel* cm)
      : db_(db), query_(query), cm_(cm),
        bound_(query->instances.size(), nullptr) {}

  storage::Database* db() { return db_; }
  const AnalyzedQuery& query() const { return *query_; }
  const optimizer::CostModel& cm() const { return *cm_; }

  void Bind(int instance, const Row* row) { bound_[instance] = row; }
  const Row* bound(int instance) const { return bound_[instance]; }

  /// Resolves a column expression to (instance, column).
  std::optional<optimizer::BoundColumn> Resolve(const Expr& col) const {
    for (int i = 0; i < static_cast<int>(query_->instances.size()); ++i) {
      const auto& inst = query_->instances[i];
      if (!col.table.empty() && !EqualsAlias(inst.alias, col.table)) {
        continue;
      }
      auto c = db_->catalog().table(inst.table).FindColumn(col.column);
      if (c.has_value()) return optimizer::BoundColumn{i, *c};
    }
    return std::nullopt;
  }

  /// Evaluates an expression; returns nullopt when it references an
  /// unbound instance (three-valued partial evaluation).
  std::optional<Value> Eval(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return e.value;
      case Expr::Kind::kParam:
        return std::nullopt;  // executor requires literal statements
      case Expr::Kind::kColumn: {
        auto bc = Resolve(e);
        if (!bc.has_value()) return std::nullopt;
        const Row* row = bound_[bc->instance];
        if (row == nullptr) return std::nullopt;
        return (*row)[bc->column];
      }
      default:
        return std::nullopt;
    }
  }

  /// Three-valued predicate evaluation: true / false / unknown (nullopt).
  /// Unknown arises only from unbound instances; SQL NULL comparisons
  /// evaluate to false (two-valued simplification adequate for the
  /// generated workloads).
  std::optional<bool> EvalPred(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kAnd: {
        bool unknown = false;
        for (const auto& c : e.children) {
          auto v = EvalPred(*c);
          if (!v.has_value()) {
            unknown = true;
          } else if (!*v) {
            return false;
          }
        }
        if (unknown) return std::nullopt;
        return true;
      }
      case Expr::Kind::kOr: {
        bool unknown = false;
        for (const auto& c : e.children) {
          auto v = EvalPred(*c);
          if (!v.has_value()) {
            unknown = true;
          } else if (*v) {
            return true;
          }
        }
        if (unknown) return std::nullopt;
        return false;
      }
      case Expr::Kind::kNot: {
        auto v = EvalPred(*e.children[0]);
        if (!v.has_value()) return std::nullopt;
        return !*v;
      }
      case Expr::Kind::kComparison: {
        auto lhs = Eval(*e.children[0]);
        auto rhs = Eval(*e.children[1]);
        if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
        if (e.op == sql::CompareOp::kNullSafeEq) {
          return lhs->Compare(*rhs) == 0;
        }
        if (lhs->is_null() || rhs->is_null()) return false;
        if (e.op == sql::CompareOp::kLike) {
          if (lhs->kind() != Value::Kind::kString ||
              rhs->kind() != Value::Kind::kString) {
            return false;
          }
          return LikeMatch(lhs->AsString(), rhs->AsString());
        }
        const int c = lhs->Compare(*rhs);
        switch (e.op) {
          case sql::CompareOp::kEq:
            return c == 0;
          case sql::CompareOp::kNe:
            return c != 0;
          case sql::CompareOp::kLt:
            return c < 0;
          case sql::CompareOp::kLe:
            return c <= 0;
          case sql::CompareOp::kGt:
            return c > 0;
          case sql::CompareOp::kGe:
            return c >= 0;
          default:
            return false;
        }
      }
      case Expr::Kind::kInList: {
        auto lhs = Eval(*e.children[0]);
        if (!lhs.has_value()) return std::nullopt;
        if (lhs->is_null()) return false;
        for (size_t i = 1; i < e.children.size(); ++i) {
          auto v = Eval(*e.children[i]);
          if (!v.has_value()) return std::nullopt;
          if (!v->is_null() && lhs->Compare(*v) == 0) return true;
        }
        return false;
      }
      case Expr::Kind::kBetween: {
        auto lhs = Eval(*e.children[0]);
        auto lo = Eval(*e.children[1]);
        auto hi = Eval(*e.children[2]);
        if (!lhs.has_value() || !lo.has_value() || !hi.has_value()) {
          return std::nullopt;
        }
        if (lhs->is_null() || lo->is_null() || hi->is_null()) return false;
        return lhs->Compare(*lo) >= 0 && lhs->Compare(*hi) <= 0;
      }
      case Expr::Kind::kIsNull: {
        auto lhs = Eval(*e.children[0]);
        if (!lhs.has_value()) return std::nullopt;
        return e.negated ? !lhs->is_null() : lhs->is_null();
      }
      default:
        return true;  // opaque leaves pass (conservative)
    }
  }

  ExecutionMetrics metrics;

 private:
  static bool EqualsAlias(const std::string& a, const std::string& b) {
    return aim::EqualsIgnoreCase(a, b);
  }

  storage::Database* db_;
  const AnalyzedQuery* query_;
  const optimizer::CostModel* cm_;
  std::vector<const Row*> bound_;
};

/// Finds the literal values available for an eq-prefix key part, or an
/// empty vector when the part is only join-bound / unavailable.
std::vector<Value> LiteralOptionsFor(const AnalyzedQuery& query,
                                     int instance,
                                     catalog::ColumnId column) {
  for (const auto& p : query.ConjunctsForInstance(instance)) {
    if (p.column.column != column || !p.is_index_prefix()) continue;
    if (p.kind == optimizer::PredKind::kIsNull) {
      return {Value::Null()};
    }
    if (!p.values.empty()) {
      // IN lists may carry duplicate literals ("IN (9, 3, 9)"). Each
      // option becomes one index probe, so a duplicate would emit its
      // rows twice — the heap path evaluates each row once, and the two
      // plans would disagree on answers, not just cost.
      std::vector<Value> unique;
      unique.reserve(p.values.size());
      for (const Value& v : p.values) {
        bool seen = false;
        for (const Value& u : unique) {
          if (u == v) {
            seen = true;
            break;
          }
        }
        if (!seen) unique.push_back(v);
      }
      return unique;
    }
  }
  return {};
}

/// Join-bound value for a key part: the value from an already-bound
/// partner instance, if any.
std::optional<Value> JoinBoundValue(const ExecContext& ctx, int instance,
                                    catalog::ColumnId column) {
  for (const auto& e : ctx.query().joins) {
    if (e.left.instance == instance && e.left.column == column) {
      const Row* other = ctx.bound(e.right.instance);
      if (other != nullptr) return (*other)[e.right.column];
    }
    if (e.right.instance == instance && e.right.column == column) {
      const Row* other = ctx.bound(e.left.instance);
      if (other != nullptr) return (*other)[e.left.column];
    }
  }
  return std::nullopt;
}

/// Range bound for the key part after the prefix, from literal range /
/// LIKE-prefix predicates.
void RangeBoundsFor(const AnalyzedQuery& query, int instance,
                    catalog::ColumnId column,
                    std::optional<storage::KeyBound>* lower,
                    std::optional<storage::KeyBound>* upper) {
  for (const auto& p : query.ConjunctsForInstance(instance)) {
    if (p.column.column != column) continue;
    if (p.kind == optimizer::PredKind::kRange) {
      if (p.has_lower) {
        *lower = storage::KeyBound{Value::Int(p.lower), p.lower_inclusive};
      }
      if (p.has_upper) {
        *upper = storage::KeyBound{Value::Int(p.upper), p.upper_inclusive};
      }
    } else if (p.kind == optimizer::PredKind::kLikePrefix &&
               !p.values.empty()) {
      std::string pat = p.values[0].AsString();
      const size_t cut = pat.find_first_of("%_");
      const std::string prefix =
          cut == std::string::npos ? pat : pat.substr(0, cut);
      if (prefix.empty()) continue;
      *lower = storage::KeyBound{Value::Str(prefix), true};
      const std::string succ = PrefixSuccessor(prefix);
      if (!succ.empty()) {
        *upper = storage::KeyBound{Value::Str(succ), false};
      }
    }
  }
}

/// \brief Drives the nested-loop join over plan steps.
class NestedLoopDriver {
 public:
  NestedLoopDriver(ExecContext* ctx, const Plan* plan,
                   std::function<bool()> emit)
      : ctx_(ctx), plan_(plan), emit_(std::move(emit)) {}

  void Run() { RunStep(0); }

 private:
  /// Returns false to stop the whole execution (limit reached).
  bool RunStep(size_t step_idx) {
    if (step_idx >= plan_->steps.size()) return EmitCombination();
    const optimizer::JoinStep& step = plan_->steps[step_idx];
    const int instance = step.instance;
    const auto& inst = ctx_->query().instances[instance];
    const storage::HeapTable& heap = ctx_->db()->heap(inst.table);

    bool keep_going = true;
    auto consider = [&](RowId rid, bool via_index, bool covering) -> bool {
      const Row& row = heap.row(rid);
      ctx_->metrics.heap_rows_read += (via_index && covering) ? 0 : 1;
      if (via_index) {
        const auto& pp = ctx_->cm().params();
        ctx_->metrics.cost_units += pp.cpu_index_entry_cost;
        if (!covering) {
          ++ctx_->metrics.pk_lookups;
          ctx_->metrics.cost_units += pp.random_page_cost + pp.cpu_row_cost;
        }
      }
      ctx_->Bind(instance, &row);
      // Prune on everything decidable so far (filters + join edges).
      bool pass = true;
      if (const Expr* where = Where()) {
        auto v = ctx_->EvalPred(*where);
        pass = !v.has_value() || *v;
      }
      if (pass) {
        keep_going = RunStep(step_idx + 1);
      }
      ctx_->Bind(instance, nullptr);
      return keep_going;
    };

    if (step.path.is_index_merge()) {
      // Index-merge union: collect row ids from each OR arm's index
      // scan, dedup, then process each base row once.
      std::set<RowId> rids;
      for (const optimizer::AccessPath& part : step.path.union_parts) {
        const catalog::IndexDef& index = *part.index;
        const storage::BTreeIndex* btree = ctx_->db()->btree(index.id);
        if (btree == nullptr) continue;  // hypothetical leak: skip arm
        std::vector<std::vector<Value>> options;
        for (size_t pos = 0; pos < part.eq_prefix_len &&
                             pos < index.columns.size();
             ++pos) {
          std::vector<Value> opts;
          for (const auto& p : part.matched_predicates) {
            if (p.column.column != index.columns[pos] ||
                !p.is_index_prefix()) {
              continue;
            }
            if (p.kind == optimizer::PredKind::kIsNull) {
              opts.push_back(Value::Null());
            } else {
              opts = p.values;
            }
            break;
          }
          if (opts.empty()) break;
          options.push_back(std::move(opts));
        }
        std::optional<storage::KeyBound> lower;
        std::optional<storage::KeyBound> upper;
        if (part.range_on_next && options.size() < index.columns.size()) {
          for (const auto& p : part.matched_predicates) {
            if (p.column.column != index.columns[options.size()]) continue;
            if (p.kind == optimizer::PredKind::kRange) {
              if (p.has_lower) {
                lower = storage::KeyBound{Value::Int(p.lower),
                                          p.lower_inclusive};
              }
              if (p.has_upper) {
                upper = storage::KeyBound{Value::Int(p.upper),
                                          p.upper_inclusive};
              }
            } else if (p.kind == optimizer::PredKind::kLikePrefix &&
                       !p.values.empty()) {
              const std::string& pat = p.values[0].AsString();
              const size_t cut = pat.find_first_of("%_");
              const std::string pre =
                  cut == std::string::npos ? pat : pat.substr(0, cut);
              if (!pre.empty()) {
                lower = storage::KeyBound{Value::Str(pre), true};
                const std::string succ = PrefixSuccessor(pre);
                if (!succ.empty()) {
                  upper = storage::KeyBound{Value::Str(succ), false};
                }
              }
            }
          }
        }
        Row prefix(options.size());
        std::function<void(size_t)> enumerate = [&](size_t pos) {
          if (pos == options.size()) {
            const uint64_t visited = btree->ScanPrefix(
                prefix, lower, upper, [&](const Row&, RowId rid) {
                  rids.insert(rid);
                  return true;
                });
            ctx_->metrics.index_entries_read += visited;
            ctx_->metrics.rows_examined += visited;
            ctx_->metrics.cost_units +=
                ctx_->cm().params().btree_descent_cost;
            return;
          }
          for (const Value& v : options[pos]) {
            prefix[pos] = v;
            enumerate(pos + 1);
          }
        };
        enumerate(0);
        ctx_->metrics.used_indexes.push_back(index.id);
      }
      for (RowId rid : rids) {
        if (!consider(rid, /*via_index=*/true, step.path.covering)) {
          break;
        }
      }
      return keep_going;
    }

    if (step.path.is_full_scan()) {
      const uint64_t visited = heap.Scan([&](RowId rid, const Row&) {
        return consider(rid, /*via_index=*/false, /*covering=*/false);
      });
      ctx_->metrics.rows_examined += visited;
      // Scan cost: sequential pages + per-row CPU.
      const auto& cat = ctx_->db()->catalog();
      const double pages =
          std::max(1.0, cat.TableSizeBytes(inst.table) /
                            ctx_->cm().params().page_size);
      ctx_->metrics.cost_units +=
          pages * ctx_->cm().params().seq_page_cost +
          static_cast<double>(visited) * ctx_->cm().params().cpu_row_cost;
      return keep_going;
    }

    // Index access: assemble eq-prefix value options per key part.
    const catalog::IndexDef& index = *step.path.index;
    const storage::BTreeIndex* btree = ctx_->db()->btree(index.id);
    if (btree == nullptr) {
      // Hypothetical index leaked into an execution plan; treat as scan.
      const uint64_t visited = heap.Scan([&](RowId rid, const Row&) {
        return consider(rid, false, false);
      });
      ctx_->metrics.rows_examined += visited;
      return keep_going;
    }

    if (step.path.skip_scan && index.columns.size() >= 2) {
      // Skip scan: range bounds apply to the key part after the skipped
      // prefix; equality predicates become a closed point range.
      std::optional<storage::KeyBound> lower;
      std::optional<storage::KeyBound> upper;
      for (const auto& p :
           ctx_->query().ConjunctsForInstance(instance)) {
        if (p.column.column != index.columns[step.path.skip_width]) {
          continue;
        }
        if (p.kind == optimizer::PredKind::kEq && !p.values.empty()) {
          lower = storage::KeyBound{p.values[0], true};
          upper = storage::KeyBound{p.values[0], true};
        }
      }
      if (!lower.has_value()) {
        RangeBoundsFor(ctx_->query(), instance,
                       index.columns[step.path.skip_width], &lower,
                       &upper);
      }
      uint64_t groups = 0;
      const uint64_t visited = btree->ScanSkip(
          step.path.skip_width, lower, upper,
          [&](const Row&, RowId rid) {
            return consider(rid, /*via_index=*/true, step.path.covering);
          },
          &groups);
      ctx_->metrics.index_entries_read += visited;
      ctx_->metrics.rows_examined += visited;
      const auto& pp = ctx_->cm().params();
      ctx_->metrics.cost_units +=
          static_cast<double>(std::max<uint64_t>(1, groups)) *
          pp.btree_descent_cost * pp.random_page_cost / 4.0;
      ctx_->metrics.used_indexes.push_back(index.id);
      return keep_going;
    }

    std::vector<std::vector<Value>> options;
    for (size_t part = 0; part < step.path.eq_prefix_len &&
                          part < index.columns.size();
         ++part) {
      const catalog::ColumnId col = index.columns[part];
      std::vector<Value> opts = LiteralOptionsFor(ctx_->query(), instance,
                                                  col);
      if (opts.empty()) {
        auto jv = JoinBoundValue(*ctx_, instance, col);
        if (jv.has_value()) opts.push_back(*jv);
      }
      if (opts.empty()) break;  // prefix ends earlier at run time
      options.push_back(std::move(opts));
    }
    std::optional<storage::KeyBound> lower;
    std::optional<storage::KeyBound> upper;
    if (step.path.range_on_next && options.size() < index.columns.size()) {
      RangeBoundsFor(ctx_->query(), instance,
                     index.columns[options.size()], &lower, &upper);
    }

    const bool covering = step.path.covering;
    // Enumerate the cartesian product of prefix options (IN expansion).
    Row prefix(options.size());
    std::function<bool(size_t)> enumerate = [&](size_t part) -> bool {
      if (part == options.size()) {
        ++ranges_probed_;
        const uint64_t visited = btree->ScanPrefix(
            prefix, lower, upper, [&](const Row&, RowId rid) {
              return consider(rid, /*via_index=*/true, covering);
            });
        ctx_->metrics.index_entries_read += visited;
        ctx_->metrics.rows_examined += visited;
        return keep_going;
      }
      for (const Value& v : options[part]) {
        prefix[part] = v;
        if (!enumerate(part + 1)) return false;
      }
      return true;
    };
    ranges_probed_ = 0;
    enumerate(0);
    // Index access cost: descents + entry CPU + fetches.
    const auto& p = ctx_->cm().params();
    ctx_->metrics.cost_units +=
        static_cast<double>(std::max<uint64_t>(1, ranges_probed_)) *
        p.btree_descent_cost * p.random_page_cost / 4.0;
    ctx_->metrics.used_indexes.push_back(index.id);
    return keep_going;
  }

  bool EmitCombination() {
    // With every instance bound, the WHERE must evaluate definitively
    // true; residual unknowns (e.g. '?' parameters) reject the row.
    if (where_ != nullptr) {
      auto v = ctx_->EvalPred(*where_);
      if (!v.has_value() || !*v) return true;
    }
    return emit_();
  }

  const Expr* Where() const {
    return where_;
  }

 public:
  void set_where(const Expr* where) { where_ = where; }

 private:
  ExecContext* ctx_;
  const Plan* plan_;
  std::function<bool()> emit_;
  const Expr* where_ = nullptr;
  uint64_t ranges_probed_ = 0;
};

/// Aggregate accumulator.
struct AggState {
  double sum = 0.0;
  uint64_t count = 0;
  bool has_minmax = false;
  Value min;
  Value max;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.kind() == Value::Kind::kInt64 ||
        v.kind() == Value::Kind::kDouble) {
      sum += v.AsDouble();
    }
    if (!has_minmax) {
      min = max = v;
      has_minmax = true;
    } else {
      if (v.Compare(min) < 0) min = v;
      if (v.Compare(max) > 0) max = v;
    }
  }

  Value Final(sql::AggFunc func) const {
    switch (func) {
      case sql::AggFunc::kCount:
        return Value::Int(static_cast<int64_t>(count));
      case sql::AggFunc::kSum:
        return count == 0 ? Value::Null() : Value::Real(sum);
      case sql::AggFunc::kAvg:
        return count == 0 ? Value::Null()
                          : Value::Real(sum / static_cast<double>(count));
      case sql::AggFunc::kMin:
        return has_minmax ? min : Value::Null();
      case sql::AggFunc::kMax:
        return has_minmax ? max : Value::Null();
      case sql::AggFunc::kNone:
        break;
    }
    return Value::Null();
  }
};

}  // namespace

Result<ExecuteResult> Executor::Execute(const sql::Statement& stmt) {
  AIM_FAULT_POINT("executor.execute");
  AIM_ASSIGN_OR_RETURN(optimizer::AnalyzedQuery query,
                       optimizer::Analyze(stmt, db_->catalog()));
  optimizer::Optimizer opt(db_->catalog(), cm_);
  optimizer::OptimizeOptions options;
  options.include_hypothetical = false;
  optimizer::Plan plan = opt.OptimizeAnalyzed(query, options);
  return ExecutePlanned(stmt, query, plan);
}

Result<ExecuteResult> Executor::ExecutePlanned(
    const sql::Statement& stmt, const optimizer::AnalyzedQuery& query,
    const optimizer::Plan& plan) {
  static obs::Counter* const statements =
      obs::MetricsRegistry::Global()->counter("executor.statements");
  statements->Add();
  obs::Span span(obs::Tracer::Get(), "executor.execute");
  Result<ExecuteResult> result =
      stmt.kind == sql::Statement::Kind::kSelect
          ? ExecuteSelect(stmt, query, plan)
          : ExecuteDml(stmt, query, plan);
  if (span.enabled() && result.ok()) {
    const ExecutionMetrics& m = result.ValueOrDie().metrics;
    span.SetAttr("rows_examined", m.rows_examined);
    span.SetAttr("index_entries_read", m.index_entries_read);
    span.SetAttr("heap_rows_read", m.heap_rows_read);
    span.SetAttr("pk_lookups", m.pk_lookups);
    span.SetAttr("rows_sent", m.rows_sent);
    span.SetAttr("cpu_seconds", m.cpu_seconds);
  }
  return result;
}

Result<ExecuteResult> Executor::ExecuteSelect(
    const sql::Statement& stmt, const optimizer::AnalyzedQuery& query,
    const optimizer::Plan& plan) {
  const sql::SelectStatement& select = *stmt.select;
  ExecContext ctx(db_, &query, &cm_);
  ExecuteResult result;

  const bool grouped = query.has_group_by || query.has_aggregate;
  const int64_t limit = select.limit >= 0 ? select.limit : -1;
  const bool can_stop_early = !grouped && !plan.needs_sort && limit >= 0;

  // Group state: key -> aggregate states (one per aggregate select item).
  std::map<Row, std::vector<AggState>, storage::RowLess> groups;
  std::map<Row, Row, storage::RowLess> group_first_values;
  std::vector<std::pair<Row, Row>> ungrouped;  // (sort key, output row)
  int64_t emitted = 0;

  auto project = [&]() -> Row {
    Row out;
    for (const auto& item : select.select_list) {
      switch (item->kind) {
        case Expr::Kind::kStar: {
          for (int i = 0; i < static_cast<int>(query.instances.size());
               ++i) {
            const Row* row = ctx.bound(i);
            if (row != nullptr) {
              out.insert(out.end(), row->begin(), row->end());
            }
          }
          break;
        }
        case Expr::Kind::kAggregate:
          out.push_back(Value::Null());  // filled during finalization
          break;
        default: {
          auto v = ctx.Eval(*item);
          out.push_back(v.value_or(Value::Null()));
          break;
        }
      }
    }
    return out;
  };

  auto sort_key = [&]() -> Row {
    Row key;
    for (const auto& o : select.order_by) {
      auto v = ctx.Eval(*o.expr);
      key.push_back(v.value_or(Value::Null()));
    }
    return key;
  };

  auto emit = [&]() -> bool {
    if (grouped) {
      Row key;
      for (const auto& g : select.group_by) {
        auto v = ctx.Eval(*g);
        key.push_back(v.value_or(Value::Null()));
      }
      auto [it, inserted] = groups.try_emplace(
          key, select.select_list.size());
      if (inserted) group_first_values.emplace(key, project());
      for (size_t i = 0; i < select.select_list.size(); ++i) {
        const Expr& item = *select.select_list[i];
        if (item.kind != Expr::Kind::kAggregate) continue;
        if (item.children.empty() ||
            item.children[0]->kind == Expr::Kind::kStar) {
          it->second[i].Add(Value::Int(1));
        } else {
          auto v = ctx.Eval(*item.children[0]);
          it->second[i].Add(v.value_or(Value::Null()));
        }
      }
      return true;
    }
    ungrouped.emplace_back(sort_key(), project());
    ++emitted;
    if (can_stop_early && emitted >= limit) return false;
    return true;
  };

  NestedLoopDriver driver(&ctx, &plan, emit);
  driver.set_where(select.where.get());
  driver.Run();

  // Finalize output.
  if (grouped) {
    for (auto& [key, states] : groups) {
      Row out = group_first_values[key];
      for (size_t i = 0; i < select.select_list.size(); ++i) {
        const Expr& item = *select.select_list[i];
        if (item.kind == Expr::Kind::kAggregate) {
          out[i] = states[i].Final(item.agg);
        }
      }
      result.rows.push_back(std::move(out));
    }
    // Grouping via std::map is already in group-key order; an explicit
    // ORDER BY on other columns is not supported for grouped queries.
    if (plan.needs_sort) {
      ctx.metrics.rows_sorted += result.rows.size();
      ctx.metrics.cost_units +=
          cm_.SortCost(static_cast<double>(result.rows.size()));
    }
    if (limit >= 0 && static_cast<int64_t>(result.rows.size()) > limit) {
      result.rows.resize(limit);
    }
  } else {
    if (plan.needs_sort && !select.order_by.empty()) {
      std::vector<bool> asc;
      for (const auto& o : select.order_by) asc.push_back(o.ascending);
      std::stable_sort(ungrouped.begin(), ungrouped.end(),
                       [&](const auto& a, const auto& b) {
                         for (size_t i = 0; i < a.first.size(); ++i) {
                           const int c = a.first[i].Compare(b.first[i]);
                           if (c != 0) return asc[i] ? c < 0 : c > 0;
                         }
                         return false;
                       });
      ctx.metrics.rows_sorted += ungrouped.size();
      ctx.metrics.cost_units +=
          cm_.SortCost(static_cast<double>(ungrouped.size()));
    }
    for (auto& [key, row] : ungrouped) {
      result.rows.push_back(std::move(row));
      if (limit >= 0 &&
          static_cast<int64_t>(result.rows.size()) >= limit) {
        break;
      }
    }
  }

  ctx.metrics.rows_sent = result.rows.size();
  ctx.metrics.cpu_seconds = cm_.ToCpuSeconds(ctx.metrics.cost_units);
  result.metrics = ctx.metrics;
  return result;
}

Result<ExecuteResult> Executor::ExecuteDml(
    const sql::Statement& stmt, const optimizer::AnalyzedQuery& query,
    const optimizer::Plan& plan) {
  ExecuteResult result;
  ExecContext ctx(db_, &query, &cm_);
  const catalog::TableId table = query.instances[0].table;
  const auto& table_def = db_->catalog().table(table);

  if (stmt.kind == sql::Statement::Kind::kInsert) {
    const sql::InsertStatement& ins = *stmt.insert;
    Row row(table_def.columns.size(), Value::Null());
    for (size_t i = 0; i < ins.columns.size() && i < ins.values.size();
         ++i) {
      auto c = table_def.FindColumn(ins.columns[i]);
      if (!c.has_value()) {
        return Status::NotFound("insert column '" + ins.columns[i] +
                                "' not found");
      }
      if (ins.values[i]->kind == Expr::Kind::kLiteral) {
        row[*c] = ins.values[i]->value;
      }
    }
    storage::MaintenanceCost mc;
    AIM_RETURN_NOT_OK(db_->InsertRow(table, std::move(row), &mc).status());
    ctx.metrics.rows_modified = 1;
    // The clustered primary index (maintained like any other) accounts
    // for the base-table write.
    ctx.metrics.index_entries_written = mc.index_entries_written;
    ctx.metrics.cost_units += cm_.IndexMaintenanceCost(
        static_cast<double>(mc.index_entries_written));
    ctx.metrics.cpu_seconds = cm_.ToCpuSeconds(ctx.metrics.cost_units);
    result.metrics = ctx.metrics;
    return result;
  }

  // UPDATE / DELETE: locate matching rows first (via the plan), mutate
  // after (no mutation during scans).
  std::vector<RowId> matches;
  {
    const sql::Expr* where = stmt.kind == sql::Statement::Kind::kUpdate
                                 ? stmt.update->where.get()
                                 : stmt.del->where.get();
    const storage::HeapTable& heap = db_->heap(table);
    if (!plan.steps.empty() && !plan.steps[0].path.is_full_scan() &&
        !plan.steps[0].path.is_index_merge() &&
        db_->btree(plan.steps[0].path.index->id) != nullptr) {
      const catalog::IndexDef& index = *plan.steps[0].path.index;
      const storage::BTreeIndex* btree = db_->btree(index.id);
      std::vector<std::vector<Value>> options;
      for (size_t part = 0; part < plan.steps[0].path.eq_prefix_len &&
                            part < index.columns.size();
           ++part) {
        std::vector<Value> opts =
            LiteralOptionsFor(query, 0, index.columns[part]);
        if (opts.empty()) break;
        options.push_back(std::move(opts));
      }
      std::optional<storage::KeyBound> lower;
      std::optional<storage::KeyBound> upper;
      if (plan.steps[0].path.range_on_next &&
          options.size() < index.columns.size()) {
        RangeBoundsFor(query, 0, index.columns[options.size()], &lower,
                       &upper);
      }
      Row prefix(options.size());
      std::function<void(size_t)> enumerate = [&](size_t part) {
        if (part == options.size()) {
          const uint64_t visited = btree->ScanPrefix(
              prefix, lower, upper, [&](const Row&, RowId rid) {
                const Row& row = heap.row(rid);
                ctx.Bind(0, &row);
                bool pass = true;
                if (where != nullptr) {
                  auto v = ctx.EvalPred(*where);
                  pass = v.has_value() && *v;
                }
                if (pass) matches.push_back(rid);
                ctx.Bind(0, nullptr);
                return true;
              });
          ctx.metrics.index_entries_read += visited;
          ctx.metrics.rows_examined += visited;
          ctx.metrics.pk_lookups += visited;
          return;
        }
        for (const Value& v : options[part]) {
          prefix[part] = v;
          enumerate(part + 1);
        }
      };
      enumerate(0);
      ctx.metrics.used_indexes.push_back(index.id);
      ctx.metrics.cost_units += cm_.params().btree_descent_cost;
    } else {
      const uint64_t visited = heap.Scan([&](RowId rid, const Row& row) {
        ctx.Bind(0, &row);
        bool pass = true;
        if (where != nullptr) {
          auto v = ctx.EvalPred(*where);
          pass = v.has_value() && *v;
        }
        if (pass) matches.push_back(rid);
        ctx.Bind(0, nullptr);
        return true;
      });
      ctx.metrics.rows_examined += visited;
      ctx.metrics.heap_rows_read += visited;
      const double pages = std::max(
          1.0,
          db_->catalog().TableSizeBytes(table) / cm_.params().page_size);
      ctx.metrics.cost_units +=
          pages * cm_.params().seq_page_cost +
          static_cast<double>(visited) * cm_.params().cpu_row_cost;
    }
  }

  storage::MaintenanceCost mc;
  if (stmt.kind == sql::Statement::Kind::kUpdate) {
    for (RowId rid : matches) {
      Row row = db_->heap(table).row(rid);
      for (const auto& [col, value_expr] : stmt.update->assignments) {
        auto c = table_def.FindColumn(col);
        if (c.has_value() &&
            value_expr->kind == Expr::Kind::kLiteral) {
          row[*c] = value_expr->value;
        }
      }
      AIM_RETURN_NOT_OK(db_->UpdateRow(table, rid, std::move(row), &mc));
    }
  } else {
    for (RowId rid : matches) {
      AIM_RETURN_NOT_OK(db_->DeleteRow(table, rid, &mc));
    }
  }
  ctx.metrics.rows_modified = matches.size();
  ctx.metrics.index_entries_written = mc.index_entries_written;
  // Index maintenance + the in-place base-row write (updates that do not
  // touch the primary key modify the clustered row without a key write).
  ctx.metrics.cost_units += cm_.IndexMaintenanceCost(
      static_cast<double>(ctx.metrics.index_entries_written) +
      static_cast<double>(matches.size()));
  ctx.metrics.cpu_seconds = cm_.ToCpuSeconds(ctx.metrics.cost_units);
  result.metrics = ctx.metrics;
  return result;
}

}  // namespace aim::executor
