#include "executor/executor.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "common/fault_injection.h"
#include "executor/aggregate.h"
#include "executor/exec_common.h"
#include "executor/filter.h"
#include "executor/join.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/predicate.h"

namespace aim::executor {

namespace {

using optimizer::AnalyzedQuery;
using optimizer::Plan;
using sql::Expr;
using sql::Value;
using storage::Row;
using storage::RowId;

/// \brief Drives the row-at-a-time nested-loop join over plan steps.
///
/// This is the original interpreter, kept verbatim in structure as the
/// differential oracle for the batch engine; only the accounting sinks
/// changed (per-step cost slots instead of a running total — see
/// exec_common.h for why that preserves bit-identity).
class NestedLoopDriver {
 public:
  NestedLoopDriver(ExecContext* ctx, const Plan* plan,
                   std::function<bool()> emit)
      : ctx_(ctx), plan_(plan), emit_(std::move(emit)) {}

  void Run() { RunStep(0); }

  void set_where(const Expr* where) { where_ = where; }

 private:
  /// Returns false to stop the whole execution (limit reached).
  bool RunStep(size_t step_idx) {
    if (step_idx >= plan_->steps.size()) return EmitCombination();
    const optimizer::JoinStep& step = plan_->steps[step_idx];
    const int instance = step.instance;
    const auto& inst = ctx_->query().instances[instance];
    const storage::HeapTable& heap = ctx_->db()->heap(inst.table);

    bool keep_going = true;
    auto consider = [&](RowId rid, bool via_index, bool covering) -> bool {
      const Row& row = heap.row(rid);
      ctx_->metrics.heap_rows_read += (via_index && covering) ? 0 : 1;
      if (via_index) {
        const auto& pp = ctx_->cm().params();
        ctx_->AddStepCost(step_idx, pp.cpu_index_entry_cost);
        if (!covering) {
          ++ctx_->metrics.pk_lookups;
          ctx_->AddStepCost(step_idx,
                            pp.random_page_cost + pp.cpu_row_cost);
        }
      }
      ctx_->Bind(instance, &row);
      // Prune on everything decidable so far (filters + join edges).
      bool pass = true;
      if (where_ != nullptr) {
        auto v = ctx_->EvalPred(*where_);
        pass = !v.has_value() || *v;
      }
      if (pass) {
        keep_going = RunStep(step_idx + 1);
      }
      ctx_->Bind(instance, nullptr);
      return keep_going;
    };

    if (step.path.is_index_merge()) {
      // Index-merge union: collect row ids from each OR arm's index
      // scan, dedup, then process each base row once.
      std::set<RowId> rids;
      for (const optimizer::AccessPath& part : step.path.union_parts) {
        const catalog::IndexDef& index = *part.index;
        const storage::BTreeIndex* btree = ctx_->db()->btree(index.id);
        if (btree == nullptr) continue;  // hypothetical leak: skip arm
        std::vector<std::vector<Value>> options;
        for (size_t pos = 0; pos < part.eq_prefix_len &&
                             pos < index.columns.size();
             ++pos) {
          std::vector<Value> opts;
          for (const auto& p : part.matched_predicates) {
            if (p.column.column != index.columns[pos] ||
                !p.is_index_prefix()) {
              continue;
            }
            if (p.kind == optimizer::PredKind::kIsNull) {
              opts.push_back(Value::Null());
            } else {
              opts = p.values;
            }
            break;
          }
          if (opts.empty()) break;
          options.push_back(std::move(opts));
        }
        std::optional<storage::KeyBound> lower;
        std::optional<storage::KeyBound> upper;
        if (part.range_on_next && options.size() < index.columns.size()) {
          for (const auto& p : part.matched_predicates) {
            if (p.column.column != index.columns[options.size()]) continue;
            if (p.kind == optimizer::PredKind::kRange) {
              if (p.has_lower) {
                lower = storage::KeyBound{Value::Int(p.lower),
                                          p.lower_inclusive};
              }
              if (p.has_upper) {
                upper = storage::KeyBound{Value::Int(p.upper),
                                          p.upper_inclusive};
              }
            } else if (p.kind == optimizer::PredKind::kLikePrefix &&
                       !p.values.empty()) {
              const std::string& pat = p.values[0].AsString();
              const size_t cut = pat.find_first_of("%_");
              const std::string pre =
                  cut == std::string::npos ? pat : pat.substr(0, cut);
              if (!pre.empty()) {
                lower = storage::KeyBound{Value::Str(pre), true};
                const std::string succ = PrefixSuccessor(pre);
                if (!succ.empty()) {
                  upper = storage::KeyBound{Value::Str(succ), false};
                }
              }
            }
          }
        }
        Row prefix(options.size());
        std::function<void(size_t)> enumerate = [&](size_t pos) {
          if (pos == options.size()) {
            const uint64_t visited = btree->ScanPrefix(
                prefix, lower, upper, [&](const Row&, RowId rid) {
                  rids.insert(rid);
                  return true;
                });
            ctx_->metrics.index_entries_read += visited;
            ctx_->metrics.rows_examined += visited;
            ctx_->AddStepCost(step_idx,
                              ctx_->cm().params().btree_descent_cost);
            return;
          }
          for (const Value& v : options[pos]) {
            prefix[pos] = v;
            enumerate(pos + 1);
          }
        };
        enumerate(0);
        ctx_->UseIndex(step_idx, index.id);
      }
      for (RowId rid : rids) {
        if (!consider(rid, /*via_index=*/true, step.path.covering)) {
          break;
        }
      }
      return keep_going;
    }

    if (step.path.is_full_scan()) {
      const uint64_t visited = heap.Scan([&](RowId rid, const Row&) {
        return consider(rid, /*via_index=*/false, /*covering=*/false);
      });
      ctx_->metrics.rows_examined += visited;
      // Scan cost: sequential pages + per-row CPU.
      const auto& cat = ctx_->db()->catalog();
      const double pages =
          std::max(1.0, cat.TableSizeBytes(inst.table) /
                            ctx_->cm().params().page_size);
      ctx_->AddStepCost(
          step_idx,
          pages * ctx_->cm().params().seq_page_cost +
              static_cast<double>(visited) *
                  ctx_->cm().params().cpu_row_cost);
      return keep_going;
    }

    // Index access: assemble eq-prefix value options per key part.
    const catalog::IndexDef& index = *step.path.index;
    const storage::BTreeIndex* btree = ctx_->db()->btree(index.id);
    if (btree == nullptr) {
      // Hypothetical index leaked into an execution plan; treat as scan.
      const uint64_t visited = heap.Scan([&](RowId rid, const Row&) {
        return consider(rid, false, false);
      });
      ctx_->metrics.rows_examined += visited;
      return keep_going;
    }

    if (step.path.skip_scan && index.columns.size() >= 2) {
      // Skip scan: range bounds apply to the key part after the skipped
      // prefix; equality predicates become a closed point range.
      std::optional<storage::KeyBound> lower;
      std::optional<storage::KeyBound> upper;
      for (const auto& p :
           ctx_->query().ConjunctsForInstance(instance)) {
        if (p.column.column != index.columns[step.path.skip_width]) {
          continue;
        }
        if (p.kind == optimizer::PredKind::kEq && !p.values.empty()) {
          lower = storage::KeyBound{p.values[0], true};
          upper = storage::KeyBound{p.values[0], true};
        }
      }
      if (!lower.has_value()) {
        RangeBoundsFor(ctx_->query(), instance,
                       index.columns[step.path.skip_width], &lower,
                       &upper);
      }
      uint64_t groups = 0;
      const uint64_t visited = btree->ScanSkip(
          step.path.skip_width, lower, upper,
          [&](const Row&, RowId rid) {
            return consider(rid, /*via_index=*/true, step.path.covering);
          },
          &groups);
      ctx_->metrics.index_entries_read += visited;
      ctx_->metrics.rows_examined += visited;
      const auto& pp = ctx_->cm().params();
      ctx_->AddStepCost(step_idx,
                        static_cast<double>(std::max<uint64_t>(1, groups)) *
                            pp.btree_descent_cost * pp.random_page_cost /
                            4.0);
      ctx_->UseIndex(step_idx, index.id);
      return keep_going;
    }

    std::vector<std::vector<Value>> options;
    for (size_t part = 0; part < step.path.eq_prefix_len &&
                          part < index.columns.size();
         ++part) {
      const catalog::ColumnId col = index.columns[part];
      std::vector<Value> opts = LiteralOptionsFor(ctx_->query(), instance,
                                                  col);
      if (opts.empty()) {
        auto jv = JoinBoundValue(*ctx_, instance, col);
        if (jv.has_value()) opts.push_back(*jv);
      }
      if (opts.empty()) break;  // prefix ends earlier at run time
      options.push_back(std::move(opts));
    }
    std::optional<storage::KeyBound> lower;
    std::optional<storage::KeyBound> upper;
    if (step.path.range_on_next && options.size() < index.columns.size()) {
      RangeBoundsFor(ctx_->query(), instance,
                     index.columns[options.size()], &lower, &upper);
    }

    const bool covering = step.path.covering;
    // Enumerate the cartesian product of prefix options (IN expansion).
    // The probe counter is a local: a member here would be clobbered by
    // recursion into deeper index steps mid-enumeration, corrupting this
    // step's descent-cost multiplier.
    uint64_t ranges_probed = 0;
    Row prefix(options.size());
    std::function<bool(size_t)> enumerate = [&](size_t part) -> bool {
      if (part == options.size()) {
        ++ranges_probed;
        const uint64_t visited = btree->ScanPrefix(
            prefix, lower, upper, [&](const Row&, RowId rid) {
              return consider(rid, /*via_index=*/true, covering);
            });
        ctx_->metrics.index_entries_read += visited;
        ctx_->metrics.rows_examined += visited;
        return keep_going;
      }
      for (const Value& v : options[part]) {
        prefix[part] = v;
        if (!enumerate(part + 1)) return false;
      }
      return true;
    };
    enumerate(0);
    // Index access cost: descents + entry CPU + fetches.
    const auto& p = ctx_->cm().params();
    ctx_->AddStepCost(step_idx,
                      static_cast<double>(
                          std::max<uint64_t>(1, ranges_probed)) *
                          p.btree_descent_cost * p.random_page_cost / 4.0);
    ctx_->UseIndex(step_idx, index.id);
    return keep_going;
  }

  bool EmitCombination() {
    // With every instance bound, the WHERE must evaluate definitively
    // true; residual unknowns (e.g. '?' parameters) reject the row.
    if (where_ != nullptr) {
      auto v = ctx_->EvalPred(*where_);
      if (!v.has_value() || !*v) return true;
    }
    return emit_();
  }

  ExecContext* ctx_;
  const Plan* plan_;
  std::function<bool()> emit_;
  const Expr* where_ = nullptr;
};

void EmitOperatorSpans(const ExecutionMetrics& m) {
  struct Entry {
    const char* name;
    const OperatorStats* stats;
  };
  const Entry entries[] = {
      {"executor.op.scan", &m.op_scan},
      {"executor.op.filter", &m.op_filter},
      {"executor.op.join", &m.op_join},
      {"executor.op.aggregate", &m.op_aggregate},
  };
  for (const Entry& e : entries) {
    obs::Span span(obs::Tracer::Get(), e.name);
    if (span.enabled()) {
      span.SetAttr("batches", e.stats->batches);
      span.SetAttr("rows_in", e.stats->rows_in);
      span.SetAttr("rows_out", e.stats->rows_out);
    }
  }
}

}  // namespace

Result<ExecuteResult> Executor::Execute(const sql::Statement& stmt) {
  AIM_FAULT_POINT("executor.execute");
  AIM_ASSIGN_OR_RETURN(optimizer::AnalyzedQuery query,
                       optimizer::Analyze(stmt, db_->catalog()));
  optimizer::Optimizer opt(db_->catalog(), cm_);
  optimizer::OptimizeOptions options;
  options.include_hypothetical = false;
  optimizer::Plan plan = opt.OptimizeAnalyzed(query, options);
  return ExecutePlanned(stmt, query, plan);
}

Result<ExecuteResult> Executor::ExecutePlanned(
    const sql::Statement& stmt, const optimizer::AnalyzedQuery& query,
    const optimizer::Plan& plan) {
  static obs::Counter* const statements =
      obs::MetricsRegistry::Global()->counter("executor.statements");
  statements->Add();
  obs::Span span(obs::Tracer::Get(), "executor.execute");
  Result<ExecuteResult> result =
      stmt.kind == sql::Statement::Kind::kSelect
          ? ExecuteSelect(stmt, query, plan)
          : ExecuteDml(stmt, query, plan);
  if (span.enabled() && result.ok()) {
    const ExecutionMetrics& m = result.ValueOrDie().metrics;
    span.SetAttr("rows_examined", m.rows_examined);
    span.SetAttr("index_entries_read", m.index_entries_read);
    span.SetAttr("heap_rows_read", m.heap_rows_read);
    span.SetAttr("pk_lookups", m.pk_lookups);
    span.SetAttr("rows_sent", m.rows_sent);
    span.SetAttr("cpu_seconds", m.cpu_seconds);
  }
  return result;
}

Result<ExecuteResult> Executor::ExecuteSelect(
    const sql::Statement& stmt, const optimizer::AnalyzedQuery& query,
    const optimizer::Plan& plan) {
  const sql::SelectStatement& select = *stmt.select;
  const size_t num_steps = std::max<size_t>(plan.steps.size(), 1);
  ExecContext ctx(db_, &query, &cm_, num_steps);
  ExecuteResult result;

  std::vector<int> step_of_instance(query.instances.size(), -1);
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    step_of_instance[plan.steps[s].instance] = static_cast<int>(s);
  }

  SelectSink sink(select, query, plan, &ctx);

  if (options_.engine == EngineKind::kRowAtATime) {
    NestedLoopDriver driver(&ctx, &plan,
                            [&]() { return sink.Emit(ctx.bound_data()); });
    driver.set_where(select.where.get());
    driver.Run();
  } else {
    static obs::Counter* const batch_count =
        obs::MetricsRegistry::Global()->counter("executor.batch.count");
    static obs::Counter* const batch_rows =
        obs::MetricsRegistry::Global()->counter("executor.batch.rows");
    FilterProgram filter(select.where.get(), ctx, step_of_instance,
                         static_cast<int>(num_steps));
    BatchEngine engine(&ctx, plan, &filter, &sink, step_of_instance);
    engine.Run();
    batch_count->Add();
    batch_rows->Add(ctx.metrics.op_scan.rows_out +
                    ctx.metrics.op_join.rows_out);
  }

  sink.Finalize(&result.rows);
  ctx.metrics.rows_sent = result.rows.size();
  if (options_.engine == EngineKind::kBatch) {
    ctx.metrics.op_aggregate.rows_out = result.rows.size();
    EmitOperatorSpans(ctx.metrics);
  }
  ctx.FinalizeCost();
  result.metrics = ctx.metrics;
  return result;
}

Result<ExecuteResult> Executor::ExecuteDml(
    const sql::Statement& stmt, const optimizer::AnalyzedQuery& query,
    const optimizer::Plan& plan) {
  ExecuteResult result;
  ExecContext ctx(db_, &query, &cm_, /*num_steps=*/1);
  const catalog::TableId table = query.instances[0].table;
  const auto& table_def = db_->catalog().table(table);

  if (stmt.kind == sql::Statement::Kind::kInsert) {
    const sql::InsertStatement& ins = *stmt.insert;
    Row row(table_def.columns.size(), Value::Null());
    for (size_t i = 0; i < ins.columns.size() && i < ins.values.size();
         ++i) {
      auto c = table_def.FindColumn(ins.columns[i]);
      if (!c.has_value()) {
        return Status::NotFound("insert column '" + ins.columns[i] +
                                "' not found");
      }
      if (ins.values[i]->kind == Expr::Kind::kLiteral) {
        row[*c] = ins.values[i]->value;
      }
    }
    storage::MaintenanceCost mc;
    AIM_RETURN_NOT_OK(db_->InsertRow(table, std::move(row), &mc).status());
    ctx.metrics.rows_modified = 1;
    // The clustered primary index (maintained like any other) accounts
    // for the base-table write.
    ctx.metrics.index_entries_written = mc.index_entries_written;
    ctx.AddTailCost(cm_.IndexMaintenanceCost(
        static_cast<double>(mc.index_entries_written)));
    ctx.FinalizeCost();
    result.metrics = ctx.metrics;
    return result;
  }

  // UPDATE / DELETE: locate matching rows first (via the plan), mutate
  // after (no mutation during scans).
  std::vector<RowId> matches;
  if (plan.est_result_rows > 0) {
    matches.reserve(std::min<size_t>(
        static_cast<size_t>(plan.est_result_rows), 1u << 20));
  }
  {
    const sql::Expr* where = stmt.kind == sql::Statement::Kind::kUpdate
                                 ? stmt.update->where.get()
                                 : stmt.del->where.get();
    const storage::HeapTable& heap = db_->heap(table);
    if (!plan.steps.empty() && !plan.steps[0].path.is_full_scan() &&
        !plan.steps[0].path.is_index_merge() &&
        db_->btree(plan.steps[0].path.index->id) != nullptr) {
      const catalog::IndexDef& index = *plan.steps[0].path.index;
      const storage::BTreeIndex* btree = db_->btree(index.id);
      std::vector<std::vector<Value>> options;
      for (size_t part = 0; part < plan.steps[0].path.eq_prefix_len &&
                            part < index.columns.size();
           ++part) {
        std::vector<Value> opts =
            LiteralOptionsFor(query, 0, index.columns[part]);
        if (opts.empty()) break;
        options.push_back(std::move(opts));
      }
      std::optional<storage::KeyBound> lower;
      std::optional<storage::KeyBound> upper;
      if (plan.steps[0].path.range_on_next &&
          options.size() < index.columns.size()) {
        RangeBoundsFor(query, 0, index.columns[options.size()], &lower,
                       &upper);
      }
      Row prefix(options.size());
      std::function<void(size_t)> enumerate = [&](size_t part) {
        if (part == options.size()) {
          const uint64_t visited = btree->ScanPrefix(
              prefix, lower, upper, [&](const Row&, RowId rid) {
                const Row& row = heap.row(rid);
                ctx.Bind(0, &row);
                bool pass = true;
                if (where != nullptr) {
                  auto v = ctx.EvalPred(*where);
                  pass = v.has_value() && *v;
                }
                if (pass) matches.push_back(rid);
                ctx.Bind(0, nullptr);
                return true;
              });
          ctx.metrics.index_entries_read += visited;
          ctx.metrics.rows_examined += visited;
          ctx.metrics.pk_lookups += visited;
          return;
        }
        for (const Value& v : options[part]) {
          prefix[part] = v;
          enumerate(part + 1);
        }
      };
      enumerate(0);
      ctx.UseIndex(0, index.id);
      ctx.AddStepCost(0, cm_.params().btree_descent_cost);
    } else {
      const uint64_t visited = heap.Scan([&](RowId rid, const Row& row) {
        ctx.Bind(0, &row);
        bool pass = true;
        if (where != nullptr) {
          auto v = ctx.EvalPred(*where);
          pass = v.has_value() && *v;
        }
        if (pass) matches.push_back(rid);
        ctx.Bind(0, nullptr);
        return true;
      });
      ctx.metrics.rows_examined += visited;
      ctx.metrics.heap_rows_read += visited;
      const double pages = std::max(
          1.0,
          db_->catalog().TableSizeBytes(table) / cm_.params().page_size);
      ctx.AddStepCost(
          0, pages * cm_.params().seq_page_cost +
                 static_cast<double>(visited) * cm_.params().cpu_row_cost);
    }
  }

  storage::MaintenanceCost mc;
  if (stmt.kind == sql::Statement::Kind::kUpdate) {
    for (RowId rid : matches) {
      Row row = db_->heap(table).row(rid);
      for (const auto& [col, value_expr] : stmt.update->assignments) {
        auto c = table_def.FindColumn(col);
        if (c.has_value() &&
            value_expr->kind == Expr::Kind::kLiteral) {
          row[*c] = value_expr->value;
        }
      }
      AIM_RETURN_NOT_OK(db_->UpdateRow(table, rid, std::move(row), &mc));
    }
  } else {
    for (RowId rid : matches) {
      AIM_RETURN_NOT_OK(db_->DeleteRow(table, rid, &mc));
    }
  }
  ctx.metrics.rows_modified = matches.size();
  ctx.metrics.index_entries_written = mc.index_entries_written;
  // Index maintenance + the in-place base-row write (updates that do not
  // touch the primary key modify the clustered row without a key write).
  ctx.AddTailCost(cm_.IndexMaintenanceCost(
      static_cast<double>(ctx.metrics.index_entries_written) +
      static_cast<double>(matches.size())));
  ctx.FinalizeCost();
  result.metrics = ctx.metrics;
  return result;
}

}  // namespace aim::executor
