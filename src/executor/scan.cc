#include "executor/scan.h"

#include <algorithm>
#include <functional>
#include <string>

namespace aim::executor {

using optimizer::AccessPath;
using sql::Value;
using storage::Row;
using storage::RowId;

namespace {

/// Enumerates the cartesian product of literal key-part options into
/// probe prefixes, first part slowest — the interpreter's recursive
/// `enumerate` order. Zero parts yield one empty probe.
void EnumerateLiteralProbes(const std::vector<std::vector<Value>>& options,
                            std::vector<Row>* out) {
  size_t total = 1;
  for (const auto& o : options) total *= o.size();
  out->reserve(out->size() + total);
  Row prefix(options.size());
  std::function<void(size_t)> enumerate = [&](size_t pos) {
    if (pos == options.size()) {
      out->push_back(prefix);
      return;
    }
    for (const Value& v : options[pos]) {
      prefix[pos] = v;
      enumerate(pos + 1);
    }
  };
  enumerate(0);
}

/// Range bounds of a merge arm from its matched predicates — an exact
/// replica of the interpreter's inline arm-bound assembly (which differs
/// from RangeBoundsFor: it reads the arm's matched_predicates, not the
/// query conjuncts).
void MergeArmBounds(const AccessPath& part, size_t next_pos,
                    std::optional<storage::KeyBound>* lower,
                    std::optional<storage::KeyBound>* upper) {
  const catalog::IndexDef& index = *part.index;
  for (const auto& p : part.matched_predicates) {
    if (p.column.column != index.columns[next_pos]) continue;
    if (p.kind == optimizer::PredKind::kRange) {
      if (p.has_lower) {
        *lower = storage::KeyBound{Value::Int(p.lower), p.lower_inclusive};
      }
      if (p.has_upper) {
        *upper = storage::KeyBound{Value::Int(p.upper), p.upper_inclusive};
      }
    } else if (p.kind == optimizer::PredKind::kLikePrefix &&
               !p.values.empty()) {
      const std::string& pat = p.values[0].AsString();
      const size_t cut = pat.find_first_of("%_");
      const std::string pre =
          cut == std::string::npos ? pat : pat.substr(0, cut);
      if (!pre.empty()) {
        *lower = storage::KeyBound{Value::Str(pre), true};
        const std::string succ = PrefixSuccessor(pre);
        if (!succ.empty()) {
          *upper = storage::KeyBound{Value::Str(succ), false};
        }
      }
    }
  }
}

}  // namespace

StepAccess CompileStepAccess(const ExecContext& ctx,
                             const optimizer::Plan& plan, size_t step_idx,
                             const std::vector<int>& step_of_instance) {
  const optimizer::JoinStep& step = plan.steps[step_idx];
  const auto& query = ctx.query();
  const int instance = step.instance;
  const catalog::TableId table = query.instances[instance].table;
  storage::Database* db = ctx.db();

  StepAccess a;
  a.instance = instance;
  a.heap = &db->heap(table);
  a.covering = step.path.covering;

  if (step.path.is_index_merge()) {
    a.kind = StepAccess::Kind::kIndexMerge;
    for (const AccessPath& part : step.path.union_parts) {
      const catalog::IndexDef& index = *part.index;
      const storage::BTreeIndex* btree = db->btree(index.id);
      if (btree == nullptr) continue;  // hypothetical leak: skip arm
      MergeArm arm;
      arm.index = &index;
      arm.btree = btree;
      // Arm prefix options come from the arm's own matched predicates,
      // first match per key position wins, duplicates kept — exactly the
      // interpreter's inline assembly (distinct from LiteralOptionsFor).
      std::vector<std::vector<Value>> options;
      for (size_t pos = 0;
           pos < part.eq_prefix_len && pos < index.columns.size(); ++pos) {
        std::vector<Value> opts;
        for (const auto& p : part.matched_predicates) {
          if (p.column.column != index.columns[pos] ||
              !p.is_index_prefix()) {
            continue;
          }
          if (p.kind == optimizer::PredKind::kIsNull) {
            opts.push_back(Value::Null());
          } else {
            opts = p.values;
          }
          break;
        }
        if (opts.empty()) break;
        options.push_back(std::move(opts));
      }
      if (part.range_on_next && options.size() < index.columns.size()) {
        MergeArmBounds(part, options.size(), &arm.lower, &arm.upper);
      }
      EnumerateLiteralProbes(options, &arm.probes);
      a.arms.push_back(std::move(arm));
    }
    return a;
  }

  if (step.path.is_full_scan()) {
    a.kind = StepAccess::Kind::kFullScan;
    a.pages = std::max(
        1.0, db->catalog().TableSizeBytes(table) / ctx.cm().params().page_size);
    return a;
  }

  const catalog::IndexDef& index = *step.path.index;
  const storage::BTreeIndex* btree = db->btree(index.id);
  if (btree == nullptr) {
    // Hypothetical index leaked into an execution plan; treat as scan
    // (the interpreter counts rows but charges no cost on this path).
    a.kind = StepAccess::Kind::kHypoScan;
    return a;
  }
  a.index = &index;
  a.btree = btree;

  if (step.path.skip_scan && index.columns.size() >= 2) {
    a.kind = StepAccess::Kind::kSkipScan;
    a.skip_width = step.path.skip_width;
    // Range bounds apply to the key part after the skipped prefix;
    // equality predicates become a closed point range.
    for (const auto& p : query.ConjunctsForInstance(instance)) {
      if (p.column.column != index.columns[a.skip_width]) continue;
      if (p.kind == optimizer::PredKind::kEq && !p.values.empty()) {
        a.lower = storage::KeyBound{p.values[0], true};
        a.upper = storage::KeyBound{p.values[0], true};
      }
    }
    if (!a.lower.has_value()) {
      RangeBoundsFor(query, instance, index.columns[a.skip_width], &a.lower,
                     &a.upper);
    }
    return a;
  }

  a.kind = StepAccess::Kind::kIndex;
  for (size_t part = 0;
       part < step.path.eq_prefix_len && part < index.columns.size();
       ++part) {
    const catalog::ColumnId col = index.columns[part];
    KeyPart kp;
    kp.literals = LiteralOptionsFor(query, instance, col);
    if (kp.literals.empty()) {
      int src_instance = -1;
      catalog::ColumnId src_column = 0;
      if (StaticJoinSource(query, step_of_instance, instance, col,
                           static_cast<int>(step_idx), &src_instance,
                           &src_column)) {
        kp.join_bound = true;
        kp.src_instance = src_instance;
        kp.src_column = src_column;
        a.lane_invariant = false;
      } else {
        break;  // prefix ends here at run time, for every lane
      }
    }
    a.parts.push_back(std::move(kp));
  }
  a.probes_per_lane = 1;
  for (const auto& p : a.parts) a.probes_per_lane *= p.option_count();
  if (step.path.range_on_next && a.parts.size() < index.columns.size()) {
    RangeBoundsFor(query, instance, index.columns[a.parts.size()], &a.lower,
                   &a.upper);
  }
  return a;
}

void GatherInvariant(const StepAccess& a, Production* out) {
  switch (a.kind) {
    case StepAccess::Kind::kFullScan:
    case StepAccess::Kind::kHypoScan: {
      RowId cursor = 0;
      constexpr size_t kChunk = 1024;
      while (true) {
        const size_t got = a.heap->ScanChunk(&cursor, kChunk, &out->rows);
        out->visited_total += got;
        if (got < kChunk) break;
      }
      return;
    }
    case StepAccess::Kind::kSkipScan: {
      out->visited_total =
          a.btree->GatherSkip(a.skip_width, a.lower, a.upper, &out->hits,
                              &out->cum_groups, &out->groups_total);
      out->rows.reserve(out->hits.size());
      for (const auto& h : out->hits) {
        out->rows.push_back(&a.heap->row(h.rid));
      }
      return;
    }
    case StepAccess::Kind::kIndex: {
      std::vector<std::vector<Value>> options;
      options.reserve(a.parts.size());
      for (const auto& p : a.parts) options.push_back(p.literals);
      std::vector<Row> probes;
      EnumerateLiteralProbes(options, &probes);
      out->spans.reserve(probes.size());
      for (const Row& probe : probes) {
        storage::ProbeSpan span;
        span.begin = out->hits.size();
        span.visited =
            a.btree->GatherPrefix(probe, a.lower, a.upper, &out->hits);
        span.end = out->hits.size();
        out->spans.push_back(span);
        out->visited_total += span.visited;
      }
      out->rows.reserve(out->hits.size());
      for (const auto& h : out->hits) {
        out->rows.push_back(&a.heap->row(h.rid));
      }
      return;
    }
    case StepAccess::Kind::kIndexMerge: {
      std::vector<RowId> rids;
      std::vector<storage::IndexHit> scratch;
      out->arm_probe_visited.reserve(a.arms.size());
      for (const MergeArm& arm : a.arms) {
        std::vector<uint64_t> visited;
        visited.reserve(arm.probes.size());
        for (const Row& probe : arm.probes) {
          scratch.clear();
          const uint64_t v =
              arm.btree->GatherPrefix(probe, arm.lower, arm.upper, &scratch);
          visited.push_back(v);
          for (const auto& h : scratch) rids.push_back(h.rid);
        }
        out->arm_probe_visited.push_back(std::move(visited));
      }
      // The interpreter collects arm hits into a std::set<RowId> and
      // visits it in order: dedup ascending.
      std::sort(rids.begin(), rids.end());
      rids.erase(std::unique(rids.begin(), rids.end()), rids.end());
      out->rows.reserve(rids.size());
      for (const RowId rid : rids) {
        out->rows.push_back(&a.heap->row(rid));
      }
      return;
    }
  }
}

void BuildLaneProbes(const StepAccess& a, const Row* const* bound,
                     std::vector<Row>* out) {
  // Odometer over key parts, first part slowest (interpreter enumeration
  // order); join-bound parts contribute the single partner value.
  Row probe(a.parts.size());
  std::function<void(size_t)> enumerate = [&](size_t pos) {
    if (pos == a.parts.size()) {
      out->push_back(probe);
      return;
    }
    const KeyPart& kp = a.parts[pos];
    if (kp.join_bound) {
      probe[pos] = (*bound[kp.src_instance])[kp.src_column];
      enumerate(pos + 1);
      return;
    }
    for (const Value& v : kp.literals) {
      probe[pos] = v;
      enumerate(pos + 1);
    }
  };
  enumerate(0);
}

}  // namespace aim::executor
