#ifndef AIM_EXECUTOR_METRICS_H_
#define AIM_EXECUTOR_METRICS_H_

#include <cstdint>
#include <vector>

#include "catalog/types.h"

namespace aim::executor {

/// Which execution engine interprets SELECT plans. The two engines are
/// bit-identical in results and metrics (pinned by `ctest -L batch`); the
/// row interpreter is kept as the differential baseline.
enum class EngineKind {
  kBatch = 0,
  kRowAtATime = 1,
};

/// Per-operator batch counters (64-bit so 10k-template replays cannot
/// overflow). Filled by the batch engine only; purely observational —
/// deliberately *excluded* from the row-vs-batch bit-identity surface,
/// like tracing spans.
struct OperatorStats {
  uint64_t batches = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;

  void MergeFrom(const OperatorStats& other) {
    batches += other.batches;
    rows_in += other.rows_in;
    rows_out += other.rows_out;
  }
};

/// \brief Observed (not estimated) metrics of one statement execution —
/// the raw material of the paper's query execution statistics
/// (Sec. III-C): rows read, rows sent, CPU cost.
struct ExecutionMetrics {
  /// Heap rows + index entries touched while locating data.
  uint64_t rows_examined = 0;
  uint64_t index_entries_read = 0;
  uint64_t heap_rows_read = 0;
  /// Random primary-key lookups performed (secondary -> PK hops).
  uint64_t pk_lookups = 0;
  /// Rows returned to the client.
  uint64_t rows_sent = 0;
  /// Rows inserted/updated/deleted (DML).
  uint64_t rows_modified = 0;
  /// Index entries written during DML maintenance.
  uint64_t index_entries_written = 0;
  /// Rows passed through a sort.
  uint64_t rows_sorted = 0;

  /// Accumulated cost units (same currency as the cost model).
  double cost_units = 0.0;
  /// Cost units converted to CPU seconds (incl. IOWAIT), Sec. III-C.
  double cpu_seconds = 0.0;

  /// Indexes actually used by the execution.
  std::vector<catalog::IndexId> used_indexes;

  /// Per-operator aggregation (batch engine; zero on the row path).
  OperatorStats op_scan;
  OperatorStats op_filter;
  OperatorStats op_join;
  OperatorStats op_aggregate;

  /// Discarded-data ratio ingredient: data sent / data read for this
  /// execution (1.0 when nothing was read).
  double SentToReadRatio() const {
    if (rows_examined == 0) return 1.0;
    const double r = static_cast<double>(rows_sent) /
                     static_cast<double>(rows_examined);
    return r > 1.0 ? 1.0 : r;
  }

  void MergeFrom(const ExecutionMetrics& other) {
    rows_examined += other.rows_examined;
    index_entries_read += other.index_entries_read;
    heap_rows_read += other.heap_rows_read;
    pk_lookups += other.pk_lookups;
    rows_sent += other.rows_sent;
    rows_modified += other.rows_modified;
    index_entries_written += other.index_entries_written;
    rows_sorted += other.rows_sorted;
    cost_units += other.cost_units;
    cpu_seconds += other.cpu_seconds;
    used_indexes.insert(used_indexes.end(), other.used_indexes.begin(),
                        other.used_indexes.end());
    op_scan.MergeFrom(other.op_scan);
    op_filter.MergeFrom(other.op_filter);
    op_join.MergeFrom(other.op_join);
    op_aggregate.MergeFrom(other.op_aggregate);
  }
};

}  // namespace aim::executor

#endif  // AIM_EXECUTOR_METRICS_H_
