#ifndef AIM_SQL_VALUE_H_
#define AIM_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace aim::sql {

/// \brief A runtime SQL value: NULL, 64-bit integer, double, or string.
///
/// Dates are represented as kInt64 (days since epoch); the catalog records
/// the logical column type separately.
class Value {
 public:
  enum class Kind {
    kNull = 0,
    kInt64 = 1,
    kDouble = 2,
    kString = 3,
    kMax = 4,  // internal sentinel: sorts after every other value
  };

  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }
  /// Key-space supremum, used for B+Tree group jumps (skip scan). Never
  /// appears in stored rows.
  static Value Max() { return Value(Payload(MaxTag{})); }

  Kind kind() const { return static_cast<Kind>(v_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    if (kind() == Kind::kInt64) return static_cast<double>(AsInt());
    return std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Three-way comparison; NULL sorts first; cross numeric kinds compare as
  /// doubles; numeric vs string compares by kind index (stable total order).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// SQL-literal rendering ('quoted' strings, NULL keyword).
  std::string ToSqlLiteral() const;

 private:
  struct MaxTag {
    bool operator==(const MaxTag&) const { return true; }
  };
  using Payload =
      std::variant<std::monostate, int64_t, double, std::string, MaxTag>;
  explicit Value(Payload p) : v_(std::move(p)) {}
  Payload v_;
};

inline int Value::Compare(const Value& other) const {
  if (kind() == Kind::kMax || other.kind() == Kind::kMax) {
    if (kind() == other.kind()) return 0;
    return kind() == Kind::kMax ? 1 : -1;
  }
  const bool self_num =
      kind() == Kind::kInt64 || kind() == Kind::kDouble;
  const bool other_num =
      other.kind() == Kind::kInt64 || other.kind() == Kind::kDouble;
  if (kind() == Kind::kNull || other.kind() == Kind::kNull) {
    if (kind() == other.kind()) return 0;
    return kind() == Kind::kNull ? -1 : 1;
  }
  if (self_num && other_num) {
    const double a = AsDouble();
    const double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind()) ? -1 : 1;
  }
  const std::string& a = AsString();
  const std::string& b = other.AsString();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

inline std::string Value::ToSqlLiteral() const {
  switch (kind()) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt64:
      return std::to_string(AsInt());
    case Kind::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
      return buf;
    }
    case Kind::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case Kind::kMax:
      return "<MAX>";
  }
  return "NULL";
}

}  // namespace aim::sql

#endif  // AIM_SQL_VALUE_H_
