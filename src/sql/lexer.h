#ifndef AIM_SQL_LEXER_H_
#define AIM_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace aim::sql {

/// Token kinds produced by the lexer.
enum class TokenKind {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kQuestionMark,  // '?' parameter placeholder
  kComma,
  kLParen,
  kRParen,
  kDot,
  kStar,
  kEq,         // =
  kNullSafeEq, // <=>
  kNe,         // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kEof,
};

/// A lexed token; keywords are upper-cased in `text`.
struct Token {
  TokenKind kind;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;  // byte offset in the input, for error messages
};

/// \brief Tokenizes `sql` into a token stream ending with kEof.
///
/// Recognized keywords: SELECT/FROM/WHERE/GROUP/ORDER/BY/LIMIT/AND/OR/NOT/
/// IN/BETWEEN/IS/NULL/LIKE/AS/ASC/DESC/JOIN/INNER/ON/INSERT/INTO/VALUES/
/// UPDATE/SET/DELETE/COUNT/SUM/AVG/MIN/MAX/DISTINCT. Identifiers may be
/// back-quoted.
Result<std::vector<Token>> Lex(std::string_view sql);

/// True if `word` (upper-case) is a recognized keyword.
bool IsKeyword(const std::string& word);

}  // namespace aim::sql

#endif  // AIM_SQL_LEXER_H_
