#ifndef AIM_SQL_PARSER_H_
#define AIM_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace aim::sql {

/// \brief Parses a single SQL statement (SELECT / INSERT / UPDATE / DELETE).
///
/// Grammar subset (MySQL-flavoured):
///   SELECT select_list FROM table [AS alias] {, table | JOIN table ON pred}*
///     [WHERE pred] [GROUP BY cols] [ORDER BY col [ASC|DESC], ...] [LIMIT n]
///   INSERT INTO t (c, ...) VALUES (expr, ...)
///   UPDATE t SET c = expr, ... [WHERE pred]
///   DELETE FROM t [WHERE pred]
///
/// `JOIN ... ON` predicates are folded into the WHERE conjunction; the
/// advisor recovers join edges from cross-table equality predicates.
Result<Statement> Parse(std::string_view sql);

/// Convenience: parse and require a SELECT.
Result<SelectStatement> ParseSelect(std::string_view sql);

}  // namespace aim::sql

#endif  // AIM_SQL_PARSER_H_
