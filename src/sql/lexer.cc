#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/strings.h"

namespace aim::sql {

namespace {
const std::unordered_set<std::string>& KeywordSet() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",    "WHERE",  "GROUP",  "ORDER", "BY",     "LIMIT",
      "AND",    "OR",      "NOT",    "IN",     "BETWEEN", "IS",   "NULL",
      "LIKE",   "AS",      "ASC",    "DESC",   "JOIN",  "INNER",  "ON",
      "INSERT", "INTO",    "VALUES", "UPDATE", "SET",   "DELETE", "COUNT",
      "SUM",    "AVG",     "MIN",    "MAX",    "DISTINCT", "STRAIGHT_JOIN",
  };
  return kKeywords;
}
}  // namespace

bool IsKeyword(const std::string& word) {
  return KeywordSet().count(word) > 0;
}

Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  auto push = [&](TokenKind kind, std::string text, size_t off) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = off;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(uint8_t(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(uint8_t(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(uint8_t(sql[j])) || sql[j] == '_')) ++j;
      std::string word(sql.substr(i, j - i));
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        push(TokenKind::kKeyword, upper, start);
      } else {
        push(TokenKind::kIdentifier, word, start);
      }
      i = j;
      continue;
    }
    if (c == '`') {
      size_t j = i + 1;
      while (j < n && sql[j] != '`') ++j;
      if (j >= n) {
        return Status::ParseError("unterminated back-quoted identifier");
      }
      push(TokenKind::kIdentifier, std::string(sql.substr(i + 1, j - i - 1)),
           start);
      i = j + 1;
      continue;
    }
    if (std::isdigit(uint8_t(c)) ||
        (c == '-' && i + 1 < n && std::isdigit(uint8_t(sql[i + 1])) &&
         (out.empty() || (out.back().kind != TokenKind::kIdentifier &&
                          out.back().kind != TokenKind::kIntLiteral &&
                          out.back().kind != TokenKind::kDoubleLiteral &&
                          out.back().kind != TokenKind::kRParen)))) {
      size_t j = i + 1;
      bool is_double = false;
      while (j < n && (std::isdigit(uint8_t(sql[j])) || sql[j] == '.')) {
        if (sql[j] == '.') {
          // `1.` followed by another '.' would be malformed; a single '.'
          // inside digits marks a double literal.
          if (is_double) break;
          is_double = true;
        }
        ++j;
      }
      std::string text(sql.substr(i, j - i));
      Token t;
      t.offset = start;
      t.text = text;
      if (is_double) {
        t.kind = TokenKind::kDoubleLiteral;
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kIntLiteral;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          break;
        }
        text += sql[j];
        ++j;
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      Token t;
      t.kind = TokenKind::kStringLiteral;
      t.text = std::move(text);
      t.offset = start;
      out.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    switch (c) {
      case '?':
        push(TokenKind::kQuestionMark, "?", start);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        break;
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, ".", start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kNe, "!=", start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(i));
        }
        break;
      case '<':
        if (i + 2 < n && sql[i + 1] == '=' && sql[i + 2] == '>') {
          push(TokenKind::kNullSafeEq, "<=>", start);
          i += 3;
        } else if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenKind::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
    }
  }
  push(TokenKind::kEof, "", n);
  return out;
}

}  // namespace aim::sql
