#include "sql/parser.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/lexer.h"

namespace aim::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (MatchKeyword("SELECT")) return ParseSelectTail();
    if (MatchKeyword("INSERT")) return ParseInsertTail();
    if (MatchKeyword("UPDATE")) return ParseUpdateTail();
    if (MatchKeyword("DELETE")) return ParseDeleteTail();
    return Status::ParseError("expected SELECT/INSERT/UPDATE/DELETE, got '" +
                              Peek().text + "'");
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (Check(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool CheckKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kKeyword && t.text == kw;
  }
  bool MatchKeyword(const char* kw) {
    if (CheckKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind, const char* what) {
    if (!Match(kind)) {
      return Status::ParseError(std::string("expected ") + what + ", got '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + ", got '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!Check(TokenKind::kIdentifier)) {
      return Status::ParseError(std::string("expected ") + what + ", got '" +
                                Peek().text + "'");
    }
    return Advance().text;
  }

  // select_list := '*' | item (',' item)*
  // item := aggregate | column
  Result<Statement> ParseSelectTail() {
    auto select = std::make_unique<SelectStatement>();
    if (Match(TokenKind::kStar)) {
      select->select_list.push_back(Expr::MakeStar());
    } else {
      do {
        AIM_ASSIGN_OR_RETURN(ExprPtr item, ParseSelectItem());
        select->select_list.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }
    AIM_RETURN_NOT_OK(ExpectKeyword("FROM"));

    std::vector<ExprPtr> join_conds;
    AIM_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    select->from.push_back(std::move(first));
    while (true) {
      if (Match(TokenKind::kComma)) {
        AIM_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        select->from.push_back(std::move(t));
        continue;
      }
      if (CheckKeyword("JOIN") || CheckKeyword("INNER") ||
          CheckKeyword("STRAIGHT_JOIN")) {
        MatchKeyword("INNER");
        if (!MatchKeyword("JOIN")) {
          AIM_RETURN_NOT_OK(ExpectKeyword("STRAIGHT_JOIN"));
        }
        AIM_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        select->from.push_back(std::move(t));
        if (MatchKeyword("ON")) {
          AIM_ASSIGN_OR_RETURN(ExprPtr cond, ParseOrExpr());
          join_conds.push_back(std::move(cond));
        }
        continue;
      }
      break;
    }

    ExprPtr where;
    if (MatchKeyword("WHERE")) {
      AIM_ASSIGN_OR_RETURN(where, ParseOrExpr());
    }
    // Fold JOIN ... ON conditions into the WHERE conjunction.
    if (!join_conds.empty()) {
      std::vector<ExprPtr> conjuncts;
      for (auto& c : join_conds) conjuncts.push_back(std::move(c));
      if (where) conjuncts.push_back(std::move(where));
      where = conjuncts.size() == 1 ? std::move(conjuncts[0])
                                    : Expr::MakeAnd(std::move(conjuncts));
    }
    select->where = std::move(where);

    if (MatchKeyword("GROUP")) {
      AIM_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        AIM_ASSIGN_OR_RETURN(ExprPtr col, ParseColumnRef());
        select->group_by.push_back(std::move(col));
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword("ORDER")) {
      AIM_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OrderItem item;
        AIM_ASSIGN_OR_RETURN(item.expr, ParseColumnRef());
        if (MatchKeyword("DESC")) {
          item.ascending = false;
        } else {
          MatchKeyword("ASC");
        }
        select->order_by.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword("LIMIT")) {
      if (Check(TokenKind::kIntLiteral)) {
        select->limit = Advance().int_value;
      } else if (Match(TokenKind::kQuestionMark)) {
        select->limit = -2;  // parameterized limit
      } else {
        return Status::ParseError("expected integer after LIMIT");
      }
    }
    AIM_RETURN_NOT_OK(Expect(TokenKind::kEof, "end of statement"));
    Statement stmt;
    stmt.kind = Statement::Kind::kSelect;
    stmt.select = std::move(select);
    return stmt;
  }

  Result<Statement> ParseInsertTail() {
    AIM_RETURN_NOT_OK(ExpectKeyword("INTO"));
    auto insert = std::make_unique<InsertStatement>();
    AIM_ASSIGN_OR_RETURN(insert->table_name, ExpectIdentifier("table name"));
    AIM_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    do {
      AIM_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      insert->columns.push_back(std::move(col));
    } while (Match(TokenKind::kComma));
    AIM_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    AIM_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    AIM_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    do {
      AIM_ASSIGN_OR_RETURN(ExprPtr v, ParsePrimary());
      insert->values.push_back(std::move(v));
    } while (Match(TokenKind::kComma));
    AIM_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    AIM_RETURN_NOT_OK(Expect(TokenKind::kEof, "end of statement"));
    Statement stmt;
    stmt.kind = Statement::Kind::kInsert;
    stmt.insert = std::move(insert);
    return stmt;
  }

  Result<Statement> ParseUpdateTail() {
    auto update = std::make_unique<UpdateStatement>();
    AIM_ASSIGN_OR_RETURN(update->table_name, ExpectIdentifier("table name"));
    AIM_RETURN_NOT_OK(ExpectKeyword("SET"));
    do {
      AIM_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      AIM_RETURN_NOT_OK(Expect(TokenKind::kEq, "'='"));
      AIM_ASSIGN_OR_RETURN(ExprPtr v, ParsePrimary());
      update->assignments.emplace_back(std::move(col), std::move(v));
    } while (Match(TokenKind::kComma));
    if (MatchKeyword("WHERE")) {
      AIM_ASSIGN_OR_RETURN(update->where, ParseOrExpr());
    }
    AIM_RETURN_NOT_OK(Expect(TokenKind::kEof, "end of statement"));
    Statement stmt;
    stmt.kind = Statement::Kind::kUpdate;
    stmt.update = std::move(update);
    return stmt;
  }

  Result<Statement> ParseDeleteTail() {
    AIM_RETURN_NOT_OK(ExpectKeyword("FROM"));
    auto del = std::make_unique<DeleteStatement>();
    AIM_ASSIGN_OR_RETURN(del->table_name, ExpectIdentifier("table name"));
    if (MatchKeyword("WHERE")) {
      AIM_ASSIGN_OR_RETURN(del->where, ParseOrExpr());
    }
    AIM_RETURN_NOT_OK(Expect(TokenKind::kEof, "end of statement"));
    Statement stmt;
    stmt.kind = Statement::Kind::kDelete;
    stmt.del = std::move(del);
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    AIM_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier("table name"));
    if (MatchKeyword("AS")) {
      AIM_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("alias"));
    } else if (Check(TokenKind::kIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<ExprPtr> ParseSelectItem() {
    // Aggregates: COUNT(*) | COUNT(col) | SUM/AVG/MIN/MAX(col)
    if (Check(TokenKind::kKeyword)) {
      AggFunc func = AggFunc::kNone;
      const std::string& kw = Peek().text;
      if (kw == "COUNT") func = AggFunc::kCount;
      else if (kw == "SUM") func = AggFunc::kSum;
      else if (kw == "AVG") func = AggFunc::kAvg;
      else if (kw == "MIN") func = AggFunc::kMin;
      else if (kw == "MAX") func = AggFunc::kMax;
      if (func != AggFunc::kNone) {
        Advance();
        AIM_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
        MatchKeyword("DISTINCT");
        ExprPtr arg;
        if (Match(TokenKind::kStar)) {
          arg = Expr::MakeStar();
        } else {
          AIM_ASSIGN_OR_RETURN(arg, ParseColumnRef());
        }
        AIM_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        return Expr::MakeAggregate(func, std::move(arg));
      }
    }
    return ParseColumnRef();
  }

  Result<ExprPtr> ParseColumnRef() {
    AIM_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("column"));
    if (Match(TokenKind::kDot)) {
      AIM_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier("column"));
      return Expr::MakeColumn(std::move(first), std::move(second));
    }
    return Expr::MakeColumn("", std::move(first));
  }

  // OR-level expression.
  Result<ExprPtr> ParseOrExpr() {
    AIM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
    if (!CheckKeyword("OR")) return lhs;
    std::vector<ExprPtr> children;
    children.push_back(std::move(lhs));
    while (MatchKeyword("OR")) {
      AIM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
      children.push_back(std::move(rhs));
    }
    return Expr::MakeOr(std::move(children));
  }

  Result<ExprPtr> ParseAndExpr() {
    AIM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNotExpr());
    if (!CheckKeyword("AND")) return lhs;
    std::vector<ExprPtr> children;
    children.push_back(std::move(lhs));
    while (MatchKeyword("AND")) {
      AIM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNotExpr());
      children.push_back(std::move(rhs));
    }
    return Expr::MakeAnd(std::move(children));
  }

  Result<ExprPtr> ParseNotExpr() {
    if (MatchKeyword("NOT")) {
      AIM_ASSIGN_OR_RETURN(ExprPtr inner, ParseNotExpr());
      return Expr::MakeNot(std::move(inner));
    }
    return ParsePredicate();
  }

  // predicate := '(' or_expr ')'
  //            | column (op expr | IN (...) | BETWEEN a AND b
  //                      | IS [NOT] NULL | [NOT] LIKE expr)
  Result<ExprPtr> ParsePredicate() {
    if (Match(TokenKind::kLParen)) {
      AIM_ASSIGN_OR_RETURN(ExprPtr inner, ParseOrExpr());
      AIM_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    AIM_ASSIGN_OR_RETURN(ExprPtr col, ParseColumnRef());

    if (CheckKeyword("IS")) {
      Advance();
      bool negated = MatchKeyword("NOT");
      AIM_RETURN_NOT_OK(ExpectKeyword("NULL"));
      return Expr::MakeIsNull(std::move(col), negated);
    }
    bool negated = MatchKeyword("NOT");
    if (MatchKeyword("IN")) {
      AIM_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      std::vector<ExprPtr> values;
      do {
        AIM_ASSIGN_OR_RETURN(ExprPtr v, ParsePrimary());
        values.push_back(std::move(v));
      } while (Match(TokenKind::kComma));
      AIM_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      ExprPtr in = Expr::MakeIn(std::move(col), std::move(values));
      return negated ? Expr::MakeNot(std::move(in)) : std::move(in);
    }
    if (MatchKeyword("BETWEEN")) {
      AIM_ASSIGN_OR_RETURN(ExprPtr lo, ParsePrimary());
      AIM_RETURN_NOT_OK(ExpectKeyword("AND"));
      AIM_ASSIGN_OR_RETURN(ExprPtr hi, ParsePrimary());
      ExprPtr between =
          Expr::MakeBetween(std::move(col), std::move(lo), std::move(hi));
      return negated ? Expr::MakeNot(std::move(between)) : std::move(between);
    }
    if (MatchKeyword("LIKE")) {
      AIM_ASSIGN_OR_RETURN(ExprPtr pat, ParsePrimary());
      ExprPtr like = Expr::MakeComparison(CompareOp::kLike, std::move(col),
                                          std::move(pat));
      return negated ? Expr::MakeNot(std::move(like)) : std::move(like);
    }
    if (negated) {
      return Status::ParseError("expected IN/BETWEEN/LIKE after NOT");
    }

    CompareOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = CompareOp::kEq;
        break;
      case TokenKind::kNullSafeEq:
        op = CompareOp::kNullSafeEq;
        break;
      case TokenKind::kNe:
        op = CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = CompareOp::kGe;
        break;
      default:
        return Status::ParseError("expected comparison operator, got '" +
                                  Peek().text + "'");
    }
    Advance();
    AIM_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimaryOrColumn());
    return Expr::MakeComparison(op, std::move(col), std::move(rhs));
  }

  // primary := literal | '?'
  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return Expr::MakeLiteral(Value::Int(t.int_value));
      case TokenKind::kDoubleLiteral:
        Advance();
        return Expr::MakeLiteral(Value::Real(t.double_value));
      case TokenKind::kStringLiteral:
        Advance();
        return Expr::MakeLiteral(Value::Str(t.text));
      case TokenKind::kQuestionMark:
        Advance();
        return Expr::MakeParam();
      case TokenKind::kKeyword:
        if (t.text == "NULL") {
          Advance();
          return Expr::MakeLiteral(Value::Null());
        }
        break;
      default:
        break;
    }
    return Status::ParseError("expected literal or '?', got '" + t.text + "'");
  }

  // The RHS of a comparison may be another column (join predicate).
  Result<ExprPtr> ParsePrimaryOrColumn() {
    if (Check(TokenKind::kIdentifier)) return ParseColumnRef();
    return ParsePrimary();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(std::string_view sql) {
  static obs::Counter* const parse_calls =
      obs::MetricsRegistry::Global()->counter("sql.parse_calls");
  static obs::Counter* const parse_errors =
      obs::MetricsRegistry::Global()->counter("sql.parse_errors");
  parse_calls->Add();
  obs::Span span(obs::Tracer::Get(), "sql.parse");
  span.SetAttr("bytes", sql.size());
  Result<std::vector<Token>> tokens = Lex(sql);
  if (!tokens.ok()) {
    parse_errors->Add();
    span.SetAttr("error", true);
    return tokens.status();
  }
  Parser parser(std::move(tokens.ValueOrDie()));
  Result<Statement> stmt = parser.ParseStatement();
  if (!stmt.ok()) {
    parse_errors->Add();
    span.SetAttr("error", true);
  }
  return stmt;
}

Result<SelectStatement> ParseSelect(std::string_view sql) {
  AIM_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("statement is not a SELECT");
  }
  return std::move(*stmt.select);
}

}  // namespace aim::sql
