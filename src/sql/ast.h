#ifndef AIM_SQL_AST_H_
#define AIM_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/value.h"

namespace aim::sql {

/// Comparison / membership operators appearing in predicates.
enum class CompareOp {
  kEq,          // =
  kNullSafeEq,  // <=>
  kNe,          // <> / !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kLike,        // LIKE
};

/// Returns the SQL spelling of `op`.
const char* CompareOpName(CompareOp op);

/// True for operators whose matching rows share a constant index prefix
/// (Sec. IV-B2 "index prefix predicates"): =, <=> (and IN / IS NULL which
/// have their own Expr kinds).
inline bool IsEqualityLike(CompareOp op) {
  return op == CompareOp::kEq || op == CompareOp::kNullSafeEq;
}

/// Aggregate functions supported in the select list.
enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// \brief A tagged-union expression tree.
///
/// The grammar is deliberately the subset an index advisor cares about:
/// predicates are `column op expr`, IN lists, BETWEEN, IS [NOT] NULL, and
/// AND/OR combinations thereof. The select list holds columns, `*`, or a
/// single-column aggregate.
struct Expr {
  enum class Kind {
    kColumn,      // table.column (table optional before binding)
    kLiteral,     // constant value
    kParam,       // '?' placeholder (normalized query)
    kStar,        // '*' in select list / COUNT(*)
    kComparison,  // children[0] op children[1]
    kInList,      // children[0] IN (children[1..])
    kBetween,     // children[0] BETWEEN children[1] AND children[2]
    kIsNull,      // children[0] IS [NOT] NULL (negated flag)
    kAnd,         // conjunction of children
    kOr,          // disjunction of children
    kNot,         // NOT children[0]
    kAggregate,   // func(children[0]) e.g. SUM(col), COUNT(*)
  };

  Kind kind;
  // kColumn:
  std::string table;   // alias or table name; may be empty pre-binding
  std::string column;  // column name
  // kLiteral:
  Value value;
  // kComparison:
  CompareOp op = CompareOp::kEq;
  // kIsNull:
  bool negated = false;
  // kAggregate:
  AggFunc agg = AggFunc::kNone;

  std::vector<ExprPtr> children;

  static ExprPtr MakeColumn(std::string table, std::string column);
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeParam();
  static ExprPtr MakeStar();
  static ExprPtr MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeIn(ExprPtr col, std::vector<ExprPtr> values);
  static ExprPtr MakeBetween(ExprPtr col, ExprPtr lo, ExprPtr hi);
  static ExprPtr MakeIsNull(ExprPtr col, bool negated);
  static ExprPtr MakeAnd(std::vector<ExprPtr> children);
  static ExprPtr MakeOr(std::vector<ExprPtr> children);
  static ExprPtr MakeNot(ExprPtr child);
  static ExprPtr MakeAggregate(AggFunc func, ExprPtr arg);

  /// Deep copy.
  ExprPtr Clone() const;
};

/// A table in the FROM clause; `alias` defaults to `table_name`.
struct TableRef {
  std::string table_name;
  std::string alias;

  const std::string& effective_alias() const {
    return alias.empty() ? table_name : alias;
  }
};

/// One ORDER BY item.
struct OrderItem {
  ExprPtr expr;  // column reference
  bool ascending = true;
};

/// \brief SELECT statement.
///
/// JOIN ... ON syntax is accepted by the parser and folded into `where` as
/// extra conjuncts, which matches how the advisor consumes the query (join
/// edges are recovered from column-equality predicates across tables).
struct SelectStatement {
  std::vector<ExprPtr> select_list;
  std::vector<TableRef> from;
  ExprPtr where;  // nullable
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  SelectStatement Clone() const;
};

/// INSERT INTO t (cols) VALUES (exprs).
struct InsertStatement {
  std::string table_name;
  std::vector<std::string> columns;
  std::vector<ExprPtr> values;

  InsertStatement Clone() const;
};

/// UPDATE t SET col = expr, ... WHERE ...
struct UpdateStatement {
  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // nullable

  UpdateStatement Clone() const;
};

/// DELETE FROM t WHERE ...
struct DeleteStatement {
  std::string table_name;
  ExprPtr where;  // nullable

  DeleteStatement Clone() const;
};

/// \brief A parsed SQL statement (tagged union over the four kinds).
struct Statement {
  enum class Kind { kSelect, kInsert, kUpdate, kDelete };

  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<UpdateStatement> update;
  std::unique_ptr<DeleteStatement> del;

  bool is_dml() const { return kind != Kind::kSelect; }
  Statement Clone() const;
};

// ---- inline factory implementations ----------------------------------------

inline ExprPtr Expr::MakeColumn(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

inline ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->value = std::move(v);
  return e;
}

inline ExprPtr Expr::MakeParam() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kParam;
  return e;
}

inline ExprPtr Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kStar;
  return e;
}

inline ExprPtr Expr::MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kComparison;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

inline ExprPtr Expr::MakeIn(ExprPtr col, std::vector<ExprPtr> values) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kInList;
  e->children.push_back(std::move(col));
  for (auto& v : values) e->children.push_back(std::move(v));
  return e;
}

inline ExprPtr Expr::MakeBetween(ExprPtr col, ExprPtr lo, ExprPtr hi) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBetween;
  e->children.push_back(std::move(col));
  e->children.push_back(std::move(lo));
  e->children.push_back(std::move(hi));
  return e;
}

inline ExprPtr Expr::MakeIsNull(ExprPtr col, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kIsNull;
  e->negated = negated;
  e->children.push_back(std::move(col));
  return e;
}

inline ExprPtr Expr::MakeAnd(std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAnd;
  e->children = std::move(children);
  return e;
}

inline ExprPtr Expr::MakeOr(std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kOr;
  e->children = std::move(children);
  return e;
}

inline ExprPtr Expr::MakeNot(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

inline ExprPtr Expr::MakeAggregate(AggFunc func, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->agg = func;
  if (arg) e->children.push_back(std::move(arg));
  return e;
}

inline ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->table = table;
  e->column = column;
  e->value = value;
  e->op = op;
  e->negated = negated;
  e->agg = agg;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

inline SelectStatement SelectStatement::Clone() const {
  SelectStatement s;
  for (const auto& e : select_list) s.select_list.push_back(e->Clone());
  s.from = from;
  if (where) s.where = where->Clone();
  for (const auto& e : group_by) s.group_by.push_back(e->Clone());
  for (const auto& o : order_by) {
    OrderItem item;
    item.expr = o.expr->Clone();
    item.ascending = o.ascending;
    s.order_by.push_back(std::move(item));
  }
  s.limit = limit;
  return s;
}

inline InsertStatement InsertStatement::Clone() const {
  InsertStatement s;
  s.table_name = table_name;
  s.columns = columns;
  for (const auto& e : values) s.values.push_back(e->Clone());
  return s;
}

inline UpdateStatement UpdateStatement::Clone() const {
  UpdateStatement s;
  s.table_name = table_name;
  for (const auto& [col, e] : assignments) {
    s.assignments.emplace_back(col, e->Clone());
  }
  if (where) s.where = where->Clone();
  return s;
}

inline DeleteStatement DeleteStatement::Clone() const {
  DeleteStatement s;
  s.table_name = table_name;
  if (where) s.where = where->Clone();
  return s;
}

inline Statement Statement::Clone() const {
  Statement s;
  s.kind = kind;
  if (select) s.select = std::make_unique<SelectStatement>(select->Clone());
  if (insert) s.insert = std::make_unique<InsertStatement>(insert->Clone());
  if (update) s.update = std::make_unique<UpdateStatement>(update->Clone());
  if (del) s.del = std::make_unique<DeleteStatement>(del->Clone());
  return s;
}

inline const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNullSafeEq:
      return "<=>";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLike:
      return "LIKE";
  }
  return "?";
}

}  // namespace aim::sql

#endif  // AIM_SQL_AST_H_
