#include "sql/normalizer.h"

#include <algorithm>

#include "sql/printer.h"

namespace aim::sql {

namespace {

void CanonicalizeExpr(Expr* e) {
  for (auto& c : e->children) CanonicalizeExpr(c.get());
  if (e->kind != Expr::Kind::kInList || e->children.size() < 3) return;
  const auto first = e->children.begin() + 1;
  if (!std::all_of(first, e->children.end(), [](const ExprPtr& c) {
        return c->kind == Expr::Kind::kLiteral;
      })) {
    return;
  }
  std::sort(first, e->children.end(), [](const ExprPtr& a, const ExprPtr& b) {
    return a->value < b->value;
  });
  e->children.erase(std::unique(first, e->children.end(),
                                [](const ExprPtr& a, const ExprPtr& b) {
                                  return a->value == b->value;
                                }),
                    e->children.end());
}

void NormalizeExpr(Expr* e) {
  switch (e->kind) {
    case Expr::Kind::kLiteral:
      e->kind = Expr::Kind::kParam;
      e->value = Value::Null();
      break;
    case Expr::Kind::kInList: {
      // Collapse the IN-list to a single placeholder so that
      // `IN (1,2)` and `IN (3,4,5)` normalize identically.
      NormalizeExpr(e->children[0].get());
      Expr* col = nullptr;
      ExprPtr col_holder = std::move(e->children[0]);
      col = col_holder.get();
      (void)col;
      e->children.clear();
      e->children.push_back(std::move(col_holder));
      e->children.push_back(Expr::MakeParam());
      break;
    }
    default:
      for (auto& c : e->children) NormalizeExpr(c.get());
      break;
  }
}

}  // namespace

void Normalize(SelectStatement* stmt) {
  for (auto& e : stmt->select_list) NormalizeExpr(e.get());
  if (stmt->where) NormalizeExpr(stmt->where.get());
  for (auto& e : stmt->group_by) NormalizeExpr(e.get());
  for (auto& o : stmt->order_by) NormalizeExpr(o.expr.get());
  if (stmt->limit >= 0) stmt->limit = -2;
}

void Normalize(Statement* stmt) {
  switch (stmt->kind) {
    case Statement::Kind::kSelect:
      Normalize(stmt->select.get());
      break;
    case Statement::Kind::kInsert:
      for (auto& v : stmt->insert->values) NormalizeExpr(v.get());
      break;
    case Statement::Kind::kUpdate:
      for (auto& [col, v] : stmt->update->assignments) NormalizeExpr(v.get());
      if (stmt->update->where) NormalizeExpr(stmt->update->where.get());
      break;
    case Statement::Kind::kDelete:
      if (stmt->del->where) NormalizeExpr(stmt->del->where.get());
      break;
  }
}

void Canonicalize(SelectStatement* stmt) {
  for (auto& e : stmt->select_list) CanonicalizeExpr(e.get());
  if (stmt->where) CanonicalizeExpr(stmt->where.get());
  for (auto& e : stmt->group_by) CanonicalizeExpr(e.get());
  for (auto& o : stmt->order_by) CanonicalizeExpr(o.expr.get());
}

void Canonicalize(Statement* stmt) {
  switch (stmt->kind) {
    case Statement::Kind::kSelect:
      Canonicalize(stmt->select.get());
      break;
    case Statement::Kind::kInsert:
      for (auto& v : stmt->insert->values) CanonicalizeExpr(v.get());
      break;
    case Statement::Kind::kUpdate:
      for (auto& [col, v] : stmt->update->assignments) {
        CanonicalizeExpr(v.get());
      }
      if (stmt->update->where) CanonicalizeExpr(stmt->update->where.get());
      break;
    case Statement::Kind::kDelete:
      if (stmt->del->where) CanonicalizeExpr(stmt->del->where.get());
      break;
  }
}

std::string NormalizedSql(const Statement& stmt) {
  Statement copy = stmt.Clone();
  Normalize(&copy);
  return ToSql(copy);
}

uint64_t NormalizedFingerprint(const Statement& stmt) {
  // FNV-1a over the normalized text.
  const std::string text = NormalizedSql(stmt);
  uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace aim::sql
