#include "sql/normalizer.h"

#include "sql/printer.h"

namespace aim::sql {

namespace {

void NormalizeExpr(Expr* e) {
  switch (e->kind) {
    case Expr::Kind::kLiteral:
      e->kind = Expr::Kind::kParam;
      e->value = Value::Null();
      break;
    case Expr::Kind::kInList: {
      // Collapse the IN-list to a single placeholder so that
      // `IN (1,2)` and `IN (3,4,5)` normalize identically.
      NormalizeExpr(e->children[0].get());
      Expr* col = nullptr;
      ExprPtr col_holder = std::move(e->children[0]);
      col = col_holder.get();
      (void)col;
      e->children.clear();
      e->children.push_back(std::move(col_holder));
      e->children.push_back(Expr::MakeParam());
      break;
    }
    default:
      for (auto& c : e->children) NormalizeExpr(c.get());
      break;
  }
}

}  // namespace

void Normalize(SelectStatement* stmt) {
  for (auto& e : stmt->select_list) NormalizeExpr(e.get());
  if (stmt->where) NormalizeExpr(stmt->where.get());
  for (auto& e : stmt->group_by) NormalizeExpr(e.get());
  for (auto& o : stmt->order_by) NormalizeExpr(o.expr.get());
  if (stmt->limit >= 0) stmt->limit = -2;
}

void Normalize(Statement* stmt) {
  switch (stmt->kind) {
    case Statement::Kind::kSelect:
      Normalize(stmt->select.get());
      break;
    case Statement::Kind::kInsert:
      for (auto& v : stmt->insert->values) NormalizeExpr(v.get());
      break;
    case Statement::Kind::kUpdate:
      for (auto& [col, v] : stmt->update->assignments) NormalizeExpr(v.get());
      if (stmt->update->where) NormalizeExpr(stmt->update->where.get());
      break;
    case Statement::Kind::kDelete:
      if (stmt->del->where) NormalizeExpr(stmt->del->where.get());
      break;
  }
}

std::string NormalizedSql(const Statement& stmt) {
  Statement copy = stmt.Clone();
  Normalize(&copy);
  return ToSql(copy);
}

uint64_t NormalizedFingerprint(const Statement& stmt) {
  // FNV-1a over the normalized text.
  const std::string text = NormalizedSql(stmt);
  uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace aim::sql
