#include "sql/printer.h"

#include "common/strings.h"

namespace aim::sql {

namespace {

const char* AggName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kNone:
      break;
  }
  return "?";
}

// `parent_or` forces parenthesization of AND children under OR output for
// stable round-tripping.
void Print(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kColumn:
      if (!e.table.empty()) {
        out->append(e.table);
        out->push_back('.');
      }
      out->append(e.column);
      break;
    case Expr::Kind::kLiteral:
      out->append(e.value.ToSqlLiteral());
      break;
    case Expr::Kind::kParam:
      out->push_back('?');
      break;
    case Expr::Kind::kStar:
      out->push_back('*');
      break;
    case Expr::Kind::kComparison:
      Print(*e.children[0], out);
      out->push_back(' ');
      out->append(CompareOpName(e.op));
      out->push_back(' ');
      Print(*e.children[1], out);
      break;
    case Expr::Kind::kInList:
      Print(*e.children[0], out);
      out->append(" IN (");
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) out->append(", ");
        Print(*e.children[i], out);
      }
      out->push_back(')');
      break;
    case Expr::Kind::kBetween:
      Print(*e.children[0], out);
      out->append(" BETWEEN ");
      Print(*e.children[1], out);
      out->append(" AND ");
      Print(*e.children[2], out);
      break;
    case Expr::Kind::kIsNull:
      Print(*e.children[0], out);
      out->append(e.negated ? " IS NOT NULL" : " IS NULL");
      break;
    case Expr::Kind::kAnd:
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out->append(" AND ");
        const bool paren = e.children[i]->kind == Expr::Kind::kOr;
        if (paren) out->push_back('(');
        Print(*e.children[i], out);
        if (paren) out->push_back(')');
      }
      break;
    case Expr::Kind::kOr:
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out->append(" OR ");
        const bool paren = e.children[i]->kind == Expr::Kind::kAnd ||
                           e.children[i]->kind == Expr::Kind::kOr;
        if (paren) out->push_back('(');
        Print(*e.children[i], out);
        if (paren) out->push_back(')');
      }
      break;
    case Expr::Kind::kNot:
      out->append("NOT (");
      Print(*e.children[0], out);
      out->push_back(')');
      break;
    case Expr::Kind::kAggregate:
      out->append(AggName(e.agg));
      out->push_back('(');
      if (!e.children.empty()) Print(*e.children[0], out);
      out->push_back(')');
      break;
  }
}

}  // namespace

std::string ToSql(const Expr& expr) {
  std::string out;
  Print(expr, &out);
  return out;
}

std::string ToSql(const SelectStatement& stmt) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < stmt.select_list.size(); ++i) {
    if (i > 0) out.append(", ");
    Print(*stmt.select_list[i], &out);
  }
  out.append(" FROM ");
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(stmt.from[i].table_name);
    if (!stmt.from[i].alias.empty() &&
        stmt.from[i].alias != stmt.from[i].table_name) {
      out.append(" AS ");
      out.append(stmt.from[i].alias);
    }
  }
  if (stmt.where) {
    out.append(" WHERE ");
    Print(*stmt.where, &out);
  }
  if (!stmt.group_by.empty()) {
    out.append(" GROUP BY ");
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out.append(", ");
      Print(*stmt.group_by[i], &out);
    }
  }
  if (!stmt.order_by.empty()) {
    out.append(" ORDER BY ");
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out.append(", ");
      Print(*stmt.order_by[i].expr, &out);
      if (!stmt.order_by[i].ascending) out.append(" DESC");
    }
  }
  if (stmt.limit == -2) {
    out.append(" LIMIT ?");
  } else if (stmt.limit >= 0) {
    out.append(" LIMIT ");
    out.append(std::to_string(stmt.limit));
  }
  return out;
}

std::string ToSql(const InsertStatement& stmt) {
  std::string out = "INSERT INTO " + stmt.table_name + " (";
  out.append(Join(stmt.columns, ", "));
  out.append(") VALUES (");
  for (size_t i = 0; i < stmt.values.size(); ++i) {
    if (i > 0) out.append(", ");
    Print(*stmt.values[i], &out);
  }
  out.push_back(')');
  return out;
}

std::string ToSql(const UpdateStatement& stmt) {
  std::string out = "UPDATE " + stmt.table_name + " SET ";
  for (size_t i = 0; i < stmt.assignments.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(stmt.assignments[i].first);
    out.append(" = ");
    Print(*stmt.assignments[i].second, &out);
  }
  if (stmt.where) {
    out.append(" WHERE ");
    Print(*stmt.where, &out);
  }
  return out;
}

std::string ToSql(const DeleteStatement& stmt) {
  std::string out = "DELETE FROM " + stmt.table_name;
  if (stmt.where) {
    out.append(" WHERE ");
    Print(*stmt.where, &out);
  }
  return out;
}

std::string ToSql(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ToSql(*stmt.select);
    case Statement::Kind::kInsert:
      return ToSql(*stmt.insert);
    case Statement::Kind::kUpdate:
      return ToSql(*stmt.update);
    case Statement::Kind::kDelete:
      return ToSql(*stmt.del);
  }
  return "";
}

}  // namespace aim::sql
