#ifndef AIM_SQL_PRINTER_H_
#define AIM_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace aim::sql {

/// Renders an expression back to SQL text.
std::string ToSql(const Expr& expr);

/// Renders a statement back to SQL text. Round-trips with the parser up to
/// whitespace and keyword casing (used for normalized-query keys).
std::string ToSql(const Statement& stmt);
std::string ToSql(const SelectStatement& stmt);
std::string ToSql(const InsertStatement& stmt);
std::string ToSql(const UpdateStatement& stmt);
std::string ToSql(const DeleteStatement& stmt);

}  // namespace aim::sql

#endif  // AIM_SQL_PRINTER_H_
