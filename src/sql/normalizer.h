#ifndef AIM_SQL_NORMALIZER_H_
#define AIM_SQL_NORMALIZER_H_

#include <cstdint>
#include <string>

#include "sql/ast.h"

namespace aim::sql {

/// \brief Replaces every literal appearing as a predicate operand, IN-list
/// element, BETWEEN bound, assignment value, insert value, or LIMIT with a
/// `?` placeholder, in place (Sec. III-A1 "normalized query").
///
/// Queries that differ only in parameter values normalize to identical
/// statements and therefore share execution statistics.
void Normalize(Statement* stmt);
void Normalize(SelectStatement* stmt);

/// \brief Canonicalizes a statement for templating, in place: every IN
/// list whose elements are all literals gets its elements sorted by value
/// and duplicate literals collapsed.
///
/// IN is set membership, so `IN (3, 1, 3)` and `IN (1, 3)` are the same
/// predicate; after canonicalization they also print to the same SQL
/// text, share one statement fingerprint, and land in one
/// workload-compression cluster. Lists containing `?` placeholders (or
/// any non-literal element) are left untouched.
void Canonicalize(Statement* stmt);
void Canonicalize(SelectStatement* stmt);

/// Normalized SQL text of `stmt` (without mutating it).
std::string NormalizedSql(const Statement& stmt);

/// Stable 64-bit fingerprint of the normalized SQL text, used as the
/// per-normalized-query key in the workload monitor.
uint64_t NormalizedFingerprint(const Statement& stmt);

}  // namespace aim::sql

#endif  // AIM_SQL_NORMALIZER_H_
