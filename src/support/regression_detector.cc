#include "support/regression_detector.h"

#include <numeric>

#include "obs/metrics.h"

namespace aim::support {

std::vector<Regression> RegressionDetector::Observe(
    const std::vector<workload::QueryStats>& interval_stats,
    const std::vector<std::pair<catalog::IndexId, catalog::TableId>>&
        automation_indexes) {
  std::vector<Regression> regressions;
  for (const workload::QueryStats& s : interval_stats) {
    if (s.executions < options_.min_executions) continue;
    History& h = history_[s.fingerprint];
    const double current = s.cpu_avg();
    if (h.cpu_avg_window.size() >= 2) {
      const double baseline =
          std::accumulate(h.cpu_avg_window.begin(),
                          h.cpu_avg_window.end(), 0.0) /
          static_cast<double>(h.cpu_avg_window.size());
      if (baseline > 0 &&
          current > options_.regression_ratio * baseline) {
        Regression r;
        r.fingerprint = s.fingerprint;
        r.baseline_cpu_avg = baseline;
        r.current_cpu_avg = current;
        r.ratio = current / baseline;
        // All automation indexes are suspects; a finer attribution would
        // match tables, which the caller can do with the query text.
        for (const auto& [id, table] : automation_indexes) {
          (void)table;
          r.suspect_indexes.push_back(id);
        }
        regressions.push_back(std::move(r));
      }
    }
    h.cpu_avg_window.push_back(current);
    while (h.cpu_avg_window.size() > options_.baseline_window) {
      h.cpu_avg_window.pop_front();
    }
  }
  if (!regressions.empty()) {
    // Observability for the exploration feedback loop: every detected
    // regression is a potential rollback/quarantine trigger upstream.
    static obs::Counter* const detected =
        obs::MetricsRegistry::Global()->counter(
            "aim.exploration.regressions");
    detected->Add(regressions.size());
  }
  return regressions;
}

}  // namespace aim::support
