#ifndef AIM_SUPPORT_REGRESSION_DETECTOR_H_
#define AIM_SUPPORT_REGRESSION_DETECTOR_H_

#include <deque>
#include <map>
#include <vector>

#include "catalog/catalog.h"
#include "workload/monitor.h"

namespace aim::support {

/// A detected per-query regression.
struct Regression {
  uint64_t fingerprint = 0;
  double baseline_cpu_avg = 0.0;
  double current_cpu_avg = 0.0;
  double ratio = 0.0;
  /// Automation-created indexes implicated (flagged for removal).
  std::vector<catalog::IndexId> suspect_indexes;
};

/// \brief Continuous regression detector (Sec. VII-C): an off-host
/// process that watches each normalized query's average CPU over time and
/// flags regressions; when a regression coincides with an
/// automation-added index touching the query's tables, that index is
/// flagged for removal.
struct RegressionDetectorOptions {
  /// Regression threshold: current cpu_avg > ratio x trailing baseline.
  double regression_ratio = 1.5;
  /// Trailing window (intervals) forming the baseline.
  size_t baseline_window = 4;
  /// Minimum executions per interval for a meaningful signal.
  uint64_t min_executions = 5;
};

class RegressionDetector {
 public:
  using Options = RegressionDetectorOptions;

  explicit RegressionDetector(Options options = Options())
      : options_(options) {}

  /// Feeds one interval's aggregated statistics; returns regressions
  /// detected this interval. `automation_indexes` is the current set of
  /// automation-created index ids with their tables (suspects for newly
  /// regressed queries).
  std::vector<Regression> Observe(
      const std::vector<workload::QueryStats>& interval_stats,
      const std::vector<std::pair<catalog::IndexId, catalog::TableId>>&
          automation_indexes = {});

 private:
  struct History {
    std::deque<double> cpu_avg_window;
  };

  Options options_;
  std::map<uint64_t, History> history_;
};

}  // namespace aim::support

#endif  // AIM_SUPPORT_REGRESSION_DETECTOR_H_
