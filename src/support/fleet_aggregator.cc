#include "support/fleet_aggregator.h"

#include "obs/metrics.h"

namespace aim::support {

void FleetAggregator::AttachTo(StatsExporter* exporter) {
  exporter->Subscribe(
      [this](const StatsMessage& message) { Ingest(message); });
}

void FleetAggregator::Ingest(const StatsMessage& message) {
  static obs::Counter* const folded =
      obs::MetricsRegistry::Global()->counter("fleet.stats.messages");
  static obs::Counter* const duplicates =
      obs::MetricsRegistry::Global()->counter("fleet.stats.duplicates");
  std::lock_guard<std::mutex> lock(mu_);
  TenantStatsView& view = views_[message.replica];
  if (view.tenant.empty()) view.tenant = message.replica;
  if (message.interval <= view.last_interval) {
    // At-least-once redelivery of an already-folded interval.
    ++duplicates_dropped_;
    duplicates->Add();
    return;
  }
  view.last_interval = message.interval;
  ++view.messages;
  view.last_delta = message.stats;
  view.last_delta_benefit_seconds = 0.0;
  view.last_delta_cpu_seconds = 0.0;
  for (const workload::QueryStats& q : message.stats) {
    view.last_delta_benefit_seconds +=
        static_cast<double>(q.executions) * q.expected_benefit();
    view.last_delta_cpu_seconds += q.total_cpu_seconds;
  }
  folded->Add();
}

TenantStatsView FleetAggregator::view(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(tenant);
  return it == views_.end() ? TenantStatsView{} : it->second;
}

std::vector<TenantStatsView> FleetAggregator::views() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantStatsView> out;
  out.reserve(views_.size());
  for (const auto& [_, v] : views_) out.push_back(v);
  return out;
}

uint64_t FleetAggregator::duplicates_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_dropped_;
}

size_t FleetAggregator::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

}  // namespace aim::support
