#ifndef AIM_SUPPORT_MYSHADOW_H_
#define AIM_SUPPORT_MYSHADOW_H_

#include <memory>
#include <vector>

#include "common/retry.h"
#include "executor/executor.h"
#include "workload/monitor.h"
#include "workload/workload.h"

namespace aim::support {

/// Result of replaying a workload on a shadow instance.
struct ShadowReplayResult {
  workload::WorkloadMonitor monitor;
  double total_cpu_seconds = 0.0;
  size_t executed = 0;
  size_t failed = 0;
  /// Executions that succeeded only after at least one retry.
  size_t recovered = 0;
  /// Virtual backoff accounted by the retry policy during the replay.
  double retry_backoff_ms = 0.0;
};

/// \brief MyShadow (Sec. VII-B): a test-environment provider that clones a
/// database (optionally sampling its data) and replays production traffic
/// onto the clone — the safety net that lets AIM materialize candidate
/// indexes without touching production.
///
/// Failure model: clone construction, materialization, and replay all sit
/// behind fault points (`shadow.clone`, `shadow.materialize`,
/// `shadow.replay`). Transient (`kUnavailable`) failures are retried with
/// exponential backoff; materialization is all-or-nothing on the clone.
class MyShadow {
 public:
  /// Clones `production`. `sample_fraction` < 1 keeps only that fraction
  /// of each table's rows (economical test beds); statistics are
  /// re-analyzed after sampling. Check `init_status()` before use: a
  /// failed clone construction leaves the shadow unusable (every
  /// operation returns the construction error).
  MyShadow(const storage::Database& production, double sample_fraction = 1.0,
           uint64_t seed = 17);

  /// OK when the clone was constructed successfully.
  const Status& init_status() const { return init_status_; }

  /// Retry knobs for transient materialization/replay failures.
  void set_retry_options(RetryOptions options) { retry_options_ = options; }

  storage::Database& db() { return clone_; }
  const storage::Database& db() const { return clone_; }

  /// Materializes candidate indexes on the clone (never hypothetical).
  /// Atomic: on failure the clone's index set is left unchanged.
  /// Transient failures are retried before giving up.
  Status Materialize(const std::vector<catalog::IndexDef>& indexes);

  /// Replays each workload query `repetitions` times, collecting observed
  /// statistics. Individual query failures are counted (`failed`), not
  /// propagated; transient failures are retried first. A non-OK return
  /// means the replay as a whole could not run (unusable shadow or an
  /// injected `shadow.replay` fault).
  Result<ShadowReplayResult> Replay(const workload::Workload& workload,
                                    optimizer::CostModel cm,
                                    int repetitions = 1);

 private:
  storage::Database clone_;
  Status init_status_;
  RetryOptions retry_options_;
};

}  // namespace aim::support

#endif  // AIM_SUPPORT_MYSHADOW_H_
