#ifndef AIM_SUPPORT_MYSHADOW_H_
#define AIM_SUPPORT_MYSHADOW_H_

#include <memory>
#include <vector>

#include "executor/executor.h"
#include "workload/monitor.h"
#include "workload/workload.h"

namespace aim::support {

/// Result of replaying a workload on a shadow instance.
struct ShadowReplayResult {
  workload::WorkloadMonitor monitor;
  double total_cpu_seconds = 0.0;
  size_t executed = 0;
  size_t failed = 0;
};

/// \brief MyShadow (Sec. VII-B): a test-environment provider that clones a
/// database (optionally sampling its data) and replays production traffic
/// onto the clone — the safety net that lets AIM materialize candidate
/// indexes without touching production.
class MyShadow {
 public:
  /// Clones `production`. `sample_fraction` < 1 keeps only that fraction
  /// of each table's rows (economical test beds); statistics are
  /// re-analyzed after sampling.
  MyShadow(const storage::Database& production, double sample_fraction = 1.0,
           uint64_t seed = 17);

  storage::Database& db() { return clone_; }
  const storage::Database& db() const { return clone_; }

  /// Materializes candidate indexes on the clone (never hypothetical).
  Status Materialize(const std::vector<catalog::IndexDef>& indexes);

  /// Replays each workload query `repetitions` times, collecting observed
  /// statistics.
  ShadowReplayResult Replay(const workload::Workload& workload,
                            optimizer::CostModel cm, int repetitions = 1);

 private:
  storage::Database clone_;
};

}  // namespace aim::support

#endif  // AIM_SUPPORT_MYSHADOW_H_
