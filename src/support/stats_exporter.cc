#include "support/stats_exporter.h"

#include <mutex>

#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aim::support {

void StatsExporter::RegisterReplica(const std::string& name,
                                    workload::WorkloadMonitor* monitor) {
  std::lock_guard<std::mutex> lock(mu_);
  replicas_[name] = monitor;
}

void StatsExporter::Subscribe(Subscriber subscriber) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.push_back(std::move(subscriber));
}

workload::WorkloadMonitor StatsExporter::AggregateSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  workload::WorkloadMonitor copy;
  copy.MergeFrom(aggregate_);
  return copy;
}

int StatsExporter::intervals_exported() const {
  std::lock_guard<std::mutex> lock(mu_);
  return interval_;
}

Result<size_t> StatsExporter::ExportInterval() {
  // One lock across snapshot → publish → commit: concurrent publishers
  // serialize whole intervals, so subscribers always see each interval's
  // message batch unbroken and interval numbers strictly monotone.
  std::lock_guard<std::mutex> lock(mu_);
  static obs::Counter* const exports =
      obs::MetricsRegistry::Global()->counter("stats_exporter.exports");
  static obs::Counter* const export_failures =
      obs::MetricsRegistry::Global()->counter(
          "stats_exporter.export_failures");
  obs::Span span(obs::Tracer::Get(), "stats_exporter.export_interval");
  span.SetAttr("interval", interval_);
  span.SetAttr("replicas", replicas_.size());
  // Phase 1 — snapshot. Nothing is mutated yet: a failure anywhere below
  // must leave every monitor still holding this interval's deltas.
  std::vector<StatsMessage> messages;
  messages.reserve(replicas_.size());
  for (auto& [name, monitor] : replicas_) {
    StatsMessage msg;
    msg.replica = name;
    msg.interval = interval_;
    msg.stats = monitor->Snapshot();
    messages.push_back(std::move(msg));
  }
  // Phase 2 — publish. An injected transport failure aborts the export
  // with monitors unreset and `interval_` unchanged, so the next call
  // re-exports the same interval (at-least-once delivery).
  for (const StatsMessage& msg : messages) {
    const Status fault = AIM_FAULT_POINT_STATUS("support.stats.export");
    if (!fault.ok()) {
      export_failures->Add();
      span.SetAttr("error", fault.ToString());
      return fault;
    }
    for (const Subscriber& s : subscribers_) s(msg);
  }
  exports->Add();
  // Phase 3 — commit: fold into the warehouse aggregate, reset the
  // monitors to start the next delta window, advance the interval.
  for (auto& [name, monitor] : replicas_) {
    aggregate_.MergeFrom(*monitor);
    monitor->Reset();
  }
  ++interval_;
  return messages.size();
}

}  // namespace aim::support
