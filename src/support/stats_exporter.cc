#include "support/stats_exporter.h"

namespace aim::support {

void StatsExporter::RegisterReplica(const std::string& name,
                                    workload::WorkloadMonitor* monitor) {
  replicas_[name] = monitor;
}

void StatsExporter::Subscribe(Subscriber subscriber) {
  subscribers_.push_back(std::move(subscriber));
}

size_t StatsExporter::ExportInterval() {
  size_t published = 0;
  for (auto& [name, monitor] : replicas_) {
    StatsMessage msg;
    msg.replica = name;
    msg.interval = interval_;
    msg.stats = monitor->Snapshot();
    aggregate_.MergeFrom(*monitor);
    monitor->Reset();
    for (const Subscriber& s : subscribers_) s(msg);
    ++published;
  }
  ++interval_;
  return published;
}

}  // namespace aim::support
