#ifndef AIM_SUPPORT_STATS_EXPORTER_H_
#define AIM_SUPPORT_STATS_EXPORTER_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/monitor.h"

namespace aim::support {

/// One exported statistics message (the pub-sub payload of Sec. VII-A).
struct StatsMessage {
  std::string replica;
  int interval = 0;
  std::vector<workload::QueryStats> stats;
};

/// \brief Continuous statistics export (Sec. VII-A): a daemon that
/// periodically polls every replica's workload monitor and publishes the
/// per-interval deltas to subscribers; the warehouse side aggregates the
/// replica streams into the holistic per-database view AIM consumes.
///
/// Single-process simulation of the pipeline: replicas register their
/// monitors, `ExportInterval` snapshots + resets them and publishes one
/// message per replica, and `aggregate()` is the warehouse view.
///
/// Thread-safe for multi-tenant publishers: registration, subscription,
/// and export serialize on one internal mutex, and the mutex is held
/// across a whole ExportInterval — snapshot, publish, commit — so one
/// interval's messages are always delivered as an unbroken batch (never
/// interleaved with another publisher's interval, never torn mid-batch)
/// and interval numbers stay strictly monotone per exporter. Subscribers
/// run under that lock and must not call back into the exporter.
/// `aggregate()` reads are only stable at quiescent points; concurrent
/// observers should take `AggregateSnapshot()` instead.
class StatsExporter {
 public:
  using Subscriber = std::function<void(const StatsMessage&)>;

  /// Registers a replica's monitor (not owned).
  void RegisterReplica(const std::string& name,
                       workload::WorkloadMonitor* monitor);

  /// Subscribes to the export stream (pub-sub consumer).
  void Subscribe(Subscriber subscriber);

  /// Polls all replicas: publishes each one's current stats and folds
  /// them into the warehouse aggregate, then resets the per-replica
  /// monitors (delta semantics). Returns the number of messages
  /// published.
  ///
  /// Crash-safe in three phases — snapshot, publish (crosses the
  /// `support.stats.export` fault point per message), commit. A publish
  /// failure returns before ANY monitor is reset, the aggregate is
  /// touched, or `interval_` advances: the interval's deltas stay in the
  /// monitors and the next call re-exports the same interval under the
  /// same number. Delivery is therefore at-least-once — subscribers that
  /// saw part of a failed interval will see its messages again on retry
  /// and must deduplicate by (replica, interval).
  Result<size_t> ExportInterval();

  /// The holistic cross-replica view of the workload. Unsynchronized —
  /// only meaningful when no ExportInterval can be running concurrently.
  const workload::WorkloadMonitor& aggregate() const { return aggregate_; }
  workload::WorkloadMonitor* mutable_aggregate() { return &aggregate_; }

  /// Locked copy of the warehouse aggregate, safe to take while other
  /// threads export.
  workload::WorkloadMonitor AggregateSnapshot() const;

  int intervals_exported() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, workload::WorkloadMonitor*> replicas_;
  std::vector<Subscriber> subscribers_;
  workload::WorkloadMonitor aggregate_;
  int interval_ = 0;
};

}  // namespace aim::support

#endif  // AIM_SUPPORT_STATS_EXPORTER_H_
