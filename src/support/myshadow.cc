#include "support/myshadow.h"

#include "common/logging.h"
#include "common/rng.h"

namespace aim::support {

MyShadow::MyShadow(const storage::Database& production,
                   double sample_fraction, uint64_t seed) {
  if (sample_fraction >= 1.0) {
    clone_ = production;
    return;
  }
  // Sampled clone: same schema and indexes, a row subset per table.
  Rng rng(seed);
  const catalog::Catalog& src_cat = production.catalog();
  for (catalog::TableId t = 0; t < src_cat.table_count(); ++t) {
    catalog::TableDef def = src_cat.table(t);
    def.id = catalog::kInvalidTable;
    def.stats = catalog::TableStats{};
    def.stats.columns.resize(def.columns.size());
    clone_.CreateTable(std::move(def));
  }
  for (catalog::TableId t = 0; t < src_cat.table_count(); ++t) {
    production.heap(t).Scan([&](storage::RowId, const storage::Row& row) {
      if (rng.NextDouble() < sample_fraction) {
        (void)clone_.InsertRow(t, row);
      }
      return true;
    });
  }
  for (const catalog::IndexDef* idx :
       src_cat.AllIndexes(/*include_hypothetical=*/false, /*include_primary=*/false)) {
    catalog::IndexDef def = *idx;
    def.id = catalog::kInvalidIndex;
    (void)clone_.CreateIndex(std::move(def));
  }
  clone_.AnalyzeAll();
}

Status MyShadow::Materialize(const std::vector<catalog::IndexDef>& indexes) {
  for (catalog::IndexDef def : indexes) {
    def.hypothetical = false;
    def.id = catalog::kInvalidIndex;
    Result<catalog::IndexId> id = clone_.CreateIndex(std::move(def));
    if (!id.ok() &&
        id.status().code() != Status::Code::kAlreadyExists) {
      return id.status();
    }
  }
  return Status::OK();
}

ShadowReplayResult MyShadow::Replay(const workload::Workload& workload,
                                    optimizer::CostModel cm,
                                    int repetitions) {
  ShadowReplayResult result;
  executor::Executor exec(&clone_, cm);
  for (int r = 0; r < repetitions; ++r) {
    for (const workload::Query& q : workload.queries) {
      Result<executor::ExecuteResult> res = exec.Execute(q.stmt);
      if (!res.ok()) {
        ++result.failed;
        AIM_LOG(Warn) << "shadow replay failed: "
                      << res.status().ToString();
        continue;
      }
      ++result.executed;
      result.total_cpu_seconds += res.ValueOrDie().metrics.cpu_seconds;
      result.monitor.RecordKeyed(q.fingerprint, q.normalized_sql,
                                 res.ValueOrDie().metrics);
    }
  }
  return result;
}

}  // namespace aim::support
