#include "support/myshadow.h"

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/rng.h"
#include "storage/index_transaction.h"

namespace aim::support {

MyShadow::MyShadow(const storage::Database& production,
                   double sample_fraction, uint64_t seed) {
  init_status_ = AIM_FAULT_POINT_STATUS("shadow.clone");
  if (!init_status_.ok()) return;
  if (sample_fraction >= 1.0) {
    clone_ = production;
    return;
  }
  // Sampled clone: same schema and indexes, a row subset per table.
  Rng rng(seed);
  const catalog::Catalog& src_cat = production.catalog();
  for (catalog::TableId t = 0; t < src_cat.table_count(); ++t) {
    catalog::TableDef def = src_cat.table(t);
    def.id = catalog::kInvalidTable;
    def.stats = catalog::TableStats{};
    def.stats.columns.resize(def.columns.size());
    clone_.CreateTable(std::move(def));
  }
  for (catalog::TableId t = 0; t < src_cat.table_count(); ++t) {
    production.heap(t).Scan([&](storage::RowId, const storage::Row& row) {
      if (rng.NextDouble() >= sample_fraction) return true;
      Result<storage::RowId> rid = clone_.InsertRow(t, row);
      if (!rid.ok()) init_status_ = rid.status();
      return rid.ok();
    });
    if (!init_status_.ok()) return;
  }
  for (const catalog::IndexDef* idx :
       src_cat.AllIndexes(/*include_hypothetical=*/false, /*include_primary=*/false)) {
    catalog::IndexDef def = *idx;
    def.id = catalog::kInvalidIndex;
    Result<catalog::IndexId> id = clone_.CreateIndex(std::move(def));
    if (!id.ok() && id.status().code() != Status::Code::kAlreadyExists) {
      init_status_ = id.status();
      return;
    }
  }
  clone_.AnalyzeAll();
}

Status MyShadow::Materialize(const std::vector<catalog::IndexDef>& indexes) {
  AIM_RETURN_NOT_OK(init_status_);
  AIM_FAULT_POINT("shadow.materialize");
  storage::IndexSetTransaction txn(&clone_);
  RetryPolicy retry(retry_options_);
  for (catalog::IndexDef def : indexes) {
    def.hypothetical = false;
    def.id = catalog::kInvalidIndex;
    Result<catalog::IndexId> id =
        retry.Run([&] { return txn.CreateIndex(def); });
    if (!id.ok() &&
        id.status().code() != Status::Code::kAlreadyExists) {
      return id.status();  // txn destructor rolls back prior creates
    }
  }
  txn.Commit();
  return Status::OK();
}

Result<ShadowReplayResult> MyShadow::Replay(
    const workload::Workload& workload, optimizer::CostModel cm,
    int repetitions) {
  AIM_RETURN_NOT_OK(init_status_);
  AIM_FAULT_POINT("shadow.replay");
  ShadowReplayResult result;
  executor::Executor exec(&clone_, cm);
  RetryPolicy retry(retry_options_);
  for (int r = 0; r < repetitions; ++r) {
    for (const workload::Query& q : workload.queries) {
      const int attempts_before = retry.attempts();
      Result<executor::ExecuteResult> res =
          retry.Run([&] { return exec.Execute(q.stmt); });
      if (!res.ok()) {
        ++result.failed;
        AIM_LOG(Warn) << "shadow replay failed: "
                      << res.status().ToString();
        continue;
      }
      if (retry.attempts() - attempts_before > 1) ++result.recovered;
      ++result.executed;
      result.total_cpu_seconds += res.ValueOrDie().metrics.cpu_seconds;
      result.monitor.RecordKeyed(q.fingerprint, q.normalized_sql,
                                 res.ValueOrDie().metrics);
    }
  }
  result.retry_backoff_ms = retry.total_backoff_ms();
  return result;
}

}  // namespace aim::support
