#ifndef AIM_SUPPORT_FLEET_AGGREGATOR_H_
#define AIM_SUPPORT_FLEET_AGGREGATOR_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/stats_exporter.h"
#include "workload/monitor.h"

namespace aim::support {

/// Everything the fleet scheduler knows about one tenant's workload from
/// the statistics stream alone (no tuning has to have run yet).
struct TenantStatsView {
  std::string tenant;
  /// Highest exporter interval folded in; -1 before the first message.
  int last_interval = -1;
  /// Number of export messages folded (deduplicated).
  uint64_t messages = 0;
  /// The most recent interval's per-query deltas.
  std::vector<workload::QueryStats> last_delta;
  /// Optimistic CPU-seconds the last interval's traffic could save under
  /// ideal indexing: Σ_q executions(q) × B(q) (Eq. 5 per execution). The
  /// scheduler's workload-pressure signal.
  double last_delta_benefit_seconds = 0.0;
  /// Total CPU-seconds the last interval's traffic consumed.
  double last_delta_cpu_seconds = 0.0;
};

/// \brief The warehouse side of the fleet pipeline (Sec. VII-A at fleet
/// scale): consumes the per-tenant streams one or more `StatsExporter`s
/// publish and maintains a per-tenant view — latest interval deltas plus
/// the derived benefit signal the fleet scheduler ranks tenants by.
///
/// Delivery from the exporters is at-least-once; the aggregator
/// deduplicates by (tenant, interval), so a re-exported interval after a
/// publish failure folds exactly once. Thread-safe: many exporters (or
/// one exporter driven from many threads) may feed it concurrently.
class FleetAggregator {
 public:
  /// Subscribes this aggregator to `exporter`'s stream. The aggregator
  /// must outlive the exporter's publishing.
  void AttachTo(StatsExporter* exporter);

  /// Folds one export message (the Subscriber path; public so tests and
  /// custom transports can inject messages directly).
  void Ingest(const StatsMessage& message);

  /// Copy of one tenant's view; `last_interval == -1` when the tenant has
  /// never been seen.
  TenantStatsView view(const std::string& tenant) const;

  /// All tenant views, in lexicographic tenant order (deterministic).
  std::vector<TenantStatsView> views() const;

  /// Messages dropped as (tenant, interval) duplicates — the visible
  /// footprint of at-least-once redelivery.
  uint64_t duplicates_dropped() const;

  size_t tenant_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TenantStatsView> views_;
  uint64_t duplicates_dropped_ = 0;
};

}  // namespace aim::support

#endif  // AIM_SUPPORT_FLEET_AGGREGATOR_H_
