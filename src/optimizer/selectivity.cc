#include "optimizer/selectivity.h"

#include <algorithm>
#include <cmath>

namespace aim::optimizer {

double PredicateSelectivity(const AtomicPredicate& pred,
                            const catalog::Catalog& catalog,
                            catalog::TableId table) {
  const catalog::ColumnStats& stats =
      catalog.column_stats({table, pred.column.column});
  switch (pred.kind) {
    case PredKind::kEq:
      if (!pred.values.empty() &&
          pred.values[0].kind() == sql::Value::Kind::kInt64) {
        return std::max(stats.EqSelectivity(pred.values[0].AsInt()), 1e-9);
      }
      return std::max(stats.DefaultEqSelectivity(), 1e-9);
    case PredKind::kIn: {
      const double k = std::max(1, pred.in_list_size);
      return std::min(1.0, k * std::max(stats.DefaultEqSelectivity(), 1e-9));
    }
    case PredKind::kIsNull:
      return std::clamp(stats.null_fraction, 0.001, 1.0);
    case PredKind::kRange: {
      if (pred.has_lower || pred.has_upper) {
        const int64_t lo = pred.has_lower
                               ? (pred.lower_inclusive ? pred.lower
                                                       : pred.lower + 1)
                               : INT64_MIN;
        const int64_t hi = pred.has_upper
                               ? (pred.upper_inclusive ? pred.upper
                                                       : pred.upper - 1)
                               : INT64_MAX;
        return std::clamp(stats.RangeSelectivity(lo, hi), 1e-9, 1.0);
      }
      return kDefaultRangeSelectivity;
    }
    case PredKind::kLikePrefix:
      return kDefaultLikePrefixSelectivity;
    case PredKind::kOther:
      return kDefaultOpaqueSelectivity;
  }
  return 1.0;
}

namespace {
template <typename GetPred>
double CombinedImpl(size_t n, GetPred get, const catalog::Catalog& catalog,
                    catalog::TableId table) {
  std::vector<double> sels;
  sels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sels.push_back(PredicateSelectivity(get(i), catalog, table));
  }
  std::sort(sels.begin(), sels.end());
  double result = 1.0;
  double exponent = 1.0;
  for (double s : sels) {
    result *= std::pow(s, exponent);
    exponent *= 0.5;
  }
  return std::clamp(result, 1e-12, 1.0);
}
}  // namespace

double CombinedSelectivity(const std::vector<AtomicPredicate>& preds,
                           const catalog::Catalog& catalog,
                           catalog::TableId table) {
  if (preds.empty()) return 1.0;
  return CombinedImpl(
      preds.size(),
      [&](size_t i) -> const AtomicPredicate& { return preds[i]; }, catalog,
      table);
}

double CombinedSelectivity(const std::vector<const AtomicPredicate*>& preds,
                           const catalog::Catalog& catalog,
                           catalog::TableId table) {
  if (preds.empty()) return 1.0;
  return CombinedImpl(
      preds.size(),
      [&](size_t i) -> const AtomicPredicate& { return *preds[i]; }, catalog,
      table);
}

double InstanceResultSelectivity(const AnalyzedQuery& query, int instance,
                                 const catalog::Catalog& catalog) {
  const catalog::TableId table = query.instances[instance].table;
  if (query.dnf_exact && query.dnf.size() > 1) {
    // OR of factors: 1 - prod(1 - sel_i), assuming factor independence.
    double miss = 1.0;
    for (const Factor& f : query.dnf) {
      const auto preds = query.FactorForInstance(f, instance);
      miss *= 1.0 - CombinedSelectivity(preds, catalog, table);
    }
    return std::clamp(1.0 - miss, 1e-12, 1.0);
  }
  return CombinedSelectivity(query.ConjunctsForInstance(instance), catalog,
                             table);
}

double EstimateGroupCount(const catalog::Catalog& catalog,
                          catalog::TableId table,
                          const std::vector<catalog::ColumnId>& columns,
                          double input_rows) {
  if (columns.empty()) return 1.0;
  double groups = 1.0;
  for (catalog::ColumnId c : columns) {
    groups *= static_cast<double>(
        std::max<uint64_t>(1, catalog.column_stats({table, c}).ndv));
  }
  return std::min(groups, std::max(1.0, input_rows));
}

}  // namespace aim::optimizer
