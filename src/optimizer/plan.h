#ifndef AIM_OPTIMIZER_PLAN_H_
#define AIM_OPTIMIZER_PLAN_H_

#include <string>
#include <vector>

#include "optimizer/access_path.h"

namespace aim::optimizer {

/// One step of a (left-deep) join plan: which instance is accessed, how,
/// and the estimated running cardinality after this step.
struct JoinStep {
  int instance = 0;
  AccessPath path;
  /// Estimated rows produced by the join prefix ending at this step.
  double rows_after = 0.0;
  /// Estimated cost contribution of this step (probes x per-probe cost for
  /// inner tables).
  double step_cost = 0.0;
};

/// Per-index estimated maintenance cost of a DML statement
/// (cost_u(q, i) of Sec. III-F).
struct IndexMaintenance {
  catalog::IndexId index = catalog::kInvalidIndex;
  double cost = 0.0;
};

/// \brief The optimizer's chosen plan with cost breakdown.
struct Plan {
  std::vector<JoinStep> steps;  // in join order
  bool needs_sort = false;
  double sort_cost = 0.0;
  /// cost_r: cost of locating/producing rows.
  double read_cost = 0.0;
  /// Sum of per-index maintenance costs (DML only).
  double maintenance_cost = 0.0;
  std::vector<IndexMaintenance> maintenance;

  double est_result_rows = 0.0;
  /// Estimated rows examined across all steps (drives the ddr estimate).
  double est_rows_examined = 0.0;

  /// Lane-buffer reservation hint for the batch executor, derived from
  /// the cardinality estimates (0 = no hint). Never affects results or
  /// metrics, only allocation behavior.
  uint32_t batch_size_hint = 0;

  double total_cost() const {
    return read_cost + sort_cost + maintenance_cost;
  }

  /// Ids of indexes used by any step (for "is the index actually used"
  /// validation).
  std::vector<catalog::IndexId> used_indexes() const {
    std::vector<catalog::IndexId> out;
    for (const auto& s : steps) {
      if (s.path.index != nullptr) out.push_back(s.path.index->id);
    }
    return out;
  }

  /// One-line EXPLAIN-style rendering (for tests and the example apps).
  std::string Describe(const catalog::Catalog& catalog) const;
};

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_PLAN_H_
