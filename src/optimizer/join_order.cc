#include "optimizer/join_order.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optimizer/selectivity.h"

namespace aim::optimizer {

namespace {

/// Join-edge reduction factor when `inner` joins into a prefix containing
/// its partner: 1 / max(ndv_left, ndv_right) per edge (textbook equi-join
/// estimate).
double JoinReduction(const AnalyzedQuery& query,
                     const catalog::Catalog& catalog, uint32_t prefix_mask,
                     int inner) {
  double factor = 1.0;
  for (const JoinEdge& e : query.joins) {
    int other = -1;
    catalog::ColumnRef inner_col;
    catalog::ColumnRef outer_col;
    if (e.left.instance == inner &&
        (prefix_mask >> e.right.instance) & 1u) {
      other = e.right.instance;
      inner_col = {query.instances[inner].table, e.left.column};
      outer_col = {query.instances[other].table, e.right.column};
    } else if (e.right.instance == inner &&
               (prefix_mask >> e.left.instance) & 1u) {
      other = e.left.instance;
      inner_col = {query.instances[inner].table, e.right.column};
      outer_col = {query.instances[other].table, e.left.column};
    }
    if (other < 0) continue;
    const uint64_t ndv_inner =
        std::max<uint64_t>(1, catalog.column_stats(inner_col).ndv);
    const uint64_t ndv_outer =
        std::max<uint64_t>(1, catalog.column_stats(outer_col).ndv);
    factor /= static_cast<double>(std::max(ndv_inner, ndv_outer));
  }
  return factor;
}

/// Columns of `inner` bound by join edges into the prefix.
std::vector<catalog::ColumnId> BoundJoinColumns(const AnalyzedQuery& query,
                                                uint32_t prefix_mask,
                                                int inner) {
  std::vector<catalog::ColumnId> cols;
  for (const JoinEdge& e : query.joins) {
    if (e.left.instance == inner && (prefix_mask >> e.right.instance) & 1u) {
      cols.push_back(e.left.column);
    } else if (e.right.instance == inner &&
               (prefix_mask >> e.left.instance) & 1u) {
      cols.push_back(e.right.column);
    }
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

struct StepEval {
  AccessPath path;
  double out_rows_per_probe = 0.0;  // rows surviving all preds + joins
};

StepEval EvaluateInner(const AnalyzedQuery& query,
                       const catalog::Catalog& catalog, const CostModel& cm,
                       const JoinOrderOptions& options, uint32_t prefix_mask,
                       int inner) {
  AccessPathRequest req;
  req.query = &query;
  req.instance = inner;
  req.predicates = query.ConjunctsForInstance(inner);
  req.join_eq_columns = BoundJoinColumns(query, prefix_mask, inner);
  req.include_hypothetical = options.include_hypothetical;
  req.switches = options.switches;
  StepEval eval;
  eval.path = BestPath(req, catalog, cm);
  const double rows = static_cast<double>(
      catalog.table(query.instances[inner].table).stats.row_count);
  const double filter_sel =
      InstanceResultSelectivity(query, inner, catalog);
  eval.out_rows_per_probe =
      std::max(rows * filter_sel *
                   JoinReduction(query, catalog, prefix_mask, inner),
               0.0);
  return eval;
}

struct DpState {
  double cost = std::numeric_limits<double>::infinity();
  double rows = 0.0;
  uint32_t last = 0;          // instance added last
  uint32_t prev_mask = 0;     // mask before adding `last`
};

}  // namespace

std::vector<JoinStep> PlanJoins(const AnalyzedQuery& query,
                                const catalog::Catalog& catalog,
                                const CostModel& cm,
                                const JoinOrderOptions& options) {
  const int n = static_cast<int>(query.instances.size());
  std::vector<JoinStep> steps;
  if (n == 0) return steps;

  if (n <= options.dp_instance_limit) {
    // Exhaustive DP over subsets (left-deep plans).
    const uint32_t full = (n >= 32) ? 0xFFFFFFFFu : ((1u << n) - 1u);
    std::vector<DpState> dp(full + 1);
    for (int t = 0; t < n; ++t) {
      StepEval eval = EvaluateInner(query, catalog, cm, options, 0, t);
      DpState& s = dp[1u << t];
      s.cost = eval.path.cost;
      s.rows = eval.out_rows_per_probe;
      s.last = t;
      s.prev_mask = 0;
    }
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (std::isinf(dp[mask].cost)) continue;
      for (int t = 0; t < n; ++t) {
        if ((mask >> t) & 1u) continue;
        StepEval eval = EvaluateInner(query, catalog, cm, options, mask, t);
        const double probes = std::max(1.0, dp[mask].rows);
        const double cost = dp[mask].cost + probes * eval.path.cost;
        const uint32_t next = mask | (1u << t);
        if (cost < dp[next].cost) {
          dp[next].cost = cost;
          dp[next].rows = probes * eval.out_rows_per_probe;
          dp[next].last = t;
          dp[next].prev_mask = mask;
        }
      }
    }
    // Reconstruct the order.
    std::vector<int> order;
    uint32_t mask = full;
    while (mask != 0) {
      order.push_back(static_cast<int>(dp[mask].last));
      mask = dp[mask].prev_mask;
    }
    std::reverse(order.begin(), order.end());
    // Re-evaluate along the chosen order to fill step details.
    uint32_t prefix = 0;
    double rows = 1.0;
    for (int t : order) {
      StepEval eval = EvaluateInner(query, catalog, cm, options, prefix, t);
      JoinStep step;
      step.instance = t;
      step.path = eval.path;
      const double probes = prefix == 0 ? 1.0 : std::max(1.0, rows);
      step.step_cost = probes * eval.path.cost;
      rows = (prefix == 0 ? 1.0 : std::max(1.0, rows)) *
             eval.out_rows_per_probe;
      step.rows_after = rows;
      steps.push_back(std::move(step));
      prefix |= (1u << t);
    }
    return steps;
  }

  // Greedy: start from the cheapest single table (by produced rows), then
  // repeatedly add the instance with the lowest added cost.
  uint32_t prefix = 0;
  double rows = 1.0;
  for (int k = 0; k < n; ++k) {
    int best_t = -1;
    StepEval best_eval;
    double best_added = std::numeric_limits<double>::infinity();
    for (int t = 0; t < n; ++t) {
      if ((prefix >> t) & 1u) continue;
      StepEval eval = EvaluateInner(query, catalog, cm, options, prefix, t);
      const double probes = prefix == 0 ? 1.0 : std::max(1.0, rows);
      const double added = probes * eval.path.cost;
      if (added < best_added) {
        best_added = added;
        best_t = t;
        best_eval = eval;
      }
    }
    JoinStep step;
    step.instance = best_t;
    step.path = best_eval.path;
    step.step_cost = best_added;
    rows = (prefix == 0 ? 1.0 : std::max(1.0, rows)) *
           best_eval.out_rows_per_probe;
    step.rows_after = rows;
    steps.push_back(std::move(step));
    prefix |= (1u << best_t);
  }
  return steps;
}

}  // namespace aim::optimizer
