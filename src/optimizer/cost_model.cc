#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace aim::optimizer {

double CostModel::TablePages(const catalog::Catalog& cat,
                             catalog::TableId table) const {
  return std::max(1.0, cat.TableSizeBytes(table) / params_.page_size);
}

double CostModel::IndexPages(const catalog::Catalog& cat,
                             const catalog::IndexDef& index,
                             double fraction) const {
  return std::max(1.0,
                  cat.IndexSizeBytes(index) * std::clamp(fraction, 0.0, 1.0) /
                      params_.page_size);
}

double CostModel::FullScanCost(const catalog::Catalog& cat,
                               catalog::TableId table) const {
  const double rows =
      static_cast<double>(cat.table(table).stats.row_count);
  return TablePages(cat, table) * params_.seq_page_cost +
         rows * params_.cpu_row_cost;
}

double CostModel::IndexScanCost(const catalog::Catalog& cat,
                                const catalog::IndexDef& index,
                                double entries, double fetched,
                                double ranges) const {
  const double rows = static_cast<double>(
      cat.table(index.table).stats.row_count);
  const double fraction = rows > 0 ? std::min(1.0, entries / rows) : 0.0;
  double cost = std::max(1.0, ranges) * params_.btree_descent_cost *
                params_.random_page_cost / 4.0;
  cost += IndexPages(cat, index, fraction) * params_.seq_page_cost;
  cost += entries * params_.cpu_index_entry_cost;
  // Primary-key lookups are random unless the secondary key correlates
  // with the PK; charge full random cost (pessimistic, like InnoDB).
  cost += fetched * params_.random_page_cost;
  cost += fetched * params_.cpu_row_cost;
  return cost;
}

double CostModel::SortCost(double n) const {
  if (n <= 1.0) return 0.0;
  return n * std::log2(std::max(2.0, n)) * params_.cpu_sort_row_cost;
}

double CostModel::IndexMaintenanceCost(double entry_writes) const {
  return entry_writes * params_.index_entry_write_cost;
}

}  // namespace aim::optimizer
