#include "optimizer/predicate.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace aim::optimizer {

namespace {

/// Binder state: resolves (alias, column) names to BoundColumn.
class Binder {
 public:
  Binder(const std::vector<TableInstance>* instances,
         const catalog::Catalog* catalog)
      : instances_(instances), catalog_(catalog) {}

  Result<BoundColumn> Bind(const sql::Expr& col) const {
    if (col.kind != sql::Expr::Kind::kColumn) {
      return Status::Internal("binder expects a column expression");
    }
    if (!col.table.empty()) {
      for (int i = 0; i < static_cast<int>(instances_->size()); ++i) {
        const TableInstance& inst = (*instances_)[i];
        if (EqualsIgnoreCase(inst.alias, col.table)) {
          auto c = catalog_->table(inst.table).FindColumn(col.column);
          if (!c.has_value()) {
            return Status::NotFound("column '" + col.table + "." +
                                    col.column + "' not found");
          }
          return BoundColumn{i, *c};
        }
      }
      return Status::NotFound("table alias '" + col.table + "' not found");
    }
    // Unqualified: search all instances; require a unique match.
    BoundColumn found{-1, 0};
    for (int i = 0; i < static_cast<int>(instances_->size()); ++i) {
      auto c = catalog_->table((*instances_)[i].table).FindColumn(col.column);
      if (c.has_value()) {
        if (found.instance >= 0) {
          return Status::InvalidArgument("ambiguous column '" + col.column +
                                         "'");
        }
        found = BoundColumn{i, *c};
      }
    }
    if (found.instance < 0) {
      return Status::NotFound("column '" + col.column + "' not found");
    }
    return found;
  }

 private:
  const std::vector<TableInstance>* instances_;
  const catalog::Catalog* catalog_;
};

bool TryLiteralInt(const sql::Expr& e, int64_t* out) {
  if (e.kind != sql::Expr::Kind::kLiteral) return false;
  switch (e.value.kind()) {
    case sql::Value::Kind::kInt64:
      *out = e.value.AsInt();
      return true;
    case sql::Value::Kind::kDouble:
      *out = static_cast<int64_t>(e.value.AsDouble());
      return true;
    default:
      return false;
  }
}

/// Internal leaf: either an atomic predicate, a join edge, or opaque.
struct Leaf {
  enum class Kind { kAtomic, kJoin, kOpaque };
  Kind kind = Kind::kOpaque;
  AtomicPredicate atomic;
  JoinEdge join;
};

class Analyzer {
 public:
  Analyzer(const catalog::Catalog& catalog) : catalog_(catalog) {}

  Result<AnalyzedQuery> AnalyzeSelect(const sql::SelectStatement& stmt) {
    AnalyzedQuery out;
    AIM_RETURN_NOT_OK(SetupInstances(stmt.from, &out));
    Binder binder(&out.instances, &catalog_);

    // Select list: referenced columns + '*' + aggregates.
    for (const auto& item : stmt.select_list) {
      AIM_RETURN_NOT_OK(CollectSelectItem(*item, binder, &out));
    }
    if (stmt.where) {
      AIM_RETURN_NOT_OK(AnalyzeWhere(*stmt.where, binder, &out));
    } else {
      out.dnf.push_back(Factor{});
    }
    for (const auto& g : stmt.group_by) {
      AIM_ASSIGN_OR_RETURN(BoundColumn col, binder.Bind(*g));
      auto& gb = out.instances[col.instance].group_by_columns;
      if (std::find(gb.begin(), gb.end(), col.column) == gb.end()) {
        gb.push_back(col.column);
      }
      AddReferenced(col, &out);
      out.has_group_by = true;
    }
    for (const auto& o : stmt.order_by) {
      AIM_ASSIGN_OR_RETURN(BoundColumn col, binder.Bind(*o.expr));
      out.instances[col.instance].order_by_columns.push_back(
          BoundOrderItem{col, o.ascending});
      AddReferenced(col, &out);
      out.has_order_by = true;
    }
    out.limit = stmt.limit;
    return out;
  }

  Result<AnalyzedQuery> AnalyzeDml(const sql::Statement& stmt) {
    AnalyzedQuery out;
    std::string table_name;
    const sql::Expr* where = nullptr;
    switch (stmt.kind) {
      case sql::Statement::Kind::kInsert:
        table_name = stmt.insert->table_name;
        out.dml = AnalyzedQuery::DmlKind::kInsert;
        break;
      case sql::Statement::Kind::kUpdate:
        table_name = stmt.update->table_name;
        where = stmt.update->where.get();
        out.dml = AnalyzedQuery::DmlKind::kUpdate;
        break;
      case sql::Statement::Kind::kDelete:
        table_name = stmt.del->table_name;
        where = stmt.del->where.get();
        out.dml = AnalyzedQuery::DmlKind::kDelete;
        break;
      default:
        return Status::Internal("AnalyzeDml on non-DML");
    }
    std::vector<sql::TableRef> from;
    from.push_back(sql::TableRef{table_name, ""});
    AIM_RETURN_NOT_OK(SetupInstances(from, &out));
    Binder binder(&out.instances, &catalog_);
    if (stmt.kind == sql::Statement::Kind::kUpdate) {
      const auto& table = catalog_.table(out.instances[0].table);
      for (const auto& [col, _] : stmt.update->assignments) {
        auto c = table.FindColumn(col);
        if (!c.has_value()) {
          return Status::NotFound("updated column '" + col + "' not found");
        }
        out.updated_columns.push_back(*c);
        AddReferenced(BoundColumn{0, *c}, &out);
      }
    }
    if (where) {
      AIM_RETURN_NOT_OK(AnalyzeWhere(*where, binder, &out));
    } else {
      out.dnf.push_back(Factor{});
    }
    return out;
  }

 private:
  Status SetupInstances(const std::vector<sql::TableRef>& from,
                        AnalyzedQuery* out) {
    if (from.empty()) {
      return Status::InvalidArgument("query has no FROM tables");
    }
    for (const auto& ref : from) {
      AIM_ASSIGN_OR_RETURN(catalog::TableId tid,
                           catalog_.FindTable(ref.table_name));
      TableInstance inst;
      inst.alias = ref.effective_alias();
      inst.table = tid;
      out->instances.push_back(std::move(inst));
    }
    return Status::OK();
  }

  void AddReferenced(BoundColumn col, AnalyzedQuery* out) {
    auto& refs = out->instances[col.instance].referenced_columns;
    if (std::find(refs.begin(), refs.end(), col.column) == refs.end()) {
      refs.push_back(col.column);
    }
  }

  Status CollectSelectItem(const sql::Expr& item, const Binder& binder,
                           AnalyzedQuery* out) {
    switch (item.kind) {
      case sql::Expr::Kind::kStar:
        for (auto& inst : out->instances) {
          inst.selects_all_columns = true;
          for (catalog::ColumnId c = 0;
               c < catalog_.table(inst.table).columns.size(); ++c) {
            auto& refs = inst.referenced_columns;
            if (std::find(refs.begin(), refs.end(), c) == refs.end()) {
              refs.push_back(c);
            }
          }
        }
        return Status::OK();
      case sql::Expr::Kind::kColumn: {
        AIM_ASSIGN_OR_RETURN(BoundColumn col, binder.Bind(item));
        AddReferenced(col, out);
        return Status::OK();
      }
      case sql::Expr::Kind::kAggregate: {
        out->has_aggregate = true;
        if (!item.children.empty() &&
            item.children[0]->kind == sql::Expr::Kind::kColumn) {
          AIM_ASSIGN_OR_RETURN(BoundColumn col,
                               binder.Bind(*item.children[0]));
          AddReferenced(col, out);
        }
        return Status::OK();
      }
      default:
        return Status::Unsupported("unsupported select item");
    }
  }

  /// Classifies one leaf predicate expression.
  Result<Leaf> ClassifyLeaf(const sql::Expr& e, const Binder& binder,
                            AnalyzedQuery* out) {
    Leaf leaf;
    switch (e.kind) {
      case sql::Expr::Kind::kComparison: {
        const sql::Expr& lhs = *e.children[0];
        const sql::Expr& rhs = *e.children[1];
        if (lhs.kind != sql::Expr::Kind::kColumn) {
          return leaf;  // opaque
        }
        AIM_ASSIGN_OR_RETURN(BoundColumn lcol, binder.Bind(lhs));
        AddReferenced(lcol, out);
        if (rhs.kind == sql::Expr::Kind::kColumn) {
          AIM_ASSIGN_OR_RETURN(BoundColumn rcol, binder.Bind(rhs));
          AddReferenced(rcol, out);
          if (lcol.instance != rcol.instance &&
              sql::IsEqualityLike(e.op)) {
            leaf.kind = Leaf::Kind::kJoin;
            leaf.join = JoinEdge{lcol, rcol, &e};
            return leaf;
          }
          return leaf;  // same-instance col-col or non-eq: opaque
        }
        AtomicPredicate pred;
        pred.column = lcol;
        pred.op = e.op;
        pred.expr = &e;
        int64_t lit = 0;
        const bool has_lit = TryLiteralInt(rhs, &lit);
        switch (e.op) {
          case sql::CompareOp::kEq:
          case sql::CompareOp::kNullSafeEq:
            pred.kind = PredKind::kEq;
            if (rhs.kind == sql::Expr::Kind::kLiteral) {
              pred.values.push_back(rhs.value);
              if (has_lit) {
                pred.has_lower = pred.has_upper = true;
                pred.lower = pred.upper = lit;
              }
            }
            break;
          case sql::CompareOp::kLt:
            pred.kind = PredKind::kRange;
            pred.has_upper = has_lit;
            pred.upper = lit;
            pred.upper_inclusive = false;
            break;
          case sql::CompareOp::kLe:
            pred.kind = PredKind::kRange;
            pred.has_upper = has_lit;
            pred.upper = lit;
            break;
          case sql::CompareOp::kGt:
            pred.kind = PredKind::kRange;
            pred.has_lower = has_lit;
            pred.lower = lit;
            pred.lower_inclusive = false;
            break;
          case sql::CompareOp::kGe:
            pred.kind = PredKind::kRange;
            pred.has_lower = has_lit;
            pred.lower = lit;
            break;
          case sql::CompareOp::kLike:
            // LIKE 'prefix%' is sargable; a parameterized or
            // leading-wildcard pattern is not.
            if (rhs.kind == sql::Expr::Kind::kLiteral &&
                rhs.value.kind() == sql::Value::Kind::kString &&
                !rhs.value.AsString().empty() &&
                rhs.value.AsString()[0] != '%' &&
                rhs.value.AsString()[0] != '_') {
              pred.kind = PredKind::kLikePrefix;
              pred.values.push_back(rhs.value);
            } else {
              pred.kind = PredKind::kOther;
            }
            break;
          case sql::CompareOp::kNe:
            pred.kind = PredKind::kOther;
            break;
        }
        leaf.kind = Leaf::Kind::kAtomic;
        leaf.atomic = std::move(pred);
        return leaf;
      }
      case sql::Expr::Kind::kInList: {
        const sql::Expr& col = *e.children[0];
        if (col.kind != sql::Expr::Kind::kColumn) return leaf;
        AIM_ASSIGN_OR_RETURN(BoundColumn bcol, binder.Bind(col));
        AddReferenced(bcol, out);
        AtomicPredicate pred;
        pred.column = bcol;
        pred.kind = PredKind::kIn;
        pred.expr = &e;
        pred.in_list_size = static_cast<int>(e.children.size()) - 1;
        for (size_t i = 1; i < e.children.size(); ++i) {
          if (e.children[i]->kind == sql::Expr::Kind::kLiteral) {
            pred.values.push_back(e.children[i]->value);
          }
        }
        leaf.kind = Leaf::Kind::kAtomic;
        leaf.atomic = std::move(pred);
        return leaf;
      }
      case sql::Expr::Kind::kBetween: {
        const sql::Expr& col = *e.children[0];
        if (col.kind != sql::Expr::Kind::kColumn) return leaf;
        AIM_ASSIGN_OR_RETURN(BoundColumn bcol, binder.Bind(col));
        AddReferenced(bcol, out);
        AtomicPredicate pred;
        pred.column = bcol;
        pred.kind = PredKind::kRange;
        pred.op = sql::CompareOp::kGe;
        pred.expr = &e;
        int64_t lo = 0;
        int64_t hi = 0;
        if (TryLiteralInt(*e.children[1], &lo)) {
          pred.has_lower = true;
          pred.lower = lo;
        }
        if (TryLiteralInt(*e.children[2], &hi)) {
          pred.has_upper = true;
          pred.upper = hi;
        }
        leaf.kind = Leaf::Kind::kAtomic;
        leaf.atomic = std::move(pred);
        return leaf;
      }
      case sql::Expr::Kind::kIsNull: {
        const sql::Expr& col = *e.children[0];
        if (col.kind != sql::Expr::Kind::kColumn) return leaf;
        AIM_ASSIGN_OR_RETURN(BoundColumn bcol, binder.Bind(col));
        AddReferenced(bcol, out);
        AtomicPredicate pred;
        pred.column = bcol;
        pred.kind = e.negated ? PredKind::kOther : PredKind::kIsNull;
        pred.expr = &e;
        leaf.kind = Leaf::Kind::kAtomic;
        leaf.atomic = std::move(pred);
        return leaf;
      }
      case sql::Expr::Kind::kNot: {
        // Record column references inside, but the predicate itself is
        // opaque for indexing.
        AIM_RETURN_NOT_OK(CollectColumnRefs(*e.children[0], binder, out));
        return leaf;
      }
      default:
        return leaf;
    }
  }

  Status CollectColumnRefs(const sql::Expr& e, const Binder& binder,
                           AnalyzedQuery* out) {
    if (e.kind == sql::Expr::Kind::kColumn) {
      AIM_ASSIGN_OR_RETURN(BoundColumn col, binder.Bind(e));
      AddReferenced(col, out);
      return Status::OK();
    }
    for (const auto& c : e.children) {
      AIM_RETURN_NOT_OK(CollectColumnRefs(*c, binder, out));
    }
    return Status::OK();
  }

  /// Converts the WHERE tree to DNF (vector of factors), extracting join
  /// edges from top-level conjuncts. `top_level` distinguishes the
  /// conjunctive skeleton.
  Status AnalyzeWhere(const sql::Expr& where, const Binder& binder,
                      AnalyzedQuery* out) {
    // 1. Flatten the top-level conjunction.
    std::vector<const sql::Expr*> top_conjuncts;
    FlattenAnd(where, &top_conjuncts);

    std::vector<const sql::Expr*> or_subtrees;
    for (const sql::Expr* conj : top_conjuncts) {
      if (conj->kind == sql::Expr::Kind::kOr) {
        or_subtrees.push_back(conj);
        AIM_RETURN_NOT_OK(CollectColumnRefs(*conj, binder, out));
        continue;
      }
      AIM_ASSIGN_OR_RETURN(Leaf leaf, ClassifyLeaf(*conj, binder, out));
      switch (leaf.kind) {
        case Leaf::Kind::kJoin:
          out->joins.push_back(leaf.join);
          break;
        case Leaf::Kind::kAtomic:
          out->conjuncts.push_back(std::move(leaf.atomic));
          break;
        case Leaf::Kind::kOpaque:
          break;
      }
    }

    // 2. DNF = cross product of (conjunctive skeleton) x (each OR subtree's
    //    DNF). Join predicates never participate in factors.
    std::vector<Factor> factors;
    factors.push_back(Factor{out->conjuncts});
    for (const sql::Expr* subtree : or_subtrees) {
      std::vector<Factor> sub;
      AIM_RETURN_NOT_OK(DnfOf(*subtree, binder, out, &sub));
      std::vector<Factor> next;
      for (const Factor& f : factors) {
        for (const Factor& s : sub) {
          if (next.size() >= kMaxDnfFactors) {
            out->dnf_exact = false;
            break;
          }
          Factor merged = f;
          merged.predicates.insert(merged.predicates.end(),
                                   s.predicates.begin(), s.predicates.end());
          next.push_back(std::move(merged));
        }
        if (!out->dnf_exact) break;
      }
      if (!out->dnf_exact) {
        // Fall back to the conjunctive skeleton only.
        factors.clear();
        factors.push_back(Factor{out->conjuncts});
        break;
      }
      factors = std::move(next);
    }
    out->dnf = std::move(factors);
    return Status::OK();
  }

  Status DnfOf(const sql::Expr& e, const Binder& binder, AnalyzedQuery* out,
               std::vector<Factor>* result) {
    switch (e.kind) {
      case sql::Expr::Kind::kOr: {
        for (const auto& child : e.children) {
          std::vector<Factor> sub;
          AIM_RETURN_NOT_OK(DnfOf(*child, binder, out, &sub));
          for (auto& f : sub) {
            if (result->size() >= kMaxDnfFactors) {
              out->dnf_exact = false;
              return Status::OK();
            }
            result->push_back(std::move(f));
          }
        }
        return Status::OK();
      }
      case sql::Expr::Kind::kAnd: {
        std::vector<Factor> acc;
        acc.push_back(Factor{});
        for (const auto& child : e.children) {
          std::vector<Factor> sub;
          AIM_RETURN_NOT_OK(DnfOf(*child, binder, out, &sub));
          std::vector<Factor> next;
          for (const Factor& a : acc) {
            for (const Factor& s : sub) {
              if (next.size() >= kMaxDnfFactors) {
                out->dnf_exact = false;
                break;
              }
              Factor merged = a;
              merged.predicates.insert(merged.predicates.end(),
                                       s.predicates.begin(),
                                       s.predicates.end());
              next.push_back(std::move(merged));
            }
            if (!out->dnf_exact) break;
          }
          if (!out->dnf_exact) return Status::OK();
          acc = std::move(next);
        }
        for (auto& f : acc) result->push_back(std::move(f));
        return Status::OK();
      }
      default: {
        AIM_ASSIGN_OR_RETURN(Leaf leaf, ClassifyLeaf(e, binder, out));
        Factor f;
        if (leaf.kind == Leaf::Kind::kAtomic) {
          f.predicates.push_back(std::move(leaf.atomic));
        }
        // Join edges / opaque leaves inside OR trees contribute an empty
        // conjunct (selectivity handled conservatively).
        result->push_back(std::move(f));
        return Status::OK();
      }
    }
  }

  static void FlattenAnd(const sql::Expr& e,
                         std::vector<const sql::Expr*>* out) {
    if (e.kind == sql::Expr::Kind::kAnd) {
      for (const auto& c : e.children) FlattenAnd(*c, out);
    } else {
      out->push_back(&e);
    }
  }

  const catalog::Catalog& catalog_;
};

}  // namespace

std::vector<AtomicPredicate> AnalyzedQuery::FactorForInstance(
    const Factor& factor, int instance) const {
  std::vector<AtomicPredicate> out;
  for (const auto& p : factor.predicates) {
    if (p.column.instance == instance) out.push_back(p);
  }
  return out;
}

std::vector<AtomicPredicate> AnalyzedQuery::ConjunctsForInstance(
    int instance) const {
  std::vector<AtomicPredicate> out;
  for (const auto& p : conjuncts) {
    if (p.column.instance == instance) out.push_back(p);
  }
  return out;
}

std::vector<std::pair<catalog::ColumnId, int>> AnalyzedQuery::JoinColumnsOf(
    int instance) const {
  std::vector<std::pair<catalog::ColumnId, int>> out;
  for (const auto& e : joins) {
    if (e.left.instance == instance) {
      out.emplace_back(e.left.column, e.right.instance);
    }
    if (e.right.instance == instance) {
      out.emplace_back(e.right.column, e.left.instance);
    }
  }
  return out;
}

Result<AnalyzedQuery> Analyze(const sql::SelectStatement& stmt,
                              const catalog::Catalog& catalog) {
  Analyzer analyzer(catalog);
  return analyzer.AnalyzeSelect(stmt);
}

Result<AnalyzedQuery> Analyze(const sql::Statement& stmt,
                              const catalog::Catalog& catalog) {
  Analyzer analyzer(catalog);
  if (stmt.kind == sql::Statement::Kind::kSelect) {
    return analyzer.AnalyzeSelect(*stmt.select);
  }
  return analyzer.AnalyzeDml(stmt);
}

}  // namespace aim::optimizer
