#ifndef AIM_OPTIMIZER_PREDICATE_H_
#define AIM_OPTIMIZER_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace aim::optimizer {

/// A column bound to a table *instance* (position in the FROM list), not
/// just a table: self-joins produce distinct instances of the same table.
struct BoundColumn {
  int instance = -1;
  catalog::ColumnId column = 0;

  bool operator==(const BoundColumn& o) const {
    return instance == o.instance && column == o.column;
  }
  bool operator<(const BoundColumn& o) const {
    if (instance != o.instance) return instance < o.instance;
    return column < o.column;
  }
};

/// Classification of an atomic predicate for index purposes.
///
/// kEq / kIn / kIsNull are *index prefix predicates* (IPP, Sec. IV-B2):
/// matching rows share a constant key prefix. kRange / kLikePrefix are
/// residual sargable predicates usable as the last key part of a range
/// scan. kOther is non-sargable.
enum class PredKind { kEq, kIn, kIsNull, kRange, kLikePrefix, kOther };

/// \brief One atomic predicate from the WHERE clause, bound and classified.
struct AtomicPredicate {
  BoundColumn column;
  PredKind kind = PredKind::kOther;
  sql::CompareOp op = sql::CompareOp::kEq;

  // Literal bounds when the operand is a constant (int64 domain); absent
  // for parameterized queries.
  bool has_lower = false;
  bool lower_inclusive = true;
  int64_t lower = 0;
  bool has_upper = false;
  bool upper_inclusive = true;
  int64_t upper = 0;
  /// Literal equality / IN values (empty when parameterized).
  std::vector<sql::Value> values;
  /// Number of IN-list elements (kIn), even when parameterized.
  int in_list_size = 1;

  /// The original expression node (owned by the statement).
  const sql::Expr* expr = nullptr;

  bool is_index_prefix() const {
    return kind == PredKind::kEq || kind == PredKind::kIn ||
           kind == PredKind::kIsNull;
  }
  bool is_sargable() const {
    return is_index_prefix() || kind == PredKind::kRange ||
           kind == PredKind::kLikePrefix;
  }
};

/// An edge in the table join graph (Sec. IV-C): an equality predicate
/// between columns of two different instances.
struct JoinEdge {
  BoundColumn left;
  BoundColumn right;
  const sql::Expr* expr = nullptr;
};

/// One factor of the disjunctive normal form: a conjunction of atomic
/// predicates (each factor yields its own candidate partial order,
/// Sec. IV-B1).
struct Factor {
  std::vector<AtomicPredicate> predicates;
};

/// One ORDER BY key bound to an instance column.
struct BoundOrderItem {
  BoundColumn column;
  bool ascending = true;
};

/// \brief A table instance appearing in the FROM list, with its
/// per-instance column usage metadata (Table I of the paper).
struct TableInstance {
  std::string alias;
  catalog::TableId table = catalog::kInvalidTable;
  /// All columns of this instance referenced anywhere in the query
  /// (projection, predicates, grouping, ordering) — `ReferencedColumns`.
  std::vector<catalog::ColumnId> referenced_columns;
  /// GROUP BY columns on this instance (set semantics, query order kept).
  std::vector<catalog::ColumnId> group_by_columns;
  /// ORDER BY columns on this instance, in order-by sequence.
  std::vector<BoundOrderItem> order_by_columns;
  /// True when the query selects '*' from this instance (covering indexes
  /// are pointless then).
  bool selects_all_columns = false;
};

/// \brief The fully analyzed (bound) form of a SELECT or DML statement:
/// everything the optimizer and the advisor need, with names resolved.
struct AnalyzedQuery {
  std::vector<TableInstance> instances;
  std::vector<JoinEdge> joins;

  /// DNF of the non-join WHERE predicates. For a purely conjunctive WHERE
  /// this is a single factor. Capped at kMaxDnfFactors: beyond that, falls
  /// back to the top-level conjuncts marked `dnf_exact = false`.
  std::vector<Factor> dnf;
  bool dnf_exact = true;

  /// Top-level ANDed atomic predicates (the conjunctive skeleton; always
  /// valid as an upper-bound filter for costing).
  std::vector<AtomicPredicate> conjuncts;

  bool has_group_by = false;
  bool has_order_by = false;
  bool has_aggregate = false;
  int64_t limit = -1;  // -1 none, -2 parameterized

  /// DML classification for maintenance costing.
  enum class DmlKind { kNone, kInsert, kUpdate, kDelete };
  DmlKind dml = DmlKind::kNone;
  /// Columns assigned by an UPDATE (instance 0).
  std::vector<catalog::ColumnId> updated_columns;

  /// Returns the predicates of `factor` restricted to one instance.
  std::vector<AtomicPredicate> FactorForInstance(const Factor& factor,
                                                 int instance) const;
  /// Conjuncts restricted to one instance.
  std::vector<AtomicPredicate> ConjunctsForInstance(int instance) const;
  /// Join edges incident to `instance`, as (my column, other instance).
  std::vector<std::pair<catalog::ColumnId, int>> JoinColumnsOf(
      int instance) const;
};

inline constexpr size_t kMaxDnfFactors = 32;

/// Binds and analyzes a statement against the catalog: resolves column
/// names, extracts join edges, classifies atomic predicates, computes the
/// DNF, and collects per-instance column usage metadata.
Result<AnalyzedQuery> Analyze(const sql::Statement& stmt,
                              const catalog::Catalog& catalog);
Result<AnalyzedQuery> Analyze(const sql::SelectStatement& stmt,
                              const catalog::Catalog& catalog);

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_PREDICATE_H_
