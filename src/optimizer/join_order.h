#ifndef AIM_OPTIMIZER_JOIN_ORDER_H_
#define AIM_OPTIMIZER_JOIN_ORDER_H_

#include "optimizer/plan.h"
#include "optimizer/switches.h"

namespace aim::optimizer {

/// Options for join enumeration.
struct JoinOrderOptions {
  bool include_hypothetical = true;
  OptimizerSwitches switches;
  /// Instances up to this count use exhaustive dynamic programming over
  /// subsets; beyond it, a greedy smallest-next heuristic (mirrors real
  /// optimizers bounding their search, Sec. IV-C).
  int dp_instance_limit = 9;
};

/// \brief Chooses a join order and per-instance access paths for a
/// multi-instance query, nested-loop style (MySQL's execution model).
///
/// Inner table accesses treat join columns bound by the already-joined
/// prefix as equality predicates, so index usability depends on the join
/// order — the circular dependency Sec. IV-C describes.
std::vector<JoinStep> PlanJoins(const AnalyzedQuery& query,
                                const catalog::Catalog& catalog,
                                const CostModel& cm,
                                const JoinOrderOptions& options);

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_JOIN_ORDER_H_
