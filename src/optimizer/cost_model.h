#ifndef AIM_OPTIMIZER_COST_MODEL_H_
#define AIM_OPTIMIZER_COST_MODEL_H_

#include "catalog/catalog.h"

namespace aim::optimizer {

/// \brief Cost-model constants, parameterized by storage engine flavour.
///
/// Costs are in abstract units where 1.0 ~ one sequential 16 KiB page read.
/// `cpu_seconds_per_unit` converts units into the "CPU seconds including
/// CPU_IOWAIT" currency the paper's workload monitor reports (Sec. III-C).
struct CostParams {
  catalog::EngineKind engine = catalog::EngineKind::kBTree;

  double page_size = 16384.0;
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  /// CPU cost of evaluating one heap row against residual predicates.
  double cpu_row_cost = 0.05;
  /// CPU cost of touching one index entry.
  double cpu_index_entry_cost = 0.02;
  /// Coefficient of the n·log2(n) sort term.
  double cpu_sort_row_cost = 0.03;
  /// Cost of one index-entry write during DML maintenance.
  double index_entry_write_cost = 2.0;
  /// B+Tree descent cost (root-to-leaf), charged once per lookup/range.
  double btree_descent_cost = 3.0;
  /// Conversion: cost units -> CPU seconds (incl. IOWAIT).
  double cpu_seconds_per_unit = 1e-4;

  /// InnoDB-style B+Tree engine (default).
  static CostParams BTree() { return CostParams{}; }

  /// MyRocks-style LSM engine: cheaper (batched, sequential) writes,
  /// slightly costlier point reads due to level checks.
  static CostParams Lsm() {
    CostParams p;
    p.engine = catalog::EngineKind::kLsm;
    p.index_entry_write_cost = 0.6;
    p.random_page_cost = 5.0;
    p.btree_descent_cost = 4.0;
    return p;
  }
};

/// \brief Derived cost formulas over a catalog.
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams())
      : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Pages occupied by the base table.
  double TablePages(const catalog::Catalog& cat,
                    catalog::TableId table) const;
  /// Pages occupied by `fraction` of an index's entries.
  double IndexPages(const catalog::Catalog& cat,
                    const catalog::IndexDef& index, double fraction) const;

  /// Cost of a full table scan evaluating predicates on every row.
  double FullScanCost(const catalog::Catalog& cat,
                      catalog::TableId table) const;

  /// \brief Cost of an index (range) scan.
  ///
  /// \param entries   index entries touched
  /// \param fetched   heap rows fetched via primary key (0 when covering)
  /// \param ranges    number of disjoint ranges (IN lists multiply ranges;
  ///                  each re-descends the tree)
  double IndexScanCost(const catalog::Catalog& cat,
                       const catalog::IndexDef& index, double entries,
                       double fetched, double ranges) const;

  /// Cost of sorting n rows (filesort).
  double SortCost(double n) const;

  /// Cost of maintaining one index for one row write (insert/delete = 1
  /// entry; update of keyed column = 2).
  double IndexMaintenanceCost(double entry_writes) const;

  /// Converts cost units to CPU-seconds (incl. IOWAIT).
  double ToCpuSeconds(double cost_units) const {
    return cost_units * params_.cpu_seconds_per_unit;
  }

 private:
  CostParams params_;
};

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_COST_MODEL_H_
