#ifndef AIM_OPTIMIZER_ACCESS_PATH_H_
#define AIM_OPTIMIZER_ACCESS_PATH_H_

#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "optimizer/predicate.h"
#include "optimizer/switches.h"

namespace aim::optimizer {

/// \brief One way to access a single table instance.
///
/// `index == nullptr` means a full table scan. For index paths, the access
/// uses an equality-matched key prefix (`eq_prefix_len` parts, fed by
/// filter equalities, IN lists, IS NULL, and join-column bindings) plus an
/// optional range on the next key part. Residual sargable predicates on
/// later index columns are applied via index condition pushdown before
/// primary-key fetches.
struct AccessPath {
  const catalog::IndexDef* index = nullptr;
  size_t eq_prefix_len = 0;
  bool range_on_next = false;
  /// True when all referenced columns are in the index (+ PK): no heap
  /// fetches needed.
  bool covering = false;
  /// The index delivers rows grouped by the instance's GROUP BY columns.
  bool delivers_group = false;
  /// The index delivers rows in the instance's ORDER BY order.
  bool delivers_order = false;

  /// Fraction of the index entries scanned.
  double index_selectivity = 1.0;
  /// Fraction of table rows surviving *all* predicates on this instance.
  double result_selectivity = 1.0;
  /// Index entries (or heap rows, for a scan) examined.
  double rows_examined = 0.0;
  /// Heap rows fetched by PK lookup (0 when covering or scanning).
  double rows_fetched = 0.0;
  /// Number of disjoint key ranges probed (IN lists multiply this).
  double ranges = 1.0;
  double cost = 0.0;

  /// Skip scan (MySQL 8): the first `skip_width` key parts are
  /// unconstrained; the scan descends once per distinct prefix group.
  bool skip_scan = false;
  size_t skip_width = 0;

  /// Predicates consumed by the key prefix / range (copies: the path may
  /// outlive the request that produced it).
  std::vector<AtomicPredicate> matched_predicates;

  /// Index-merge union (MySQL "index_merge"): when non-empty, this path
  /// resolves a top-level OR by scanning one index per DNF factor and
  /// unioning the row ids; `index` is nullptr.
  std::vector<AccessPath> union_parts;

  bool is_full_scan() const {
    return index == nullptr && union_parts.empty();
  }
  bool is_index_merge() const { return !union_parts.empty(); }
};

/// \brief Inputs for evaluating access paths on one instance.
struct AccessPathRequest {
  const AnalyzedQuery* query = nullptr;
  int instance = 0;
  /// Applicable single-instance predicates (normally the conjuncts of the
  /// instance; join planning may evaluate per-factor sets too).
  std::vector<AtomicPredicate> predicates;
  /// Columns bound to constants by join edges to already-joined tables.
  std::vector<catalog::ColumnId> join_eq_columns;
  /// Consider hypothetical (dataless) indexes.
  bool include_hypothetical = true;
  /// Optimizer feature switches in effect.
  OptimizerSwitches switches;
  /// Columns the path must produce (for covering detection). When empty,
  /// the instance's referenced_columns are used.
  std::vector<catalog::ColumnId> needed_columns;
};

/// Evaluates a specific index for the request; `cost` covers one full
/// access of the instance (all matching rows).
AccessPath EvaluateIndexPath(const AccessPathRequest& req,
                             const catalog::IndexDef& index,
                             const catalog::Catalog& catalog,
                             const CostModel& cm);

/// The full-scan path for the request.
AccessPath FullScanPath(const AccessPathRequest& req,
                        const catalog::Catalog& catalog, const CostModel& cm);

/// All candidate paths: every applicable index plus the full scan.
std::vector<AccessPath> EnumeratePaths(const AccessPathRequest& req,
                                       const catalog::Catalog& catalog,
                                       const CostModel& cm);

/// The cheapest path by raw access cost (sort avoidance is arbitrated by
/// the optimizer, which sees the query-level sort).
AccessPath BestPath(const AccessPathRequest& req,
                    const catalog::Catalog& catalog, const CostModel& cm);

/// \brief Builds an index-merge union path (MySQL "index_merge" union)
/// for a single-instance query whose WHERE is a multi-factor DNF: one
/// index scan per OR factor, row ids unioned, base rows fetched once.
///
/// Returns nullopt when the query shape does not qualify (joins, inexact
/// DNF, a single factor) or when some factor has no usable index scan.
std::optional<AccessPath> IndexMergeUnionPath(
    const AnalyzedQuery& query, int instance,
    const catalog::Catalog& catalog, const CostModel& cm,
    bool include_hypothetical, const OptimizerSwitches& switches);

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_ACCESS_PATH_H_
