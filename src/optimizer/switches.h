#ifndef AIM_OPTIMIZER_SWITCHES_H_
#define AIM_OPTIMIZER_SWITCHES_H_

namespace aim::optimizer {

/// \brief Optimizer feature switches (Sec. VIII-a of the paper).
///
/// Production fleets toggle optimizer features off when they hit
/// correctness or performance bugs (the paper cites MySQL's skip-scan and
/// index-merge issues). Both the optimizer *and* AIM's candidate
/// generation honour these switches — generating candidates for a
/// disabled execution strategy wastes work and storage.
struct OptimizerSwitches {
  /// MySQL "index_merge" union: resolve a top-level OR by scanning one
  /// index per OR arm and unioning row ids.
  bool index_merge_union = true;
  /// Index condition pushdown: evaluate residual predicates on index
  /// columns before fetching the base row.
  bool index_condition_pushdown = true;
  /// Use indexes to avoid sorts for ORDER BY / GROUP BY.
  bool sort_avoidance = true;
  /// MySQL 8 "skip scan": use an index whose first key part is
  /// unconstrained by iterating its distinct values and range-scanning
  /// the next part per group. One of the features the paper notes fleets
  /// disable when bugs bite.
  bool index_skip_scan = true;
};

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_SWITCHES_H_
