#ifndef AIM_OPTIMIZER_WHAT_IF_H_
#define AIM_OPTIMIZER_WHAT_IF_H_

#include <cstdint>
#include <vector>

#include "optimizer/optimizer.h"

namespace aim::optimizer {

/// \brief The "what-if" costing interface (HypoPG / AutoAdmin analysis
/// utility): evaluate query costs under hypothetical index configurations
/// without materializing anything.
///
/// Owns a private copy of the catalog so configurations can be swapped in
/// and out freely. Every `PlanQuery` counts as one optimizer call — the
/// currency in which index-advisor runtimes are traditionally measured
/// (Papadomanolakis et al.: 90% of advisor runtime is optimizer calls).
class WhatIfOptimizer {
 public:
  WhatIfOptimizer(const catalog::Catalog& base, CostModel cm)
      : catalog_(base), cm_(cm) {}

  /// Replaces the hypothetical configuration with `config` (the defs'
  /// `hypothetical` flags are forced on). Duplicates of existing real
  /// indexes are skipped silently.
  Status SetConfiguration(const std::vector<catalog::IndexDef>& config);
  /// Removes all hypothetical indexes.
  void ClearConfiguration();

  /// Plans `stmt` under the current configuration. Counts one call.
  Result<Plan> PlanQuery(const sql::Statement& stmt,
                         const OptimizeOptions& options = {});
  /// Total estimated cost of `stmt` under the current configuration.
  Result<double> QueryCost(const sql::Statement& stmt);

  /// Weighted workload cost: sum of weight[i] * cost(stmt[i]).
  Result<double> WorkloadCost(
      const std::vector<const sql::Statement*>& stmts,
      const std::vector<double>& weights);

  uint64_t call_count() const { return call_count_; }
  void reset_call_count() { call_count_ = 0; }

  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  const CostModel& cost_model() const { return cm_; }

 private:
  catalog::Catalog catalog_;
  CostModel cm_;
  uint64_t call_count_ = 0;
};

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_WHAT_IF_H_
