#ifndef AIM_OPTIMIZER_WHAT_IF_H_
#define AIM_OPTIMIZER_WHAT_IF_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "optimizer/optimizer.h"
#include "optimizer/what_if_cache.h"

namespace aim::optimizer {

/// Stable 64-bit fingerprint of `stmt` including literals (unlike the
/// normalized fingerprint: two statements that differ only in parameter
/// values can plan differently, so they must not share cached costs).
uint64_t FingerprintStatement(const sql::Statement& stmt);

/// \brief The "what-if" costing interface (HypoPG / AutoAdmin analysis
/// utility): evaluate query costs under hypothetical index configurations
/// without materializing anything.
///
/// Owns a private copy of the catalog so configurations can be swapped in
/// and out freely. Every `PlanQuery` counts as one optimizer call — the
/// currency in which index-advisor runtimes are traditionally measured
/// (Papadomanolakis et al.: 90% of advisor runtime is optimizer calls).
///
/// Concurrency contract: planning is a pure read of the catalog, so any
/// number of threads may call `PlanQuery`/`QueryCost` concurrently as
/// long as no thread mutates the configuration. Pipeline stages that
/// change configurations mid-flight give each worker its own `Clone()`
/// instead. The call counter is atomic so clones and concurrent callers
/// can be aggregated (`AddCalls`). An optional `WhatIfCache` (shared
/// across clones) memoizes `QueryCost` by (statement fingerprint,
/// configuration fingerprint).
class WhatIfOptimizer {
 public:
  WhatIfOptimizer(const catalog::Catalog& base, CostModel cm)
      : catalog_(base), cm_(cm) {
    config_fingerprint_ = ComputeConfigFingerprint();
  }
  WhatIfOptimizer(const WhatIfOptimizer&) = delete;
  WhatIfOptimizer& operator=(const WhatIfOptimizer&) = delete;
  WhatIfOptimizer(WhatIfOptimizer&& other) noexcept
      : catalog_(std::move(other.catalog_)),
        cm_(other.cm_),
        cache_(other.cache_),
        config_fingerprint_(other.config_fingerprint_),
        call_count_(other.call_count_.load(std::memory_order_relaxed)) {}

  /// Deep copy for per-worker use: snapshots the catalog (including the
  /// current hypothetical configuration, with index ids preserved),
  /// shares the plan-cost cache, and starts a zero call counter — the
  /// orchestrator folds worker counts back with `AddCalls`.
  WhatIfOptimizer Clone() const {
    WhatIfOptimizer clone(catalog_, cm_);
    clone.cache_ = cache_;
    clone.config_fingerprint_ = config_fingerprint_;
    return clone;
  }

  /// Replaces the hypothetical configuration with `config` (the defs'
  /// `hypothetical` flags are forced on). Duplicates of existing real
  /// indexes are skipped silently.
  Status SetConfiguration(const std::vector<catalog::IndexDef>& config);
  /// Removes all hypothetical indexes.
  void ClearConfiguration();
  /// The current hypothetical configuration, for save/restore around
  /// probing (e.g. `dataless_index_cost` keeping a staged phase-1
  /// configuration intact).
  std::vector<catalog::IndexDef> CurrentConfiguration() const;

  /// Plans `stmt` under the current configuration. Counts one call.
  Result<Plan> PlanQuery(const sql::Statement& stmt,
                         const OptimizeOptions& options = {});
  /// Total estimated cost of `stmt` under the current configuration.
  /// Served from the attached cache when possible; only real plans count
  /// optimizer calls.
  Result<double> QueryCost(const sql::Statement& stmt);

  /// Weighted workload cost: sum of weight[i] * cost(stmt[i]).
  Result<double> WorkloadCost(
      const std::vector<const sql::Statement*>& stmts,
      const std::vector<double>& weights);

  uint64_t call_count() const {
    return call_count_.load(std::memory_order_relaxed);
  }
  void reset_call_count() {
    call_count_.store(0, std::memory_order_relaxed);
  }
  /// Folds a worker clone's optimizer calls into this counter.
  void AddCalls(uint64_t calls) {
    call_count_.fetch_add(calls, std::memory_order_relaxed);
  }

  /// Attaches a memoizing plan-cost cache (not owned; shared by clones).
  void set_cache(WhatIfCache* cache) { cache_ = cache; }
  WhatIfCache* cache() const { return cache_; }
  /// Content fingerprint of the visible index configuration (real +
  /// hypothetical) — the configuration half of the cache key. Changes on
  /// every SetConfiguration/ClearConfiguration, which is what invalidates
  /// stale cache entries (their keys become unreachable).
  uint64_t config_fingerprint() const { return config_fingerprint_; }

  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  const CostModel& cost_model() const { return cm_; }

 private:
  uint64_t ComputeConfigFingerprint() const;

  catalog::Catalog catalog_;
  CostModel cm_;
  WhatIfCache* cache_ = nullptr;
  uint64_t config_fingerprint_ = 0;
  std::atomic<uint64_t> call_count_{0};
};

/// Fans `fn(what_if, i)` over [0, n) in contiguous chunks. Each worker
/// chunk gets its own `master->Clone()`; the serial path (null or
/// single-worker pool) runs the same per-item code inline on `master`
/// itself — so parallel and serial execute identical logic and, because
/// results must depend only on the item index, produce identical output.
/// Worker clone call counts are folded back into `master` in chunk order
/// after the join.
template <typename Fn>
void ParallelWhatIf(common::ThreadPool* pool, size_t n,
                    WhatIfOptimizer* master, const Fn& fn) {
  const int workers = pool != nullptr ? pool->worker_count() : 0;
  if (workers <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(master, i);
    return;
  }
  std::vector<uint64_t> chunk_calls;
  std::mutex calls_mu;
  common::ParallelChunks(pool, n, [&](size_t begin, size_t end) {
    WhatIfOptimizer clone = master->Clone();
    for (size_t i = begin; i < end; ++i) fn(&clone, i);
    std::lock_guard<std::mutex> lock(calls_mu);
    chunk_calls.push_back(clone.call_count());
  });
  for (uint64_t calls : chunk_calls) master->AddCalls(calls);
}

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_WHAT_IF_H_
