#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "optimizer/selectivity.h"

namespace aim::optimizer {

namespace {

/// LIMIT early-termination factor: when the first access delivers the
/// required order, execution stops after `limit` output rows.
double LimitFraction(double limit, double result_rows) {
  if (limit < 0 || result_rows <= 0) return 1.0;
  return std::clamp(limit / result_rows, 0.005, 1.0);
}

}  // namespace

std::string Plan::Describe(const catalog::Catalog& catalog) const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += " -> ";
    const JoinStep& s = steps[i];
    if (s.path.is_index_merge()) {
      out += StringPrintf("index_merge#%d[%zu ways]", s.instance,
                          s.path.union_parts.size());
    } else if (s.path.is_full_scan()) {
      out += StringPrintf("scan#%d", s.instance);
    } else {
      out += StringPrintf(
          "idx#%d[%s eq=%zu%s%s]", s.instance,
          catalog.DescribeIndex(*s.path.index).c_str(),
          s.path.eq_prefix_len, s.path.range_on_next ? "+range" : "",
          s.path.covering ? " covering" : "");
    }
  }
  if (needs_sort) out += " +sort";
  out += StringPrintf(" cost=%.1f rows=%.0f", total_cost(),
                      est_result_rows);
  return out;
}

Result<Plan> Optimizer::Optimize(const sql::Statement& stmt,
                                 const OptimizeOptions& options) const {
  AIM_ASSIGN_OR_RETURN(AnalyzedQuery query, Analyze(stmt, *catalog_));
  return OptimizeAnalyzed(query, options);
}

Plan Optimizer::OptimizeAnalyzed(const AnalyzedQuery& query,
                                 const OptimizeOptions& options) const {
  if (query.dml != AnalyzedQuery::DmlKind::kNone) {
    return PlanDml(query, options);
  }
  Plan plan = PlanSelect(query, options);
  // Lane-buffer reservation hint for the batch executor: enough for the
  // estimated intermediate cardinality, clamped so a bad estimate cannot
  // trigger a pathological allocation.
  const double est =
      std::max(plan.est_rows_examined, plan.est_result_rows);
  plan.batch_size_hint = static_cast<uint32_t>(
      std::clamp(est, 64.0, 4096.0));
  return plan;
}

Plan Optimizer::PlanSelect(const AnalyzedQuery& query,
                           const OptimizeOptions& options) const {
  Plan plan;
  const int n = static_cast<int>(query.instances.size());
  const double limit = query.limit >= 0
                           ? static_cast<double>(query.limit)
                           : -1.0;

  if (n == 1) {
    // Single-table: arbitrate sort avoidance and LIMIT pushdown across all
    // paths, not just the cheapest raw access.
    AccessPathRequest req;
    req.query = &query;
    req.instance = 0;
    req.predicates = query.ConjunctsForInstance(0);
    req.include_hypothetical = options.include_hypothetical;
    req.switches = options.switches;
    const catalog::TableId table = query.instances[0].table;
    const double rows =
        static_cast<double>(catalog_->table(table).stats.row_count);
    const double result_sel = InstanceResultSelectivity(query, 0, *catalog_);
    const double result_rows = std::max(rows * result_sel, 0.0);

    std::vector<AccessPath> paths = EnumeratePaths(req, *catalog_, cm_);
    if (std::optional<AccessPath> merge = IndexMergeUnionPath(
            query, 0, *catalog_, cm_, options.include_hypothetical,
            options.switches)) {
      paths.push_back(std::move(*merge));
    }
    double best_total = -1.0;
    AccessPath best;
    bool best_sort = false;
    double best_sort_cost = 0.0;
    double best_access_cost = 0.0;
    double best_examined = 0.0;
    for (const AccessPath& p : paths) {
      const bool order_ok =
          !query.has_order_by ||
          (options.switches.sort_avoidance && p.delivers_order);
      const bool group_ok =
          !query.has_group_by ||
          (options.switches.sort_avoidance && p.delivers_group);
      const bool needs_sort = !(order_ok && group_ok);
      double sort_input = result_rows;
      double sort_cost = needs_sort ? cm_.SortCost(sort_input) : 0.0;
      double access_cost = p.cost;
      double examined = p.rows_examined;
      // LIMIT pushdown only when output order is already correct and the
      // query is not an aggregation over everything.
      if (limit >= 0 && !needs_sort && !query.has_group_by &&
          !query.has_aggregate && result_rows > limit) {
        const double frac = LimitFraction(limit, result_rows);
        access_cost = access_cost * frac + cm_.params().btree_descent_cost;
        examined *= frac;
      }
      const double total = access_cost + sort_cost;
      if (best_total < 0 || total < best_total) {
        best_total = total;
        best = p;
        best_sort = needs_sort;
        best_sort_cost = sort_cost;
        best_access_cost = access_cost;
        best_examined = examined;
      }
    }
    JoinStep step;
    step.instance = 0;
    step.path = best;
    step.step_cost = best_access_cost;
    step.rows_after = result_rows;
    plan.steps.push_back(std::move(step));
    plan.needs_sort = best_sort;
    plan.sort_cost = best_sort_cost;
    plan.read_cost = best_access_cost;
    plan.est_result_rows =
        query.has_group_by
            ? EstimateGroupCount(*catalog_, table,
                                 query.instances[0].group_by_columns,
                                 result_rows)
            : (limit >= 0 ? std::min(result_rows, limit) : result_rows);
    plan.est_rows_examined = best_examined;
    return plan;
  }

  // Multi-table: join ordering, then a final sort if the first table's
  // access does not deliver the global order.
  JoinOrderOptions join_options = options.join;
  join_options.include_hypothetical = options.include_hypothetical;
  join_options.switches = options.switches;
  plan.steps = PlanJoins(query, *catalog_, cm_, join_options);
  double read_cost = 0.0;
  double examined = 0.0;
  for (const JoinStep& s : plan.steps) {
    read_cost += s.step_cost;
    examined += s.path.rows_examined *
                (s.step_cost > 0 && s.path.cost > 0
                     ? s.step_cost / s.path.cost
                     : 1.0);
  }
  double result_rows =
      plan.steps.empty() ? 0.0 : plan.steps.back().rows_after;

  bool needs_sort = false;
  if (query.has_order_by || query.has_group_by) {
    const JoinStep& first = plan.steps.front();
    const bool order_ok =
        !query.has_order_by ||
        (options.switches.sort_avoidance && first.path.delivers_order);
    const bool group_ok =
        !query.has_group_by ||
        (options.switches.sort_avoidance && first.path.delivers_group);
    needs_sort = !(order_ok && group_ok);
  }
  plan.needs_sort = needs_sort;
  plan.sort_cost = needs_sort ? cm_.SortCost(result_rows) : 0.0;

  if (limit >= 0 && !needs_sort && !query.has_group_by &&
      !query.has_aggregate && result_rows > limit) {
    const double frac = LimitFraction(limit, result_rows);
    read_cost = read_cost * frac + cm_.params().btree_descent_cost;
    examined *= frac;
    result_rows = limit;
  }
  plan.read_cost = read_cost;
  plan.est_rows_examined = examined;
  plan.est_result_rows = result_rows;
  return plan;
}

Plan Optimizer::PlanDml(const AnalyzedQuery& query,
                        const OptimizeOptions& options) const {
  Plan plan;
  const catalog::TableId table = query.instances[0].table;
  const double rows =
      static_cast<double>(catalog_->table(table).stats.row_count);

  double rows_modified = 1.0;
  if (query.dml != AnalyzedQuery::DmlKind::kInsert) {
    AccessPathRequest req;
    req.query = &query;
    req.instance = 0;
    req.predicates = query.ConjunctsForInstance(0);
    req.include_hypothetical = options.include_hypothetical;
    req.switches = options.switches;
    AccessPath path = BestPath(req, *catalog_, cm_);
    JoinStep step;
    step.instance = 0;
    step.path = path;
    step.step_cost = path.cost;
    plan.read_cost = path.cost;
    plan.est_rows_examined = path.rows_examined;
    rows_modified =
        std::max(rows * InstanceResultSelectivity(query, 0, *catalog_), 0.0);
    step.rows_after = rows_modified;
    plan.steps.push_back(std::move(step));
  }

  // Base-table (clustered PK) write.
  plan.maintenance_cost += rows_modified * cm_.IndexMaintenanceCost(1.0);

  for (const catalog::IndexDef* idx : catalog_->TableIndexes(
           table, options.include_hypothetical)) {
    // The clustered-PK write is the base-table write charged above.
    if (idx->is_primary) continue;
    double entry_writes = 0.0;
    switch (query.dml) {
      case AnalyzedQuery::DmlKind::kInsert:
      case AnalyzedQuery::DmlKind::kDelete:
        entry_writes = 1.0;
        break;
      case AnalyzedQuery::DmlKind::kUpdate: {
        // Only indexes keyed on an updated column pay maintenance
        // (delete + insert of the entry).
        for (catalog::ColumnId c : query.updated_columns) {
          if (std::find(idx->columns.begin(), idx->columns.end(), c) !=
              idx->columns.end()) {
            entry_writes = 2.0;
            break;
          }
        }
        break;
      }
      case AnalyzedQuery::DmlKind::kNone:
        break;
    }
    if (entry_writes == 0.0) continue;
    IndexMaintenance m;
    m.index = idx->id;
    m.cost = rows_modified * cm_.IndexMaintenanceCost(entry_writes);
    plan.maintenance_cost += m.cost;
    plan.maintenance.push_back(m);
  }
  plan.est_result_rows = rows_modified;
  return plan;
}

}  // namespace aim::optimizer
