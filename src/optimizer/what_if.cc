#include "optimizer/what_if.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/printer.h"

namespace aim::optimizer {

namespace {

/// FNV-1a over a byte string.
uint64_t Fnv64(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void HashMix(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9E3779B97F4A7C15ull + (*h << 6) + (*h >> 2);
}

}  // namespace

uint64_t FingerprintStatement(const sql::Statement& stmt) {
  return Fnv64(sql::ToSql(stmt));
}

Status WhatIfOptimizer::SetConfiguration(
    const std::vector<catalog::IndexDef>& config) {
  ClearConfiguration();
  for (catalog::IndexDef def : config) {
    def.hypothetical = true;
    def.id = catalog::kInvalidIndex;
    Result<catalog::IndexId> r = catalog_.AddIndex(std::move(def));
    if (!r.ok() && r.status().code() != Status::Code::kAlreadyExists) {
      config_fingerprint_ = ComputeConfigFingerprint();
      return r.status();
    }
  }
  config_fingerprint_ = ComputeConfigFingerprint();
  return Status::OK();
}

void WhatIfOptimizer::ClearConfiguration() {
  catalog_.DropAllHypothetical();
  config_fingerprint_ = ComputeConfigFingerprint();
}

std::vector<catalog::IndexDef> WhatIfOptimizer::CurrentConfiguration()
    const {
  std::vector<catalog::IndexDef> config;
  for (const catalog::IndexDef* idx : catalog_.AllIndexes(true, false)) {
    if (idx->hypothetical) config.push_back(*idx);
  }
  return config;
}

uint64_t WhatIfOptimizer::ComputeConfigFingerprint() const {
  // Content hash of the *logical* configuration. Ids are excluded so
  // hypothetical ids may drift across repeated SetConfiguration calls;
  // the hypothetical flag is excluded because the optimizer plans a
  // dataless index exactly like a materialized one (the what-if
  // contract), so the cost of a statement depends only on which index
  // *definitions* are visible; and per-index hashes combine by addition
  // (order-independent) so the same set reached through a different
  // creation order — e.g. a candidate staged hypothetically during
  // ranking versus the same index created for real by a later apply —
  // fingerprints identically. This is what lets a persisted plan-cost
  // cache keep hitting across continuous-tuner intervals after the
  // recommended indexes have been materialized.
  uint64_t h = 1469598103934665603ull;
  for (const catalog::IndexDef* idx : catalog_.AllIndexes(true, true)) {
    uint64_t e = 0x243F6A8885A308D3ull;  // per-index chain, mixed by sum
    HashMix(&e, idx->table);
    HashMix(&e, idx->columns.size());
    for (catalog::ColumnId c : idx->columns) HashMix(&e, c);
    HashMix(&e, idx->unique ? 1u : 0u);
    h += e * 0x9E3779B97F4A7C15ull;
  }
  return h;
}

Result<Plan> WhatIfOptimizer::PlanQuery(const sql::Statement& stmt,
                                        const OptimizeOptions& options) {
  static obs::Counter* const plan_calls =
      obs::MetricsRegistry::Global()->counter("whatif.plan_calls");
  call_count_.fetch_add(1, std::memory_order_relaxed);
  plan_calls->Add();
  obs::Span span(obs::Tracer::Get(), "whatif.plan");
  if (span.enabled()) {  // fingerprints cost a ToSql; skip when disabled
    span.SetAttr("statement_fp", FingerprintStatement(stmt));
    span.SetAttr("config_fp", config_fingerprint_);
  }
  Optimizer opt(catalog_, cm_);
  return opt.Optimize(stmt, options);
}

Result<double> WhatIfOptimizer::QueryCost(const sql::Statement& stmt) {
  if (cache_ == nullptr) {
    AIM_ASSIGN_OR_RETURN(Plan plan, PlanQuery(stmt));
    return plan.total_cost();
  }
  const WhatIfCache::Key key{FingerprintStatement(stmt),
                             config_fingerprint_};
  return cache_->GetOrCompute(key, [&]() -> Result<double> {
    AIM_ASSIGN_OR_RETURN(Plan plan, PlanQuery(stmt));
    return plan.total_cost();
  });
}

Result<double> WhatIfOptimizer::WorkloadCost(
    const std::vector<const sql::Statement*>& stmts,
    const std::vector<double>& weights) {
  if (stmts.size() != weights.size()) {
    return Status::InvalidArgument("stmts/weights size mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < stmts.size(); ++i) {
    AIM_ASSIGN_OR_RETURN(double c, QueryCost(*stmts[i]));
    total += weights[i] * c;
  }
  return total;
}

}  // namespace aim::optimizer
