#include "optimizer/what_if.h"

namespace aim::optimizer {

Status WhatIfOptimizer::SetConfiguration(
    const std::vector<catalog::IndexDef>& config) {
  ClearConfiguration();
  for (catalog::IndexDef def : config) {
    def.hypothetical = true;
    def.id = catalog::kInvalidIndex;
    Result<catalog::IndexId> r = catalog_.AddIndex(std::move(def));
    if (!r.ok() && r.status().code() != Status::Code::kAlreadyExists) {
      return r.status();
    }
  }
  return Status::OK();
}

void WhatIfOptimizer::ClearConfiguration() {
  catalog_.DropAllHypothetical();
}

Result<Plan> WhatIfOptimizer::PlanQuery(const sql::Statement& stmt,
                                        const OptimizeOptions& options) {
  ++call_count_;
  Optimizer opt(catalog_, cm_);
  return opt.Optimize(stmt, options);
}

Result<double> WhatIfOptimizer::QueryCost(const sql::Statement& stmt) {
  AIM_ASSIGN_OR_RETURN(Plan plan, PlanQuery(stmt));
  return plan.total_cost();
}

Result<double> WhatIfOptimizer::WorkloadCost(
    const std::vector<const sql::Statement*>& stmts,
    const std::vector<double>& weights) {
  if (stmts.size() != weights.size()) {
    return Status::InvalidArgument("stmts/weights size mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < stmts.size(); ++i) {
    AIM_ASSIGN_OR_RETURN(double c, QueryCost(*stmts[i]));
    total += weights[i] * c;
  }
  return total;
}

}  // namespace aim::optimizer
