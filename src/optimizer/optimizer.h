#ifndef AIM_OPTIMIZER_OPTIMIZER_H_
#define AIM_OPTIMIZER_OPTIMIZER_H_

#include "common/result.h"
#include "optimizer/cost_model.h"
#include "optimizer/join_order.h"
#include "optimizer/plan.h"
#include "optimizer/switches.h"
#include "sql/ast.h"

namespace aim::optimizer {

/// Optimization knobs.
struct OptimizeOptions {
  /// See hypothetical (dataless) indexes during planning.
  bool include_hypothetical = true;
  OptimizerSwitches switches;
  JoinOrderOptions join;
};

/// \brief The cost-based query optimizer: access-path selection, join
/// ordering, sort avoidance, LIMIT pushdown, and DML maintenance costing.
///
/// The optimizer is the contract AIM and the baseline advisors share with
/// the "database": given a statement and a catalog (including hypothetical
/// indexes), produce a plan with estimated costs.
class Optimizer {
 public:
  Optimizer(const catalog::Catalog& catalog, CostModel cm)
      : catalog_(&catalog), cm_(cm) {}

  /// Plans a statement. For DML, the plan's `maintenance` lists the
  /// per-index update overhead (cost_u of Sec. III-F).
  Result<Plan> Optimize(const sql::Statement& stmt,
                        const OptimizeOptions& options = {}) const;

  /// Plans an already-analyzed query (avoids re-binding).
  Plan OptimizeAnalyzed(const AnalyzedQuery& query,
                        const OptimizeOptions& options = {}) const;

  const CostModel& cost_model() const { return cm_; }
  const catalog::Catalog& catalog() const { return *catalog_; }

 private:
  Plan PlanSelect(const AnalyzedQuery& query,
                  const OptimizeOptions& options) const;
  Plan PlanDml(const AnalyzedQuery& query,
               const OptimizeOptions& options) const;

  const catalog::Catalog* catalog_;
  CostModel cm_;
};

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_OPTIMIZER_H_
