#include "optimizer/access_path.h"

#include <algorithm>
#include <cmath>

#include "optimizer/selectivity.h"

namespace aim::optimizer {

namespace {

/// Does the index deliver the instance's GROUP BY grouping after an
/// equality prefix of length `eq_len`? The group columns must occupy the
/// key parts right after the prefix (any order among themselves).
bool DeliversGroup(const catalog::IndexDef& index, size_t eq_len,
                   const std::vector<catalog::ColumnId>& group_cols) {
  if (group_cols.empty()) return false;
  if (index.columns.size() < eq_len + group_cols.size()) return false;
  for (size_t i = 0; i < group_cols.size(); ++i) {
    const catalog::ColumnId key_part = index.columns[eq_len + i];
    if (std::find(group_cols.begin(), group_cols.end(), key_part) ==
        group_cols.end()) {
      return false;
    }
  }
  return true;
}

/// Does the index deliver the ORDER BY sequence after the equality prefix?
/// Requires exact column sequence and a uniform direction (a descending
/// order is served by a reverse scan).
bool DeliversOrder(const catalog::IndexDef& index, size_t eq_len,
                   const std::vector<BoundOrderItem>& order_cols) {
  if (order_cols.empty()) return false;
  if (index.columns.size() < eq_len + order_cols.size()) return false;
  const bool dir = order_cols[0].ascending;
  for (size_t i = 0; i < order_cols.size(); ++i) {
    if (order_cols[i].ascending != dir) return false;
    if (index.columns[eq_len + i] != order_cols[i].column.column) {
      return false;
    }
  }
  return true;
}

}  // namespace

AccessPath FullScanPath(const AccessPathRequest& req,
                        const catalog::Catalog& catalog,
                        const CostModel& cm) {
  const TableInstance& inst = req.query->instances[req.instance];
  const auto& table_stats = catalog.table(inst.table).stats;
  AccessPath path;
  path.index = nullptr;
  // Join-bound columns act as additional (unknown-literal) equalities.
  std::vector<AtomicPredicate> all = req.predicates;
  for (catalog::ColumnId c : req.join_eq_columns) {
    AtomicPredicate p;
    p.column = BoundColumn{req.instance, c};
    p.kind = PredKind::kEq;
    all.push_back(p);
  }
  path.result_selectivity = CombinedSelectivity(all, catalog, inst.table);
  path.rows_examined = static_cast<double>(table_stats.row_count);
  path.rows_fetched = 0;
  path.cost = cm.FullScanCost(catalog, inst.table);
  path.covering = true;  // a heap scan sees every column
  return path;
}

AccessPath EvaluateIndexPath(const AccessPathRequest& req,
                             const catalog::IndexDef& index,
                             const catalog::Catalog& catalog,
                             const CostModel& cm) {
  const TableInstance& inst = req.query->instances[req.instance];
  const catalog::TableDef& table = catalog.table(inst.table);
  const double rows = static_cast<double>(table.stats.row_count);

  AccessPath path;
  path.index = &index;

  // Predicates per column (first usable per key part wins).
  auto find_eq = [&](catalog::ColumnId col) -> const AtomicPredicate* {
    for (const auto& p : req.predicates) {
      if (p.column.column == col && p.is_index_prefix()) return &p;
    }
    return nullptr;
  };
  auto find_range = [&](catalog::ColumnId col) -> const AtomicPredicate* {
    for (const auto& p : req.predicates) {
      if (p.column.column == col &&
          (p.kind == PredKind::kRange || p.kind == PredKind::kLikePrefix)) {
        return &p;
      }
    }
    return nullptr;
  };
  auto join_bound = [&](catalog::ColumnId col) {
    return std::find(req.join_eq_columns.begin(), req.join_eq_columns.end(),
                     col) != req.join_eq_columns.end();
  };

  std::vector<const AtomicPredicate*> matched;
  double index_sel = 1.0;
  double ranges = 1.0;
  size_t eq_len = 0;
  for (; eq_len < index.columns.size(); ++eq_len) {
    const catalog::ColumnId col = index.columns[eq_len];
    if (const AtomicPredicate* p = find_eq(col)) {
      index_sel *= PredicateSelectivity(*p, catalog, inst.table);
      if (p->kind == PredKind::kIn) {
        ranges *= std::max(1, p->in_list_size);
      }
      matched.push_back(p);
      continue;
    }
    if (join_bound(col)) {
      index_sel *=
          std::max(catalog.column_stats({inst.table, col})
                       .DefaultEqSelectivity(),
                   1e-9);
      continue;
    }
    break;
  }
  path.eq_prefix_len = eq_len;
  if (eq_len < index.columns.size()) {
    if (const AtomicPredicate* p = find_range(index.columns[eq_len])) {
      index_sel *= PredicateSelectivity(*p, catalog, inst.table);
      matched.push_back(p);
      path.range_on_next = true;
    }
  }

  // Skip scan (MySQL 8, Sec. VIII-a): no usable prefix, but the *second*
  // key part is filtered — descend once per distinct first-part value.
  if (eq_len == 0 && !path.range_on_next &&
      req.switches.index_skip_scan && !index.is_primary &&
      index.columns.size() >= 2) {
    const catalog::ColumnId second = index.columns[1];
    const AtomicPredicate* p = find_eq(second);
    if (p == nullptr) p = find_range(second);
    if (p != nullptr) {
      const double sel = PredicateSelectivity(*p, catalog, inst.table);
      const double groups = static_cast<double>(std::min<uint64_t>(
          std::max<uint64_t>(
              1, catalog.column_stats({inst.table, index.columns[0]}).ndv),
          std::max<uint64_t>(1, table.stats.row_count)));
      path.skip_scan = true;
      path.skip_width = 1;
      index_sel = sel;
      ranges = groups;  // one descent per group
      matched.push_back(p);
    }
  }
  // An index with no usable prefix can still serve order/group (index-
  // ordered scan) or act as a covering "skinny table" scan.
  path.index_selectivity = std::clamp(index_sel, 0.0, 1.0);

  // Covering check: every needed column in key parts or the PK suffix.
  // The clustered primary index stores the whole row: always covering.
  const std::vector<catalog::ColumnId>& needed =
      req.needed_columns.empty() ? inst.referenced_columns
                                 : req.needed_columns;
  path.covering = true;
  if (index.is_primary) {
    // fallthrough with covering = true
  } else
  for (catalog::ColumnId c : needed) {
    const bool in_key =
        std::find(index.columns.begin(), index.columns.end(), c) !=
        index.columns.end();
    const bool in_pk =
        std::find(table.primary_key.begin(), table.primary_key.end(), c) !=
        table.primary_key.end();
    if (!in_key && !in_pk) {
      path.covering = false;
      break;
    }
  }

  // Index condition pushdown: residual sargable predicates on *index*
  // columns filter entries before PK fetches (disabled by switch on
  // fleets where the optimization is off).
  double icp_sel = 1.0;
  if (req.switches.index_condition_pushdown) {
    for (const auto& p : req.predicates) {
      if (std::find(matched.begin(), matched.end(), &p) !=
          matched.end()) {
        continue;
      }
      if (!p.is_sargable()) continue;
      if (std::find(index.columns.begin(), index.columns.end(),
                    p.column.column) != index.columns.end()) {
        icp_sel *= PredicateSelectivity(p, catalog, inst.table);
      }
    }
  }

  // Result selectivity over all predicates + join bindings.
  std::vector<AtomicPredicate> all = req.predicates;
  for (catalog::ColumnId c : req.join_eq_columns) {
    AtomicPredicate p;
    p.column = BoundColumn{req.instance, c};
    p.kind = PredKind::kEq;
    all.push_back(p);
  }
  path.result_selectivity = CombinedSelectivity(all, catalog, inst.table);

  path.ranges = ranges;
  path.rows_examined = rows * path.index_selectivity;
  path.rows_fetched = path.covering ? 0.0 : path.rows_examined * icp_sel;
  path.cost = cm.IndexScanCost(catalog, index, path.rows_examined,
                               path.rows_fetched, ranges);

  path.delivers_group =
      DeliversGroup(index, eq_len, inst.group_by_columns);
  path.delivers_order = DeliversOrder(index, eq_len, inst.order_by_columns);
  path.matched_predicates.reserve(matched.size());
  for (const AtomicPredicate* p : matched) {
    path.matched_predicates.push_back(*p);
  }
  return path;
}

std::vector<AccessPath> EnumeratePaths(const AccessPathRequest& req,
                                       const catalog::Catalog& catalog,
                                       const CostModel& cm) {
  const TableInstance& inst = req.query->instances[req.instance];
  std::vector<AccessPath> paths;
  paths.push_back(FullScanPath(req, catalog, cm));
  for (const catalog::IndexDef* idx :
       catalog.TableIndexes(inst.table, req.include_hypothetical)) {
    AccessPath p = EvaluateIndexPath(req, *idx, catalog, cm);
    // Skip index paths that match nothing and help nothing: they are
    // strictly worse than a scan. The primary index is the table itself,
    // so "covering" alone does not make an unkeyed primary scan useful.
    const bool keyed =
        p.eq_prefix_len > 0 || p.range_on_next || p.skip_scan;
    const bool ordered = p.delivers_group || p.delivers_order;
    if (idx->is_primary) {
      if (!keyed && !ordered) continue;
    } else if (!keyed && !ordered && !p.covering) {
      continue;
    }
    paths.push_back(std::move(p));
  }
  return paths;
}

AccessPath BestPath(const AccessPathRequest& req,
                    const catalog::Catalog& catalog, const CostModel& cm) {
  std::vector<AccessPath> paths = EnumeratePaths(req, catalog, cm);
  size_t best = 0;
  for (size_t i = 1; i < paths.size(); ++i) {
    if (paths[i].cost < paths[best].cost) best = i;
  }
  return paths[best];
}

std::optional<AccessPath> IndexMergeUnionPath(
    const AnalyzedQuery& query, int instance,
    const catalog::Catalog& catalog, const CostModel& cm,
    bool include_hypothetical, const OptimizerSwitches& switches) {
  if (!switches.index_merge_union) return std::nullopt;
  if (!query.dnf_exact || query.dnf.size() < 2) return std::nullopt;
  // The union only applies when the whole WHERE is the disjunction: a
  // conjunctive skeleton would already be handled by a single index.
  if (!query.conjuncts.empty()) return std::nullopt;

  const TableInstance& inst = query.instances[instance];
  const double rows =
      static_cast<double>(catalog.table(inst.table).stats.row_count);

  AccessPath merged;
  double fetch_rows = 0.0;
  double scan_cost = 0.0;
  bool all_covering = true;
  for (const Factor& factor : query.dnf) {
    AccessPathRequest req;
    req.query = &query;
    req.instance = instance;
    req.predicates = query.FactorForInstance(factor, instance);
    req.include_hypothetical = include_hypothetical;
    req.switches = switches;
    if (req.predicates.empty()) return std::nullopt;
    // Best *index* path for this factor (scans disqualify the union).
    std::optional<AccessPath> best;
    for (const catalog::IndexDef* idx :
         catalog.TableIndexes(inst.table, include_hypothetical)) {
      AccessPath p = EvaluateIndexPath(req, *idx, catalog, cm);
      if (p.eq_prefix_len == 0 && !p.range_on_next) continue;
      if (!best.has_value() || p.cost < best->cost) best = std::move(p);
    }
    if (!best.has_value()) return std::nullopt;
    // The scan part of the factor's cost: entries are collected as row
    // ids first; base rows are fetched once after the union.
    scan_cost += cm.IndexScanCost(catalog, *best->index,
                                  best->rows_examined, 0.0, best->ranges);
    fetch_rows += best->rows_examined;
    merged.rows_examined += best->rows_examined;
    all_covering = all_covering && best->covering;
    merged.matched_predicates.insert(merged.matched_predicates.end(),
                                     best->matched_predicates.begin(),
                                     best->matched_predicates.end());
    merged.union_parts.push_back(std::move(*best));
  }
  fetch_rows = std::min(fetch_rows, rows);  // dedup bound
  merged.index = nullptr;
  merged.covering = all_covering;
  merged.result_selectivity =
      InstanceResultSelectivity(query, instance, catalog);
  merged.rows_fetched = all_covering ? 0.0 : fetch_rows;
  merged.cost = scan_cost +
                merged.rows_fetched * (cm.params().random_page_cost +
                                       cm.params().cpu_row_cost) +
                merged.rows_examined * cm.params().cpu_index_entry_cost;
  return merged;
}

}  // namespace aim::optimizer
