#include "optimizer/what_if_cache.h"

namespace aim::optimizer {

Result<double> WhatIfCache::GetOrCompute(
    const Key& key, const std::function<Result<double>()>& compute) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // this thread computes
    if (it->second.ready) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.cost;
    }
    // In flight on another thread: wait for it to become ready (served
    // waiters re-enter the loop and take the hit path) or to be erased
    // after a failure (then this thread takes over the computation).
    ready_cv_.wait(lock);
  }
  entries_.emplace(key, Entry{});  // computing marker, not on the LRU
  ++stats_.misses;
  lock.unlock();

  Result<double> result = compute();

  lock.lock();
  auto it = entries_.find(key);  // still present: only the owner resolves it
  if (result.ok()) {
    it->second.cost = result.ValueOrDie();
    it->second.ready = true;
    lru_.push_front(key);
    it->second.lru = lru_.begin();
    EvictLocked();
  } else {
    entries_.erase(it);  // failures are not cached
  }
  lock.unlock();
  ready_cv_.notify_all();
  return result;
}

std::optional<double> WhatIfCache::Peek(const Key& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return std::nullopt;
  return it->second.cost;
}

void WhatIfCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // In-flight entries stay: their owners hold no lock but will look the
  // marker up again to resolve it. Only ready entries are dropped.
  for (const Key& key : lru_) entries_.erase(key);
  lru_.clear();
}

size_t WhatIfCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();  // ready entries only
}

WhatIfCacheStats WhatIfCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WhatIfCache::EvictLocked() {
  while (lru_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace aim::optimizer
