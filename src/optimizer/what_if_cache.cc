#include "optimizer/what_if_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <istream>
#include <iterator>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "obs/metrics.h"

namespace aim::optimizer {

namespace {

/// Fleet-wide cache counters, aggregated across every WhatIfCache
/// instance (pointers cached once; Add is one relaxed atomic op).
obs::Counter* GlobalHits() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global()->counter("whatif.cache.hits");
  return c;
}
obs::Counter* GlobalMisses() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global()->counter("whatif.cache.misses");
  return c;
}
obs::Counter* GlobalEvictions() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global()->counter("whatif.cache.evictions");
  return c;
}

// Snapshot layout, all fixed-width little-endian-as-stored:
//   magic u64 | version u32 | catalog_fingerprint u64 | count u64 |
//   count x { statement u64, configuration u64, cost f64 }
// Bump kSnapshotVersion on any layout change: an old snapshot is then
// rejected (cold start), never misread.
constexpr uint64_t kSnapshotMagic = 0x31434649574D4941ull;  // "AIMWIFC1"
constexpr uint32_t kSnapshotVersion = 1;

template <typename T>
void WriteRaw(std::ostream& out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.write(buf, sizeof(T));
}

template <typename T>
bool ReadRaw(std::istream& in, T* value) {
  char buf[sizeof(T)];
  in.read(buf, sizeof(T));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) return false;
  std::memcpy(value, buf, sizeof(T));
  return true;
}

}  // namespace

Result<double> WhatIfCache::GetOrCompute(
    const Key& key, const std::function<Result<double>()>& compute) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // this thread computes
    if (it->second.ready) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      GlobalHits()->Add();
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.cost;
    }
    // In flight on another thread: wait for it to become ready (served
    // waiters re-enter the loop and take the hit path) or to be erased
    // after a failure (then this thread takes over the computation).
    ready_cv_.wait(lock);
  }
  entries_.emplace(key, Entry{});  // computing marker, not on the LRU
  misses_.fetch_add(1, std::memory_order_relaxed);
  GlobalMisses()->Add();
  lock.unlock();

  Result<double> result = compute();

  lock.lock();
  auto it = entries_.find(key);  // still present: only the owner resolves it
  if (result.ok()) {
    it->second.cost = result.ValueOrDie();
    it->second.ready = true;
    lru_.push_front(key);
    it->second.lru = lru_.begin();
    EvictLocked();
  } else {
    entries_.erase(it);  // failures are not cached
  }
  lock.unlock();
  ready_cv_.notify_all();
  return result;
}

std::optional<double> WhatIfCache::Peek(const Key& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return std::nullopt;
  return it->second.cost;
}

Status WhatIfCache::SaveTo(std::ostream& out,
                           uint64_t catalog_fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  WriteRaw(out, kSnapshotMagic);
  WriteRaw(out, kSnapshotVersion);
  WriteRaw(out, catalog_fingerprint);
  WriteRaw(out, static_cast<uint64_t>(lru_.size()));
  // MRU first, so LoadFrom can rebuild the recency order (and truncate at
  // a smaller capacity) by appending in read order.
  for (const Key& key : lru_) {
    const auto it = entries_.find(key);
    WriteRaw(out, key.statement);
    WriteRaw(out, key.configuration);
    WriteRaw(out, it->second.cost);
  }
  if (!out.good()) {
    return Status::Internal("what-if cache snapshot write failed");
  }
  return Status::OK();
}

Result<bool> WhatIfCache::LoadFrom(std::istream& in,
                                   uint64_t catalog_fingerprint) {
  AIM_FAULT_POINT("whatif.cache.load");
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t snapshot_fingerprint = 0;
  uint64_t count = 0;
  if (!ReadRaw(in, &magic) || magic != kSnapshotMagic ||
      !ReadRaw(in, &version) || version != kSnapshotVersion ||
      !ReadRaw(in, &snapshot_fingerprint) || !ReadRaw(in, &count)) {
    return false;  // unrecognized or truncated header: stay cold
  }
  if (snapshot_fingerprint != catalog_fingerprint) {
    // The snapshot's costs were computed against a different schema or
    // different statistics: every entry is stale, reject wholesale.
    return false;
  }
  // Stage outside the cache so a truncated body leaves it untouched.
  std::vector<std::pair<Key, double>> staged;
  staged.reserve(static_cast<size_t>(std::min<uint64_t>(count, capacity_)));
  for (uint64_t i = 0; i < count; ++i) {
    Key key;
    double cost = 0.0;
    if (!ReadRaw(in, &key.statement) || !ReadRaw(in, &key.configuration) ||
        !ReadRaw(in, &cost)) {
      return false;  // truncated mid-entry: reject the whole snapshot
    }
    if (staged.size() < capacity_) staged.emplace_back(key, cost);
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (const Key& key : lru_) entries_.erase(key);
  lru_.clear();
  // Entries arrive MRU first; appending keeps that order, so eviction
  // pressure after a warm start falls on the coldest carried entries.
  for (const auto& [key, cost] : staged) {
    auto [it, inserted] = entries_.emplace(key, Entry{});
    if (!inserted) continue;  // duplicate key in a hand-built snapshot
    it->second.cost = cost;
    it->second.ready = true;
    lru_.push_back(key);
    it->second.lru = std::prev(lru_.end());
  }
  return true;
}

void WhatIfCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // In-flight entries stay: their owners hold no lock but will look the
  // marker up again to resolve it. Only ready entries are dropped.
  for (const Key& key : lru_) entries_.erase(key);
  lru_.clear();
}

size_t WhatIfCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();  // ready entries only
}

WhatIfCacheStats WhatIfCache::stats() const {
  WhatIfCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

void WhatIfCache::EvictLocked() {
  while (lru_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    GlobalEvictions()->Add();
  }
}

std::string SnapshotPathForFingerprint(const std::string& base_path,
                                       uint64_t catalog_fingerprint) {
  char suffix[24];
  std::snprintf(suffix, sizeof(suffix), ".%016llx",
                static_cast<unsigned long long>(catalog_fingerprint));
  return base_path + suffix;
}

Status SaveSnapshotAtomic(const WhatIfCache& cache, const std::string& path,
                          uint64_t catalog_fingerprint) {
  // The temporary must live in the target's directory for rename(2) to be
  // atomic, and must be private to this writer so concurrent savers never
  // interleave bytes: tag it with the thread id.
  const size_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%zx", tid);
  const std::string tmp = path + suffix;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open snapshot temp file " + tmp);
    }
    Status st = cache.SaveTo(out, catalog_fingerprint);
    if (st.ok() && !out.good()) {
      st = Status::Internal("short write to snapshot temp file " + tmp);
    }
    if (!st.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return st;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

}  // namespace aim::optimizer
