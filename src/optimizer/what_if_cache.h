#ifndef AIM_OPTIMIZER_WHAT_IF_CACHE_H_
#define AIM_OPTIMIZER_WHAT_IF_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/result.h"

namespace aim::optimizer {

/// Counters describing one cache's lifetime activity.
struct WhatIfCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// \brief Memoizes `(statement fingerprint, configuration fingerprint) →
/// plan cost` across all WhatIfOptimizer clones of one advisor run.
///
/// ~90% of index-advisor runtime is optimizer calls (Papadomanolakis et
/// al.), and a tuning pass re-costs the same statement under the same
/// configuration again and again — two-phase candidate generation repeats
/// every dataless probe, and production workloads repeat statements. Each
/// unique (statement, configuration) pair is planned at most once per
/// cache generation.
///
/// Thread-safe with *single-flight* semantics: when several workers ask
/// for the same uncached key concurrently, exactly one computes while the
/// rest wait and share the result. The number of real optimizer calls
/// therefore equals the number of unique keys requested — invariant under
/// thread count, which is what keeps the parallel pipeline's what-if call
/// totals bit-identical to the serial path's.
///
/// Keys embed the configuration fingerprint, so `SetConfiguration` needs
/// no explicit invalidation sweep: entries of a dead configuration become
/// unreachable and age out of the LRU. Failed computations are never
/// cached. Bounded: least-recently-used ready entries are evicted beyond
/// `capacity`.
class WhatIfCache {
 public:
  struct Key {
    uint64_t statement = 0;
    uint64_t configuration = 0;

    bool operator==(const Key& o) const {
      return statement == o.statement && configuration == o.configuration;
    }
  };

  explicit WhatIfCache(size_t capacity = 4096) : capacity_(capacity) {}
  WhatIfCache(const WhatIfCache&) = delete;
  WhatIfCache& operator=(const WhatIfCache&) = delete;

  /// Returns the cached cost for `key` or computes it via `compute`
  /// (single-flight) and caches the success. Waiting out another thread's
  /// in-flight computation counts as a hit — the optimizer call was
  /// avoided either way.
  Result<double> GetOrCompute(const Key& key,
                              const std::function<Result<double>()>& compute);

  /// Test/diagnostic peek; touches neither counters nor LRU order.
  std::optional<double> Peek(const Key& key) const;

  /// Serializes every ready entry (most-recently-used first) as a
  /// versioned binary snapshot. `catalog_fingerprint` identifies the
  /// schema + statistics the costs were computed against; LoadFrom
  /// refuses a snapshot taken against a different catalog (the costs
  /// would be stale, not just unreachable). In-flight computations are
  /// skipped — only resolved costs persist.
  Status SaveTo(std::ostream& out, uint64_t catalog_fingerprint) const;

  /// Restores a SaveTo snapshot, replacing any ready entries. Returns
  /// true when the snapshot was adopted; false when it was *rejected* —
  /// version or catalog-fingerprint mismatch, corruption, truncation —
  /// in which case the cache is left cold (never partially loaded).
  /// A rejected snapshot is the designed cold-start path, not an error;
  /// a non-OK status means the load itself failed (crosses the
  /// `whatif.cache.load` fault point) and callers should also start
  /// cold. Counters are untouched either way: hits against loaded
  /// entries are how carried-over value is measured.
  Result<bool> LoadFrom(std::istream& in, uint64_t catalog_fingerprint);

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Lock-free snapshot of the hit/miss/eviction counters. Each counter
  /// is an atomic read (never torn, monotone between calls), so pollers
  /// can sample stats concurrently with GetOrCompute without ever
  /// blocking the single-flight hot path. The three counters are read
  /// independently: a snapshot taken mid-operation may be ahead on one
  /// counter relative to another by the in-flight delta, which is the
  /// standard monitoring contract; quiescent-point snapshots (how
  /// AimRunStats computes per-run deltas) are exact.
  WhatIfCacheStats stats() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Golden-ratio mix of the two 64-bit halves.
      uint64_t h = k.statement * 0x9E3779B97F4A7C15ull;
      h ^= k.configuration + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Entry {
    double cost = 0.0;
    bool ready = false;  // false = another thread is computing it
    std::list<Key>::iterator lru;  // valid only when ready
  };

  /// Drops LRU entries until at most `capacity_` remain. Locked; only
  /// ready entries live on the LRU list, so in-flight computations are
  /// never evicted from under their waiters.
  void EvictLocked();

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  size_t capacity_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  // most recently used at front
  // Atomic so stats() never takes mu_: a monitoring poller must not
  // contend with (or wait behind) an in-flight single-flight compute.
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// The per-schema snapshot file a base path expands to:
/// `<base_path>.<catalog_fingerprint as 16 hex digits>`. Namespacing
/// snapshots by schema/statistics fingerprint lets many tuners (a fleet
/// of tenants, several processes) share one configured snapshot path
/// without clobbering each other: distinct schemas write distinct files,
/// and same-schema writers overwrite with equally-valid snapshots.
std::string SnapshotPathForFingerprint(const std::string& base_path,
                                       uint64_t catalog_fingerprint);

/// Atomically persists `cache` to `path`: SaveTo writes a private
/// temporary file in the same directory, which is then rename(2)d over
/// `path`. Readers therefore always see either the old snapshot or the
/// complete new one, never a torn mix — even when several tuners save to
/// the same path concurrently (last writer wins whole). The temporary is
/// unlinked on any failure.
Status SaveSnapshotAtomic(const WhatIfCache& cache, const std::string& path,
                          uint64_t catalog_fingerprint);

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_WHAT_IF_CACHE_H_
