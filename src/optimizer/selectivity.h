#ifndef AIM_OPTIMIZER_SELECTIVITY_H_
#define AIM_OPTIMIZER_SELECTIVITY_H_

#include <vector>

#include "catalog/catalog.h"
#include "optimizer/predicate.h"

namespace aim::optimizer {

/// Default selectivities when literals are unknown (parameterized queries),
/// in the spirit of the classic Selinger constants.
inline constexpr double kDefaultRangeSelectivity = 0.10;
inline constexpr double kDefaultLikePrefixSelectivity = 0.05;
inline constexpr double kDefaultOpaqueSelectivity = 0.50;

/// \brief Estimated fraction of an instance's rows satisfying `pred`.
double PredicateSelectivity(const AtomicPredicate& pred,
                            const catalog::Catalog& catalog,
                            catalog::TableId table);

/// \brief Combined selectivity of ANDed predicates with exponential
/// backoff: s1 · s2^(1/2) · s3^(1/4) · ... (most selective first), which
/// tempers the independence assumption on correlated columns.
double CombinedSelectivity(const std::vector<AtomicPredicate>& preds,
                           const catalog::Catalog& catalog,
                           catalog::TableId table);
/// Same, over pointers.
double CombinedSelectivity(const std::vector<const AtomicPredicate*>& preds,
                           const catalog::Catalog& catalog,
                           catalog::TableId table);

/// \brief Result-fraction of `instance`'s rows after applying the whole
/// WHERE clause (DNF-aware: OR of factors combines by inclusion-exclusion
/// under independence).
double InstanceResultSelectivity(const AnalyzedQuery& query, int instance,
                                 const catalog::Catalog& catalog);

/// Estimated number of distinct groups for a GROUP BY over `columns`
/// (product of NDVs capped by row count).
double EstimateGroupCount(const catalog::Catalog& catalog,
                          catalog::TableId table,
                          const std::vector<catalog::ColumnId>& columns,
                          double input_rows);

}  // namespace aim::optimizer

#endif  // AIM_OPTIMIZER_SELECTIVITY_H_
