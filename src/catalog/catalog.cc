#include "catalog/catalog.h"

#include <cstring>

#include "common/strings.h"

namespace aim::catalog {

namespace {
// Structure overhead factors applied to raw key bytes: B+Tree pages are
// ~2/3 full and carry page headers; LSM tables are compacted and denser.
constexpr double kBTreeStructureFactor = 1.5;
constexpr double kPerRowOverheadBytes = 12.0;
}  // namespace

std::optional<ColumnId> TableDef::FindColumn(const std::string& col) const {
  for (ColumnId i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col)) return i;
  }
  return std::nullopt;
}

double TableDef::RowWidth() const {
  double w = 0;
  for (const auto& c : columns) w += c.avg_width;
  return w;
}

double TableDef::ColumnsWidth(const std::vector<ColumnId>& cols) const {
  double w = 0;
  for (ColumnId c : cols) w += columns[c].avg_width;
  return w;
}

TableId Catalog::AddTable(TableDef table) {
  const TableId id = static_cast<TableId>(tables_.size());
  table.id = id;
  if (table.stats.columns.size() < table.columns.size()) {
    table.stats.columns.resize(table.columns.size());
  }
  table_by_name_[ToLower(table.name)] = id;
  tables_.push_back(std::move(table));
  return id;
}

Result<TableId> Catalog::FindTable(const std::string& name) const {
  auto it = table_by_name_.find(ToLower(name));
  if (it == table_by_name_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return it->second;
}

Result<IndexId> Catalog::AddIndex(IndexDef index) {
  if (index.table >= tables_.size()) {
    return Status::InvalidArgument("index on unknown table");
  }
  if (index.columns.empty()) {
    return Status::InvalidArgument("index must have at least one column");
  }
  const TableDef& t = tables_[index.table];
  for (ColumnId c : index.columns) {
    if (c >= t.columns.size()) {
      return Status::InvalidArgument("index column out of range on table " +
                                     t.name);
    }
  }
  if (const IndexDef* dup = FindIndex(index.table, index.columns)) {
    return Status::AlreadyExists("duplicate index " + DescribeIndex(*dup));
  }
  const IndexId id = static_cast<IndexId>(indexes_.size());
  index.id = id;
  if (index.name.empty()) {
    index.name = StringPrintf("idx_%s_%u", t.name.c_str(), id);
  }
  indexes_.push_back(std::move(index));
  return id;
}

Status Catalog::DropIndex(IndexId id) {
  if (id >= indexes_.size() || !indexes_[id].has_value()) {
    return Status::NotFound("index id " + std::to_string(id) + " not found");
  }
  indexes_[id].reset();
  return Status::OK();
}

void Catalog::DropAllHypothetical() {
  for (auto& slot : indexes_) {
    if (slot.has_value() && slot->hypothetical) slot.reset();
  }
}

const IndexDef* Catalog::index(IndexId id) const {
  if (id >= indexes_.size() || !indexes_[id].has_value()) return nullptr;
  return &*indexes_[id];
}

std::vector<const IndexDef*> Catalog::TableIndexes(
    TableId table, bool include_hypothetical, bool include_primary) const {
  std::vector<const IndexDef*> out;
  for (const auto& slot : indexes_) {
    if (slot.has_value() && slot->table == table &&
        (include_hypothetical || !slot->hypothetical) &&
        (include_primary || !slot->is_primary)) {
      out.push_back(&*slot);
    }
  }
  return out;
}

std::vector<const IndexDef*> Catalog::AllIndexes(
    bool include_hypothetical, bool include_primary) const {
  std::vector<const IndexDef*> out;
  for (const auto& slot : indexes_) {
    if (slot.has_value() && (include_hypothetical || !slot->hypothetical) &&
        (include_primary || !slot->is_primary)) {
      out.push_back(&*slot);
    }
  }
  return out;
}

const IndexDef* Catalog::FindIndex(
    TableId table, const std::vector<ColumnId>& columns) const {
  for (const auto& slot : indexes_) {
    if (slot.has_value() && slot->table == table && slot->columns == columns) {
      return &*slot;
    }
  }
  return nullptr;
}

double Catalog::IndexSizeBytes(const IndexDef& index) const {
  // The clustered primary index IS the table.
  if (index.is_primary) return TableSizeBytes(index.table);
  const TableDef& t = tables_[index.table];
  const double key_bytes = t.ColumnsWidth(index.columns);
  // Secondary indexes append the primary key as the row locator.
  double pk_bytes = t.primary_key.empty() ? 8.0
                                          : t.ColumnsWidth(t.primary_key);
  const double per_row = key_bytes + pk_bytes + kPerRowOverheadBytes;
  return per_row * static_cast<double>(t.stats.row_count) *
         kBTreeStructureFactor;
}

double Catalog::TableSizeBytes(TableId table) const {
  const TableDef& t = tables_[table];
  return (t.RowWidth() + kPerRowOverheadBytes) *
         static_cast<double>(t.stats.row_count) * kBTreeStructureFactor;
}

double Catalog::TotalIndexBytes() const {
  double total = 0;
  for (const IndexDef* idx : AllIndexes(/*include_hypothetical=*/false,
                                        /*include_primary=*/false)) {
    total += IndexSizeBytes(*idx);
  }
  return total;
}

uint64_t Catalog::SchemaStatsFingerprint() const {
  // FNV-1a-style chain over schema and statistics, in table/column order
  // (stable: tables are append-only and ids never move). Indexes are
  // deliberately excluded — what-if cache keys already embed the index
  // configuration fingerprint, so creating or dropping indexes must NOT
  // invalidate a persisted cache; only changes that alter what a given
  // (statement, configuration) pair would cost do.
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  const auto mix_str = [&](const std::string& s) {
    uint64_t sh = 1469598103934665603ull;
    for (unsigned char c : s) {
      sh ^= c;
      sh *= 1099511628211ull;
    }
    mix(sh);
  };
  mix(tables_.size());
  for (const TableDef& t : tables_) {
    mix_str(t.name);
    mix(t.columns.size());
    for (const ColumnDef& c : t.columns) {
      mix_str(c.name);
      mix(static_cast<uint64_t>(c.type));
      mix(c.avg_width);
      mix(c.nullable ? 1u : 0u);
    }
    for (ColumnId c : t.primary_key) mix(c);
    mix(t.stats.row_count);
    mix(t.stats.columns.size());
    for (const ColumnStats& cs : t.stats.columns) {
      mix(cs.ndv);
      uint64_t bits = 0;
      std::memcpy(&bits, &cs.null_fraction, sizeof(bits));
      mix(bits);
      mix(static_cast<uint64_t>(cs.min));
      mix(static_cast<uint64_t>(cs.max));
      mix(cs.histogram.size());
      for (int64_t b : cs.histogram) mix(static_cast<uint64_t>(b));
    }
  }
  return h;
}

std::string Catalog::DescribeIndex(const IndexDef& index) const {
  const TableDef& t = tables_[index.table];
  std::vector<std::string> names;
  names.reserve(index.columns.size());
  for (ColumnId c : index.columns) names.push_back(t.columns[c].name);
  return t.name + "(" + Join(names, ", ") + ")";
}

}  // namespace aim::catalog
